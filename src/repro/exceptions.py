"""Exception hierarchy for the ``repro`` package.

All errors raised by this library derive from :class:`ReproError`, so
callers can catch a single type at API boundaries while the concrete
subclasses keep failure modes distinguishable in tests and logs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class GraphValidationError(ReproError, ValueError):
    """An uncertain graph failed structural validation.

    Raised for out-of-range edge probabilities, self loops, duplicate
    edges (when no merge policy is selected), unknown node labels, or
    inconsistent array shapes.
    """


class ClusteringError(ReproError, ValueError):
    """A clustering request or result is invalid.

    Raised for out-of-range ``k``, malformed assignments (e.g. a center
    that does not belong to its own cluster), or algorithms invoked on
    inputs they cannot handle (e.g. more connected components than
    clusters when a full cover is required).
    """


class OracleError(ReproError, RuntimeError):
    """A connection-probability oracle cannot satisfy a request.

    Raised when an exact oracle is asked to enumerate too many worlds,
    when a Monte Carlo oracle would exceed its configured sample budget,
    or when a depth-limited query is issued against an oracle that was
    not configured to answer it.
    """


class WorldStoreError(OracleError):
    """A world-store request is invalid.

    Raised for reads outside the stored pool, appends that would leave
    a gap, or mismatched mask/label shapes.  Corrupt or stale cache
    directories never raise — they are discarded and re-sampled.
    """


class ExperimentError(ReproError, RuntimeError):
    """An experiment configuration or run is invalid."""


class ServiceError(ReproError):
    """A clustering-service request cannot be fulfilled.

    Carries the HTTP status the service layer should report, so
    handlers can raise one exception type for every client-visible
    failure (unknown graph, malformed body, job not found, ...).

    ``code`` is the machine-readable error code the uniform response
    envelope reports (``{"error": {"code", "message", "request_id"}}``);
    when omitted it is derived from the status by the HTTP layer.
    ``headers`` are extra response headers — admission control uses
    this to attach ``Retry-After`` to its 429s.
    """

    def __init__(self, message: str, *, status: int = 400,
                 code: str | None = None, headers: dict | None = None):
        super().__init__(message)
        self.status = int(status)
        self.code = code
        self.headers = dict(headers) if headers else {}


class JobCancelledError(ReproError, RuntimeError):
    """A background clustering job was cancelled while in flight.

    Raised inside the worker (via the ``cancel_check`` hook of
    :func:`~repro.core.mcp.mcp_clustering` /
    :func:`~repro.core.acp.acp_clustering`) to unwind a running job;
    the job queue records the job as ``cancelled``, never ``failed``.
    """
