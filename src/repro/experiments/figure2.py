"""Figure 2: inner- and outer-AVPR (average vertex pairwise reliability).

inner-AVPR (higher is better) averages pairwise connection probability
within clusters; outer-AVPR (lower is better) across clusters.  Expected
shape: mcp/acp match the baselines on inner-AVPR but achieve clearly
lower outer-AVPR, while mcl/gmm score similarly on both sides —
evidence they follow topology rather than connection probabilities.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentScale
from repro.experiments.suite import QualitySuiteResult, run_quality_suite
from repro.utils.tables import TextTable


def build_table(suite: QualitySuiteResult) -> TextTable:
    """Slice a quality-suite result into the Figure 2 table."""
    table = TextTable(
        ["graph", "k", "algorithm", "inner_avpr", "outer_avpr", "note"],
        title=f"Figure 2 — inner/outer AVPR per (graph, k, algorithm), scale={suite.scale_name}",
    )
    for record in suite.records:
        table.add_row(
            graph=record.graph,
            k=record.k,
            algorithm=record.algorithm,
            inner_avpr=record.inner_avpr,
            outer_avpr=record.outer_avpr,
            note=record.note,
        )
    return table


def run(scale: str | ExperimentScale = "small", *, seed: int = 0) -> TextTable:
    """Run the quality suite and build the Figure 2 table."""
    return build_table(run_quality_suite(scale, seed=seed))
