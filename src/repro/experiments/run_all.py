"""Drive the full evaluation: every table and figure in one run.

Usage::

    python -m repro.experiments.run_all --scale small --seed 0 \
        --output results/experiments_small.md

Figures 1-3 share one quality-suite run; Table 1, Figure 4 and Table 2
run their own protocols.  The combined report is printed and optionally
written to a markdown file.
"""

from __future__ import annotations

import argparse
import sys
import time

import math

from repro.experiments import figure1, figure2, figure3, figure4, table1, table2
from repro.experiments.config import SCALES, get_scale
from repro.experiments.reference import shape_claims
from repro.experiments.suite import run_quality_suite
from repro.utils.tables import TextTable


def _shape_claim_table(suite) -> TextTable:
    """Evaluate the paper's headline orderings on paper and measured data."""
    measured_pmin = {}
    measured_outer = {}
    for record in suite.records:
        key = (record.graph, record.k, record.algorithm)
        if not math.isnan(record.pmin):
            measured_pmin[key] = record.pmin
        if math.isfinite(record.outer_avpr):
            measured_outer[key] = record.outer_avpr
    paper = dict(shape_claims())
    # Metric estimates come from a few hundred sampled worlds: allow the
    # Monte Carlo noise band when judging a single measured run.
    measured = dict(shape_claims(pmin=measured_pmin, outer=measured_outer, tolerance=0.03))
    table = TextTable(
        ["claim", "paper", "measured"],
        title="Shape claims — paper's published values vs this run (±0.03 noise band)",
    )
    for claim, holds in paper.items():
        table.add_row(claim=claim, paper=holds, measured=measured.get(claim))
    return table


def build_report(scale: str = "small", *, seed: int = 0, verbose: bool = True) -> str:
    """Run everything and return the markdown report."""
    scale_obj = get_scale(scale)

    def progress(message: str) -> None:
        if verbose:
            print(f"  {message}", file=sys.stderr, flush=True)

    sections: list[str] = [
        f"# Experiment report — scale={scale_obj.name}, seed={seed}",
        "",
    ]
    started = time.perf_counter()

    progress("Table 1 ...")
    sections.append(table1.run(scale_obj, seed=seed).render())
    sections.append("")

    progress("Quality suite (Figures 1-3) ...")
    suite = run_quality_suite(scale_obj, seed=seed, progress=progress)
    sections.append(figure1.build_table(suite).render())
    sections.append("")
    sections.append(figure2.build_table(suite).render())
    sections.append("")
    sections.append(figure3.build_table(suite).render())
    sections.append("")
    sections.append(_shape_claim_table(suite).render())
    sections.append("")

    progress("Figure 4 ...")
    sections.append(figure4.run(scale_obj, seed=seed).render())
    sections.append("")

    progress("Table 2 ...")
    sections.append(table2.run(scale_obj, seed=seed, progress=progress).render())
    sections.append("")

    sections.append(
        f"_Total wall-clock: {time.perf_counter() - started:.1f} s._"
    )
    return "\n".join(sections)


def main(argv=None) -> int:
    """Run every exhibit at the chosen scale and emit the full report."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="small")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default=None, help="write the report to this file")
    parser.add_argument("--quiet", action="store_true", help="suppress progress output")
    args = parser.parse_args(argv)

    report = build_report(args.scale, seed=args.seed, verbose=not args.quiet)
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
