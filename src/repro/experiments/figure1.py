"""Figure 1: minimum (pmin) and average (pavg) connection probability.

The paper's headline quality comparison: for each graph and each mcl-
derived value of ``k``, the four algorithms' pmin (top row of the
figure) and pavg (bottom row).  Expected shape: mcp wins pmin
everywhere (gmm/mcl near zero on DBLP), acp's pavg is comparable to
mcl's, gmm's pavg is lowest.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentScale
from repro.experiments.suite import QualitySuiteResult, run_quality_suite
from repro.utils.tables import TextTable


def build_table(suite: QualitySuiteResult) -> TextTable:
    """Slice a quality-suite result into the Figure 1 table."""
    table = TextTable(
        ["graph", "k", "algorithm", "pmin", "pavg", "note"],
        title=f"Figure 1 — pmin / pavg per (graph, k, algorithm), scale={suite.scale_name}",
    )
    for record in suite.records:
        table.add_row(
            graph=record.graph,
            k=record.k,
            algorithm=record.algorithm,
            pmin=record.pmin,
            pavg=record.pavg,
            note=record.note,
        )
    return table


def run(scale: str | ExperimentScale = "small", *, seed: int = 0) -> TextTable:
    """Run the quality suite and build the Figure 1 table."""
    return build_table(run_quality_suite(scale, seed=seed))
