"""Figure 3: running times of the four algorithms.

Expected shape: gmm fastest (no possible-world sampling, linear in k);
mcl's time *decreases* with k (low inflation = slow convergence + dense
flow matrices); mcp/acp in between, driven by the progressive sampler.
Absolute numbers are not comparable to the paper's C++/OpenMP runs.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentScale
from repro.experiments.suite import QualitySuiteResult, run_quality_suite
from repro.utils.tables import TextTable


def build_table(suite: QualitySuiteResult) -> TextTable:
    """Slice a quality-suite result into the Figure 3 table."""
    table = TextTable(
        ["graph", "k", "algorithm", "time_ms", "note"],
        float_format=".1f",
        title=f"Figure 3 — running time (ms), scale={suite.scale_name}",
    )
    for record in suite.records:
        table.add_row(
            graph=record.graph,
            k=record.k,
            algorithm=record.algorithm,
            time_ms=record.time_ms,
            note=record.note,
        )
    return table


def run(scale: str | ExperimentScale = "small", *, seed: int = 0) -> TextTable:
    """Run the quality suite and build the Figure 3 table."""
    return build_table(run_quality_suite(scale, seed=seed))
