"""Experiment harness regenerating every table and figure of the paper.

Each exhibit module exposes ``run(scale=..., seed=...) -> TextTable``;
:mod:`repro.experiments.run_all` drives the full evaluation and shares
the expensive quality-suite runs between Figures 1, 2 and 3.
"""

from repro.experiments.config import SCALES, ExperimentScale, get_scale
from repro.experiments.suite import QualityRecord, QualitySuiteResult, run_quality_suite
from repro.experiments.multirun import aggregated_table, run_repeated_suite
from repro.experiments.reference import PAPER_KS, paper_figure1_table, shape_claims

__all__ = [
    "ExperimentScale",
    "SCALES",
    "get_scale",
    "QualityRecord",
    "QualitySuiteResult",
    "run_quality_suite",
    "run_repeated_suite",
    "aggregated_table",
    "PAPER_KS",
    "paper_figure1_table",
    "shape_claims",
]
