"""Figure 4: running time versus k on DBLP — mcp against mcl.

The paper's scalability exhibit: mcp's time grows (roughly linearly)
with k, while mcl is *inversely* sensitive — low inflation (small k)
means slow convergence and dense flow matrices, to the point that mcl
ran out of memory for the smallest k values (red crosses in the paper's
figure).  We reproduce the same sweep on the scaled DBLP-like graph;
mcl failures surface as ``failed (memory)`` rows thanks to the
``max_nnz`` guard.
"""

from __future__ import annotations

import time

from repro.baselines.mcl import mcl_clustering
from repro.core.mcp import mcp_clustering
from repro.datasets.collaboration import dblp_like
from repro.experiments.config import ExperimentScale, get_scale
from repro.sampling.sizes import PracticalSchedule
from repro.utils.rng import ensure_rng
from repro.utils.tables import TextTable

# Inflation sweep for the mcl series: low inflation = few clusters.
_MCL_INFLATIONS = (1.1, 1.15, 1.2, 1.3, 1.5, 2.0)


def run(
    scale: str | ExperimentScale = "small",
    *,
    seed: int = 0,
    mcl_max_nnz: int | None = None,
) -> TextTable:
    """Time mcp (k sweep) and mcl (inflation sweep) on DBLP.

    ``mcl_max_nnz`` overrides the memory guard; the default scales with
    the graph so that the lowest inflations fail as in the paper.
    """
    scale = get_scale(scale)
    rng = ensure_rng(seed)
    graph = dblp_like(scale.dblp_authors, seed=int(rng.integers(2**31)))
    n = graph.n_nodes
    if mcl_max_nnz is None:
        # Low inflation lets the flow matrix approach density n^2 (the
        # paper's observed out-of-memory regime); half-dense is a
        # faithful per-machine budget at our scale.
        mcl_max_nnz = n * n // 2

    table = TextTable(
        ["algorithm", "k", "time_s", "note"],
        float_format=".2f",
        title=(
            f"Figure 4 — time vs k on DBLP-like graph "
            f"(n={n}, m={graph.n_edges}), scale={scale.name}"
        ),
    )

    schedule = PracticalSchedule(max_samples=scale.max_algo_samples)
    for fraction in scale.figure4_k_fractions:
        k = max(2, int(round(n * fraction)))
        start = time.perf_counter()
        result = mcp_clustering(
            graph,
            k,
            seed=int(rng.integers(2**31)),
            sample_schedule=schedule,
            chunk_size=128,
            backend=scale.oracle_backend,
            workers=scale.oracle_workers,
            cache_dir=scale.world_cache,
        )
        table.add_row(
            algorithm="mcp",
            k=k,
            time_s=time.perf_counter() - start,
            note="" if result.covers_all else "partial at p_lower",
        )

    for inflation in _MCL_INFLATIONS:
        start = time.perf_counter()
        try:
            result = mcl_clustering(
                graph, inflation=inflation, max_nnz=mcl_max_nnz, max_iterations=80
            )
        except MemoryError:
            table.add_row(
                algorithm="mcl",
                k=None,
                time_s=time.perf_counter() - start,
                note=f"failed (memory) at inflation={inflation}",
            )
            continue
        table.add_row(
            algorithm="mcl",
            k=result.n_clusters,
            time_s=time.perf_counter() - start,
            note=f"inflation={inflation}",
        )
    return table
