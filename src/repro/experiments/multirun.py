"""Repeated-run aggregation for the quality suite.

The paper reports averages over at least 100 runs (5 for DBLP).  This
module reruns the quality suite under independent seeds and aggregates
each (graph, k, algorithm) cell into mean and standard deviation, so
reproduction reports can quote uncertainty alongside point values.

Note that ``k`` is re-derived from mcl's granularity per run and can
vary between seeds; cells are therefore keyed by the mcl inflation
*rank* (first/second/third inflation of the preset) rather than the
literal k, and the mean k is reported.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.registry import DATASET_NAMES
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.suite import run_quality_suite
from repro.utils.rng import ensure_rng
from repro.utils.tables import TextTable

_METRICS = ("pmin", "pavg", "inner_avpr", "outer_avpr", "time_ms")


@dataclass(frozen=True)
class AggregatedCell:
    """Mean/std of one (graph, inflation-rank, algorithm) cell."""

    graph: str
    k_rank: int
    algorithm: str
    mean_k: float
    n_runs: int
    means: dict
    stds: dict


def run_repeated_suite(
    scale: str | ExperimentScale = "tiny",
    *,
    n_runs: int = 5,
    seed: int = 0,
    datasets: tuple[str, ...] = DATASET_NAMES,
    progress=None,
) -> list[AggregatedCell]:
    """Run the quality suite ``n_runs`` times and aggregate per cell."""
    if n_runs < 1:
        raise ValueError(f"n_runs must be >= 1, got {n_runs}")
    scale = get_scale(scale)
    root = ensure_rng(seed)
    observations: dict[tuple, list] = {}
    for _run_index in range(n_runs):
        run_seed = int(root.integers(2**31))
        suite = run_quality_suite(scale, seed=run_seed, datasets=datasets, progress=progress)
        # Rank the k values per (graph, algorithm): rank follows the
        # inflation order used by the suite.
        per_graph_ks: dict[str, list[int]] = {}
        for record in suite.records:
            ks = per_graph_ks.setdefault(record.graph, [])
            if record.k not in ks:
                ks.append(record.k)
        for record in suite.records:
            if record.k < 0:
                continue  # mcl failure rows carry no k
            rank = sorted(per_graph_ks[record.graph]).index(record.k)
            key = (record.graph, rank, record.algorithm)
            observations.setdefault(key, []).append(record)

    cells = []
    for (graph, rank, algorithm), records in sorted(observations.items()):
        means = {}
        stds = {}
        for metric in _METRICS:
            values = np.array([getattr(r, metric) for r in records], dtype=float)
            values = values[np.isfinite(values)]
            means[metric] = float(values.mean()) if len(values) else float("nan")
            stds[metric] = float(values.std(ddof=0)) if len(values) else float("nan")
        cells.append(
            AggregatedCell(
                graph=graph,
                k_rank=rank,
                algorithm=algorithm,
                mean_k=float(np.mean([r.k for r in records])),
                n_runs=len(records),
                means=means,
                stds=stds,
            )
        )
    return cells


def aggregated_table(cells: list[AggregatedCell], metric: str = "pmin") -> TextTable:
    """Render aggregated cells for one metric as ``mean ± std``."""
    if metric not in _METRICS:
        raise ValueError(f"metric must be one of {_METRICS}, got {metric!r}")
    table = TextTable(
        ["graph", "mean_k", "algorithm", "mean", "std", "runs"],
        title=f"Repeated-run aggregate — {metric}",
    )
    for cell in cells:
        table.add_row(
            graph=cell.graph,
            mean_k=round(cell.mean_k, 1),
            algorithm=cell.algorithm,
            mean=cell.means[metric],
            std=cell.stds[metric],
            runs=cell.n_runs,
        )
    return table
