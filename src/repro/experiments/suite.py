"""The shared quality suite behind Figures 1, 2 and 3.

The paper's protocol (Section 5.1): for every graph, run ``mcl`` at a
few inflation values; the number of clusters it returns becomes the
target ``k`` for the algorithms that *can* control granularity (gmm,
mcp, acp).  Every clustering is then scored under the same
Monte Carlo evaluation oracle on four metrics — pmin, pavg, inner-AVPR,
outer-AVPR — and wall-clock time is recorded.

Running this suite once yields all the data for Figures 1 (pmin/pavg),
2 (AVPR) and 3 (time); the exhibit modules just slice different columns.

Sampling is shared two ways: per graph, one progressive Monte Carlo
pool serves every mcp and acp call (all inflations) instead of each
call resampling from scratch, and — when the scale preset sets
``world_cache`` — every oracle attaches a shared disk-backed
:class:`repro.sampling.store.WorldStore` so repeated suite runs reuse
their pools across processes.

A consequence for the Figure 3 exhibit: an mcp/acp record's ``time_ms``
is the call's *incremental* cost on the shared pool — the first call
that needs ``r`` worlds pays for drawing them, later calls reuse them
(matching how a practitioner would amortize sampling across queries).
mcl/gmm rows still pay their full per-call cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.baselines.gmm import gmm_clustering
from repro.baselines.mcl import mcl_clustering
from repro.core.acp import acp_clustering
from repro.core.mcp import mcp_clustering
from repro.datasets.registry import DATASET_NAMES, load_dataset
from repro.experiments.config import ExperimentScale, get_scale
from repro.metrics.quality import (
    avg_connection_probability,
    avpr,
    min_connection_probability,
)
from repro.sampling.oracle import MonteCarloOracle
from repro.sampling.sizes import PracticalSchedule
from repro.sampling.store import WorldStore
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class QualityRecord:
    """Metrics of one (graph, k, algorithm) cell.

    ``time_ms`` is wall-clock for the call; for mcp/acp this is the
    incremental cost on the graph's shared progressive pool (see the
    module docstring), for mcl/gmm the full standalone cost.
    """

    graph: str
    k: int
    algorithm: str
    pmin: float
    pavg: float
    inner_avpr: float
    outer_avpr: float
    time_ms: float
    note: str = ""


@dataclass
class QualitySuiteResult:
    """All records of one suite run plus the graph statistics (Table 1)."""

    scale_name: str
    records: list[QualityRecord] = field(default_factory=list)
    graph_stats: list[dict] = field(default_factory=list)

    def for_graph(self, graph: str) -> list[QualityRecord]:
        return [r for r in self.records if r.graph == graph]


_ALGORITHM_ORDER = ("gmm", "mcl", "mcp", "acp")


def _score(clustering, oracle, seconds: float, graph: str, k: int, algorithm: str, note: str = "") -> QualityRecord:
    inner, outer = avpr(clustering, oracle)
    return QualityRecord(
        graph=graph,
        k=k,
        algorithm=algorithm,
        pmin=min_connection_probability(clustering, oracle),
        pavg=avg_connection_probability(clustering, oracle),
        inner_avpr=inner,
        outer_avpr=outer,
        time_ms=seconds * 1000.0,
        note=note,
    )


def run_quality_suite(
    scale: str | ExperimentScale = "small",
    *,
    seed: int = 0,
    datasets: tuple[str, ...] = DATASET_NAMES,
    progress=None,
) -> QualitySuiteResult:
    """Run the full Figure 1/2/3 protocol.

    Parameters
    ----------
    scale:
        Preset name or :class:`ExperimentScale`.
    seed:
        Master seed; datasets, algorithms and evaluation oracles derive
        their own streams from it.
    datasets:
        Subset of dataset names to run.
    progress:
        Optional callable receiving human-readable progress strings.
    """
    scale = get_scale(scale)
    rng = ensure_rng(seed)
    result = QualitySuiteResult(scale_name=scale.name)
    # One shared store for every oracle the suite builds: with a cache
    # directory configured, repeated runs (same master seed) reuse their
    # sampled pools across processes instead of redrawing them.
    store = WorldStore(scale.world_cache) if scale.world_cache else None

    def report(message: str) -> None:
        if progress is not None:
            progress(message)

    for name in datasets:
        graph_seed = int(rng.integers(2**31))
        graph, _complexes = load_dataset(
            name,
            seed=graph_seed,
            scale=scale.ppi_scale if name != "dblp" else 1.0,
            dblp_authors=scale.dblp_authors,
        )
        result.graph_stats.append(
            {"graph": name, "nodes": graph.n_nodes, "edges": graph.n_edges}
        )
        report(f"[{name}] n={graph.n_nodes} m={graph.n_edges}")

        # Worker pools must not leak however the graph's cells fail, so
        # everything after each oracle's construction runs under its
        # try/finally — including the other oracle's construction and
        # warmup, either of which can raise (e.g. OracleError budgets).
        eval_oracle = MonteCarloOracle(
            graph, seed=int(rng.integers(2**31)), chunk_size=64,
            backend=scale.oracle_backend,
            workers=scale.oracle_workers,
            store=store,
        )
        try:
            eval_oracle.ensure_samples(scale.metric_samples)

            # One progressive pool per graph, shared by every mcp and
            # acp call below (all inflations): the pool only ever grows
            # to the largest schedule request instead of being
            # resampled per call.
            algo_oracle = MonteCarloOracle(
                graph, seed=int(rng.integers(2**31)), chunk_size=128,
                backend=scale.oracle_backend,
                workers=scale.oracle_workers,
                store=store,
            )
            try:
                inflations = (
                    scale.mcl_inflations_dblp if name == "dblp"
                    else scale.mcl_inflations_ppi
                )
                schedule = PracticalSchedule(max_samples=scale.max_algo_samples)
                _run_graph_cells(
                    result, report, graph, name, inflations, schedule, scale,
                    eval_oracle, algo_oracle, rng,
                )
            finally:
                algo_oracle.close()
        finally:
            eval_oracle.close()

    result.records.sort(key=_record_order)
    return result


def _run_graph_cells(
    result, report, graph, name, inflations, schedule, scale, eval_oracle, algo_oracle, rng
) -> None:
    """All (inflation x algorithm) cells of one graph."""
    for inflation in inflations:
        start = time.perf_counter()
        try:
            mcl_result = mcl_clustering(graph, inflation=inflation, max_iterations=80)
        except MemoryError as error:
            result.records.append(
                QualityRecord(
                    graph=name,
                    k=-1,
                    algorithm="mcl",
                    pmin=float("nan"),
                    pavg=float("nan"),
                    inner_avpr=float("nan"),
                    outer_avpr=float("nan"),
                    time_ms=(time.perf_counter() - start) * 1000.0,
                    note=f"failed: {error}",
                )
            )
            report(f"[{name}] mcl inflation={inflation} FAILED (memory)")
            continue
        mcl_seconds = time.perf_counter() - start
        k = mcl_result.n_clusters
        if not 1 <= k < graph.n_nodes:
            k = max(2, min(graph.n_nodes - 1, k))
        report(f"[{name}] inflation={inflation} -> k={k}")
        result.records.append(
            _score(mcl_result.clustering, eval_oracle, mcl_seconds, name, k, "mcl")
        )

        start = time.perf_counter()
        gmm = gmm_clustering(graph, k, seed=int(rng.integers(2**31)))
        result.records.append(
            _score(gmm, eval_oracle, time.perf_counter() - start, name, k, "gmm")
        )

        start = time.perf_counter()
        mcp = mcp_clustering(
            graph,
            k,
            oracle=algo_oracle,
            seed=int(rng.integers(2**31)),
            sample_schedule=schedule,
        )
        note = "" if mcp.covers_all else "partial at p_lower"
        result.records.append(
            _score(
                mcp.clustering, eval_oracle, time.perf_counter() - start, name, k, "mcp", note
            )
        )

        start = time.perf_counter()
        acp = acp_clustering(
            graph,
            k,
            oracle=algo_oracle,
            seed=int(rng.integers(2**31)),
            sample_schedule=schedule,
        )
        result.records.append(
            _score(
                acp.clustering, eval_oracle, time.perf_counter() - start, name, k, "acp"
            )
        )
        report(f"[{name}] k={k} done")


def _record_order(record: QualityRecord) -> tuple:
    graph_pos = DATASET_NAMES.index(record.graph) if record.graph in DATASET_NAMES else 99
    algorithm_pos = (
        _ALGORITHM_ORDER.index(record.algorithm)
        if record.algorithm in _ALGORITHM_ORDER
        else 99
    )
    return (graph_pos, record.k, algorithm_pos)
