"""Scale presets for the experiment harness.

The paper runs on a 4-core C++/OpenMP implementation; this is a pure
Python reproduction on commodity hardware, so each exhibit supports
three scales:

``tiny``
    Seconds; used by the pytest benchmarks and CI smoke runs.
``small``
    Minutes on a laptop; the default for EXPERIMENTS.md.  PPI networks
    at a fraction of the paper's node counts, DBLP at a few thousand
    authors.
``paper``
    PPI networks at the paper's full node/edge counts; DBLP remains
    scaled (636k nodes is out of reach for pure Python — see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ExperimentError, OracleError
from repro.sampling.parallel import validate_workers_spec


@dataclass(frozen=True)
class ExperimentScale:
    """All knobs that trade fidelity for time in one bundle."""

    name: str
    ppi_scale: float
    dblp_authors: int
    metric_samples: int
    max_algo_samples: int
    mcl_inflations_ppi: tuple[float, ...]
    mcl_inflations_dblp: tuple[float, ...]
    table2_scale: float
    table2_depths: tuple[int, ...]
    table2_samples: int
    figure4_k_fractions: tuple[float, ...]
    #: World-labeling backend for every Monte Carlo oracle the harness
    #: builds ("auto" picks by graph size; see repro.sampling.backends).
    oracle_backend: str = "auto"
    #: Sampling worker processes for every Monte Carlo oracle the
    #: harness builds: "auto" (min of cpu count and the chunk-size
    #: heuristic — see repro.sampling.parallel.resolve_workers) or a
    #: positive int; 1 forces the serial path.  Results are
    #: bit-identical under every setting.
    oracle_workers: int | str = "auto"
    #: Optional world-cache directory.  When set, every Monte Carlo
    #: oracle the harness builds attaches a shared disk-backed
    #: :class:`repro.sampling.store.WorldStore`, so repeated runs of
    #: the same exhibit (same graphs, seeds, backends) reuse their
    #: sampled pools instead of redrawing them.  ``None`` (default)
    #: disables caching.
    world_cache: str | None = None

    def __post_init__(self):
        if not 0 < self.ppi_scale <= 1:
            raise ExperimentError(f"ppi_scale must be in (0, 1], got {self.ppi_scale}")
        if self.metric_samples < 10:
            raise ExperimentError("metric_samples must be at least 10")
        try:
            validate_workers_spec(self.oracle_workers)
        except OracleError as error:
            raise ExperimentError(f"oracle_workers: {error}") from None


SCALES: dict[str, ExperimentScale] = {
    "tiny": ExperimentScale(
        name="tiny",
        ppi_scale=0.08,
        dblp_authors=1500,
        metric_samples=120,
        max_algo_samples=200,
        mcl_inflations_ppi=(1.5, 2.0),
        mcl_inflations_dblp=(2.0,),
        table2_scale=0.08,
        table2_depths=(2, 3),
        table2_samples=100,
        figure4_k_fractions=(1 / 32, 1 / 16),
    ),
    "small": ExperimentScale(
        name="small",
        ppi_scale=0.35,
        dblp_authors=3000,
        metric_samples=300,
        max_algo_samples=500,
        mcl_inflations_ppi=(1.2, 1.5, 2.0),
        mcl_inflations_dblp=(1.3, 1.5, 2.0),
        table2_scale=0.30,
        table2_depths=(2, 3, 4, 6, 8),
        table2_samples=200,
        figure4_k_fractions=(1 / 64, 1 / 32, 1 / 16, 1 / 8),
    ),
    "paper": ExperimentScale(
        name="paper",
        ppi_scale=1.0,
        dblp_authors=8_000,
        metric_samples=500,
        max_algo_samples=1000,
        mcl_inflations_ppi=(1.2, 1.5, 2.0),
        mcl_inflations_dblp=(1.3, 1.5, 2.0),
        table2_scale=0.60,
        table2_depths=(2, 3, 4, 6, 8),
        table2_samples=300,
        figure4_k_fractions=(1 / 64, 1 / 32, 1 / 16, 1 / 8),
    ),
}


def get_scale(scale: str | ExperimentScale) -> ExperimentScale:
    """Resolve a scale preset by name (or pass a custom one through)."""
    if isinstance(scale, ExperimentScale):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise ExperimentError(
            f"unknown scale {scale!r}; available: {sorted(SCALES)}"
        ) from None
