"""The paper's published numbers, transcribed for side-by-side comparison.

Values are read off Figures 1-3 and Table 2 of the paper (the figures
print the value above each bar).  They let the harness render
paper-vs-measured tables and let tests assert that the *shape claims*
the paper makes actually hold in its own numbers (guarding the
transcription) and in ours (guarding the reproduction).

Keys are ``(graph, k, algorithm)`` with the paper's k values:
Collins {24, 69, 99}, Gavin {50, 172, 274}, Krogan {77, 289, 517},
DBLP {1818, 5274, 15576}.
"""

from __future__ import annotations

from repro.utils.tables import TextTable

PAPER_KS = {
    "collins": (24, 69, 99),
    "gavin": (50, 172, 274),
    "krogan": (77, 289, 517),
    "dblp": (1818, 5274, 15576),
}

_ALGORITHMS = ("gmm", "mcl", "mcp", "acp")


def _grid(per_graph: dict[str, dict[str, tuple[float, float, float]]]):
    """Expand {graph: {alg: (v1, v2, v3)}} into {(graph, k, alg): v}."""
    flat = {}
    for graph, by_algorithm in per_graph.items():
        for algorithm, values in by_algorithm.items():
            for k, value in zip(PAPER_KS[graph], values, strict=True):
                flat[(graph, k, algorithm)] = value
    return flat


# Figure 1, top row: minimum connection probability (pmin).
# The paper prints "<10^-3" for mcl on DBLP; encoded as 0.0005.
PAPER_PMIN = _grid(
    {
        "collins": {
            "gmm": (0.177, 0.256, 0.320),
            "mcl": (0.153, 0.232, 0.455),
            "mcp": (0.356, 0.413, 0.552),
            "acp": (0.299, 0.338, 0.447),
        },
        "gavin": {
            "gmm": (0.002, 0.011, 0.024),
            "mcl": (0.002, 0.015, 0.057),
            "mcp": (0.048, 0.095, 0.163),
            "acp": (0.028, 0.062, 0.093),
        },
        "krogan": {
            "gmm": (0.073, 0.115, 0.151),
            "mcl": (0.030, 0.065, 0.162),
            "mcp": (0.141, 0.220, 0.347),
            "acp": (0.129, 0.175, 0.285),
        },
        "dblp": {
            "gmm": (0.003, 0.003, 0.007),
            "mcl": (0.0005, 0.0005, 0.0005),
            "mcp": (0.063, 0.067, 0.124),
            "acp": (0.030, 0.071, 0.118),
        },
    }
)

# Figure 1, bottom row: average connection probability (pavg).
PAPER_PAVG = _grid(
    {
        "collins": {
            "gmm": (0.765, 0.859, 0.865),
            "mcl": (0.929, 0.945, 0.951),
            "mcp": (0.895, 0.902, 0.951),
            "acp": (0.904, 0.944, 0.967),
        },
        "gavin": {
            "gmm": (0.274, 0.391, 0.530),
            "mcl": (0.603, 0.748, 0.784),
            "mcp": (0.598, 0.669, 0.731),
            "acp": (0.667, 0.727, 0.790),
        },
        "krogan": {
            "gmm": (0.624, 0.648, 0.787),
            "mcl": (0.749, 0.811, 0.827),
            "mcp": (0.754, 0.778, 0.880),
            "acp": (0.774, 0.835, 0.898),
        },
        "dblp": {
            "gmm": (0.319, 0.266, 0.636),
            "mcl": (0.724, 0.750, 0.773),
            "mcp": (0.714, 0.711, 0.663),
            "acp": (0.758, 0.730, 0.747),
        },
    }
)

# Figure 2: inner and outer Average Vertex Pairwise Reliability.
PAPER_INNER_AVPR = _grid(
    {
        "collins": {
            "gmm": (0.862, 0.926, 0.955),
            "mcl": (0.894, 0.923, 0.932),
            "mcp": (0.809, 0.851, 0.907),
            "acp": (0.827, 0.896, 0.935),
        },
        "gavin": {
            "gmm": (0.538, 0.689, 0.780),
            "mcl": (0.557, 0.744, 0.808),
            "mcp": (0.439, 0.491, 0.592),
            "acp": (0.450, 0.538, 0.607),
        },
        "krogan": {
            "gmm": (0.641, 0.723, 0.797),
            "mcl": (0.619, 0.710, 0.722),
            "mcp": (0.608, 0.667, 0.770),
            "acp": (0.610, 0.680, 0.774),
        },
        "dblp": {
            "gmm": (0.599, 0.614, 0.643),
            "mcl": (0.587, 0.620, 0.661),
            "mcp": (0.583, 0.581, 0.605),
            "acp": (0.576, 0.593, 0.598),
        },
    }
)

PAPER_OUTER_AVPR = _grid(
    {
        "collins": {
            "gmm": (0.720, 0.734, 0.739),
            "mcl": (0.761, 0.770, 0.772),
            "mcp": (0.306, 0.393, 0.449),
            "acp": (0.378, 0.465, 0.514),
        },
        "gavin": {
            "gmm": (0.400, 0.408, 0.408),
            "mcl": (0.403, 0.406, 0.407),
            "mcp": (0.034, 0.060, 0.106),
            "acp": (0.055, 0.109, 0.128),
        },
        "krogan": {
            "gmm": (0.316, 0.459, 0.471),
            "mcl": (0.576, 0.578, 0.579),
            "mcp": (0.104, 0.178, 0.255),
            "acp": (0.112, 0.200, 0.268),
        },
        "dblp": {
            "gmm": (0.496, 0.574, 0.538),
            "mcl": (0.574, 0.574, 0.574),
            "mcp": (0.083, 0.061, 0.137),
            "acp": (0.027, 0.124, 0.115),
        },
    }
)

# Figure 3: running times in milliseconds (figure axes are scaled by
# 10^2 / 10^3 / 10^3 / 10^7 per graph; expanded here).
PAPER_TIME_MS = _grid(
    {
        "collins": {
            "gmm": (11.3, 34.7, 49.9),
            "mcl": (551.0, 240.0, 147.0),
            "mcp": (122.1, 227.7, 81.8),
            "acp": (229.0, 75.9, 97.1),
        },
        "gavin": {
            "gmm": (30.0, 102.0, 159.0),
            "mcl": (1113.0, 361.0, 210.0),
            "mcp": (231.0, 330.0, 277.0),
            "acp": (216.0, 282.0, 285.0),
        },
        "krogan": {
            "gmm": (60.0, 219.0, 391.0),
            "mcl": (3197.0, 624.0, 318.0),
            "mcp": (128.0, 330.0, 554.0),
            "acp": (143.0, 391.0, 631.0),
        },
        "dblp": {
            "gmm": (1.07e6, 2.98e6, 9.41e6),
            "mcl": (1.893e7, 1.046e7, 3.52e6),
            "mcp": (3.39e6, 5.26e6, 1.438e7),
            "acp": (2.68e6, 5.41e6, 1.384e7),
        },
    }
)

# Table 2: TPR/FPR on Krogan vs the MIPS ground truth, k = 547.
PAPER_TABLE2 = {
    ("mcp", 2): (0.344, 0.003),
    ("mcp", 3): (0.416, 0.012),
    ("mcp", 4): (0.429, 0.147),
    ("mcp", 6): (0.695, 0.604),
    ("mcp", 8): (0.737, 0.678),
    ("acp", 2): (0.384, 0.006),
    ("acp", 3): (0.459, 0.078),
    ("acp", 4): (0.585, 0.419),
    ("acp", 6): (0.697, 0.633),
    ("acp", 8): (0.730, 0.647),
    ("mcl", None): (0.423, 0.002),
    ("kpt", None): (0.187, 6.3e-4),
}


def paper_figure1_table() -> TextTable:
    """The paper's Figure 1 values as a table (for reports)."""
    table = TextTable(
        ["graph", "k", "algorithm", "pmin", "pavg"],
        title="Paper Figure 1 (published values)",
    )
    for graph, ks in PAPER_KS.items():
        for k in ks:
            for algorithm in _ALGORITHMS:
                table.add_row(
                    graph=graph,
                    k=k,
                    algorithm=algorithm,
                    pmin=PAPER_PMIN[(graph, k, algorithm)],
                    pavg=PAPER_PAVG[(graph, k, algorithm)],
                )
    return table


def shape_claims(pmin=None, outer=None, *, tolerance: float = 0.0) -> list[tuple[str, bool]]:
    """Evaluate the paper's headline shape claims on a value grid.

    ``pmin`` / ``outer`` map ``(graph, k, algorithm)`` to values; they
    default to the paper's own numbers, so the same function validates
    both the transcription and a measured reproduction grid (restricted
    to whatever keys the grid contains).

    ``tolerance`` absorbs Monte Carlo evaluation noise when checking a
    measured grid (metric estimates from a few hundred sampled worlds
    carry a ±0.02-0.03 band); the paper's published values are checked
    exactly.

    Returns ``(claim description, holds)`` pairs.
    """
    pmin = PAPER_PMIN if pmin is None else pmin
    outer = PAPER_OUTER_AVPR if outer is None else outer
    claims: list[tuple[str, bool]] = []

    cells = sorted({(g, k) for (g, k, _a) in pmin})
    mcp_wins = all(
        pmin[(g, k, "mcp")] >= max(pmin[(g, k, "gmm")], pmin[(g, k, "mcl")]) - tolerance
        for (g, k) in cells
        if all((g, k, a) in pmin for a in _ALGORITHMS)
    )
    claims.append(("mcp has the best pmin of {gmm, mcl} on every (graph, k)", mcp_wins))

    acp_over_baselines = all(
        pmin[(g, k, "acp")] >= min(pmin[(g, k, "gmm")], pmin[(g, k, "mcl")]) - tolerance
        for (g, k) in cells
        if all((g, k, a) in pmin for a in _ALGORITHMS)
    )
    claims.append(("acp's pmin is never below both baselines", acp_over_baselines))

    outer_cells = sorted({(g, k) for (g, k, _a) in outer})
    lower_outer = all(
        outer[(g, k, "mcp")] <= outer[(g, k, "gmm")] + tolerance
        and outer[(g, k, "mcp")] <= outer[(g, k, "mcl")] + tolerance
        for (g, k) in outer_cells
        if all((g, k, a) in outer for a in _ALGORITHMS)
    )
    claims.append(("mcp's outer-AVPR is the lowest of {gmm, mcl} everywhere", lower_outer))
    return claims
