"""Table 2: protein-complex prediction on the Krogan network.

The paper's predictive experiment (Section 5.2): cluster the Krogan
graph with depth-limited mcp/acp (d in {2, 3, 4, 6, 8}, k = 547 to
match the published mcl clustering) and score each clustering's
co-cluster pairs against the MIPS complex ground truth (TPR / FPR),
alongside mcl and kpt.

Our stand-in uses the Krogan-like generator's *planted* complexes as
ground truth (same measurement protocol, known truth).  Expected shape:
small d ≈ mcl's operating point; growing d trades FPR for TPR; acp's
FPR degrades faster than mcp's; kpt has by far the lowest TPR.
"""

from __future__ import annotations

import time

from repro.baselines.kpt import kpt_clustering
from repro.baselines.mcl import mcl_clustering
from repro.core.acp import acp_clustering
from repro.core.mcp import mcp_clustering
from repro.datasets.ppi import krogan_like
from repro.experiments.config import ExperimentScale, get_scale
from repro.metrics.prediction import pair_confusion
from repro.sampling.oracle import MonteCarloOracle
from repro.sampling.sizes import PracticalSchedule
from repro.utils.rng import ensure_rng
from repro.utils.tables import TextTable

PAPER_K = 547  # cardinality of the published Krogan mcl clustering
PAPER_KROGAN_NODES = 2559


def run(scale: str | ExperimentScale = "small", *, seed: int = 0, progress=None) -> TextTable:
    """Run the Table 2 protocol at the requested scale."""
    scale = get_scale(scale)
    rng = ensure_rng(seed)
    dataset = krogan_like(seed=int(rng.integers(2**31)), scale=scale.table2_scale)
    graph = dataset.graph
    n = graph.n_nodes
    # Scale the paper's k=547 with the graph (it was ~21% of the nodes).
    k = max(2, min(n - 1, int(round(PAPER_K * n / PAPER_KROGAN_NODES))))

    def report(message: str) -> None:
        if progress is not None:
            progress(message)

    table = TextTable(
        ["algorithm", "depth", "tpr", "fpr", "time_s"],
        title=(
            f"Table 2 — complex prediction on Krogan-like graph "
            f"(n={n}, k={k}, {len(dataset.complexes)} complexes), scale={scale.name}"
        ),
    )

    schedule = PracticalSchedule(max_samples=scale.table2_samples)
    for depth in scale.table2_depths:
        for algorithm, runner in (("mcp", mcp_clustering), ("acp", acp_clustering)):
            start = time.perf_counter()
            # A shared oracle would also work, but a per-run oracle keeps
            # runs independent, as in the paper's repeated experiments.
            oracle = MonteCarloOracle(
                graph, seed=int(rng.integers(2**31)), chunk_size=64,
                backend=scale.oracle_backend,
                workers=scale.oracle_workers,
                cache_dir=scale.world_cache,
            )
            result = runner(
                None,
                k,
                oracle=oracle,
                depth=depth,
                seed=int(rng.integers(2**31)),
                sample_schedule=schedule,
            )
            confusion = pair_confusion(result.clustering, dataset.complexes)
            elapsed = time.perf_counter() - start
            table.add_row(
                algorithm=algorithm,
                depth=depth,
                tpr=confusion.tpr,
                fpr=confusion.fpr,
                time_s=elapsed,
            )
            report(f"{algorithm} d={depth}: tpr={confusion.tpr:.3f} fpr={confusion.fpr:.3f} ({elapsed:.1f}s)")

    start = time.perf_counter()
    mcl = mcl_clustering(graph, inflation=2.0)
    confusion = pair_confusion(mcl.clustering, dataset.complexes)
    table.add_row(
        algorithm="mcl",
        depth=None,
        tpr=confusion.tpr,
        fpr=confusion.fpr,
        time_s=time.perf_counter() - start,
    )

    start = time.perf_counter()
    kpt = kpt_clustering(graph, seed=int(rng.integers(2**31)))
    confusion = pair_confusion(kpt, dataset.complexes)
    table.add_row(
        algorithm="kpt",
        depth=None,
        tpr=confusion.tpr,
        fpr=confusion.fpr,
        time_s=time.perf_counter() - start,
    )
    return table
