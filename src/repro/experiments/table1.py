"""Table 1: dataset statistics (nodes/edges of the largest component).

Regenerates the paper's Table 1 for our synthetic stand-ins and prints
the paper's numbers alongside for a direct fidelity check.
"""

from __future__ import annotations

from repro.datasets.registry import DATASET_NAMES, load_dataset
from repro.experiments.config import ExperimentScale, get_scale
from repro.utils.tables import TextTable

PAPER_VALUES = {
    "collins": (1004, 8323),
    "gavin": (1727, 7534),
    "krogan": (2559, 7031),
    "dblp": (636_751, 2_366_461),
}


def run(scale: str | ExperimentScale = "small", *, seed: int = 0) -> TextTable:
    """Build Table 1 at the requested scale."""
    scale = get_scale(scale)
    table = TextTable(
        ["graph", "nodes", "edges", "paper_nodes", "paper_edges"],
        title=f"Table 1 — graph statistics (largest CC), scale={scale.name}",
    )
    for name in DATASET_NAMES:
        graph, _ = load_dataset(
            name,
            seed=seed,
            scale=scale.ppi_scale if name != "dblp" else 1.0,
            dblp_authors=scale.dblp_authors,
        )
        paper_nodes, paper_edges = PAPER_VALUES[name]
        table.add_row(
            graph=name,
            nodes=graph.n_nodes,
            edges=graph.n_edges,
            paper_nodes=paper_nodes,
            paper_edges=paper_edges,
        )
    return table
