"""The :class:`UncertainGraph` data structure.

An uncertain graph ``G = (V, E, p : E -> (0, 1])`` is stored in struct-of-
arrays form: parallel numpy arrays of edge endpoints and probabilities,
plus a lazily built CSR adjacency for traversals.  Nodes are dense
integer indices ``0..n-1`` internally; arbitrary hashable labels are
supported at the boundary and preserved by :meth:`subgraph`.

The graphs are undirected and simple (no self loops, each edge stored
once), matching the paper's setting.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

import numpy as np

from repro.exceptions import GraphValidationError
from repro.graph.components import connected_component_labels, largest_component_indices
from repro.graph.delta import EdgeOp, GraphDelta

_MERGE_POLICIES = ("error", "max", "noisy-or", "first")


def _canonical_endpoints(src: np.ndarray, dst: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Orient every edge so that ``src < dst``."""
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    return lo, hi


def _merge_duplicates(src, dst, prob, policy: str):
    """Collapse duplicate undirected edges according to ``policy``."""
    keys = src.astype(np.int64) * (int(dst.max()) + 1 if len(dst) else 1) + dst
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    src, dst, prob = src[order], dst[order], prob[order]
    boundary = np.ones(len(keys), dtype=bool)
    boundary[1:] = keys[1:] != keys[:-1]
    if boundary.all():
        return src, dst, prob
    if policy == "error":
        first_dup = int(np.flatnonzero(~boundary)[0])
        raise GraphValidationError(
            f"duplicate edge ({int(src[first_dup])}, {int(dst[first_dup])}); "
            "pass merge='max', 'noisy-or' or 'first' to combine duplicates"
        )
    group_ids = np.cumsum(boundary) - 1
    n_groups = int(group_ids[-1]) + 1
    out_src = src[boundary]
    out_dst = dst[boundary]
    if policy == "max":
        out_prob = np.full(n_groups, -np.inf)
        np.maximum.at(out_prob, group_ids, prob)
    elif policy == "noisy-or":
        # 1 - prod(1 - p_i): probability at least one observation survives.
        log_misses = np.zeros(n_groups)
        np.add.at(log_misses, group_ids, np.log1p(-np.minimum(prob, 1.0 - 1e-15)))
        out_prob = -np.expm1(log_misses)
        # Exact 1.0 inputs should stay exactly 1.0.
        ones = np.zeros(n_groups, dtype=bool)
        np.logical_or.at(ones, group_ids, prob >= 1.0)
        out_prob[ones] = 1.0
    elif policy == "first":
        out_prob = prob[boundary]
    else:
        raise GraphValidationError(f"unknown merge policy {policy!r}; expected one of {_MERGE_POLICIES}")
    return out_src, out_dst, out_prob


class UncertainGraph:
    """An undirected uncertain graph with independent edge probabilities.

    Parameters
    ----------
    n_nodes:
        Number of nodes (``0..n_nodes-1``).
    src, dst:
        Integer edge endpoint arrays, one entry per undirected edge.
    prob:
        Edge existence probabilities, each in ``(0, 1]``.
    node_labels:
        Optional sequence of hashable labels, one per node.  Defaults to
        the integer indices.
    validate:
        Skip validation only when arrays are known-good (internal use).

    Examples
    --------
    >>> g = UncertainGraph.from_edges([("a", "b", 0.9), ("b", "c", 0.5)])
    >>> g.n_nodes, g.n_edges
    (3, 2)
    >>> sorted(g.neighbors(g.index_of("b")).tolist())
    [0, 2]
    """

    __slots__ = (
        "_n",
        "_src",
        "_dst",
        "_prob",
        "_labels",
        "_label_index",
        "_indptr",
        "_adj_nodes",
        "_adj_edges",
        "_revision",
    )

    def __init__(
        self,
        n_nodes: int,
        src,
        dst,
        prob,
        node_labels: Sequence[Hashable] | None = None,
        *,
        validate: bool = True,
        revision: int = 0,
    ):
        src = np.ascontiguousarray(src, dtype=np.intp)
        dst = np.ascontiguousarray(dst, dtype=np.intp)
        prob = np.ascontiguousarray(prob, dtype=np.float64)
        if validate:
            self._validate(n_nodes, src, dst, prob, node_labels)
        self._n = int(n_nodes)
        self._src, self._dst = _canonical_endpoints(src, dst)
        self._prob = prob
        if node_labels is None:
            self._labels = None
            self._label_index = None
        else:
            self._labels = tuple(node_labels)
            self._label_index = {label: i for i, label in enumerate(self._labels)}
        self._indptr = None
        self._adj_nodes = None
        self._adj_edges = None
        if revision < 0:
            raise GraphValidationError(f"revision must be non-negative, got {revision}")
        self._revision = int(revision)

    @staticmethod
    def _validate(n_nodes, src, dst, prob, node_labels) -> None:
        if n_nodes < 0:
            raise GraphValidationError(f"n_nodes must be non-negative, got {n_nodes}")
        if not (len(src) == len(dst) == len(prob)):
            raise GraphValidationError(
                f"edge arrays must have equal lengths, got {len(src)}, {len(dst)}, {len(prob)}"
            )
        if len(src) and (src.min() < 0 or dst.min() < 0 or max(src.max(), dst.max()) >= n_nodes):
            raise GraphValidationError("edge endpoints must lie in [0, n_nodes)")
        if np.any(src == dst):
            loop = int(src[np.argmax(src == dst)])
            raise GraphValidationError(f"self loop at node {loop}; uncertain graphs here are simple")
        if len(prob) and (np.any(prob <= 0.0) or np.any(prob > 1.0) or not np.all(np.isfinite(prob))):
            raise GraphValidationError("edge probabilities must lie in (0, 1]")
        if node_labels is not None:
            labels = list(node_labels)
            if len(labels) != n_nodes:
                raise GraphValidationError(
                    f"expected {n_nodes} node labels, got {len(labels)}"
                )
            if len(set(labels)) != len(labels):
                raise GraphValidationError("node labels must be unique")
        lo, hi = _canonical_endpoints(src, dst)
        if len(lo):
            keys = lo.astype(np.int64) * n_nodes + hi
            if len(np.unique(keys)) != len(keys):
                raise GraphValidationError(
                    "duplicate edges detected; use from_edges(..., merge=...) to combine them"
                )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[Hashable, Hashable, float]],
        nodes: Iterable[Hashable] | None = None,
        *,
        merge: str = "error",
    ) -> "UncertainGraph":
        """Build a graph from ``(u, v, probability)`` triples.

        Node labels are collected from ``nodes`` (if given) plus edge
        endpoints, in first-seen order.  ``merge`` selects the duplicate
        edge policy: ``"error"`` (default), ``"max"``, ``"noisy-or"`` or
        ``"first"``.
        """
        if merge not in _MERGE_POLICIES:
            raise GraphValidationError(f"unknown merge policy {merge!r}; expected one of {_MERGE_POLICIES}")
        label_index: dict[Hashable, int] = {}
        labels: list[Hashable] = []

        def index_for(label):
            idx = label_index.get(label)
            if idx is None:
                idx = len(labels)
                label_index[label] = idx
                labels.append(label)
            return idx

        if nodes is not None:
            for label in nodes:
                index_for(label)
        src_list, dst_list, prob_list = [], [], []
        for u, v, p in edges:
            src_list.append(index_for(u))
            dst_list.append(index_for(v))
            prob_list.append(float(p))
        src = np.asarray(src_list, dtype=np.intp)
        dst = np.asarray(dst_list, dtype=np.intp)
        prob = np.asarray(prob_list, dtype=np.float64)
        if len(prob) and (np.any(prob <= 0.0) or np.any(prob > 1.0)):
            raise GraphValidationError("edge probabilities must lie in (0, 1]")
        if np.any(src == dst):
            raise GraphValidationError("self loops are not allowed")
        lo, hi = _canonical_endpoints(src, dst)
        if len(lo):
            lo, hi, prob = _merge_duplicates(lo, hi, prob, merge)
        plain_labels = labels == list(range(len(labels)))
        return cls(
            len(labels),
            lo,
            hi,
            prob,
            node_labels=None if plain_labels else labels,
            validate=True,
        )

    @classmethod
    def from_networkx(cls, graph, prob_attr: str = "prob", *, default_prob: float | None = None, merge: str = "error") -> "UncertainGraph":
        """Build from an (undirected) networkx graph.

        Edge probabilities are read from edge attribute ``prob_attr``;
        ``default_prob`` fills missing attributes (otherwise missing
        attributes raise :class:`GraphValidationError`).
        """
        if graph.is_directed():
            raise GraphValidationError("uncertain graphs are undirected; pass graph.to_undirected()")

        def edge_iter():
            for u, v, data in graph.edges(data=True):
                p = data.get(prob_attr, default_prob)
                if p is None:
                    raise GraphValidationError(
                        f"edge ({u!r}, {v!r}) is missing attribute {prob_attr!r} and no default_prob was given"
                    )
                yield u, v, float(p)

        return cls.from_edges(edge_iter(), nodes=graph.nodes(), merge=merge)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def revision(self) -> int:
        """Monotone mutation counter (0 for a freshly built graph).

        Every :meth:`mutate` (and its :meth:`add_edge` /
        :meth:`remove_edge` / :meth:`update_edge` shorthands) returns a
        *new* graph whose revision is one higher; the original object is
        never modified, so readers holding it are undisturbed.
        """
        return self._revision

    @property
    def n_edges(self) -> int:
        """Number of (undirected) edges."""
        return len(self._prob)

    @property
    def edge_src(self) -> np.ndarray:
        """Source endpoint of each edge (``src < dst``); read-only view."""
        return self._src

    @property
    def edge_dst(self) -> np.ndarray:
        """Destination endpoint of each edge; read-only view."""
        return self._dst

    @property
    def edge_prob(self) -> np.ndarray:
        """Existence probability of each edge; read-only view."""
        return self._prob

    @property
    def node_labels(self) -> tuple:
        """Node labels (defaults to ``0..n-1`` when none were provided)."""
        if self._labels is None:
            return tuple(range(self._n))
        return self._labels

    def index_of(self, label) -> int:
        """Map a node label to its dense index."""
        if self._label_index is None:
            idx = int(label)
            if not 0 <= idx < self._n:
                raise KeyError(f"node index {label!r} out of range [0, {self._n})")
            return idx
        try:
            return self._label_index[label]
        except KeyError:
            raise KeyError(f"unknown node label {label!r}") from None

    def label_of(self, index: int):
        """Map a dense index back to its label."""
        if not 0 <= index < self._n:
            raise IndexError(f"node index {index} out of range [0, {self._n})")
        if self._labels is None:
            return index
        return self._labels[index]

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------

    def _ensure_adjacency(self) -> None:
        if self._indptr is not None:
            return
        n, m = self._n, self.n_edges
        edge_ids = np.arange(m, dtype=np.intp)
        ends = np.concatenate([self._src, self._dst])
        others = np.concatenate([self._dst, self._src])
        both_ids = np.concatenate([edge_ids, edge_ids])
        order = np.argsort(ends, kind="stable")
        counts = np.bincount(ends, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.intp)
        np.cumsum(counts, out=indptr[1:])
        self._indptr = indptr
        self._adj_nodes = others[order]
        self._adj_edges = both_ids[order]

    @property
    def adjacency(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR adjacency as ``(indptr, neighbor_nodes, neighbor_edge_ids)``."""
        self._ensure_adjacency()
        return self._indptr, self._adj_nodes, self._adj_edges

    def neighbors(self, node: int) -> np.ndarray:
        """Neighbor indices of ``node`` (order unspecified but stable)."""
        indptr, adj_nodes, _ = self.adjacency
        return adj_nodes[indptr[node]:indptr[node + 1]]

    def incident_edges(self, node: int) -> np.ndarray:
        """Edge ids incident to ``node``."""
        indptr, _, adj_edges = self.adjacency
        return adj_edges[indptr[node]:indptr[node + 1]]

    def degrees(self) -> np.ndarray:
        """Degree of every node."""
        indptr, _, _ = self.adjacency
        return np.diff(indptr)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether an edge between indices ``u`` and ``v`` exists."""
        return self.edge_probability_between(u, v) is not None

    def edge_probability_between(self, u: int, v: int) -> float | None:
        """Probability of the edge ``(u, v)`` or ``None`` if absent."""
        if u == v:
            return None
        neigh = self.neighbors(u)
        hits = np.flatnonzero(neigh == v)
        if len(hits) == 0:
            return None
        edge_id = self.incident_edges(u)[hits[0]]
        return float(self._prob[edge_id])

    # ------------------------------------------------------------------
    # Derived graphs and global properties
    # ------------------------------------------------------------------

    def subgraph(self, node_indices) -> "UncertainGraph":
        """Induced subgraph on ``node_indices`` (labels are preserved)."""
        node_indices = np.asarray(node_indices, dtype=np.intp)
        if len(np.unique(node_indices)) != len(node_indices):
            raise GraphValidationError("subgraph node indices must be unique")
        if len(node_indices) and (node_indices.min() < 0 or node_indices.max() >= self._n):
            raise GraphValidationError("subgraph node indices out of range")
        remap = np.full(self._n, -1, dtype=np.intp)
        remap[node_indices] = np.arange(len(node_indices), dtype=np.intp)
        keep = (remap[self._src] >= 0) & (remap[self._dst] >= 0)
        labels = None
        if self._labels is not None:
            labels = [self._labels[i] for i in node_indices]
        return UncertainGraph(
            len(node_indices),
            remap[self._src[keep]],
            remap[self._dst[keep]],
            self._prob[keep],
            node_labels=labels,
            validate=False,
        )

    def connected_components(self) -> np.ndarray:
        """Component labels of the *deterministic* skeleton (all edges present)."""
        return connected_component_labels(self._n, self._src, self._dst)

    def largest_component(self) -> "UncertainGraph":
        """Induced subgraph on the largest deterministic connected component."""
        labels = self.connected_components()
        return self.subgraph(largest_component_indices(labels))

    def log_distance_weights(self) -> np.ndarray:
        """Per-edge weights ``-ln p(e)`` (the paper's gmm baseline metric)."""
        return -np.log(self._prob)

    def most_unlikely_world_log_probability(self) -> float:
        """``ln`` of the probability of the least likely possible world.

        The paper uses this as a safe lower bound ``p_L`` for
        ``p_opt_min(k)``:  every connection probability is at least the
        probability of the single most unlikely world that realizes it.
        Returned in log space because the value underflows for all but
        toy graphs.
        """
        if self.n_edges == 0:
            return 0.0
        per_edge = np.minimum(self._prob, 1.0 - self._prob)
        # Edges with p == 1 always exist: their "unlikely" branch has
        # probability 0 but they are not uncertain edges, so they
        # contribute factor 1 (their only outcome).
        per_edge = np.where(self._prob >= 1.0, 1.0, per_edge)
        return float(np.sum(np.log(per_edge)))

    def expected_edge_count(self) -> float:
        """Expected number of edges in a random possible world."""
        return float(np.sum(self._prob))

    # ------------------------------------------------------------------
    # Mutation (copy-on-write)
    # ------------------------------------------------------------------

    def mutate(self, *, add=(), remove=(), update=()) -> tuple["UncertainGraph", GraphDelta]:
        """Apply edge mutations, returning ``(new_graph, delta)``.

        Copy-on-write: ``self`` is never modified — callers holding the
        old revision keep reading consistent data.  The new graph's
        :attr:`revision` is one higher and its edges are stored in
        canonical sorted order (the order ``from_edges`` produces), so
        a mutated graph is indistinguishable from cold-building the
        same edge set — including its sampled-world pool fingerprint.

        Parameters
        ----------
        add:
            ``(u, v, probability)`` triples of new edges (node labels).
        remove:
            ``(u, v)`` pairs of edges to delete.
        update:
            ``(u, v, probability)`` triples changing an existing edge's
            probability.

        Raises
        ------
        GraphValidationError
            Unknown labels, self loops, adding an existing edge,
            removing/updating a missing one, out-of-range
            probabilities, or two ops touching the same edge.

        Examples
        --------
        >>> g = UncertainGraph.from_edges([(0, 1, 0.5), (1, 2, 0.5)])
        >>> g2, delta = g.mutate(update=[(0, 1, 0.9)], add=[(0, 2, 0.3)])
        >>> (g.revision, g2.revision, g.n_edges, g2.n_edges)
        (0, 1, 2, 3)
        >>> delta.summary()
        {'added': 1, 'removed': 0, 'updated': 1}
        """
        raw_ops = []
        for u, v, p in add:
            raw_ops.append(("add", self._mutation_index(u), self._mutation_index(v), p))
        for u, v in remove:
            raw_ops.append(("remove", self._mutation_index(u), self._mutation_index(v), None))
        for u, v, p in update:
            raw_ops.append(("update", self._mutation_index(u), self._mutation_index(v), p))
        return self._apply_ops(raw_ops)

    def add_edge(self, u, v, probability) -> tuple["UncertainGraph", GraphDelta]:
        """Shorthand for ``mutate(add=[(u, v, probability)])``."""
        return self.mutate(add=[(u, v, probability)])

    def remove_edge(self, u, v) -> tuple["UncertainGraph", GraphDelta]:
        """Shorthand for ``mutate(remove=[(u, v)])``."""
        return self.mutate(remove=[(u, v)])

    def update_edge(self, u, v, probability) -> tuple["UncertainGraph", GraphDelta]:
        """Shorthand for ``mutate(update=[(u, v, probability)])``."""
        return self.mutate(update=[(u, v, probability)])

    def apply_delta(self, delta: GraphDelta) -> "UncertainGraph":
        """Replay a :class:`GraphDelta` produced against this revision.

        The delta's ``base_revision`` must match :attr:`revision`
        (replaying out of order would silently diverge from the
        recorded history); the result carries ``delta.new_revision``.
        """
        if delta.base_revision != self._revision:
            raise GraphValidationError(
                f"delta base revision {delta.base_revision} does not match "
                f"graph revision {self._revision}"
            )
        raw_ops = [(op.op, op.u, op.v, op.probability) for op in delta.ops]
        graph, _ = self._apply_ops(raw_ops, new_revision=delta.new_revision)
        return graph

    def _mutation_index(self, label) -> int:
        """``index_of`` with mutation-flavored error reporting."""
        try:
            return self.index_of(label)
        except (KeyError, ValueError, TypeError):
            raise GraphValidationError(f"cannot mutate: unknown node label {label!r}") from None

    @staticmethod
    def _checked_probability(p, u: int, v: int) -> float:
        try:
            p = float(p)
        except (TypeError, ValueError):
            raise GraphValidationError(
                f"edge ({u}, {v}): probability {p!r} is not a number"
            ) from None
        if not np.isfinite(p) or p <= 0.0 or p > 1.0:
            raise GraphValidationError(
                f"edge ({u}, {v}): probability {p} must lie in (0, 1]"
            )
        return p

    def _apply_ops(self, raw_ops, new_revision: int | None = None):
        """Shared worker behind :meth:`mutate` and :meth:`apply_delta`."""
        n, m = self._n, self.n_edges
        # One O(m) index pass up front; each op is then a dict lookup,
        # so a k-op mutation is O(m + k) rather than O(k * m) — it runs
        # under the service registry lock.
        edge_index = {
            (int(u), int(v)): i
            for i, (u, v) in enumerate(zip(self._src.tolist(), self._dst.tolist(), strict=True))
        }
        seen: set[tuple[int, int]] = set()
        ops: list[EdgeOp] = []
        removed_idx: list[int] = []
        updated: list[tuple[int, float]] = []
        added: list[tuple[int, int, float]] = []
        for kind, u, v, p in raw_ops:
            u, v = int(u), int(v)
            if u == v:
                raise GraphValidationError(f"self loop at node {u}; uncertain graphs here are simple")
            if not (0 <= u < n and 0 <= v < n):
                raise GraphValidationError(f"edge endpoints ({u}, {v}) must lie in [0, {n})")
            lo, hi = (u, v) if u < v else (v, u)
            if (lo, hi) in seen:
                raise GraphValidationError(f"edge ({lo}, {hi}) appears in more than one mutation op")
            seen.add((lo, hi))
            index = edge_index.get((lo, hi))
            if kind == "add":
                if index is not None:
                    raise GraphValidationError(
                        f"edge ({lo}, {hi}) already exists; use update to change its probability"
                    )
                p = self._checked_probability(p, lo, hi)
                added.append((lo, hi, p))
                ops.append(EdgeOp("add", lo, hi, probability=p))
            elif kind == "remove":
                if index is None:
                    raise GraphValidationError(f"no edge ({lo}, {hi}) to remove")
                removed_idx.append(index)
                ops.append(EdgeOp("remove", lo, hi, old_probability=float(self._prob[index])))
            elif kind == "update":
                if index is None:
                    raise GraphValidationError(f"no edge ({lo}, {hi}) to update")
                p = self._checked_probability(p, lo, hi)
                updated.append((index, p))
                ops.append(
                    EdgeOp("update", lo, hi, probability=p,
                           old_probability=float(self._prob[index]))
                )
            else:  # pragma: no cover - callers restrict kinds
                raise GraphValidationError(f"unknown mutation kind {kind!r}")

        prob = self._prob.copy()
        for index, p in updated:
            prob[index] = p
        keep = np.ones(m, dtype=bool)
        if removed_idx:
            keep[removed_idx] = False
        add_src = np.asarray([a[0] for a in added], dtype=np.intp)
        add_dst = np.asarray([a[1] for a in added], dtype=np.intp)
        add_prob = np.asarray([a[2] for a in added], dtype=np.float64)
        src = np.concatenate([self._src[keep], add_src])
        dst = np.concatenate([self._dst[keep], add_dst])
        prob = np.concatenate([prob[keep], add_prob])
        # Canonical sorted edge order: a mutated graph is bit-identical
        # (arrays and pool fingerprint) to from_edges on the final edge
        # set, so delta-derived world pools land under the cold digest.
        order = np.argsort(src.astype(np.int64) * n + dst, kind="stable")
        if new_revision is None:
            new_revision = self._revision + 1
        graph = UncertainGraph(
            n,
            src[order],
            dst[order],
            prob[order],
            node_labels=self._labels,
            validate=False,
            revision=new_revision,
        )
        delta = GraphDelta(
            base_revision=self._revision, new_revision=new_revision, ops=tuple(ops)
        )
        return graph, delta

    def to_networkx(self, prob_attr: str = "prob"):
        """Export to a :class:`networkx.Graph` with probability attributes."""
        import networkx as nx

        graph = nx.Graph()
        labels = self.node_labels
        graph.add_nodes_from(labels)
        for u, v, p in zip(self._src.tolist(), self._dst.tolist(), self._prob.tolist(), strict=True):
            graph.add_edge(labels[u], labels[v], **{prob_attr: p})
        return graph

    def edge_list(self) -> list[tuple]:
        """Edges as ``(label_u, label_v, probability)`` triples."""
        labels = self.node_labels
        return [
            (labels[u], labels[v], float(p))
            for u, v, p in zip(self._src.tolist(), self._dst.tolist(), self._prob.tolist(), strict=True)
        ]

    def __repr__(self) -> str:
        return (
            f"UncertainGraph(n_nodes={self._n}, n_edges={self.n_edges}, "
            f"expected_edges={self.expected_edge_count():.1f})"
        )
