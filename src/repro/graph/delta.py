"""Explicit edge deltas between revisions of an uncertain graph.

An :class:`UncertainGraph` is an immutable value, but real uncertain
networks change edge by edge: a PPI screen revises an interaction
confidence, a collaboration graph gains a paper.  The mutation API
(:meth:`repro.graph.uncertain_graph.UncertainGraph.mutate` and friends)
models this as a *versioned sequence*: every mutation produces a brand
new graph (copy-on-write — existing readers are never disturbed), a
monotonically increasing ``revision``, and a :class:`GraphDelta`
recording exactly which edges changed.

The delta is what makes incremental re-clustering possible: the
sampling layer (:mod:`repro.sampling.deltas`) resamples only the
touched edges' mask columns and repairs only the affected worlds'
component labels, instead of cold-resampling the whole pool.  Deltas
also round-trip through JSON (:meth:`GraphDelta.to_json` /
:meth:`GraphDelta.from_json`) so the service's
``PATCH /graphs/{name}/edges`` endpoint and the ``repro mutate`` CLI
speak the same language.

All endpoints in a delta are **dense node indices** with ``u < v``
(the graph's canonical edge orientation); translating node labels is
the caller's job, exactly as for every other index-based API here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import GraphValidationError

__all__ = ["EdgeOp", "GraphDelta"]

_OPS = ("add", "remove", "update")


@dataclass(frozen=True)
class EdgeOp:
    """One edge mutation: ``add``, ``remove`` or ``update``.

    ``u``/``v`` are dense node indices (stored with ``u < v``);
    ``probability`` is the new edge probability (``None`` for
    ``remove``), ``old_probability`` the pre-mutation one (``None``
    for ``add``).

    Examples
    --------
    >>> EdgeOp("add", 2, 1, probability=0.5)
    EdgeOp(op='add', u=1, v=2, probability=0.5, old_probability=None)
    """

    op: str
    u: int
    v: int
    probability: float | None = None
    old_probability: float | None = None

    def __post_init__(self):
        if self.op not in _OPS:
            raise GraphValidationError(f"unknown edge op {self.op!r}; expected one of {_OPS}")
        u, v = int(self.u), int(self.v)
        if u == v:
            raise GraphValidationError(f"self loop at node {u}; uncertain graphs here are simple")
        if u > v:
            u, v = v, u
        object.__setattr__(self, "u", u)
        object.__setattr__(self, "v", v)
        if self.probability is not None:
            object.__setattr__(self, "probability", float(self.probability))
        if self.old_probability is not None:
            object.__setattr__(self, "old_probability", float(self.old_probability))


@dataclass(frozen=True)
class GraphDelta:
    """The edge-level difference between two consecutive graph revisions.

    Produced by :meth:`UncertainGraph.mutate`; replayable onto the base
    revision with :meth:`UncertainGraph.apply_delta`.  ``ops`` lists
    every touched edge exactly once.

    Examples
    --------
    >>> from repro.graph.uncertain_graph import UncertainGraph
    >>> g = UncertainGraph.from_edges([(0, 1, 0.5), (1, 2, 0.5)])
    >>> g2, delta = g.update_edge(0, 1, 0.9)
    >>> (delta.base_revision, delta.new_revision, delta.summary())
    (0, 1, {'added': 0, 'removed': 0, 'updated': 1})
    >>> g.apply_delta(delta).revision == g2.revision
    True
    """

    base_revision: int
    new_revision: int
    ops: tuple[EdgeOp, ...] = field(default_factory=tuple)

    def __post_init__(self):
        if self.new_revision <= self.base_revision:
            raise GraphValidationError(
                f"new_revision ({self.new_revision}) must exceed "
                f"base_revision ({self.base_revision})"
            )
        seen: set[tuple[int, int]] = set()
        for op in self.ops:
            key = (op.u, op.v)
            if key in seen:
                raise GraphValidationError(
                    f"edge ({op.u}, {op.v}) appears in more than one delta op"
                )
            seen.add(key)

    @property
    def added(self) -> tuple[EdgeOp, ...]:
        """The ``add`` ops."""
        return tuple(op for op in self.ops if op.op == "add")

    @property
    def removed(self) -> tuple[EdgeOp, ...]:
        """The ``remove`` ops."""
        return tuple(op for op in self.ops if op.op == "remove")

    @property
    def updated(self) -> tuple[EdgeOp, ...]:
        """The ``update`` ops."""
        return tuple(op for op in self.ops if op.op == "update")

    def touched_edges(self) -> list[tuple[int, int]]:
        """Canonical ``(u, v)`` pairs of every edge the delta touches."""
        return [(op.u, op.v) for op in self.ops]

    def summary(self) -> dict:
        """Op counts, JSON-safe (the service's PATCH response body)."""
        past = {"add": "added", "remove": "removed", "update": "updated"}
        counts = {"added": 0, "removed": 0, "updated": 0}
        for op in self.ops:
            counts[past[op.op]] += 1
        return counts

    def to_json(self) -> dict:
        """JSON-safe representation (inverse of :meth:`from_json`)."""
        return {
            "base_revision": self.base_revision,
            "new_revision": self.new_revision,
            "ops": [
                {
                    "op": op.op,
                    "u": op.u,
                    "v": op.v,
                    "p": op.probability,
                    "old_p": op.old_probability,
                }
                for op in self.ops
            ],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "GraphDelta":
        """Rebuild a delta from :meth:`to_json` output."""
        try:
            ops = tuple(
                EdgeOp(
                    entry["op"],
                    entry["u"],
                    entry["v"],
                    probability=entry.get("p"),
                    old_probability=entry.get("old_p"),
                )
                for entry in payload["ops"]
            )
            return cls(
                base_revision=int(payload["base_revision"]),
                new_revision=int(payload["new_revision"]),
                ops=ops,
            )
        except (KeyError, TypeError) as error:
            raise GraphValidationError(f"malformed delta payload: {error}") from error

    def __len__(self) -> int:
        return len(self.ops)
