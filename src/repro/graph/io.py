"""Reading and writing uncertain graphs as text edge lists.

The format (extension ``.uel``, "uncertain edge list") matches the one
used by the authors' public code: one edge per line,

    <node_u> <node_v> <probability>

with ``#`` comments and blank lines ignored.  Node tokens are kept as
strings (labels); a companion convention maps purely numeric files onto
integer labels.
"""

from __future__ import annotations

import os
from collections.abc import Iterable

from repro.exceptions import GraphValidationError
from repro.graph.uncertain_graph import UncertainGraph


def _parse_lines(lines: Iterable[str], *, numeric_labels: bool):
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 3:
            raise GraphValidationError(
                f"line {lineno}: expected 'u v probability', got {raw.rstrip()!r}"
            )
        u, v, p_text = parts
        try:
            p = float(p_text)
        except ValueError:
            raise GraphValidationError(
                f"line {lineno}: probability {p_text!r} is not a number"
            ) from None
        if numeric_labels:
            try:
                yield int(u), int(v), p
                continue
            except ValueError:
                raise GraphValidationError(
                    f"line {lineno}: node token {u!r} or {v!r} is not an integer "
                    "(pass numeric_labels=False for string labels)"
                ) from None
        yield u, v, p


def read_uncertain_graph(
    path: str | os.PathLike,
    *,
    numeric_labels: bool = False,
    merge: str = "error",
) -> UncertainGraph:
    """Read an uncertain graph from a ``.uel`` text file.

    Parameters
    ----------
    path:
        File to read.
    numeric_labels:
        Parse node tokens as integers (labels become ints).
    merge:
        Duplicate-edge policy forwarded to
        :meth:`UncertainGraph.from_edges`.
    """
    with open(path, "r", encoding="utf-8") as handle:
        return UncertainGraph.from_edges(
            _parse_lines(handle, numeric_labels=numeric_labels), merge=merge
        )


def write_uncertain_graph(graph: UncertainGraph, path: str | os.PathLike, *, header: str | None = None) -> None:
    """Write ``graph`` to ``path`` in ``.uel`` format."""
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# nodes={graph.n_nodes} edges={graph.n_edges}\n")
        for u, v, p in graph.edge_list():
            handle.write(f"{u} {v} {p:.10g}\n")
