"""Reading and writing uncertain graphs as text edge lists.

The format (extension ``.uel``, "uncertain edge list") matches the one
used by the authors' public code: one edge per line,

    <node_u> <node_v> <probability>

with ``#`` comments and blank lines ignored.  Node tokens are kept as
strings (labels); a companion convention maps purely numeric files onto
integer labels.

Node-order directive
--------------------
Writers emit ``#% node-order: <label> <label> ...`` lines (plain
comments to any other parser) pinning the label -> dense-index mapping.
Without it, node numbering is the first-seen order of the edge list, so
rewriting a graph with a different edge order silently renumbers the
nodes — which changes every pool fingerprint and defeats delta
derivation (:mod:`repro.sampling.deltas`).  With the directive, a
``repro mutate`` output file re-parses with exactly the numbering the
mutation produced, keeping cached world pools derivable; it also
preserves nodes whose last edge was removed.
"""

from __future__ import annotations

import os
from collections.abc import Iterable

from repro.exceptions import GraphValidationError
from repro.graph.uncertain_graph import UncertainGraph


def probability_error(p: float) -> str | None:
    """Why ``p`` is not a usable edge probability (``None`` when it is).

    The single source of the load-time probability contract — values
    must lie in ``[0, 1]`` (NaN fails both comparisons and is caught)
    and cannot be exactly 0 (such an edge never exists and the graph
    structure rejects it).  Shared by the ``.uel`` text parser and the
    service's JSON upload path so the two surfaces cannot drift.

    Examples
    --------
    >>> probability_error(0.5) is None
    True
    >>> probability_error(float("nan"))
    'probability nan outside [0, 1]'
    """
    if not 0.0 <= p <= 1.0:
        return f"probability {p!r} outside [0, 1]"
    if p == 0.0:
        return "probability-0 edges cannot exist; drop the edge or use a positive probability"
    return None


#: Directive prefix for machine-readable metadata inside ``.uel``
#: comments (currently only ``node-order``).
_DIRECTIVE_PREFIX = "#%"

#: Labels per ``node-order`` directive line (directives repeat).
_NODE_ORDER_WRAP = 64


def _node_order(lines, *, numeric_labels: bool):
    """Labels pinned by ``#% node-order:`` directives (``None`` if absent)."""
    order: list = []
    for raw in lines:
        line = raw.strip()
        if not line.startswith(_DIRECTIVE_PREFIX):
            continue
        body = line[len(_DIRECTIVE_PREFIX):].strip()
        if not body.startswith("node-order:"):
            continue
        tokens = body[len("node-order:"):].split()
        if numeric_labels:
            try:
                order.extend(int(token) for token in tokens)
            except ValueError:
                raise GraphValidationError(
                    "node-order directive has non-integer labels "
                    "(pass numeric_labels=False for string labels)"
                ) from None
        else:
            order.extend(tokens)
    return order or None


def _parse_lines(lines: Iterable[str], *, numeric_labels: bool):
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 3:
            raise GraphValidationError(
                f"line {lineno}: expected 'u v probability', got {raw.rstrip()!r}"
            )
        u, v, p_text = parts
        try:
            p = float(p_text)
        except ValueError:
            raise GraphValidationError(
                f"line {lineno}: probability {p_text!r} is not a number"
            ) from None
        # Validate here, with the line number, instead of letting a bad
        # value (NaN included) reach the sampler as a malformed
        # Bernoulli parameter.
        problem = probability_error(p)
        if problem is not None:
            raise GraphValidationError(f"line {lineno}: {problem}")
        if numeric_labels:
            try:
                yield int(u), int(v), p
                continue
            except ValueError:
                raise GraphValidationError(
                    f"line {lineno}: node token {u!r} or {v!r} is not an integer "
                    "(pass numeric_labels=False for string labels)"
                ) from None
        yield u, v, p


def read_uncertain_graph(
    path: str | os.PathLike,
    *,
    numeric_labels: bool = False,
    merge: str = "error",
) -> UncertainGraph:
    """Read an uncertain graph from a ``.uel`` text file.

    Parameters
    ----------
    path:
        File to read.
    numeric_labels:
        Parse node tokens as integers (labels become ints).
    merge:
        Duplicate-edge policy forwarded to
        :meth:`UncertainGraph.from_edges`.

    Raises
    ------
    GraphValidationError
        For malformed lines and for probabilities outside ``[0, 1]``
        (NaN included) or exactly 0, each reported with its line number
        — bad values never silently reach the world sampler.
    """
    # Two streaming passes: the node-order directive must be known
    # before ``from_edges`` starts consuming edges, but neither pass
    # holds the file in memory.
    with open(path, "r", encoding="utf-8") as handle:
        order = _node_order(handle, numeric_labels=numeric_labels)
    with open(path, "r", encoding="utf-8") as handle:
        return UncertainGraph.from_edges(
            _parse_lines(handle, numeric_labels=numeric_labels),
            nodes=order,
            merge=merge,
        )


def parse_uncertain_graph_text(
    text: str,
    *,
    numeric_labels: bool = False,
    merge: str = "error",
) -> UncertainGraph:
    """Parse ``.uel``-format text into an :class:`UncertainGraph`.

    Same grammar and validation as :func:`read_uncertain_graph` (line
    numbers in error messages count from the first line of ``text``);
    used by the clustering service for graph uploads, where the edge
    list arrives in a request body rather than a file.

    Examples
    --------
    >>> parse_uncertain_graph_text("a b 0.5\\nb c 0.25\\n").n_edges
    2
    """
    lines = text.splitlines()
    return UncertainGraph.from_edges(
        _parse_lines(lines, numeric_labels=numeric_labels),
        nodes=_node_order(lines, numeric_labels=numeric_labels),
        merge=merge,
    )


def write_uncertain_graph(graph: UncertainGraph, path: str | os.PathLike, *, header: str | None = None) -> None:
    """Write ``graph`` to ``path`` in ``.uel`` format.

    Emits ``#% node-order`` directives pinning the node numbering, so
    re-reading the file reproduces the graph's exact dense indices (and
    therefore its pool fingerprints) regardless of edge order.
    """
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# nodes={graph.n_nodes} edges={graph.n_edges}\n")
        labels = [str(label) for label in graph.node_labels]
        for start in range(0, len(labels), _NODE_ORDER_WRAP):
            chunk = " ".join(labels[start:start + _NODE_ORDER_WRAP])
            handle.write(f"{_DIRECTIVE_PREFIX} node-order: {chunk}\n")
        for u, v, p in graph.edge_list():
            handle.write(f"{u} {v} {p:.10g}\n")
