"""Reading and writing uncertain graphs as text edge lists.

The format (extension ``.uel``, "uncertain edge list") matches the one
used by the authors' public code: one edge per line,

    <node_u> <node_v> <probability>

with ``#`` comments and blank lines ignored.  Node tokens are kept as
strings (labels); a companion convention maps purely numeric files onto
integer labels.
"""

from __future__ import annotations

import os
from collections.abc import Iterable

from repro.exceptions import GraphValidationError
from repro.graph.uncertain_graph import UncertainGraph


def probability_error(p: float) -> str | None:
    """Why ``p`` is not a usable edge probability (``None`` when it is).

    The single source of the load-time probability contract — values
    must lie in ``[0, 1]`` (NaN fails both comparisons and is caught)
    and cannot be exactly 0 (such an edge never exists and the graph
    structure rejects it).  Shared by the ``.uel`` text parser and the
    service's JSON upload path so the two surfaces cannot drift.

    Examples
    --------
    >>> probability_error(0.5) is None
    True
    >>> probability_error(float("nan"))
    'probability nan outside [0, 1]'
    """
    if not 0.0 <= p <= 1.0:
        return f"probability {p!r} outside [0, 1]"
    if p == 0.0:
        return "probability-0 edges cannot exist; drop the edge or use a positive probability"
    return None


def _parse_lines(lines: Iterable[str], *, numeric_labels: bool):
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 3:
            raise GraphValidationError(
                f"line {lineno}: expected 'u v probability', got {raw.rstrip()!r}"
            )
        u, v, p_text = parts
        try:
            p = float(p_text)
        except ValueError:
            raise GraphValidationError(
                f"line {lineno}: probability {p_text!r} is not a number"
            ) from None
        # Validate here, with the line number, instead of letting a bad
        # value (NaN included) reach the sampler as a malformed
        # Bernoulli parameter.
        problem = probability_error(p)
        if problem is not None:
            raise GraphValidationError(f"line {lineno}: {problem}")
        if numeric_labels:
            try:
                yield int(u), int(v), p
                continue
            except ValueError:
                raise GraphValidationError(
                    f"line {lineno}: node token {u!r} or {v!r} is not an integer "
                    "(pass numeric_labels=False for string labels)"
                ) from None
        yield u, v, p


def read_uncertain_graph(
    path: str | os.PathLike,
    *,
    numeric_labels: bool = False,
    merge: str = "error",
) -> UncertainGraph:
    """Read an uncertain graph from a ``.uel`` text file.

    Parameters
    ----------
    path:
        File to read.
    numeric_labels:
        Parse node tokens as integers (labels become ints).
    merge:
        Duplicate-edge policy forwarded to
        :meth:`UncertainGraph.from_edges`.

    Raises
    ------
    GraphValidationError
        For malformed lines and for probabilities outside ``[0, 1]``
        (NaN included) or exactly 0, each reported with its line number
        — bad values never silently reach the world sampler.
    """
    with open(path, "r", encoding="utf-8") as handle:
        return UncertainGraph.from_edges(
            _parse_lines(handle, numeric_labels=numeric_labels), merge=merge
        )


def parse_uncertain_graph_text(
    text: str,
    *,
    numeric_labels: bool = False,
    merge: str = "error",
) -> UncertainGraph:
    """Parse ``.uel``-format text into an :class:`UncertainGraph`.

    Same grammar and validation as :func:`read_uncertain_graph` (line
    numbers in error messages count from the first line of ``text``);
    used by the clustering service for graph uploads, where the edge
    list arrives in a request body rather than a file.

    Examples
    --------
    >>> parse_uncertain_graph_text("a b 0.5\\nb c 0.25\\n").n_edges
    2
    """
    return UncertainGraph.from_edges(
        _parse_lines(text.splitlines(), numeric_labels=numeric_labels), merge=merge
    )


def write_uncertain_graph(graph: UncertainGraph, path: str | os.PathLike, *, header: str | None = None) -> None:
    """Write ``graph`` to ``path`` in ``.uel`` format."""
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# nodes={graph.n_nodes} edges={graph.n_edges}\n")
        for u, v, p in graph.edge_list():
            handle.write(f"{u} {v} {p:.10g}\n")
