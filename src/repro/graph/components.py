"""Connected components over node/edge arrays.

Two implementations are provided:

* :class:`UnionFind` — an array-based disjoint-set forest with union by
  size and path halving.  Used where edges arrive incrementally or where
  pulling in a scipy sparse matrix would cost more than it saves.
* :func:`connected_component_labels` — one-shot labelling; delegates to
  ``scipy.sparse.csgraph`` for large inputs, where the C implementation
  wins, and to :class:`UnionFind` for small ones.

The Monte Carlo oracle (``repro.sampling``) labels *many* sampled worlds
at once with a single block-diagonal csgraph call; see
``repro.sampling.worlds``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse import csgraph

# Below this edge count the pure-numpy union-find beats building a scipy
# sparse matrix (measured in benchmarks/test_bench_substrate.py).
_SCIPY_EDGE_THRESHOLD = 4096


class UnionFind:
    """Disjoint-set forest over integers ``0..n-1``.

    Union by size with path halving; amortized near-constant time per
    operation.
    """

    __slots__ = ("_parent", "_size", "n_sets")

    def __init__(self, n: int):
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        self._parent = np.arange(n, dtype=np.intp)
        self._size = np.ones(n, dtype=np.intp)
        self.n_sets = n

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, x: int) -> int:
        """Return the representative of ``x``'s set."""
        parent = self._parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]  # path halving
            x = parent[x]
        return int(x)

    def union(self, x: int, y: int) -> bool:
        """Merge the sets of ``x`` and ``y``; return True if they were distinct."""
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        if self._size[rx] < self._size[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        self._size[rx] += self._size[ry]
        self.n_sets -= 1
        return True

    def connected(self, x: int, y: int) -> bool:
        return self.find(x) == self.find(y)

    def union_edges(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Union every pair ``(src[i], dst[i])``."""
        for x, y in zip(src.tolist(), dst.tolist(), strict=True):
            self.union(x, y)

    def labels(self) -> np.ndarray:
        """Return a dense component-label array in ``0..n_sets-1``."""
        n = len(self._parent)
        roots = np.empty(n, dtype=np.intp)
        for i in range(n):
            roots[i] = self.find(i)
        _, labels = np.unique(roots, return_inverse=True)
        return labels.astype(np.int32)

    def set_sizes(self) -> np.ndarray:
        """Sizes of the current sets, ordered consistently with :meth:`labels`."""
        labels = self.labels()
        return np.bincount(labels)


def connected_component_labels(
    n_nodes: int,
    src: np.ndarray,
    dst: np.ndarray,
    mask: np.ndarray | None = None,
) -> np.ndarray:
    """Label connected components of an undirected graph.

    Parameters
    ----------
    n_nodes:
        Number of nodes; nodes are ``0..n_nodes-1``.
    src, dst:
        Edge endpoint arrays (undirected; each edge listed once).
    mask:
        Optional boolean array selecting a subset of edges — the
        primitive used to evaluate one possible world.

    Returns
    -------
    numpy.ndarray
        ``int32`` labels in ``0..n_components-1``.
    """
    src = np.asarray(src)
    dst = np.asarray(dst)
    if src.shape != dst.shape:
        raise ValueError(f"src and dst must have equal shapes, got {src.shape} vs {dst.shape}")
    if mask is not None:
        src = src[mask]
        dst = dst[mask]
    if len(src) == 0:
        return np.arange(n_nodes, dtype=np.int32)
    if len(src) < _SCIPY_EDGE_THRESHOLD:
        uf = UnionFind(n_nodes)
        uf.union_edges(src, dst)
        return uf.labels()
    data = np.ones(len(src), dtype=np.int8)
    matrix = sp.coo_matrix((data, (src, dst)), shape=(n_nodes, n_nodes))
    _, labels = csgraph.connected_components(matrix, directed=False)
    return labels.astype(np.int32)


def largest_component_indices(labels: np.ndarray) -> np.ndarray:
    """Return the (sorted) node indices of the largest component.

    Ties are broken toward the smallest label so the result is
    deterministic.
    """
    labels = np.asarray(labels)
    if labels.size == 0:
        return np.empty(0, dtype=np.intp)
    counts = np.bincount(labels)
    winner = int(np.argmax(counts))
    return np.flatnonzero(labels == winner)
