"""Graph substrate: the :class:`UncertainGraph` structure and algorithms."""

from repro.graph.uncertain_graph import UncertainGraph
from repro.graph.delta import EdgeOp, GraphDelta
from repro.graph.components import UnionFind, connected_component_labels, largest_component_indices
from repro.graph.traversal import bfs_distances, build_csr_matrix, dijkstra_distances
from repro.graph.io import (
    parse_uncertain_graph_text,
    read_uncertain_graph,
    write_uncertain_graph,
)

__all__ = [
    "parse_uncertain_graph_text",
    "EdgeOp",
    "GraphDelta",
    "UncertainGraph",
    "UnionFind",
    "connected_component_labels",
    "largest_component_indices",
    "bfs_distances",
    "build_csr_matrix",
    "dijkstra_distances",
    "read_uncertain_graph",
    "write_uncertain_graph",
]
