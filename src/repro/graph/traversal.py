"""Graph traversals: depth-capped BFS and shortest-path helpers.

The BFS here operates on a single deterministic graph (one possible
world, or the skeleton).  Bulk BFS across *many* sampled worlds at once
lives in ``repro.sampling`` where the block-diagonal representation is
available.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse import csgraph

from repro.graph.uncertain_graph import UncertainGraph

UNREACHED = -1


def bfs_distances(
    graph: UncertainGraph,
    source: int,
    *,
    max_depth: int | None = None,
    edge_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Hop distances from ``source``; ``UNREACHED`` (-1) when unreachable.

    Parameters
    ----------
    graph:
        The uncertain graph (topology only; probabilities ignored).
    source:
        Source node index.
    max_depth:
        Stop expanding past this many hops (``None`` = unbounded).
    edge_mask:
        Optional boolean mask over edges selecting a possible world.
    """
    if not 0 <= source < graph.n_nodes:
        raise IndexError(f"source {source} out of range [0, {graph.n_nodes})")
    indptr, adj_nodes, adj_edges = graph.adjacency
    dist = np.full(graph.n_nodes, UNREACHED, dtype=np.int64)
    dist[source] = 0
    frontier = [source]
    depth = 0
    while frontier and (max_depth is None or depth < max_depth):
        depth += 1
        next_frontier = []
        for u in frontier:
            start, stop = indptr[u], indptr[u + 1]
            for pos in range(start, stop):
                if edge_mask is not None and not edge_mask[adj_edges[pos]]:
                    continue
                v = adj_nodes[pos]
                if dist[v] == UNREACHED:
                    dist[v] = depth
                    next_frontier.append(int(v))
        frontier = next_frontier
    return dist


def build_csr_matrix(
    graph: UncertainGraph,
    *,
    weights: np.ndarray | None = None,
    edge_mask: np.ndarray | None = None,
) -> sp.csr_matrix:
    """Symmetric scipy CSR matrix of the graph.

    ``weights`` defaults to 1 per edge; ``edge_mask`` selects a possible
    world.  Used by the Dijkstra wrapper and by baselines.
    """
    src, dst = graph.edge_src, graph.edge_dst
    if weights is None:
        data = np.ones(graph.n_edges, dtype=np.float64)
    else:
        data = np.asarray(weights, dtype=np.float64)
        if data.shape != (graph.n_edges,):
            raise ValueError(f"weights must have shape ({graph.n_edges},), got {data.shape}")
    if edge_mask is not None:
        src, dst, data = src[edge_mask], dst[edge_mask], data[edge_mask]
    n = graph.n_nodes
    matrix = sp.coo_matrix(
        (np.concatenate([data, data]), (np.concatenate([src, dst]), np.concatenate([dst, src]))),
        shape=(n, n),
    )
    return matrix.tocsr()


def dijkstra_distances(
    graph: UncertainGraph,
    sources,
    *,
    weights: np.ndarray | None = None,
    limit: float = np.inf,
) -> np.ndarray:
    """Multi-source Dijkstra over edge ``weights``.

    Returns an array of shape ``(len(sources), n_nodes)``; unreachable
    entries are ``inf``.  Thin wrapper over
    :func:`scipy.sparse.csgraph.dijkstra` so callers do not build sparse
    matrices themselves.
    """
    sources = np.atleast_1d(np.asarray(sources, dtype=np.intp))
    if weights is None:
        weights = graph.log_distance_weights()
    matrix = build_csr_matrix(graph, weights=weights)
    dist = csgraph.dijkstra(matrix, directed=False, indices=sources, limit=limit)
    return np.atleast_2d(dist)
