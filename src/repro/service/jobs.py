"""Background job queue with request coalescing and cancellation.

Long-running clustering requests (``mcp``/``acp``/``mcl``/``gmm``) do
not block the event loop: they are recorded as :class:`Job` objects and
executed on a :class:`~concurrent.futures.ThreadPoolExecutor` (or
dispatched to worker *processes* by
:class:`repro.service.workers.ProcessJobQueue`, which shares the
:class:`Job` bookkeeping defined here), while HTTP clients poll
``GET /v1/jobs/{id}``, stream ``/v1/jobs/{id}/events``, and fetch
``/v1/jobs/{id}/result``.

Coalescing invariant
    Jobs are keyed by the canonical JSON of their *normalized*
    parameters (:func:`canonical_key`).  Submitting a job whose key
    matches a job that is still queued or running returns the existing
    job instead of enqueueing a duplicate — N identical in-flight
    requests share one computation (and, through the shared world
    store, one sampled pool).  A job that has finished is never
    coalesced against: a repeat after completion is a fresh job, which
    the oracle cache then serves warm with zero new sampling.

Cancellation
    ``cancel()`` flips the job's event.  A queued job is withdrawn from
    the executor and marked ``cancelled`` immediately; a running job is
    unwound cooperatively at its next ``cancel_check`` (between
    threshold guesses in mcp/acp) via
    :class:`~repro.exceptions.JobCancelledError`.

Events
    Every lifecycle transition (and every progress report from the
    clustering progress hook) is appended to ``job.events`` with a
    monotone per-job ``seq`` — the replayable record the SSE endpoint
    streams.

Admission
    ``submit(..., admit=...)`` invokes the admission callback under the
    queue lock *only when a brand-new job would be created* — coalesced
    resubmissions are never rejected (they add no load), and the check
    is race-free against concurrent submissions.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import Counter
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro import telemetry
from repro.exceptions import JobCancelledError, ServiceError

_JOBS_SUBMITTED = telemetry.get_registry().counter(
    "repro_jobs_submitted_total",
    "New jobs enqueued (coalesced resubmissions not included), by algorithm.",
    ("algorithm",),
)
_JOBS_COALESCED = telemetry.get_registry().counter(
    "repro_jobs_coalesced_total",
    "Submissions folded onto an identical in-flight job, by algorithm.",
    ("algorithm",),
)
_JOBS_COMPLETED = telemetry.get_registry().counter(
    "repro_jobs_completed_total",
    "Jobs reaching a terminal state, by algorithm and outcome.",
    ("algorithm", "status"),
)
_JOB_SECONDS = telemetry.get_registry().histogram(
    "repro_job_seconds",
    "Job wall time from start to terminal state, by algorithm.",
    ("algorithm",),
    buckets=(0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0),
)
_QUEUE_DEPTH = telemetry.get_registry().gauge(
    "repro_jobs_queue_depth",
    "Jobs currently queued or running.",
)


def _algorithm_of(params: dict) -> str:
    return str(params.get("algorithm", "unknown"))


#: Every state a job can be in; the last three are terminal.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: The states a job never leaves.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

_TERMINAL = TERMINAL_STATES  # backward-compatible alias

#: Default / maximum page sizes of :func:`paginate_jobs`.
DEFAULT_PAGE_LIMIT = 100
MAX_PAGE_LIMIT = 1000


def canonical_key(params: dict) -> str:
    """Canonical JSON of normalized job parameters (the coalescing key).

    Two parameter dicts with the same contents — regardless of key
    order — produce the same key, so identical requests coalesce.

    Examples
    --------
    >>> canonical_key({"k": 2, "graph": "toy"}) == canonical_key(
    ...     {"graph": "toy", "k": 2})
    True
    """
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


def job_number(job_id: str) -> int:
    """The monotone sequence number behind a ``job-NNNNNN`` id.

    Raises a 400 :class:`ServiceError` for malformed ids (the
    pagination cursor is a job id supplied by the client).

    Examples
    --------
    >>> job_number("job-000042")
    42
    """
    prefix, sep, digits = job_id.partition("-")
    if prefix != "job" or not sep or not digits.isdigit():
        raise ServiceError(f"malformed job id: {job_id!r}", status=400)
    return int(digits)


@dataclass
class Job:
    """One background clustering request and its lifecycle state."""

    id: str
    key: str
    params: dict
    status: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    result: dict | None = None
    error: str | None = None
    #: Extra identical submissions folded into this job while in flight.
    coalesced: int = 0
    #: Admission-control identity of the submitting client.
    client: str = ""
    #: Trace id of the submitting request (``X-Request-Id``); spans
    #: emitted while the job runs nest under this trace.
    trace_id: str = ""
    #: Replayable event log (lifecycle transitions + progress reports).
    events: list[dict] = field(default_factory=list)
    cancel_event: threading.Event = field(default_factory=threading.Event, repr=False)
    #: Opaque payload captured at submission (the service stores the
    #: resolved graph object here so a job is immune to the registry
    #: entry being replaced mid-flight).  Never serialized.
    context: object = field(default=None, repr=False)
    _events_lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def add_event(self, event: str, data: dict | None = None) -> dict:
        """Append an event record ``{"seq", "event", "data", "ts"}``.

        ``seq`` is monotone per job, so the SSE endpoint can replay the
        history and then tail new events without duplication.
        """
        with self._events_lock:
            record = {
                "seq": len(self.events),
                "event": event,
                "data": dict(data) if data else {},
                "ts": time.time(),
            }
            self.events.append(record)
        return record

    def describe(self) -> dict:
        """JSON-safe status summary (no result payload).

        ``timings`` is the per-job phase breakdown recorded by the
        runner (sample/label/cluster wall ms, worlds sampled vs
        reused); ``None`` until the job finishes successfully.
        """
        elapsed = None
        if self.started_at is not None:
            elapsed = (self.finished_at or time.time()) - self.started_at
        timings = None
        if isinstance(self.result, dict):
            timings = self.result.get("timings")
        return {
            "id": self.id,
            "status": self.status,
            "params": self.params,
            "coalesced": self.coalesced,
            "error": self.error,
            "elapsed_s": elapsed,
            "events": len(self.events),
            "timings": timings,
        }


def paginate_jobs(jobs, *, state: str | None = None, limit=None,
                  cursor: str | None = None) -> tuple[list[Job], str | None]:
    """Filter, order, and paginate a job collection.

    Jobs are ordered by their monotone id (submission order) so pages
    are stable: pruning can only remove jobs, never reorder them, and a
    ``cursor`` (the last job id of the previous page) always resumes
    *after* that id even if the job itself has been pruned meanwhile.

    Returns ``(page, next_cursor)`` where ``next_cursor`` is ``None``
    on the last page.  Raises a 400 :class:`ServiceError` for an
    unknown ``state``, a malformed ``cursor``, or an out-of-range
    ``limit``.
    """
    if state is not None and state not in JOB_STATES:
        raise ServiceError(
            f"state must be one of {', '.join(JOB_STATES)}, got {state!r}", status=400
        )
    if limit is None:
        limit = DEFAULT_PAGE_LIMIT
    try:
        limit = int(limit)
    except (TypeError, ValueError):
        raise ServiceError(f"malformed limit: {limit!r}", status=400) from None
    if not 1 <= limit <= MAX_PAGE_LIMIT:
        raise ServiceError(
            f"limit must be in [1, {MAX_PAGE_LIMIT}], got {limit}", status=400
        )
    after = job_number(cursor) if cursor is not None else -1
    matching = sorted(
        (
            job for job in jobs
            if job_number(job.id) > after
            and (state is None or job.status == state)
        ),
        key=lambda job: job_number(job.id),
    )
    page = matching[:limit]
    next_cursor = page[-1].id if len(matching) > limit else None
    return page, next_cursor


class JobQueue:
    """Thread-pool job queue with coalescing, polling, and cancellation.

    Parameters
    ----------
    runner:
        ``runner(job) -> dict`` executed on a worker thread; its return
        value becomes ``job.result``.  Raising
        :class:`JobCancelledError` marks the job ``cancelled``; any
        other exception marks it ``failed`` with the message recorded.
    workers:
        Executor thread count — the number of clustering jobs that run
        concurrently.
    retain:
        How many *terminal* jobs to keep for result retrieval; the
        oldest (by job id, deterministically) are pruned beyond this.
    """

    def __init__(self, runner: Callable[[Job], dict], *, workers: int = 2,
                 retain: int = 256):
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if retain <= 0:
            raise ValueError(f"retain must be positive, got {retain}")
        self._runner = runner
        self.workers = int(workers)
        self._retain = int(retain)
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._futures: dict[str, object] = {}
        self._inflight: dict[str, str] = {}  # canonical key -> job id
        self._ids = itertools.count(1)
        self._active = 0  # queued + running (mirrors the depth gauge)
        self._client_active: Counter[str] = Counter()
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-job"
        )

    def submit(self, params: dict, *, key_suffix: str = "",
               context: object = None, client: str = "", trace_id: str = "",
               admit: Callable[[dict], None] | None = None) -> tuple[Job, bool]:
        """Enqueue ``params`` (or coalesce onto an identical in-flight job).

        Returns ``(job, coalesced)`` — ``coalesced`` is True when an
        existing queued/running job with the same canonical key was
        returned instead of a new one.  ``key_suffix`` extends the
        coalescing key with identity the params alone cannot carry (the
        service passes the graph-registry revision, so jobs against a
        re-uploaded graph never coalesce across contents); ``context``
        is attached to the job for the runner; ``client`` is the
        submitting client's admission identity.

        ``admit`` (if given) is called under the queue lock with a
        snapshot ``{"queued", "running", "client_active", "workers"}``
        before a *new* job is created; raising
        :class:`~repro.exceptions.ServiceError` from it rejects the
        submission race-free.  Coalesced submissions skip the check.
        """
        key = canonical_key(params) + (f"#{key_suffix}" if key_suffix else "")
        with self._lock:
            existing_id = self._inflight.get(key)
            if existing_id is not None:
                job = self._jobs[existing_id]
                job.coalesced += 1
                _JOBS_COALESCED.labels(algorithm=_algorithm_of(params)).inc()
                return job, True
            if admit is not None:
                admit(self._snapshot_locked(client))
            job = Job(id=f"job-{next(self._ids):06d}", key=key, params=dict(params),
                      context=context, client=client, trace_id=trace_id)
            job.add_event("queued", {"params": job.params})
            self._jobs[job.id] = job
            self._inflight[key] = job.id
            if client:
                self._client_active[client] += 1
            _JOBS_SUBMITTED.labels(algorithm=_algorithm_of(params)).inc()
            self._active += 1
            _QUEUE_DEPTH.set(self._active)
            self._prune_locked()
            self._futures[job.id] = self._executor.submit(self._run, job)
        return job, False

    def _snapshot_locked(self, client: str) -> dict:
        states = Counter(job.status for job in self._jobs.values())
        return {
            "queued": states["queued"],
            "running": states["running"],
            "client_active": self._client_active.get(client, 0) if client else 0,
            "workers": self.workers,
        }

    def get(self, job_id: str) -> Job:
        """The job with ``job_id``, or a 404 :class:`ServiceError`."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"no such job: {job_id}", status=404)
        return job

    def list(self) -> list[Job]:
        """All retained jobs, in submission (job id) order."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job_number(job.id))

    def active_count(self) -> int:
        """Number of non-terminal jobs (queued + running)."""
        with self._lock:
            return sum(
                1 for job in self._jobs.values() if job.status not in TERMINAL_STATES
            )

    def cancel(self, job_id: str) -> Job:
        """Cancel ``job_id``; terminal jobs are left untouched.

        A queued job is marked ``cancelled`` synchronously; a running
        one only after its worker observes the event at the next
        ``cancel_check``, so callers may still see ``running`` briefly.
        Either way the job stops being a coalescing target immediately
        — a fresh identical submission gets a fresh job rather than
        latching onto one that is doomed to finish ``cancelled``.
        """
        job = self.get(job_id)
        with self._lock:
            if job.status in TERMINAL_STATES:
                return job
            job.cancel_event.set()
            if self._inflight.get(job.key) == job.id:
                del self._inflight[job.key]
            future = self._futures.get(job_id)
            if future is not None and future.cancel():
                self._finish_locked(job, "cancelled", error="cancelled before start")
        return job

    def shutdown(self) -> None:
        """Cancel queued jobs and wait for running ones to finish."""
        with self._lock:
            jobs = list(self._jobs.values())
        for job in jobs:
            if job.status not in TERMINAL_STATES:
                self.cancel(job.id)
        self._executor.shutdown(wait=True, cancel_futures=True)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def _run(self, job: Job) -> None:
        with self._lock:
            if job.status != "queued":  # cancelled between submit and start
                return
            if job.cancel_event.is_set():
                self._finish_locked(job, "cancelled", error="cancelled before start")
                return
            job.status = "running"
            job.started_at = time.time()
        job.add_event("running")
        try:
            with telemetry.get_tracer().trace(job.trace_id or job.id):
                result = self._runner(job)
        except JobCancelledError as error:
            with self._lock:
                self._finish_locked(job, "cancelled", error=str(error) or "cancelled")
        except Exception as error:  # noqa: BLE001 - job boundary
            with self._lock:
                self._finish_locked(job, "failed", error=f"{type(error).__name__}: {error}")
        else:
            with self._lock:
                job.result = result
                self._finish_locked(job, "done")

    def _finish_locked(self, job: Job, status: str, *, error: str | None = None) -> None:
        job.status = status
        job.error = error
        job.finished_at = time.time()
        if job.started_at is None:
            job.started_at = job.finished_at
        if self._inflight.get(job.key) == job.id:
            del self._inflight[job.key]
        self._futures.pop(job.id, None)
        if job.client:
            self._client_active[job.client] -= 1
            if self._client_active[job.client] <= 0:
                del self._client_active[job.client]
        algorithm = _algorithm_of(job.params)
        _JOBS_COMPLETED.labels(algorithm=algorithm, status=status).inc()
        _JOB_SECONDS.labels(algorithm=algorithm).observe(
            job.finished_at - job.started_at)
        self._active = max(self._active - 1, 0)
        _QUEUE_DEPTH.set(self._active)
        data = {"status": status, "error": error}
        if isinstance(job.result, dict) and job.result.get("timings") is not None:
            data["timings"] = job.result["timings"]
        job.add_event(status, data)

    def _prune_locked(self) -> None:
        terminal = sorted(
            (j for j in self._jobs.values() if j.status in TERMINAL_STATES),
            key=lambda job: job_number(job.id),
        )
        excess = len(terminal) - self._retain
        for job in terminal[:max(excess, 0)]:
            del self._jobs[job.id]
