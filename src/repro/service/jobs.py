"""Background job queue with request coalescing and cancellation.

Long-running clustering requests (``mcp``/``acp``/``mcl``/``gmm``) do
not block the event loop: they are recorded as :class:`Job` objects and
executed on a :class:`~concurrent.futures.ThreadPoolExecutor`, while
HTTP clients poll ``GET /jobs/{id}`` and fetch ``/jobs/{id}/result``.

Coalescing invariant
    Jobs are keyed by the canonical JSON of their *normalized*
    parameters (:func:`canonical_key`).  Submitting a job whose key
    matches a job that is still queued or running returns the existing
    job instead of enqueueing a duplicate — N identical in-flight
    requests share one computation (and, through the shared world
    store, one sampled pool).  A job that has finished is never
    coalesced against: a repeat after completion is a fresh job, which
    the oracle cache then serves warm with zero new sampling.

Cancellation
    ``cancel()`` flips the job's event.  A queued job is withdrawn from
    the executor and marked ``cancelled`` immediately; a running job is
    unwound cooperatively at its next ``cancel_check`` (between
    threshold guesses in mcp/acp) via
    :class:`~repro.exceptions.JobCancelledError`.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.exceptions import JobCancelledError, ServiceError

#: Every state a job can be in; the last three are terminal.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

_TERMINAL = frozenset({"done", "failed", "cancelled"})


def canonical_key(params: dict) -> str:
    """Canonical JSON of normalized job parameters (the coalescing key).

    Two parameter dicts with the same contents — regardless of key
    order — produce the same key, so identical requests coalesce.

    Examples
    --------
    >>> canonical_key({"k": 2, "graph": "toy"}) == canonical_key(
    ...     {"graph": "toy", "k": 2})
    True
    """
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


@dataclass
class Job:
    """One background clustering request and its lifecycle state."""

    id: str
    key: str
    params: dict
    status: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    result: dict | None = None
    error: str | None = None
    #: Extra identical submissions folded into this job while in flight.
    coalesced: int = 0
    cancel_event: threading.Event = field(default_factory=threading.Event, repr=False)
    #: Opaque payload captured at submission (the service stores the
    #: resolved graph object here so a job is immune to the registry
    #: entry being replaced mid-flight).  Never serialized.
    context: object = field(default=None, repr=False)

    def describe(self) -> dict:
        """JSON-safe status summary (no result payload)."""
        elapsed = None
        if self.started_at is not None:
            elapsed = (self.finished_at or time.time()) - self.started_at
        return {
            "id": self.id,
            "status": self.status,
            "params": self.params,
            "coalesced": self.coalesced,
            "error": self.error,
            "elapsed_s": elapsed,
        }


class JobQueue:
    """Thread-pool job queue with coalescing, polling, and cancellation.

    Parameters
    ----------
    runner:
        ``runner(job) -> dict`` executed on a worker thread; its return
        value becomes ``job.result``.  Raising
        :class:`JobCancelledError` marks the job ``cancelled``; any
        other exception marks it ``failed`` with the message recorded.
    workers:
        Executor thread count — the number of clustering jobs that run
        concurrently.
    retain:
        How many *terminal* jobs to keep for result retrieval; the
        oldest are pruned beyond this.
    """

    def __init__(self, runner: Callable[[Job], dict], *, workers: int = 2,
                 retain: int = 256):
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if retain <= 0:
            raise ValueError(f"retain must be positive, got {retain}")
        self._runner = runner
        self._retain = int(retain)
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._futures: dict[str, object] = {}
        self._inflight: dict[str, str] = {}  # canonical key -> job id
        self._ids = itertools.count(1)
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-job"
        )

    def submit(self, params: dict, *, key_suffix: str = "",
               context: object = None) -> tuple[Job, bool]:
        """Enqueue ``params`` (or coalesce onto an identical in-flight job).

        Returns ``(job, coalesced)`` — ``coalesced`` is True when an
        existing queued/running job with the same canonical key was
        returned instead of a new one.  ``key_suffix`` extends the
        coalescing key with identity the params alone cannot carry (the
        service passes the graph-registry revision, so jobs against a
        re-uploaded graph never coalesce across contents); ``context``
        is attached to the job for the runner.
        """
        key = canonical_key(params) + (f"#{key_suffix}" if key_suffix else "")
        with self._lock:
            existing_id = self._inflight.get(key)
            if existing_id is not None:
                job = self._jobs[existing_id]
                job.coalesced += 1
                return job, True
            job = Job(id=f"job-{next(self._ids):06d}", key=key, params=dict(params),
                      context=context)
            self._jobs[job.id] = job
            self._inflight[key] = job.id
            self._prune_locked()
            self._futures[job.id] = self._executor.submit(self._run, job)
        return job, False

    def get(self, job_id: str) -> Job:
        """The job with ``job_id``, or a 404 :class:`ServiceError`."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"no such job: {job_id}", status=404)
        return job

    def list(self) -> list[Job]:
        """All retained jobs, oldest first."""
        with self._lock:
            return list(self._jobs.values())

    def cancel(self, job_id: str) -> Job:
        """Cancel ``job_id``; terminal jobs are left untouched.

        A queued job is marked ``cancelled`` synchronously; a running
        one only after its worker observes the event at the next
        ``cancel_check``, so callers may still see ``running`` briefly.
        Either way the job stops being a coalescing target immediately
        — a fresh identical submission gets a fresh job rather than
        latching onto one that is doomed to finish ``cancelled``.
        """
        job = self.get(job_id)
        with self._lock:
            if job.status in _TERMINAL:
                return job
            job.cancel_event.set()
            if self._inflight.get(job.key) == job.id:
                del self._inflight[job.key]
            future = self._futures.get(job_id)
            if future is not None and future.cancel():
                self._finish_locked(job, "cancelled", error="cancelled before start")
        return job

    def shutdown(self) -> None:
        """Cancel queued jobs and wait for running ones to finish."""
        with self._lock:
            jobs = list(self._jobs.values())
        for job in jobs:
            if job.status not in _TERMINAL:
                self.cancel(job.id)
        self._executor.shutdown(wait=True, cancel_futures=True)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def _run(self, job: Job) -> None:
        with self._lock:
            if job.status != "queued":  # cancelled between submit and start
                return
            if job.cancel_event.is_set():
                self._finish_locked(job, "cancelled", error="cancelled before start")
                return
            job.status = "running"
            job.started_at = time.time()
        try:
            result = self._runner(job)
        except JobCancelledError as error:
            with self._lock:
                self._finish_locked(job, "cancelled", error=str(error) or "cancelled")
        except Exception as error:  # noqa: BLE001 - job boundary
            with self._lock:
                self._finish_locked(job, "failed", error=f"{type(error).__name__}: {error}")
        else:
            with self._lock:
                job.result = result
                self._finish_locked(job, "done")

    def _finish_locked(self, job: Job, status: str, *, error: str | None = None) -> None:
        job.status = status
        job.error = error
        job.finished_at = time.time()
        if job.started_at is None:
            job.started_at = job.finished_at
        if self._inflight.get(job.key) == job.id:
            del self._inflight[job.key]
        self._futures.pop(job.id, None)

    def _prune_locked(self) -> None:
        terminal = [j for j in self._jobs.values() if j.status in _TERMINAL]
        excess = len(terminal) - self._retain
        for job in terminal[:max(excess, 0)]:
            del self._jobs[job.id]
