"""Multi-process job execution for the clustering service.

The thread-pool :class:`~repro.service.jobs.JobQueue` keeps every job
inside the service process, where the GIL serializes the numpy-light
parts of mcp/acp — one heavy job starves the rest.  This module scales
the service *horizontally*: a front-door asyncio process keeps the HTTP
listener, graph registry, and admission control, and dispatches
clustering jobs to N spawned **worker processes**
(:class:`WorkerPool`), each holding its own
:class:`~repro.service.cache.OracleCache` over the *same* on-disk
:class:`~repro.sampling.store.WorldStore` — the flock append protocol
makes concurrent writers safe, so two workers cold-sampling one digest
converge on a single consistent pool.

Routing (the cross-process coalescing ledger)
    Identical in-flight submissions are already coalesced by the
    front door (one :class:`Job` per canonical key).  On top of that,
    the pool keeps an LRU *affinity ledger* mapping a job's world-pool
    identity ``(graph, revision, seed, backend, chunk_size)`` to the
    worker that last served it, so repeat jobs land on the worker whose
    in-memory cache is already warm — zero sampling, bit-identical
    labels — instead of warming N caches.

Cancellation
    Workers poll a per-job *cancel flag file* in the pool's spool
    directory from the ``cancel_check`` hook; the front door creates
    the file on ``DELETE /v1/jobs/{id}``.  This is the cross-process
    analogue of the in-process ``threading.Event``.

Events
    Workers push ``running`` / ``progress`` / terminal events onto one
    shared queue; a drainer thread in the front door applies them to
    the :class:`Job` records, which the SSE endpoint then streams.

:func:`execute_clustering` is the single clustering runner shared by
both execution models, so thread mode and process mode cannot drift.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.baselines.gmm import gmm_clustering
from repro.baselines.mcl import mcl_clustering
from repro.core.acp import acp_clustering
from repro.core.mcp import mcp_clustering
from repro.exceptions import JobCancelledError, ServiceError
from repro.sampling.sizes import PracticalSchedule
from repro.service.jobs import (
    _JOB_SECONDS,
    _JOBS_COALESCED,
    _JOBS_COMPLETED,
    _JOBS_SUBMITTED,
    _QUEUE_DEPTH,
    TERMINAL_STATES,
    Job,
    _algorithm_of,
    canonical_key,
    job_number,
)
from repro.workloads import (
    expected_centrality,
    kcenter_clustering,
    kmedian_clustering,
)

#: Upper bound on request-supplied sample budgets.  This is the
#: library's default ``max_samples`` oracle guard: letting a request
#: raise its own cap would turn one HTTP call into an arbitrarily large
#: uninterruptible sampling run on a worker.
MAX_REQUEST_SAMPLES = 1_000_000

#: Affinity-ledger capacity (distinct warm pools the router remembers).
_LEDGER_CAPACITY = 256


def _phase_breakdown(total_s: float, phases: dict | None, stats: dict | None) -> dict:
    """The per-job ``timings`` payload: wall ms per phase plus world counts.

    ``cluster_ms`` is everything the sampling phases do not account for
    (threshold guesses, greedy rounds, estimator math).  mcl/gmm jobs
    sample no worlds, so their breakdown is all ``cluster_ms``.

    Examples
    --------
    >>> out = _phase_breakdown(0.25, {"sample_s": 0.1, "label_s": 0.05,
    ...                               "store_read_s": 0.0, "chunks": 2},
    ...                        {"worlds_cached": 0, "worlds_sampled": 1024})
    >>> out["sample_ms"], out["cluster_ms"], out["worlds_sampled"]
    (100.0, 100.0, 1024)
    """
    sample_s = phases["sample_s"] if phases else 0.0
    label_s = phases["label_s"] if phases else 0.0
    store_read_s = phases["store_read_s"] if phases else 0.0
    cluster_s = max(total_s - sample_s - label_s - store_read_s, 0.0)
    return {
        "total_ms": round(total_s * 1000.0, 3),
        "sample_ms": round(sample_s * 1000.0, 3),
        "label_ms": round(label_s * 1000.0, 3),
        "store_read_ms": round(store_read_s * 1000.0, 3),
        "cluster_ms": round(cluster_s * 1000.0, 3),
        "worlds_sampled": int(stats["worlds_sampled"]) if stats else 0,
        "worlds_reused": int(stats["worlds_cached"]) if stats else 0,
    }


def execute_clustering(job_id: str, params: dict, graph, ancestors, cache, *,
                       sampling_workers=1, cancel_check=None, progress=None) -> dict:
    """Run one normalized clustering job and return its result payload.

    The single runner behind both execution models: the in-process
    thread queue and the spawned worker processes call exactly this
    function, so results (including the warm/cold cache accounting and
    the bit-identical assignment guarantees) cannot differ between
    them.

    Parameters
    ----------
    job_id:
        Recorded in the payload (``payload["job"]``).
    params:
        Normalized job parameters (see ``normalize_job_params``).
    graph, ancestors:
        The resolved graph and its mutation lineage (for oracle-cache
        pool derivation).
    cache:
        The executing side's :class:`~repro.service.cache.OracleCache`.
    sampling_workers:
        Sampling parallelism passed to the leased oracle.
    cancel_check, progress:
        Threaded through to the algorithm driver (mcp/acp, the
        k-median/k-center/centrality workloads); ``progress`` receives
        one JSON-safe dict per threshold guess (mcp/acp), greedy round
        (kmedian/kcenter) or sampling round (centrality).
    """
    algorithm = params["algorithm"]
    started = time.perf_counter()
    if cancel_check is not None:
        cancel_check()
    payload = {"job": job_id, "algorithm": algorithm, "graph": params["graph"]}
    with telemetry.get_tracer().span("job", job=job_id, algorithm=algorithm,
                                     graph=params["graph"]):
        payload.update(_execute_algorithm(
            job_id, algorithm, params, graph, ancestors, cache,
            sampling_workers=sampling_workers,
            cancel_check=cancel_check, progress=progress,
        ))
        phases = payload.pop("_phases", None)
        stats = payload.pop("_stats", None)
    if cancel_check is not None:
        cancel_check()
    total_s = time.perf_counter() - started
    payload["elapsed_s"] = total_s
    payload["timings"] = _phase_breakdown(total_s, phases, stats)
    return payload


def _execute_algorithm(job_id: str, algorithm: str, params: dict, graph,
                       ancestors, cache, *, sampling_workers, cancel_check,
                       progress) -> dict:
    """The per-algorithm body of :func:`execute_clustering`.

    Returns the algorithm's payload fields plus the private
    ``_phases``/``_stats`` keys (this job's oracle phase timings and
    world accounting) that the caller folds into ``timings``.
    """
    payload = {}
    phases = stats = None
    if algorithm in ("mcp", "acp"):
        schedule = PracticalSchedule(max_samples=params["samples"])
        with cache.lease(
            graph,
            seed=params["seed"],
            chunk_size=params["chunk_size"],
            max_samples=MAX_REQUEST_SAMPLES,
            backend=params["backend"],
            workers=sampling_workers,
            ancestors=ancestors,
        ) as oracle:
            run = mcp_clustering if algorithm == "mcp" else acp_clustering
            result = run(
                None,
                params["k"],
                oracle=oracle,
                seed=params["seed"],
                depth=params["depth"],
                sample_schedule=schedule,
                cancel_check=cancel_check,
                progress=progress,
            )
            stats = oracle.cache_stats
            phases = oracle.phase_timings
        clustering = result.clustering
        payload.update(
            k=params["k"],
            seed=params["seed"],
            q_final=result.q_final,
            samples_used=result.samples_used,
            n_guesses=result.n_guesses,
            worlds_cached=stats["worlds_cached"],
            worlds_sampled=stats["worlds_sampled"],
            warm=stats["worlds_sampled"] == 0 and stats["worlds_cached"] > 0,
            pool_digest=oracle.pool_digest,
        )
        if algorithm == "mcp":
            payload["min_prob"] = result.min_prob_estimate
            payload["covers_all"] = result.covers_all
        else:
            payload["avg_prob"] = result.avg_prob_estimate
            payload["phi_best"] = result.phi_best
    elif algorithm in ("kmedian", "kcenter"):
        with cache.lease(
            graph,
            seed=params["seed"],
            chunk_size=params["chunk_size"],
            max_samples=MAX_REQUEST_SAMPLES,
            backend=params["backend"],
            workers=sampling_workers,
            ancestors=ancestors,
        ) as oracle:
            run = kmedian_clustering if algorithm == "kmedian" else kcenter_clustering
            result = run(
                None,
                params["k"],
                oracle=oracle,
                samples=params["samples"],
                cancel_check=cancel_check,
                progress=progress,
            )
            stats = oracle.cache_stats
            phases = oracle.phase_timings
        clustering = result.clustering
        payload.update(
            k=params["k"],
            seed=params["seed"],
            objective=result.objective,
            samples_used=result.samples_used,
            n_rounds=result.n_rounds,
            worlds_cached=stats["worlds_cached"],
            worlds_sampled=stats["worlds_sampled"],
            warm=stats["worlds_sampled"] == 0 and stats["worlds_cached"] > 0,
            pool_digest=oracle.pool_digest,
        )
    elif algorithm == "centrality":
        with cache.lease(
            graph,
            seed=params["seed"],
            chunk_size=params["chunk_size"],
            max_samples=MAX_REQUEST_SAMPLES,
            backend=params["backend"],
            workers=sampling_workers,
            ancestors=ancestors,
        ) as oracle:
            result = expected_centrality(
                None,
                measure=params["measure"],
                oracle=oracle,
                samples=params["samples"],
                tol=params["tol"],
                cancel_check=cancel_check,
                progress=progress,
            )
            stats = oracle.cache_stats
            phases = oracle.phase_timings
        clustering = None
        payload.update(
            measure=params["measure"],
            seed=params["seed"],
            tol=params["tol"],
            values=np.asarray(result.values, dtype=float).tolist(),
            half_width=result.half_width,
            converged=result.converged,
            samples_used=result.samples_used,
            n_rounds=result.n_rounds,
            worlds_cached=stats["worlds_cached"],
            worlds_sampled=stats["worlds_sampled"],
            warm=stats["worlds_sampled"] == 0 and stats["worlds_cached"] > 0,
            pool_digest=oracle.pool_digest,
        )
    elif algorithm == "mcl":
        result = mcl_clustering(graph, inflation=params["inflation"])
        clustering = result.clustering
        payload.update(inflation=params["inflation"], n_clusters=result.n_clusters)
    else:  # gmm
        clustering = gmm_clustering(graph, params["k"], seed=params["seed"])
        payload.update(k=params["k"], seed=params["seed"])
    if clustering is not None:
        payload["assignment"] = np.asarray(clustering.assignment).astype(int).tolist()
        payload["centers"] = np.asarray(clustering.centers).astype(int).tolist()
    payload["_phases"] = phases
    payload["_stats"] = stats
    return payload


@dataclass(frozen=True)
class WorkerConfig:
    """Picklable startup configuration of one worker process."""

    world_cache: str | None
    cache_bytes: int
    sampling_workers: object
    spool_dir: str
    #: Span log shared by the whole fleet (append-only JSON lines);
    #: ``None`` leaves tracing disabled in the worker.
    trace_log: str | None = None


def pool_affinity_key(params: dict, key_suffix: str) -> str:
    """The world-pool identity a job's oracle lease resolves to.

    Jobs with equal keys reuse one sampled pool, so the router sends
    them to the same worker.  ``key_suffix`` carries the graph-registry
    revision (as in the coalescing key), so mutated graphs get fresh
    affinity.  mcl/gmm jobs sample no worlds; their key still routes
    repeats of the same graph together, which is harmless.
    """
    identity = {
        "graph": params.get("graph"),
        "seed": params.get("seed"),
        "backend": params.get("backend"),
        "chunk_size": params.get("chunk_size"),
    }
    return canonical_key(identity) + f"#{key_suffix}"


def _worker_main(worker_id: int, tasks, events, config: WorkerConfig) -> None:
    """Entry point of one spawned worker process.

    Builds the worker's own WorldStore + OracleCache (sharing the
    on-disk cache directory with every sibling — the flock append
    protocol makes the concurrent writes safe), then executes tasks
    ``(job_id, params, graph, ancestors, trace_id)`` off ``tasks``
    until the ``None`` sentinel, reporting lifecycle and progress
    events on ``events`` as ``(job_id, kind, data)``.

    Telemetry: the worker's own registry accumulates every counter the
    instrumented layers touch; after each job the movement since the
    last ship is sent as a ``(None, "metrics", delta)`` event *before*
    the job's terminal event, so by the time the front door marks a job
    terminal the fleet-level ``GET /v1/metrics`` already includes the
    job's contribution.
    """
    # Imported here (not at module top) only for clarity of what the
    # worker side actually needs; spawn re-imports this module anyway.
    from repro.sampling.store import WorldStore
    from repro.service.cache import OracleCache

    if config.trace_log:
        telemetry.get_tracer().configure(config.trace_log)
    store = WorldStore(config.world_cache)
    cache = OracleCache(store, max_bytes=config.cache_bytes)
    cache.attach_metrics()
    registry = telemetry.get_registry()
    registry.take_delta()  # baseline: don't re-ship pre-fork/import counts

    def ship_metrics() -> None:
        delta = registry.take_delta()
        if delta["counters"] or delta["histograms"]:
            events.put((None, "metrics", delta))

    events.put((None, "ready", {"worker": worker_id}))
    while True:
        task = tasks.get()
        if task is None:
            break
        job_id, params, graph, ancestors, trace_id = task
        cancel_path = os.path.join(config.spool_dir, f"{job_id}.cancel")

        def cancel_check(path=cancel_path, job=job_id) -> None:
            if os.path.exists(path):
                raise JobCancelledError(f"job {job} cancelled")

        def progress(data, job=job_id) -> None:
            events.put((job, "progress", data))

        events.put((job_id, "running", {"worker": worker_id}))
        try:
            with telemetry.get_tracer().trace(trace_id or job_id):
                result = execute_clustering(
                    job_id, params, graph, ancestors, cache,
                    sampling_workers=config.sampling_workers,
                    cancel_check=cancel_check, progress=progress,
                )
        except JobCancelledError as error:
            ship_metrics()
            events.put((job_id, "cancelled", {"error": str(error) or "cancelled"}))
        except Exception as error:  # noqa: BLE001 - job boundary
            ship_metrics()
            events.put((job_id, "failed", {"error": f"{type(error).__name__}: {error}"}))
        else:
            ship_metrics()
            events.put((job_id, "done", {"result": result, "worker": worker_id}))


class ProcessJobQueue:
    """Job queue dispatching to spawned worker processes.

    API-compatible with :class:`~repro.service.jobs.JobQueue` (submit /
    get / list / cancel / shutdown / active_count), so
    :class:`~repro.service.app.ClusterService` treats the two
    interchangeably.  Jobs are routed per-worker through the affinity
    ledger (see the module docstring); each worker has a private task
    queue so affinity is preserved even under contention.

    A worker that dies hard (segfault, OOM kill) takes its queued jobs
    with it — they stay ``running``/``queued`` until shutdown cancels
    them.  The grace-period drain in ``POST /v1/shutdown`` bounds the
    damage; supervising and respawning workers is out of scope here.

    Parameters
    ----------
    workers:
        Worker *process* count (>= 1).
    world_cache:
        Shared on-disk world-store directory (or ``None`` for
        per-worker in-memory stores — pools are then warm only via the
        affinity ledger, never shared across workers).
    cache_bytes:
        Per-worker oracle-cache budget.
    sampling_workers:
        Sampling parallelism inside each worker's oracles.
    retain:
        Terminal jobs kept for result retrieval (as in
        :class:`~repro.service.jobs.JobQueue`).
    trace_log:
        Span-log path handed to every worker process (``None`` disables
        tracing in the workers).
    """

    def __init__(self, *, workers: int = 2, world_cache=None,
                 cache_bytes: int = 256 << 20, sampling_workers=1,
                 retain: int = 256, trace_log: str | None = None):
        import multiprocessing as mp

        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if retain <= 0:
            raise ValueError(f"retain must be positive, got {retain}")
        self.workers = int(workers)
        self._retain = int(retain)
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[str, str] = {}  # canonical key -> job id
        self._client_active: dict[str, int] = {}
        self._next_id = 1
        self._spool_dir = tempfile.mkdtemp(prefix="repro-spool-")
        self._ledger: OrderedDict[str, int] = OrderedDict()
        self._load = [0] * self.workers  # outstanding jobs per worker
        self._closed = False

        ctx = mp.get_context("spawn")
        config = WorkerConfig(
            world_cache=None if world_cache is None else str(world_cache),
            cache_bytes=int(cache_bytes),
            sampling_workers=sampling_workers,
            spool_dir=self._spool_dir,
            trace_log=None if trace_log is None else str(trace_log),
        )
        self._events = ctx.Queue()
        self._tasks = [ctx.Queue() for _ in range(self.workers)]
        self._procs = [
            ctx.Process(
                target=_worker_main,
                args=(worker_id, self._tasks[worker_id], self._events, config),
                name=f"repro-worker-{worker_id}",
                daemon=True,
            )
            for worker_id in range(self.workers)
        ]
        for proc in self._procs:
            proc.start()
        self._drainer = threading.Thread(
            target=self._drain_events, name="repro-job-events", daemon=True
        )
        self._drainer.start()

    # ------------------------------------------------------------------
    # Front-door API (mirrors JobQueue)
    # ------------------------------------------------------------------

    def submit(self, params: dict, *, key_suffix: str = "",
               context: object = None, client: str = "", trace_id: str = "",
               admit=None) -> tuple[Job, bool]:
        """Enqueue ``params`` or coalesce onto an identical in-flight job.

        Semantics match :meth:`repro.service.jobs.JobQueue.submit`
        (coalescing, ``admit`` under the lock for new jobs only); the
        job is dispatched to the worker the affinity ledger selects.
        """
        key = canonical_key(params) + (f"#{key_suffix}" if key_suffix else "")
        if isinstance(context, tuple):
            graph, ancestors = context
        else:
            graph, ancestors = context, ()
        with self._lock:
            if self._closed:
                raise ServiceError("job queue is shut down", status=503)
            existing_id = self._inflight.get(key)
            if existing_id is not None:
                job = self._jobs[existing_id]
                job.coalesced += 1
                _JOBS_COALESCED.labels(algorithm=_algorithm_of(params)).inc()
                return job, True
            if admit is not None:
                admit(self._snapshot_locked(client))
            job = Job(id=f"job-{self._next_id:06d}", key=key, params=dict(params),
                      context=context, client=client, trace_id=trace_id)
            self._next_id += 1
            worker_id = self._route_locked(params, key_suffix)
            job.add_event("queued", {"params": job.params, "worker": worker_id})
            self._jobs[job.id] = job
            self._inflight[key] = job.id
            self._load[worker_id] += 1
            if client:
                self._client_active[client] = self._client_active.get(client, 0) + 1
            _JOBS_SUBMITTED.labels(algorithm=_algorithm_of(params)).inc()
            _QUEUE_DEPTH.set(sum(self._load))
            self._prune_locked()
            self._tasks[worker_id].put(
                (job.id, params, graph, ancestors, trace_id or job.id)
            )
        return job, False

    def _route_locked(self, params: dict, key_suffix: str) -> int:
        """Pick a worker: ledger affinity first, least-loaded otherwise."""
        affinity = pool_affinity_key(params, key_suffix)
        worker_id = self._ledger.get(affinity)
        if worker_id is None:
            worker_id = min(range(self.workers), key=lambda w: self._load[w])
        self._ledger[affinity] = worker_id
        self._ledger.move_to_end(affinity)
        while len(self._ledger) > _LEDGER_CAPACITY:
            self._ledger.popitem(last=False)
        return worker_id

    def _snapshot_locked(self, client: str) -> dict:
        queued = running = 0
        for job in self._jobs.values():
            if job.status == "queued":
                queued += 1
            elif job.status == "running":
                running += 1
        return {
            "queued": queued,
            "running": running,
            "client_active": self._client_active.get(client, 0) if client else 0,
            "workers": self.workers,
        }

    def get(self, job_id: str) -> Job:
        """The job with ``job_id``, or a 404 :class:`ServiceError`."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"no such job: {job_id}", status=404)
        return job

    def list(self) -> list[Job]:
        """All retained jobs, in submission (job id) order."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job_number(job.id))

    def active_count(self) -> int:
        """Number of non-terminal jobs (queued + running)."""
        with self._lock:
            return sum(
                1 for job in self._jobs.values() if job.status not in TERMINAL_STATES
            )

    def cancel(self, job_id: str) -> Job:
        """Cancel ``job_id`` cooperatively; terminal jobs are untouched.

        Drops the cancel flag file the executing worker polls from its
        ``cancel_check`` hook, so a queued job is cancelled when the
        worker dequeues it and a running one at its next threshold
        guess — callers may see ``queued``/``running`` for a short
        while.  Coalescing against the job stops immediately.
        """
        job = self.get(job_id)
        with self._lock:
            if job.status in TERMINAL_STATES:
                return job
            job.cancel_event.set()
            if self._inflight.get(job.key) == job.id:
                del self._inflight[job.key]
            self._write_cancel_flag(job.id)
        return job

    def _write_cancel_flag(self, job_id: str) -> None:
        try:
            with open(os.path.join(self._spool_dir, f"{job_id}.cancel"), "w") as flag:
                flag.write("cancelled\n")
        except OSError:  # pragma: no cover - spool dir removed mid-shutdown
            pass

    def shutdown(self, *, grace_s: float = 5.0) -> None:
        """Stop the pool: cancel outstanding jobs, then stop workers.

        Outstanding jobs get cancel flags and the workers a ``None``
        sentinel; workers that fail to exit within ``grace_s`` seconds
        are terminated.  Jobs still non-terminal after that are marked
        ``cancelled`` by the front door so no client polls forever.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            outstanding = [
                job for job in self._jobs.values()
                if job.status not in TERMINAL_STATES
            ]
            for job in outstanding:
                job.cancel_event.set()
                if self._inflight.get(job.key) == job.id:
                    del self._inflight[job.key]
                self._write_cancel_flag(job.id)
        for tasks in self._tasks:
            tasks.put(None)
        deadline = time.monotonic() + max(grace_s, 0.0)
        for proc in self._procs:
            proc.join(timeout=max(deadline - time.monotonic(), 0.1))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        self._events.put(None)  # stop the drainer
        self._drainer.join(timeout=5)
        with self._lock:
            for job in self._jobs.values():
                if job.status not in TERMINAL_STATES:
                    self._finish_locked(job, "cancelled", error="cancelled at shutdown")
        for queue in (*self._tasks, self._events):
            queue.close()
            queue.cancel_join_thread()
        shutil.rmtree(self._spool_dir, ignore_errors=True)

    # ------------------------------------------------------------------
    # Event drainer (front-door thread)
    # ------------------------------------------------------------------

    def _drain_events(self) -> None:
        while True:
            try:
                event = self._events.get()
            except (EOFError, OSError):  # pragma: no cover - queue closed
                return
            if event is None:
                return
            job_id, kind, data = event
            if job_id is None:  # pool-level events ("ready", "metrics")
                if kind == "metrics":
                    # A worker shipped its counter/histogram movement;
                    # fold it into the front door's registry so
                    # GET /v1/metrics reflects the whole fleet.
                    telemetry.get_registry().merge_delta(data)
                continue
            with self._lock:
                job = self._jobs.get(job_id)
                if job is None or job.status in TERMINAL_STATES:
                    # Pruned or already finalized (e.g. cancelled at
                    # shutdown while the worker still reported): drop.
                    continue
                if kind == "running":
                    job.status = "running"
                    job.started_at = time.time()
                    job.add_event("running", data)
                elif kind == "progress":
                    job.add_event("progress", data)
                elif kind == "done":
                    job.result = data["result"]
                    self._finish_locked(job, "done")
                elif kind in ("failed", "cancelled"):
                    self._finish_locked(job, kind, error=data.get("error"))

    def _finish_locked(self, job: Job, status: str, *, error: str | None = None) -> None:
        job.status = status
        job.error = error
        job.finished_at = time.time()
        if job.started_at is None:
            job.started_at = job.finished_at
        if self._inflight.get(job.key) == job.id:
            del self._inflight[job.key]
        if job.client:
            remaining = self._client_active.get(job.client, 0) - 1
            if remaining > 0:
                self._client_active[job.client] = remaining
            else:
                self._client_active.pop(job.client, None)
        # Free the routing load slot of the worker that ran the job.
        worker_id = job.events[0]["data"].get("worker") if job.events else None
        if worker_id is not None and 0 <= worker_id < self.workers:
            self._load[worker_id] = max(self._load[worker_id] - 1, 0)
        flag = os.path.join(self._spool_dir, f"{job.id}.cancel")
        if os.path.exists(flag):
            try:
                os.unlink(flag)
            except OSError:  # pragma: no cover
                pass
        algorithm = _algorithm_of(job.params)
        _JOBS_COMPLETED.labels(algorithm=algorithm, status=status).inc()
        _JOB_SECONDS.labels(algorithm=algorithm).observe(
            job.finished_at - job.started_at)
        _QUEUE_DEPTH.set(sum(self._load))
        data = {"status": status, "error": error}
        if isinstance(job.result, dict) and job.result.get("timings") is not None:
            data["timings"] = job.result["timings"]
        job.add_event(status, data)

    def _prune_locked(self) -> None:
        terminal = sorted(
            (j for j in self._jobs.values() if j.status in TERMINAL_STATES),
            key=lambda job: job_number(job.id),
        )
        excess = len(terminal) - self._retain
        for job in terminal[:max(excess, 0)]:
            del self._jobs[job.id]
