"""Admission control for the clustering service.

Three independent guards keep an overloaded service answering fast
429s (with ``Retry-After``) instead of queueing unboundedly:

per-client token bucket (:class:`TokenBucket` / :class:`RateLimiter`)
    Every request (health/version probes exempted) draws one token
    from its client's bucket — clients are keyed by the ``X-Client-Id``
    header when present, peer address otherwise.  The bucket refills at
    ``rate_limit`` requests/second up to a ``burst`` capacity.
    Disabled by default (``rate_limit=None``): it is a deployment
    policy knob, not something a library default should impose.

queue-depth backpressure (``max_queued``)
    A job submission that would create a *new* job while ``max_queued``
    jobs are already queued is rejected 429 with a ``Retry-After``
    estimated from the backlog per worker.  Coalesced resubmissions
    are never rejected — they add no load.  The check runs inside the
    job queue's lock (via the ``admit`` callback of ``submit``), so
    the bound holds exactly under concurrent submissions.

per-client job bound (``max_jobs_per_client``)
    Caps the non-terminal jobs any single client may hold, so one
    client cannot monopolize the whole queue allowance.

Body size is bounded separately by the HTTP layer
(:data:`repro.service.http.MAX_BODY_BYTES`).
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict

from repro import telemetry
from repro.exceptions import ServiceError

#: Distinct clients tracked before the oldest bucket is evicted.
_MAX_TRACKED_CLIENTS = 1024

#: Paths exempt from rate limiting (probes and scrapes must always
#: answer — a monitoring pull must not consume a client's tokens).
EXEMPT_PATHS = frozenset({
    "/healthz", "/v1/healthz", "/version", "/v1/version",
    "/metrics", "/v1/metrics",
})

_REJECTIONS = telemetry.get_registry().counter(
    "repro_admission_rejections_total",
    "Requests rejected 429, by reason (rate_limit, queue_full, "
    "client_jobs).",
    ("reason",),
)
_TRACKED_CLIENTS = telemetry.get_registry().gauge(
    "repro_admission_tracked_clients",
    "Distinct clients currently holding a token bucket.",
)


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/s, capacity ``burst``.

    Examples
    --------
    >>> bucket = TokenBucket(rate=10.0, burst=2)
    >>> bucket.acquire(now=0.0), bucket.acquire(now=0.0)
    (None, None)
    >>> retry = bucket.acquire(now=0.0)  # bucket drained
    >>> round(retry, 1)
    0.1
    >>> bucket.acquire(now=0.2) is None  # refilled
    True
    """

    def __init__(self, rate: float, burst: float):
        if rate <= 0 or burst <= 0:
            raise ValueError(f"rate and burst must be positive, got {rate}, {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._updated = None

    def acquire(self, *, now: float | None = None) -> float | None:
        """Draw one token: ``None`` when admitted, else seconds to wait."""
        if now is None:
            now = time.monotonic()
        if self._updated is not None:
            self._tokens = min(
                self.burst, self._tokens + (now - self._updated) * self.rate
            )
        self._updated = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return None
        return (1.0 - self._tokens) / self.rate


class RateLimiter:
    """Per-client token buckets behind one lock (LRU-bounded)."""

    def __init__(self, rate: float, burst: float):
        self._rate = float(rate)
        self._burst = float(burst)
        self._lock = threading.Lock()
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()

    def check(self, client: str) -> float | None:
        """``None`` when ``client`` is admitted, else retry-after seconds."""
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self._rate, self._burst)
                self._buckets[client] = bucket
            self._buckets.move_to_end(client)
            while len(self._buckets) > _MAX_TRACKED_CLIENTS:
                self._buckets.popitem(last=False)
            _TRACKED_CLIENTS.set(len(self._buckets))
            return bucket.acquire()


def _too_many(message: str, retry_after_s: float) -> ServiceError:
    return ServiceError(
        message,
        status=429,
        code="rate_limited",
        headers={"Retry-After": str(max(1, math.ceil(retry_after_s)))},
    )


class AdmissionControl:
    """The service's admission policy: rate limit + job-queue bounds.

    Parameters
    ----------
    rate_limit:
        Per-client sustained requests/second (``None`` disables the
        token bucket entirely).
    burst:
        Bucket capacity; defaults to ``max(2 * rate_limit, 4)``.
    max_queued:
        Upper bound on *queued* (not yet running) jobs across all
        clients; ``None`` disables queue backpressure.
    max_jobs_per_client:
        Upper bound on one client's non-terminal jobs; ``None``
        disables the per-client bound.
    """

    def __init__(self, *, rate_limit: float | None = None, burst: float | None = None,
                 max_queued: int | None = 64, max_jobs_per_client: int | None = 32):
        self._limiter = None
        if rate_limit is not None:
            if burst is None:
                burst = max(2.0 * rate_limit, 4.0)
            self._limiter = RateLimiter(rate_limit, burst)
        self.max_queued = None if max_queued is None else int(max_queued)
        self.max_jobs_per_client = (
            None if max_jobs_per_client is None else int(max_jobs_per_client)
        )

    async def __call__(self, request) -> None:
        """HTTP middleware: draw a token for every non-exempt request."""
        if self._limiter is None or request.path in EXEMPT_PATHS:
            return
        retry_after = self._limiter.check(request.client_key)
        if retry_after is not None:
            _REJECTIONS.labels(reason="rate_limit").inc()
            raise _too_many(
                f"rate limit exceeded for client {request.client_key!r}", retry_after
            )

    def admit_job(self, snapshot: dict) -> None:
        """Job-queue ``admit`` callback: enforce the queue bounds.

        ``snapshot`` is the queue's race-free view ``{"queued",
        "running", "client_active", "workers"}``; raising here rejects
        the submission before a job is created.
        """
        if self.max_queued is not None and snapshot["queued"] >= self.max_queued:
            backlog = snapshot["queued"] + snapshot["running"]
            _REJECTIONS.labels(reason="queue_full").inc()
            raise _too_many(
                f"job queue is full ({snapshot['queued']} queued, bound {self.max_queued})",
                backlog / max(snapshot["workers"], 1),
            )
        if (self.max_jobs_per_client is not None
                and snapshot["client_active"] >= self.max_jobs_per_client):
            _REJECTIONS.labels(reason="client_jobs").inc()
            raise _too_many(
                f"client has {snapshot['client_active']} jobs in flight "
                f"(bound {self.max_jobs_per_client})",
                1.0,
            )
