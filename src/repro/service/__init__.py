"""Async clustering service: an HTTP/JSON API over the whole pipeline.

The library-and-CLI reproduction grown into a long-lived process
(``repro serve``): a graph registry, synchronous endpoints for cheap
queries, a background job queue for mcp/acp/mcl/gmm clustering runs —
in-process threads or spawned worker processes — and per-process
oracle caches (LRU byte budget over a shared
:class:`~repro.sampling.store.WorldStore`) that amortize Monte Carlo
world pools across requests — a warm repeated request samples zero new
worlds and returns bit-identical labels.  The HTTP surface is
versioned under ``/v1`` (legacy paths answer with a ``Deprecation``
header), every response carries an ``X-Request-Id``, errors share one
envelope, job progress streams over SSE, and admission control fronts
the queue — see ``docs/API.md``.

Modules
-------
:mod:`repro.service.http`
    Dependency-free asyncio HTTP/1.1 server, router, and SSE streams.
:mod:`repro.service.cache`
    :class:`OracleCache` — the pool cache keyed by ``pool_fingerprint``.
:mod:`repro.service.jobs`
    :class:`JobQueue` — coalescing background jobs with cancellation,
    progress events, and pagination helpers.
:mod:`repro.service.workers`
    :class:`ProcessJobQueue` — the multi-process worker pool.
:mod:`repro.service.admission`
    :class:`AdmissionControl` — rate limits and queue backpressure.
:mod:`repro.service.app`
    :class:`ClusterService` — registry, handlers, and the entry points.
:mod:`repro.service.loadgen`
    The ``repro bench-serve`` load generator and asyncio client.
"""

from repro.service.admission import AdmissionControl
from repro.service.app import BackgroundServer, ClusterService, GraphRegistry, serve
from repro.service.cache import OracleCache
from repro.service.http import EventStream, HttpServer, Request, Router
from repro.service.jobs import Job, JobQueue, canonical_key, paginate_jobs
from repro.service.workers import ProcessJobQueue, execute_clustering

__all__ = [
    "AdmissionControl",
    "BackgroundServer",
    "ClusterService",
    "EventStream",
    "GraphRegistry",
    "HttpServer",
    "Job",
    "JobQueue",
    "OracleCache",
    "ProcessJobQueue",
    "Request",
    "Router",
    "canonical_key",
    "execute_clustering",
    "paginate_jobs",
    "serve",
]
