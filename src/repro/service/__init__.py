"""Async clustering service: an HTTP/JSON API over the whole pipeline.

The library-and-CLI reproduction grown into a long-lived process
(``repro serve``): a graph registry, synchronous endpoints for cheap
queries, a background job queue for mcp/acp/mcl/gmm clustering runs,
and an in-process oracle cache (LRU byte budget over a shared
:class:`~repro.sampling.store.WorldStore`) that amortizes Monte Carlo
world pools across requests — a warm repeated request samples zero new
worlds and returns bit-identical labels.

Modules
-------
:mod:`repro.service.http`
    Dependency-free asyncio HTTP/1.1 server and router.
:mod:`repro.service.cache`
    :class:`OracleCache` — the pool cache keyed by ``pool_fingerprint``.
:mod:`repro.service.jobs`
    :class:`JobQueue` — coalescing background jobs with cancellation.
:mod:`repro.service.app`
    :class:`ClusterService` — registry, handlers, and the entry points.
:mod:`repro.service.loadgen`
    The ``repro bench-serve`` load generator and asyncio client.
"""

from repro.service.app import BackgroundServer, ClusterService, GraphRegistry, serve
from repro.service.cache import OracleCache
from repro.service.http import HttpServer, Request, Router
from repro.service.jobs import Job, JobQueue, canonical_key

__all__ = [
    "BackgroundServer",
    "ClusterService",
    "GraphRegistry",
    "HttpServer",
    "Job",
    "JobQueue",
    "OracleCache",
    "Request",
    "Router",
    "canonical_key",
    "serve",
]
