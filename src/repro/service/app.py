"""The async clustering service: registry, endpoints, jobs, cache.

:class:`ClusterService` wires the whole pipeline behind a versioned
HTTP/JSON API (served by :mod:`repro.service.http`).  Canonical routes
live under ``/v1``; the un-prefixed legacy spellings keep working but
answer with a ``Deprecation: true`` header (see ``docs/API.md`` for
the full surface, including status codes and the SSE event schema):

====== ================================= ======================================
method endpoint                          purpose
====== ================================= ======================================
GET    ``/v1/healthz``                   liveness + queue/cache counters
GET    ``/v1/version``                   package version
GET    ``/v1/graphs``                    list registered graphs
PUT    ``/v1/graphs/{name}``             upload a graph (``.uel`` text or JSON)
GET    ``/v1/graphs/{name}``             graph statistics
DELETE ``/v1/graphs/{name}``             unregister a graph
PATCH  ``/v1/graphs/{name}/edges``       mutate edges (add/remove/update)
GET    ``/v1/graphs/{name}/estimate``    synchronous reliability estimate
POST   ``/v1/jobs``                      submit a clustering job (202)
GET    ``/v1/jobs``                      list jobs (``state``/``limit``/``cursor``)
GET    ``/v1/jobs/{id}``                 job status
GET    ``/v1/jobs/{id}/events``          job progress stream (SSE)
GET    ``/v1/jobs/{id}/result``          job result (409 until ``done``)
DELETE ``/v1/jobs/{id}``                 cancel a job
GET    ``/v1/cache``                     oracle-cache statistics
GET    ``/v1/metrics``                   Prometheus text metrics (whole fleet)
POST   ``/v1/shutdown``                  drain in-flight jobs, then stop
====== ================================= ======================================

Cheap queries (estimates, stats) run synchronously — but off the event
loop, on the default executor.  Clustering jobs go through a job queue
(coalescing, cancellation, progress events): the in-process
:class:`~repro.service.jobs.JobQueue` by default, or — with
``worker_processes >= 1`` — the
:class:`~repro.service.workers.ProcessJobQueue`, which dispatches to
spawned worker processes each holding its own oracle cache over the
same on-disk world store.  Either way a warm repeated request samples
zero new worlds and returns labels bit-identical to the equivalent
direct library call — see ``docs/ARCHITECTURE.md`` for the invariants
and ``tests/test_service.py`` for the pins.

Admission control (:class:`~repro.service.admission.AdmissionControl`)
fronts every request: optional per-client token-bucket rate limits,
queue-depth backpressure, and a per-client jobs-in-flight bound — all
reported as 429 with ``Retry-After``.
"""

from __future__ import annotations

import asyncio
import functools
import itertools
import math
import sys
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro import __version__, telemetry
from repro.datasets.registry import DATASET_NAMES, load_dataset
from repro.exceptions import GraphValidationError, JobCancelledError, ReproError, ServiceError
from repro.graph.io import parse_uncertain_graph_text, probability_error
from repro.graph.uncertain_graph import UncertainGraph
from repro.sampling.backends import BACKEND_NAMES
from repro.sampling.store import WorldStore
from repro.service.admission import AdmissionControl
from repro.service.cache import OracleCache
from repro.service.http import (
    EventStream,
    HttpServer,
    Request,
    Response,
    Router,
    sse_event,
)
from repro.service.jobs import TERMINAL_STATES, JobQueue, paginate_jobs
from repro.service.workers import MAX_REQUEST_SAMPLES, ProcessJobQueue, execute_clustering
from repro.workloads.measures import MEASURE_NAMES

_JOB_ALGORITHMS = ("mcp", "acp", "mcl", "gmm", "kmedian", "kcenter", "centrality")

#: Ancestor revisions the registry keeps per graph for pool derivation.
#: Nearest first; the oracle cache derives from the first one whose
#: pool is still warm, so a short chain covers bursts of mutations.
MAX_ANCESTORS = 4


@dataclass
class _GraphEntry:
    """One registry slot: a loaded graph or a lazy builtin loader."""

    name: str
    source: str
    revision: int
    graph: UncertainGraph | None = None
    loader: object = None
    #: Earlier revisions of this graph, nearest first — the lineage the
    #: oracle cache derives world pools from after a PATCH mutation.
    ancestors: tuple = ()
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)


class GraphRegistry:
    """Named uncertain graphs served by the service.

    Built-in datasets are registered as lazy loaders (generated on
    first use, so startup stays instant); uploads are held directly.
    All operations are thread-safe — jobs resolve graphs from executor
    threads.

    Every (re-)registration — uploads *and* ``PATCH`` mutations — gets
    a fresh *revision* number.  Job coalescing keys include it, so a
    job submitted against a graph that was later re-uploaded or mutated
    under the same name never coalesces with (or serves results for)
    the replaced contents.  Mutations additionally record the replaced
    graph in the entry's ancestor lineage (up to :data:`MAX_ANCESTORS`,
    nearest first) so the oracle cache can derive the new revision's
    world pool instead of cold-resampling it.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._entries: dict[str, _GraphEntry] = {}
        self._revisions = itertools.count(1)

    def register_graph(self, name: str, graph: UncertainGraph, *, source: str = "upload") -> None:
        """Insert or replace the graph stored under ``name``."""
        with self._lock:
            self._entries[name] = _GraphEntry(
                name=name, source=source, revision=next(self._revisions), graph=graph
            )

    def register_loader(self, name: str, loader, *, source: str = "builtin") -> None:
        """Register a zero-argument callable that builds the graph lazily."""
        with self._lock:
            self._entries[name] = _GraphEntry(
                name=name, source=source, revision=next(self._revisions), loader=loader
            )

    def get(self, name: str) -> UncertainGraph:
        """The graph under ``name`` (loading it first if lazy).

        Raises a 404 :class:`ServiceError` for unknown names; a loader
        failure surfaces as a 500 with the underlying message.
        """
        return self.resolve(name)[0]

    def resolve(self, name: str) -> tuple[UncertainGraph, int]:
        """``(graph, revision)`` under ``name``, loading lazily (404 miss)."""
        graph, revision, _ancestors = self.resolve_with_ancestors(name)
        return graph, revision

    def resolve_with_ancestors(self, name: str) -> tuple[UncertainGraph, int, tuple]:
        """``(graph, revision, ancestors)``, loading lazily (404 miss).

        ``ancestors`` are the graph's replaced revisions, nearest first
        — empty unless the entry has been mutated.  Pass them to
        :meth:`repro.service.cache.OracleCache.lease` to enable pool
        derivation.
        """
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            raise ServiceError(f"no such graph: {name}", status=404)
        if entry.graph is None:
            with entry.lock:
                if entry.graph is None:
                    try:
                        entry.graph = entry.loader()
                    except Exception as error:
                        raise ServiceError(
                            f"loading graph {name!r} failed: {error}", status=500
                        ) from error
        return entry.graph, entry.revision, entry.ancestors

    def mutate(self, name: str, *, add=(), remove=(), update=()):
        """Apply edge mutations to the graph under ``name``.

        Returns ``(graph, revision, delta)`` — the new graph object,
        its fresh registry revision (so in-flight jobs against the old
        revision can never coalesce with post-mutation submissions),
        and the :class:`~repro.graph.delta.GraphDelta` applied.  The
        replaced graph is pushed onto the entry's ancestor lineage for
        pool derivation.  Validation failures surface as 400
        :class:`ServiceError`; the registry entry is only replaced on
        success (mutations are atomic under the registry lock).
        """
        self.resolve(name)  # 404 for unknown names; loads lazy builtins
        with self._lock:
            entry = self._entries.get(name)
            if entry is None or entry.graph is None:  # pragma: no cover - race window
                raise ServiceError(f"no such graph: {name}", status=404)
            try:
                graph, delta = entry.graph.mutate(add=add, remove=remove, update=update)
            except GraphValidationError as error:
                raise ServiceError(f"invalid mutation: {error}", status=400) from error
            ancestors = (entry.graph,) + entry.ancestors[: MAX_ANCESTORS - 1]
            revision = next(self._revisions)
            self._entries[name] = _GraphEntry(
                name=name, source=entry.source, revision=revision,
                graph=graph, ancestors=ancestors,
            )
        return graph, revision, delta

    def remove(self, name: str) -> None:
        """Unregister ``name`` (404 :class:`ServiceError` when unknown)."""
        with self._lock:
            if name not in self._entries:
                raise ServiceError(f"no such graph: {name}", status=404)
            del self._entries[name]

    def describe(self) -> list[dict]:
        """JSON-safe summaries, loaded graphs with node/edge counts."""
        with self._lock:
            entries = list(self._entries.values())
        rows = []
        for entry in sorted(entries, key=lambda e: e.name):
            row = {"name": entry.name, "source": entry.source,
                   "revision": entry.revision, "loaded": entry.graph is not None}
            if entry.graph is not None:
                row["nodes"] = entry.graph.n_nodes
                row["edges"] = entry.graph.n_edges
            rows.append(row)
        return rows

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def _validated_edge_triples(edges):
    """Yield upload edge triples, validating probabilities like io does.

    ``json.loads`` happily decodes the non-standard ``NaN``/``Infinity``
    literals, and NaN slips through ``UncertainGraph.from_edges``'s
    range comparisons — so JSON uploads run the same
    :func:`~repro.graph.io.probability_error` contract (with the
    offending entry's position) as ``.uel`` text.
    """
    for position, edge in enumerate(edges, start=1):
        if not isinstance(edge, (list, tuple)) or len(edge) != 3:
            raise ServiceError(f"edge {position}: expected a [u, v, p] triple, got {edge!r}")
        u, v, p = edge
        try:
            p = float(p)
        except (TypeError, ValueError):
            raise ServiceError(f"edge {position}: probability {p!r} is not a number") from None
        problem = probability_error(p)
        if problem is not None:
            raise ServiceError(f"edge {position}: {problem}")
        yield u, v, p


def _positive_int(value, name: str, *, minimum: int = 1, maximum: int | None = None) -> int:
    try:
        value = int(value)
    except (TypeError, ValueError):
        raise ServiceError(f"{name} must be an integer, got {value!r}") from None
    if value < minimum:
        raise ServiceError(f"{name} must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise ServiceError(f"{name} must be <= {maximum}, got {value}")
    return value


def normalize_job_params(body: dict) -> dict:
    """Validate a job-submission body into canonical parameters.

    Fills every default explicitly and drops fields the chosen
    algorithm ignores, so two requests that mean the same computation
    produce the same coalescing key (e.g. ``{"k": 2}`` and ``{"k": 2,
    "seed": 0}`` coalesce; an ``mcl`` job ignores ``k`` entirely).

    Examples
    --------
    >>> a = normalize_job_params({"graph": "toy", "k": 2})
    >>> b = normalize_job_params({"graph": "toy", "k": 2, "seed": 0})
    >>> a == b
    True
    >>> normalize_job_params({"graph": "toy", "algorithm": "mcl"})["algorithm"]
    'mcl'
    >>> normalize_job_params({"graph": "toy", "algorithm": "centrality",
    ...                       "measure": "harmonic"})["measure"]
    'harmonic'
    """
    if not isinstance(body, dict):
        raise ServiceError("job body must be a JSON object")
    known = {"graph", "algorithm", "k", "seed", "depth", "samples",
             "backend", "chunk_size", "inflation", "measure", "tol"}
    unknown = set(body) - known
    if unknown:
        raise ServiceError(f"unknown job fields: {sorted(unknown)}")
    graph = body.get("graph")
    if not isinstance(graph, str) or not graph:
        raise ServiceError("job field 'graph' (string) is required")
    algorithm = body.get("algorithm", "mcp")
    if algorithm not in _JOB_ALGORITHMS:
        # Stable code so clients can branch on "this algorithm does not
        # exist here" without parsing the message.
        raise ServiceError(
            f"algorithm must be one of {_JOB_ALGORITHMS}, got {algorithm!r}",
            code="unknown_algorithm",
        )
    params = {"graph": graph, "algorithm": algorithm}
    if algorithm == "mcl":
        try:
            params["inflation"] = float(body.get("inflation", 2.0))
        except (TypeError, ValueError):
            raise ServiceError("inflation must be a number") from None
        return params
    if algorithm != "centrality":
        params["k"] = _positive_int(body.get("k", 10), "k")
    params["seed"] = int(_positive_int(body.get("seed", 0), "seed", minimum=0))
    if algorithm == "gmm":
        return params
    if algorithm == "centrality":
        measure = body.get("measure", "degree")
        if measure not in MEASURE_NAMES:
            raise ServiceError(
                f"measure must be one of {MEASURE_NAMES}, got {measure!r}"
            )
        params["measure"] = measure
        try:
            tol = float(body.get("tol", 0.05))
        except (TypeError, ValueError):
            raise ServiceError("tol must be a number") from None
        if not math.isfinite(tol) or tol <= 0:
            raise ServiceError(f"tol must be a positive number, got {tol}")
        params["tol"] = tol
    elif algorithm in ("mcp", "acp"):
        depth = body.get("depth")
        params["depth"] = None if depth is None else _positive_int(depth, "depth")
    # The progressive schedule starts at 50 worlds (PracticalSchedule's
    # min_samples), so a smaller budget would only fail inside the
    # worker — reject it here as the request error it is.
    params["samples"] = _positive_int(
        body.get("samples", 1000), "samples", minimum=50, maximum=MAX_REQUEST_SAMPLES
    )
    backend = body.get("backend", "auto")
    if backend not in BACKEND_NAMES:
        raise ServiceError(f"backend must be one of {BACKEND_NAMES}, got {backend!r}")
    params["backend"] = backend
    params["chunk_size"] = _positive_int(body.get("chunk_size", 512), "chunk_size")
    return params


class ClusterService:
    """Application state and request handlers of the clustering service.

    Parameters
    ----------
    world_cache:
        Optional directory for a disk-backed
        :class:`~repro.sampling.store.WorldStore`; ``None`` keeps the
        pool cache purely in memory.  With worker processes, this is
        the directory every worker's store shares.
    cache_bytes:
        LRU byte budget of the oracle cache (per process).
    job_workers:
        Concurrent clustering jobs in thread mode (executor threads).
    worker_processes:
        ``0`` (default) executes jobs on the in-process thread queue;
        ``>= 1`` spawns that many worker processes
        (:class:`~repro.service.workers.ProcessJobQueue`) and
        dispatches jobs to them.
    sampling_workers:
        ``workers=`` passed to each oracle (results are bit-identical
        under any value, so it is a deployment knob, not a request
        parameter).
    admission:
        The :class:`~repro.service.admission.AdmissionControl` policy;
        default enables queue-depth and per-client job bounds but no
        token-bucket rate limit.
    shutdown_grace_s:
        Default drain grace of ``POST /v1/shutdown`` (a request body
        may override it per call).
    datasets:
        Built-in dataset names to pre-register as lazy loaders.
    dataset_scale:
        ``scale=`` used when a built-in dataset is first loaded.
    trace_log:
        Optional span-log path (JSON lines).  Configures the process
        tracer and is handed to every worker process, so one file
        collects the whole fleet's spans (the per-line ``trace_id``
        keeps requests apart).
    """

    def __init__(
        self,
        *,
        world_cache=None,
        cache_bytes: int = 256 << 20,
        job_workers: int = 2,
        worker_processes: int = 0,
        sampling_workers=1,
        admission: AdmissionControl | None = None,
        shutdown_grace_s: float = 5.0,
        datasets=DATASET_NAMES,
        dataset_scale: float = 1.0,
        trace_log: str | None = None,
    ):
        if trace_log is not None:
            telemetry.get_tracer().configure(str(trace_log))
        self.cache = OracleCache(WorldStore(world_cache), max_bytes=cache_bytes)
        # The one code path behind both GET /v1/cache and the
        # repro_cache_* metric series — the two views cannot drift.
        self.cache.attach_metrics()
        self.graphs = GraphRegistry()
        self.worker_processes = int(worker_processes)
        if self.worker_processes > 0:
            self.jobs = ProcessJobQueue(
                workers=self.worker_processes,
                world_cache=world_cache,
                cache_bytes=cache_bytes,
                sampling_workers=sampling_workers,
                trace_log=None if trace_log is None else str(trace_log),
            )
        else:
            self.jobs = JobQueue(self._run_job, workers=job_workers)
        self.admission = admission if admission is not None else AdmissionControl()
        self._sampling_workers = sampling_workers
        self._grace_s = float(shutdown_grace_s)
        self._draining = False
        self._drain_task = None
        self._started = time.monotonic()
        self._started_wall = time.time()
        self.shutdown_event = asyncio.Event()
        for name in datasets:
            self.graphs.register_loader(
                name,
                functools.partial(self._load_builtin, name, dataset_scale),
                source="builtin",
            )
        self.router = self._build_router()

    @staticmethod
    def _load_builtin(name: str, scale: float) -> UncertainGraph:
        graph, _complexes = load_dataset(name, seed=0, scale=scale)
        return graph

    @property
    def draining(self) -> bool:
        """Whether a graceful shutdown drain is in progress."""
        return self._draining

    def close(self) -> None:
        """Stop the job queue (cancelling outstanding jobs)."""
        self.jobs.shutdown()

    # ------------------------------------------------------------------
    # Routing and admission
    # ------------------------------------------------------------------

    def _build_router(self) -> Router:
        router = Router(canonical_prefix="/v1")
        router.add("GET", "/v1/healthz", self._handle_health)
        router.add("GET", "/v1/version", self._handle_version)
        router.add("GET", "/v1/graphs", self._handle_graphs_list)
        router.add("PUT", "/v1/graphs/{name}", self._handle_graph_upload)
        router.add("POST", "/v1/graphs/{name}", self._handle_graph_upload)
        router.add("GET", "/v1/graphs/{name}", self._handle_graph_stats)
        router.add("DELETE", "/v1/graphs/{name}", self._handle_graph_delete)
        router.add("PATCH", "/v1/graphs/{name}/edges", self._handle_graph_mutate)
        router.add("GET", "/v1/graphs/{name}/estimate", self._handle_estimate)
        router.add("POST", "/v1/jobs", self._handle_job_submit)
        router.add("GET", "/v1/jobs", self._handle_jobs_list)
        router.add("GET", "/v1/jobs/{id}", self._handle_job_status)
        router.add("GET", "/v1/jobs/{id}/events", self._handle_job_events)
        router.add("GET", "/v1/jobs/{id}/result", self._handle_job_result)
        router.add("DELETE", "/v1/jobs/{id}", self._handle_job_cancel)
        router.add("GET", "/v1/cache", self._handle_cache_stats)
        router.add("GET", "/v1/metrics", self._handle_metrics)
        router.add("POST", "/v1/shutdown", self._handle_shutdown)
        return router

    async def middleware(self, request: Request) -> None:
        """Pre-routing hook: drain-mode 503s, then admission control.

        Mid-drain the service still answers reads (``GET`` — clients
        must be able to poll the jobs they are waiting on), job
        cancellations (they speed the drain), and repeat ``shutdown``
        calls; everything that would *create* work is rejected 503.
        """
        if self._draining:
            path = request.path
            unversioned = path[3:] if path.startswith("/v1/") else path
            allowed = (
                request.method == "GET"
                or unversioned == "/shutdown"
                or (request.method == "DELETE" and unversioned.startswith("/jobs/"))
            )
            if not allowed:
                raise ServiceError(
                    "service is draining for shutdown", status=503,
                    code="draining", headers={"Retry-After": "1"},
                )
        await self.admission(request)

    # ------------------------------------------------------------------
    # Meta endpoints
    # ------------------------------------------------------------------

    async def _handle_health(self, request: Request):
        states = {}
        for job in self.jobs.list():
            states[job.status] = states.get(job.status, 0) + 1
        uptime = time.monotonic() - self._started
        return 200, {
            "status": "draining" if self._draining else "ok",
            "version": __version__,
            "started_at": self._started_wall,
            "uptime_seconds": uptime,
            "uptime_s": uptime,  # pre-telemetry spelling, kept for clients
            "graphs": len(self.graphs),
            "jobs": states,
            "workers": self.jobs.workers,
            "mode": "process" if self.worker_processes else "thread",
        }

    async def _handle_version(self, request: Request):
        return 200, {"version": __version__}

    async def _handle_cache_stats(self, request: Request):
        # With worker processes this reports the front door's cache
        # (estimates); each worker holds its own, not aggregated here.
        return 200, self.cache.stats()

    async def _handle_metrics(self, request: Request):
        """``GET /v1/metrics``: the whole fleet, Prometheus text format.

        In process mode the registry already holds every worker's
        shipped counter/histogram deltas (merged by the event drainer),
        so one scrape of the front door covers the fleet.
        """
        return Response(
            200,
            telemetry.get_registry().render(),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    async def _handle_shutdown(self, request: Request):
        """``POST /v1/shutdown``: drain in-flight jobs, then stop.

        Optional body ``{"grace_s": seconds}`` overrides the configured
        grace period.  The first call starts the drain (new work is
        rejected 503 from that point); repeats report progress.  The
        server exits once every job is terminal or the grace expires —
        leftover jobs are then cancelled, never abandoned.
        """
        body = request.json()
        grace = body.get("grace_s", self._grace_s)
        try:
            grace = float(grace)
        except (TypeError, ValueError):
            raise ServiceError(f"grace_s must be a number, got {grace!r}") from None
        if grace < 0:
            raise ServiceError(f"grace_s must be >= 0, got {grace}")
        active = self.jobs.active_count()
        if not self._draining:
            self._draining = True
            self._drain_task = asyncio.get_running_loop().create_task(
                self._drain_then_stop(grace)
            )
        return 202, {"status": "draining", "grace_s": grace, "active_jobs": active}

    async def _drain_then_stop(self, grace_s: float) -> None:
        deadline = time.monotonic() + grace_s
        while self.jobs.active_count() > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.05)
        self.shutdown_event.set()

    # ------------------------------------------------------------------
    # Graph endpoints
    # ------------------------------------------------------------------

    async def _handle_graphs_list(self, request: Request):
        return 200, {"graphs": self.graphs.describe()}

    async def _handle_graph_upload(self, request: Request):
        name = request.params["name"]
        # Parsing is CPU-bound (bodies may be tens of MB), so it runs on
        # the executor like every other heavy handler.
        loop = asyncio.get_running_loop()
        graph = await loop.run_in_executor(None, self._parse_upload_sync, request)
        self.graphs.register_graph(name, graph)
        return 200, {"name": name, "nodes": graph.n_nodes, "edges": graph.n_edges}

    @staticmethod
    def _parse_upload_sync(request: Request) -> UncertainGraph:
        content_type = request.headers.get("content-type", "").split(";")[0].strip()
        try:
            if content_type == "application/json":
                body = request.json()
                if not isinstance(body, dict):
                    raise ServiceError("JSON upload body must be an object with an 'edges' list")
                edges = body.get("edges")
                if not isinstance(edges, list):
                    raise ServiceError("JSON uploads need an 'edges' list of [u, v, p] triples")
                return UncertainGraph.from_edges(
                    _validated_edge_triples(edges), merge=body.get("merge", "error")
                )
            return parse_uncertain_graph_text(request.text())
        except ServiceError:
            raise
        except (ReproError, TypeError, ValueError) as error:
            raise ServiceError(f"invalid graph upload: {error}") from error

    async def _handle_graph_stats(self, request: Request):
        name = request.params["name"]
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self._graph_stats_sync, name)

    def _graph_stats_sync(self, name: str):
        graph = self.graphs.get(name)
        lcc = graph.largest_component()
        payload = {
            "name": name,
            "nodes": graph.n_nodes,
            "edges": graph.n_edges,
            "expected_edges": graph.expected_edge_count(),
            "largest_component": {"nodes": lcc.n_nodes, "edges": lcc.n_edges},
        }
        if graph.n_edges:
            degrees = graph.degrees()
            prob = graph.edge_prob
            payload["degree"] = {"mean": float(degrees.mean()), "max": int(degrees.max())}
            payload["edge_probability"] = {
                "min": float(prob.min()),
                "median": float(np.median(prob)),
                "max": float(prob.max()),
            }
        return 200, payload

    async def _handle_graph_delete(self, request: Request):
        name = request.params["name"]
        self.graphs.remove(name)
        return 200, {"name": name, "removed": True}

    async def _handle_graph_mutate(self, request: Request):
        """``PATCH /v1/graphs/{name}/edges``: apply edge mutations.

        Body: ``{"ops": [{"op": "add"|"remove"|"update", "u": ...,
        "v": ..., "p": ...}, ...]}`` (or a bare ops list).  The
        mutation bumps the registry revision — so post-mutation job
        submissions never coalesce with pre-mutation ones — and records
        the replaced graph as an ancestor, letting the oracle cache
        derive the new revision's world pool instead of resampling it.
        """
        name = request.params["name"]
        body = request.json()
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self._mutate_sync, name, body)

    def _mutate_sync(self, name: str, body):
        graph = self.graphs.get(name)  # 404 first; also loads lazy builtins
        add, remove, update = self._parse_mutation_ops(graph, body)
        graph, revision, delta = self.graphs.mutate(
            name, add=add, remove=remove, update=update
        )
        return 200, {
            "name": name,
            "revision": revision,
            "graph_revision": graph.revision,
            "nodes": graph.n_nodes,
            "edges": graph.n_edges,
            "delta": delta.summary(),
        }

    @classmethod
    def _parse_mutation_ops(cls, graph: UncertainGraph, body):
        """Validate a PATCH body into ``(add, remove, update)`` label ops."""
        ops = body.get("ops") if isinstance(body, dict) else body
        if not isinstance(ops, list) or not ops:
            raise ServiceError(
                "PATCH body must be {'ops': [...]} (or a bare list) with at "
                "least one {'op': 'add'|'remove'|'update', 'u': ..., 'v': ..., 'p': ...} entry"
            )
        add, remove, update = [], [], []
        for position, op in enumerate(ops, start=1):
            if not isinstance(op, dict):
                raise ServiceError(f"op {position}: expected an object, got {op!r}")
            kind = op.get("op")
            if kind not in ("add", "remove", "update"):
                raise ServiceError(
                    f"op {position}: 'op' must be 'add', 'remove' or 'update', got {kind!r}"
                )
            if "u" not in op or "v" not in op:
                raise ServiceError(f"op {position}: 'u' and 'v' are required")
            # Map request tokens to labels via the shared node resolver,
            # so "3" and 3 address the same node here as everywhere else.
            u = graph.label_of(cls._node_index(graph, op["u"]))
            v = graph.label_of(cls._node_index(graph, op["v"]))
            if kind == "remove":
                if op.get("p") is not None:
                    raise ServiceError(f"op {position}: remove takes no probability")
                remove.append((u, v))
                continue
            if "p" not in op:
                raise ServiceError(f"op {position}: {kind} needs a probability 'p'")
            try:
                p = float(op["p"])
            except (TypeError, ValueError):
                raise ServiceError(
                    f"op {position}: probability {op['p']!r} is not a number"
                ) from None
            problem = probability_error(p)
            if problem is not None:
                raise ServiceError(f"op {position}: {problem}")
            (add if kind == "add" else update).append((u, v, p))
        return add, remove, update

    # ------------------------------------------------------------------
    # Synchronous estimates
    # ------------------------------------------------------------------

    async def _handle_estimate(self, request: Request):
        name = request.params["name"]
        query = request.query
        if "u" not in query or "v" not in query:
            raise ServiceError("estimate needs 'u' and 'v' query parameters")
        samples = _positive_int(
            query.get("samples", 2000), "samples", maximum=MAX_REQUEST_SAMPLES
        )
        seed = _positive_int(query.get("seed", 0), "seed", minimum=0)
        depth = query.get("depth")
        depth = None if depth is None else _positive_int(depth, "depth")
        backend = query.get("backend", "auto")
        if backend not in BACKEND_NAMES:
            raise ServiceError(f"backend must be one of {BACKEND_NAMES}, got {backend!r}")
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None,
            functools.partial(
                self._estimate_sync, name, query["u"], query["v"],
                samples=samples, seed=seed, depth=depth, backend=backend,
            ),
        )

    def _estimate_sync(self, name, u_label, v_label, *, samples, seed, depth, backend):
        graph, _revision, ancestors = self.graphs.resolve_with_ancestors(name)
        u = self._node_index(graph, u_label)
        v = self._node_index(graph, v_label)
        with self.cache.lease(
            graph, seed=seed, backend=backend,
            max_samples=MAX_REQUEST_SAMPLES, workers=self._sampling_workers,
            ancestors=ancestors,
        ) as oracle:
            oracle.ensure_samples(samples)
            estimate = oracle.connection(u, v, depth=depth)
            stats = oracle.cache_stats
        return 200, {
            "graph": name,
            "u": u_label,
            "v": v_label,
            "estimate": estimate,
            "samples": samples,
            "seed": seed,
            "depth": depth,
            "worlds_cached": stats["worlds_cached"],
            "worlds_sampled": stats["worlds_sampled"],
        }

    @staticmethod
    def _node_index(graph: UncertainGraph, label) -> int:
        """Map a request-supplied node token to its dense index (404 miss)."""
        candidates = [label]
        try:
            candidates.append(int(label))
        except (TypeError, ValueError):
            pass
        for candidate in candidates:
            try:
                return graph.index_of(candidate)
            except (KeyError, ValueError):
                continue
        raise ServiceError(f"no such node: {label!r}", status=404)

    # ------------------------------------------------------------------
    # Jobs
    # ------------------------------------------------------------------

    async def _handle_job_submit(self, request: Request):
        params = normalize_job_params(request.json())
        # Resolve the graph now so unknown names fail the submission
        # with a 404 instead of a failed job discovered by polling (in
        # the executor: first touch of a lazy builtin generates it).
        # The resolved object (plus its ancestor lineage, for pool
        # derivation) is captured on the job and its revision folded
        # into the coalescing key: a later re-upload or PATCH mutation
        # under the same name neither coalesces with nor redirects
        # this job.
        loop = asyncio.get_running_loop()
        graph, revision, ancestors = await loop.run_in_executor(
            None, self.graphs.resolve_with_ancestors, params["graph"]
        )
        job, coalesced = self.jobs.submit(
            params, key_suffix=f"rev{revision}", context=(graph, ancestors),
            client=request.client_key, trace_id=request.request_id,
            admit=self.admission.admit_job,
        )
        return 202, {"job": job.id, "status": job.status, "coalesced": coalesced}

    async def _handle_jobs_list(self, request: Request):
        """``GET /v1/jobs``: list with ``state``/``limit``/``cursor``."""
        page, next_cursor = paginate_jobs(
            self.jobs.list(),
            state=request.query.get("state"),
            limit=request.query.get("limit"),
            cursor=request.query.get("cursor"),
        )
        return 200, {
            "jobs": [job.describe() for job in page],
            "next_cursor": next_cursor,
        }

    async def _handle_job_status(self, request: Request):
        return 200, self.jobs.get(request.params["id"]).describe()

    async def _handle_job_events(self, request: Request):
        """``GET /v1/jobs/{id}/events``: stream the job's events as SSE.

        Replays the job's recorded history from the first event, then
        tails live ones; the stream ends after the terminal event
        (``done``/``failed``/``cancelled``) is delivered, so a client
        connecting after completion still receives the full record.
        Each event carries the *stream* request's id.
        """
        job = self.jobs.get(request.params["id"])
        request_id = request.request_id

        async def stream():
            seq = 0
            while True:
                while seq < len(job.events):
                    record = dict(job.events[seq])
                    record["job"] = job.id
                    record["request_id"] = request_id
                    yield sse_event(record, event=record["event"],
                                    event_id=record["seq"])
                    seq += 1
                    if record["event"] in TERMINAL_STATES:
                        return
                await asyncio.sleep(0.05)

        return EventStream(stream())

    async def _handle_job_result(self, request: Request):
        job = self.jobs.get(request.params["id"])
        if job.status != "done":
            raise ServiceError(
                f"job {job.id} is {job.status}, not done", status=409
            )
        return 200, job.result

    async def _handle_job_cancel(self, request: Request):
        job = self.jobs.cancel(request.params["id"])
        return 202, job.describe()

    def _run_job(self, job) -> dict:
        """Execute one clustering job on a worker thread."""
        params = job.params
        # The graph (and its derivation lineage) captured at submission;
        # falling back to the registry only covers jobs submitted
        # without a context (direct queue use).
        if isinstance(job.context, tuple):
            graph, ancestors = job.context
        elif job.context is not None:
            graph, ancestors = job.context, ()
        else:
            graph, _revision, ancestors = self.graphs.resolve_with_ancestors(params["graph"])

        def cancel_check() -> None:
            if job.cancel_event.is_set():
                raise JobCancelledError(f"job {job.id} cancelled")

        def progress(data: dict) -> None:
            job.add_event("progress", data)

        return execute_clustering(
            job.id, params, graph, ancestors, self.cache,
            sampling_workers=self._sampling_workers,
            cancel_check=cancel_check, progress=progress,
        )


class BackgroundServer:
    """Run a :class:`ClusterService` HTTP server on a daemon thread.

    The in-process harness used by the test suite and the service
    benchmark: it owns a private event loop, binds to an ephemeral port
    by default, and tears everything down on exit.  The service's
    shutdown event (set by ``POST /v1/shutdown`` after its drain) stops
    the loop, so graceful shutdown works here exactly as under
    :func:`serve`.

    Use as a context manager::

        with BackgroundServer(service) as server:
            requests to server.base_url ...
    """

    def __init__(self, service: ClusterService, *, host: str = "127.0.0.1", port: int = 0):
        self._service = service
        self._host = host
        self._port = port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: HttpServer | None = None

    @property
    def base_url(self) -> str:
        """``http://host:port`` of the running server."""
        if self._server is None:
            raise RuntimeError("server is not running")
        return f"http://{self._host}:{self._server.port}"

    @property
    def port(self) -> int:
        """The bound port of the running server."""
        if self._server is None:
            raise RuntimeError("server is not running")
        return self._server.port

    def start(self) -> "BackgroundServer":
        """Start the loop thread and wait until the socket is bound."""
        started = threading.Event()
        failure: list[BaseException] = []
        self._loop = asyncio.new_event_loop()

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            try:
                server = HttpServer(
                    self._service.router, host=self._host, port=self._port,
                    middleware=self._service.middleware,
                )
                self._server = self._loop.run_until_complete(server.start())
            except BaseException as error:  # pragma: no cover - bind failure
                failure.append(error)
                started.set()
                return
            started.set()

            async def watch_shutdown() -> None:
                await self._service.shutdown_event.wait()
                self._loop.stop()

            watcher = self._loop.create_task(watch_shutdown())
            self._loop.run_forever()
            watcher.cancel()
            # Drain: open keep-alive connections hold handler tasks;
            # cancel them before closing the loop or they leak noisily.
            self._loop.run_until_complete(server.close())
            pending = asyncio.all_tasks(self._loop)
            for task in pending:
                task.cancel()
            if pending:
                self._loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            self._loop.close()

        self._thread = threading.Thread(target=run, name="repro-serve", daemon=True)
        self._thread.start()
        started.wait(timeout=30)
        if failure:  # pragma: no cover - bind failure
            raise failure[0]
        return self

    def stop(self) -> None:
        """Stop the server, join the thread, shut the job queue down."""
        if self._loop is not None and self._thread is not None:
            # The loop may already be gone if POST /shutdown drained and
            # stopped it from inside.
            if not self._loop.is_closed():
                try:
                    self._loop.call_soon_threadsafe(self._loop.stop)
                except RuntimeError:  # pragma: no cover - closed in between
                    pass
            self._thread.join(timeout=30)
        self._service.close()

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


async def serve_async(service: ClusterService, *, host: str = "127.0.0.1",
                      port: int = 8722, ready=None) -> None:
    """Serve ``service`` until its shutdown event fires.

    ``ready`` (optional callable) is invoked with the bound
    :class:`HttpServer` once the socket is listening — the CLI uses it
    to print the address, tests to discover an ephemeral port.
    SIGINT/SIGTERM trigger the same graceful shutdown as
    ``POST /v1/shutdown`` (without the drain — signals mean *stop*).
    """
    server = await HttpServer(
        service.router, host=host, port=port, middleware=service.middleware
    ).start()
    loop = asyncio.get_running_loop()
    try:
        import signal

        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, service.shutdown_event.set)
    except (ImportError, NotImplementedError, RuntimeError):  # pragma: no cover
        pass
    if ready is not None:
        ready(server)
    try:
        await service.shutdown_event.wait()
    finally:
        await server.close()
        service.close()


def serve(service: ClusterService, *, host: str = "127.0.0.1", port: int = 8722) -> int:
    """Blocking entry point for ``repro serve``; returns the exit code."""

    def announce(server: HttpServer) -> None:
        print(
            f"repro service listening on http://{server.host}:{server.port}",
            file=sys.stderr,
            flush=True,
        )

    asyncio.run(serve_async(service, host=host, port=port, ready=announce))
    print("repro service shut down cleanly", file=sys.stderr, flush=True)
    return 0
