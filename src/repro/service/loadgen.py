"""Load generator for the clustering service (``repro bench-serve``).

Drives a running service over plain asyncio sockets (keep-alive
HTTP/1.1, no third-party client) and measures the three numbers the
service exists for:

``job/<algo>/cold``
    Wall time of one clustering job submitted against an empty oracle
    cache — sampling included.
``job/<algo>/warm``
    Wall time of the identical job repeated — served from the cached
    pool with zero new sampling (the measurement asserts the service
    reports ``warm`` when the first run sampled fresh worlds).
``estimate/sustained``
    Requests per second over ``duration`` seconds of ``concurrency``
    keep-alive connections issuing reliability estimates against the
    warm pool, with latency quantiles.

Results are written as a schema-1 ``BENCH_service.json`` artifact
(same layout as :mod:`benchmarks.record`, which cannot be imported
from the installed package) and summarized on stdout.  The exit code
is non-zero when any request fails — which is what makes the CI smoke
job an assertion, not just a timing.
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import time
from urllib.parse import urlsplit

import numpy

from repro.exceptions import ServiceError


class ServiceClient:
    """A minimal keep-alive HTTP/JSON client on asyncio streams.

    One client owns one connection; open more clients for concurrency.
    All request methods return ``(status, payload)`` with the payload
    JSON-decoded.
    """

    def __init__(self, host: str, port: int):
        self._host = host
        self._port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> "ServiceClient":
        """Open the TCP connection."""
        self._reader, self._writer = await asyncio.open_connection(self._host, self._port)
        return self

    async def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
            self._writer = None
            self._reader = None

    async def request(self, method: str, path: str, body: object = None) -> tuple[int, object]:
        """Issue one request on the persistent connection."""
        if self._writer is None:
            await self.connect()
        payload = b""
        content_type = ""
        if body is not None:
            if isinstance(body, (bytes, str)):
                payload = body.encode("utf-8") if isinstance(body, str) else body
                content_type = "text/plain"
            else:
                payload = json.dumps(body).encode("utf-8")
                content_type = "application/json"
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self._host}:{self._port}\r\n"
            f"Content-Length: {len(payload)}\r\n"
        )
        if content_type:
            head += f"Content-Type: {content_type}\r\n"
        head += "\r\n"
        self._writer.write(head.encode("ascii") + payload)
        await self._writer.drain()
        status_line = await self._reader.readline()
        parts = status_line.decode("latin-1").split(" ", 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ServiceError(f"malformed response status line: {status_line!r}", status=502)
        status = int(parts[1])
        length = 0
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        raw = await self._reader.readexactly(length) if length else b""
        return status, (json.loads(raw) if raw else None)


async def wait_ready(host: str, port: int, *, timeout: float = 30.0) -> None:
    """Poll ``/healthz`` until the service answers 200 (or raise)."""
    deadline = time.monotonic() + timeout
    last_error: Exception | None = None
    while time.monotonic() < deadline:
        client = ServiceClient(host, port)
        try:
            status, _payload = await client.request("GET", "/healthz")
            if status == 200:
                return
            last_error = ServiceError(f"healthz returned {status}", status=502)
        except (OSError, asyncio.IncompleteReadError, ServiceError) as error:
            last_error = error
        finally:
            await client.close()
        await asyncio.sleep(0.1)
    raise ServiceError(f"service at {host}:{port} never became healthy: {last_error}", status=502)


async def run_job(client: ServiceClient, job_params: dict, *,
                  poll_interval: float = 0.02, timeout: float = 600.0) -> dict:
    """Submit a job, poll to completion, and return its result payload."""
    status, submitted = await client.request("POST", "/jobs", job_params)
    if status != 202:
        raise ServiceError(f"job submission failed ({status}): {submitted}", status=502)
    job_id = submitted["job"]
    deadline = time.monotonic() + timeout
    while True:
        status, described = await client.request("GET", f"/jobs/{job_id}")
        if status != 200:
            raise ServiceError(f"job poll failed ({status}): {described}", status=502)
        if described["status"] in ("done", "failed", "cancelled"):
            break
        if time.monotonic() > deadline:
            raise ServiceError(f"job {job_id} timed out", status=502)
        await asyncio.sleep(poll_interval)
    if described["status"] != "done":
        raise ServiceError(
            f"job {job_id} finished {described['status']}: {described.get('error')}",
            status=502,
        )
    status, result = await client.request("GET", f"/jobs/{job_id}/result")
    if status != 200:
        raise ServiceError(f"result fetch failed ({status}): {result}", status=502)
    return result


async def _estimate_worker(host: str, port: int, path: str, stop_at: float,
                           latencies: list, failures: list) -> None:
    client = await ServiceClient(host, port).connect()
    try:
        while time.monotonic() < stop_at:
            begin = time.perf_counter()
            status, payload = await client.request("GET", path)
            if status != 200:
                # Record the response body, not just the code — a bare
                # "[400]" in the failure summary tells the operator
                # nothing about *which* validation failed.
                failures.append(describe_failure(status, payload))
                return
            latencies.append(time.perf_counter() - begin)
    finally:
        await client.close()


def describe_failure(status: int, payload) -> str:
    """One-line summary of a non-2xx response: status plus its body.

    The service answers every error with a JSON body whose ``error``
    field carries the reason; surface it (truncated) so the failure
    summary is actionable.

    Examples
    --------
    >>> describe_failure(400, {"error": "estimate needs u and v"})
    '400: estimate needs u and v'
    >>> describe_failure(503, None)
    '503: <no body>'
    """
    if isinstance(payload, dict) and "error" in payload:
        body = str(payload["error"])
    elif payload is None:
        body = "<no body>"
    else:
        body = json.dumps(payload, sort_keys=True)
    if len(body) > 200:
        body = body[:197] + "..."
    return f"{status}: {body}"


def _quantile(sorted_values: list, q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(int(q * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[index]


async def run_load(url: str, *, graph: str, algorithm: str = "mcp", k: int = 4,
                   samples: int = 500, seed: int = 0, duration: float = 3.0,
                   concurrency: int = 4, upload: str | None = None,
                   u: str = "0", v: str = "1") -> dict:
    """Run the full measurement against a live service.

    Returns a dict with the three benchmark cells plus request totals;
    raises :class:`ServiceError` when any request misbehaves.  With
    ``upload`` set, the file's ``.uel`` text is uploaded under
    ``graph`` first.
    """
    split = urlsplit(url if "//" in url else f"http://{url}")
    host, port = split.hostname or "127.0.0.1", split.port or 80
    await wait_ready(host, port)
    client = await ServiceClient(host, port).connect()
    try:
        if upload is not None:
            with open(upload, "r", encoding="utf-8") as handle:
                text = handle.read()
            status, payload = await client.request("PUT", f"/graphs/{graph}", text)
            if status != 200:
                raise ServiceError(f"graph upload failed ({status}): {payload}", status=502)
        job_params = {"graph": graph, "algorithm": algorithm, "k": k,
                      "samples": samples, "seed": seed}

        begin = time.perf_counter()
        cold = await run_job(client, job_params)
        cold_seconds = time.perf_counter() - begin

        begin = time.perf_counter()
        warm = await run_job(client, job_params)
        warm_seconds = time.perf_counter() - begin
        if cold.get("worlds_sampled", 0) > 0 and not warm.get("warm", False):
            raise ServiceError(
                "warm repeat was not served from the oracle cache "
                f"(cold sampled {cold.get('worlds_sampled')}, "
                f"warm sampled {warm.get('worlds_sampled')})",
                status=502,
            )
        if warm.get("assignment") != cold.get("assignment"):
            raise ServiceError("warm labels differ from cold labels", status=502)

        estimate_path = f"/graphs/{graph}/estimate?u={u}&v={v}&samples={samples}&seed={seed}"
        status, payload = await client.request("GET", estimate_path)
        if status != 200:
            raise ServiceError(f"estimate failed ({status}): {payload}", status=502)
        latencies: list = []
        failures: list = []
        stop_at = time.monotonic() + duration
        await asyncio.gather(*(
            _estimate_worker(host, port, estimate_path, stop_at, latencies, failures)
            for _ in range(concurrency)
        ))
        if failures:
            raise ServiceError(
                "sustained load saw non-200 responses: " + "; ".join(failures),
                status=502,
            )
        if not latencies:
            raise ServiceError("sustained load completed zero requests", status=502)
        latencies.sort()
    finally:
        await client.close()
    return {
        "algorithm": algorithm,
        "graph": graph,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "cold_worlds_sampled": cold.get("worlds_sampled"),
        "warm_worlds_sampled": warm.get("worlds_sampled"),
        "warm": warm.get("warm"),
        "sustained_requests": len(latencies),
        "sustained_duration_s": duration,
        "requests_per_second": len(latencies) / duration,
        "latency_p50_s": _quantile(latencies, 0.50),
        "latency_p95_s": _quantile(latencies, 0.95),
        "concurrency": concurrency,
    }


def write_artifact(results: dict, path) -> None:
    """Write ``results`` as a schema-1 ``BENCH_service.json`` artifact.

    The layout matches ``benchmarks/record.py`` so
    ``benchmarks/compare.py`` can diff service artifacts against the
    committed baseline like any other suite.
    """
    algo = results["algorithm"]
    benchmarks = {
        f"job/{algo}/cold": {
            "seconds": results["cold_seconds"],
            "items": 1,
            "throughput": 1.0 / results["cold_seconds"],
            "meta": {"graph": results["graph"], "worlds_sampled": results["cold_worlds_sampled"]},
        },
        f"job/{algo}/warm": {
            "seconds": results["warm_seconds"],
            "items": 1,
            "throughput": 1.0 / results["warm_seconds"],
            "meta": {"graph": results["graph"], "worlds_sampled": results["warm_worlds_sampled"]},
        },
        "estimate/sustained": {
            "seconds": results["sustained_duration_s"],
            "items": results["sustained_requests"],
            "throughput": results["requests_per_second"],
            "meta": {
                "concurrency": results["concurrency"],
                "latency_p50_s": results["latency_p50_s"],
                "latency_p95_s": results["latency_p95_s"],
            },
        },
    }
    artifact = {
        "schema": 1,
        "suite": "service",
        "host": {
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "platform": platform.platform(),
            "cpu_count": os.cpu_count() or 1,
        },
        "benchmarks": benchmarks,
    }
    path = os.fspath(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")


def summarize(results: dict) -> str:
    """Human-readable one-screen summary of a load run."""
    return (
        f"cold {results['algorithm']} job   {results['cold_seconds'] * 1000:8.1f} ms "
        f"({results['cold_worlds_sampled']} worlds sampled)\n"
        f"warm {results['algorithm']} job   {results['warm_seconds'] * 1000:8.1f} ms "
        f"(zero sampling: {results['warm']})\n"
        f"sustained estimates {results['requests_per_second']:8.1f} req/s "
        f"over {results['sustained_duration_s']:.1f}s x{results['concurrency']} "
        f"(p50 {results['latency_p50_s'] * 1000:.1f} ms, "
        f"p95 {results['latency_p95_s'] * 1000:.1f} ms)"
    )
