"""Load generator for the clustering service (``repro bench-serve``).

Drives a running service over plain asyncio sockets (keep-alive
HTTP/1.1, no third-party client) and measures the numbers the service
exists for:

``job/<algo>/cold``
    Wall time of one clustering job submitted against an empty oracle
    cache — sampling included.
``job/<algo>/warm``
    Wall time of the identical job repeated — served from the cached
    pool with zero new sampling (the measurement asserts the service
    reports ``warm`` when the first run sampled fresh worlds).
``estimate/sustained``
    Requests per second over ``duration`` seconds of ``concurrency``
    keep-alive connections issuing reliability estimates against the
    warm pool, with latency quantiles.
``job/mixed`` (``--mixed-jobs``)
    Jobs per second of a mixed cold/warm/mutate stream — the
    throughput-vs-workers scaling cell.

Two probes ride along: the warm job's SSE stream is consumed
(:func:`collect_job_events`) and must deliver at least the recorded
lifecycle events with the stream's request id echoed in each; and an
optional burst phase (:func:`run_burst`) verifies admission control
answers 429 + ``Retry-After`` once the queue bound is exceeded.

Results are written as a schema-1 ``BENCH_service.json`` artifact
(same layout as :mod:`benchmarks.record`, which cannot be imported
from the installed package) and summarized on stdout.  The exit code
is non-zero when any request fails — which is what makes the CI smoke
job an assertion, not just a timing.
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import time
from urllib.parse import urlsplit

import numpy

from repro.exceptions import ServiceError
from repro.telemetry import parse_prometheus_text

#: Job states after which polling stops.
_TERMINAL = ("done", "failed", "cancelled")


class ServiceClient:
    """A minimal keep-alive HTTP/JSON client on asyncio streams.

    One client owns one connection; open more clients for concurrency.
    All request methods return ``(status, payload)`` with the payload
    JSON-decoded; the response headers of the most recent request are
    kept on :attr:`last_headers` (lower-cased names) — that is where
    ``Retry-After``, ``X-Request-Id``, and ``Deprecation`` live.
    """

    def __init__(self, host: str, port: int, *, client_id: str | None = None):
        self._host = host
        self._port = port
        self._client_id = client_id
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        #: Response headers of the last request, lower-cased.
        self.last_headers: dict[str, str] = {}

    async def connect(self) -> "ServiceClient":
        """Open the TCP connection."""
        self._reader, self._writer = await asyncio.open_connection(self._host, self._port)
        return self

    async def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
            self._writer = None
            self._reader = None

    async def request(self, method: str, path: str, body: object = None) -> tuple[int, object]:
        """Issue one request on the persistent connection."""
        if self._writer is None:
            await self.connect()
        payload = b""
        content_type = ""
        if body is not None:
            if isinstance(body, (bytes, str)):
                payload = body.encode("utf-8") if isinstance(body, str) else body
                content_type = "text/plain"
            else:
                payload = json.dumps(body).encode("utf-8")
                content_type = "application/json"
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self._host}:{self._port}\r\n"
            f"Content-Length: {len(payload)}\r\n"
        )
        if content_type:
            head += f"Content-Type: {content_type}\r\n"
        if self._client_id:
            head += f"X-Client-Id: {self._client_id}\r\n"
        head += "\r\n"
        self._writer.write(head.encode("ascii") + payload)
        await self._writer.drain()
        status_line = await self._reader.readline()
        parts = status_line.decode("latin-1").split(" ", 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ServiceError(f"malformed response status line: {status_line!r}", status=502)
        status = int(parts[1])
        headers: dict[str, str] = {}
        length = 0
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        self.last_headers = headers
        raw = await self._reader.readexactly(length) if length else b""
        if not raw:
            return status, None
        if headers.get("content-type", "").startswith("application/json"):
            return status, json.loads(raw)
        return status, raw.decode("utf-8")


async def wait_ready(host: str, port: int, *, timeout: float = 30.0) -> None:
    """Poll ``/v1/healthz`` until the service answers 200 (or raise)."""
    deadline = time.monotonic() + timeout
    last_error: Exception | None = None
    while time.monotonic() < deadline:
        client = ServiceClient(host, port)
        try:
            status, _payload = await client.request("GET", "/v1/healthz")
            if status == 200:
                return
            last_error = ServiceError(f"healthz returned {status}", status=502)
        except (OSError, asyncio.IncompleteReadError, ServiceError) as error:
            last_error = error
        finally:
            await client.close()
        await asyncio.sleep(0.1)
    raise ServiceError(f"service at {host}:{port} never became healthy: {last_error}", status=502)


async def run_job(client: ServiceClient, job_params: dict, *,
                  poll_interval: float = 0.02, timeout: float = 600.0) -> dict:
    """Submit a job, poll to completion, and return its result payload.

    The result dict additionally carries the job id under ``"job"``
    (the service includes it in every result payload).
    """
    status, submitted = await client.request("POST", "/v1/jobs", job_params)
    if status != 202:
        raise ServiceError(f"job submission failed ({status}): {submitted}", status=502)
    job_id = submitted["job"]
    deadline = time.monotonic() + timeout
    while True:
        status, described = await client.request("GET", f"/v1/jobs/{job_id}")
        if status != 200:
            raise ServiceError(f"job poll failed ({status}): {described}", status=502)
        if described["status"] in _TERMINAL:
            break
        if time.monotonic() > deadline:
            raise ServiceError(f"job {job_id} timed out", status=502)
        await asyncio.sleep(poll_interval)
    if described["status"] != "done":
        raise ServiceError(
            f"job {job_id} finished {described['status']}: {described.get('error')}",
            status=502,
        )
    status, result = await client.request("GET", f"/v1/jobs/{job_id}/result")
    if status != 200:
        raise ServiceError(f"result fetch failed ({status}): {result}", status=502)
    return result


async def collect_job_events(host: str, port: int, job_id: str, *,
                             max_events: int = 10_000,
                             timeout: float = 60.0) -> list[dict]:
    """Consume ``GET /v1/jobs/{id}/events`` (SSE) until the job ends.

    Returns the decoded ``data:`` payloads in order.  The stream
    replays the job's history, so a terminal job still yields its full
    record.  Raises :class:`ServiceError` on a non-200 response or a
    stream that goes silent for ``timeout`` seconds.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET /v1/jobs/{job_id}/events HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\nConnection: close\r\n\r\n".encode("ascii")
        )
        await writer.drain()
        head = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), timeout)
        status = int(head.split(b" ", 2)[1])
        if status != 200:
            raise ServiceError(f"event stream for {job_id} answered {status}", status=502)
        events: list[dict] = []
        data_lines: list[str] = []
        while len(events) < max_events:
            line = await asyncio.wait_for(reader.readline(), timeout)
            if not line:
                break
            text = line.decode("utf-8").rstrip("\r\n")
            if text.startswith("data: "):
                data_lines.append(text[len("data: "):])
            elif not text and data_lines:
                events.append(json.loads("\n".join(data_lines)))
                data_lines = []
                if events[-1].get("event") in _TERMINAL:
                    break
        return events
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass


async def _estimate_worker(host: str, port: int, path: str, stop_at: float,
                           latencies: list, failures: list) -> None:
    client = await ServiceClient(host, port).connect()
    try:
        while time.monotonic() < stop_at:
            begin = time.perf_counter()
            status, payload = await client.request("GET", path)
            if status != 200:
                # Record the response body, not just the code — a bare
                # "[400]" in the failure summary tells the operator
                # nothing about *which* validation failed.
                failures.append(describe_failure(status, payload))
                return
            latencies.append(time.perf_counter() - begin)
    finally:
        await client.close()


def describe_failure(status: int, payload) -> str:
    """One-line summary of a non-2xx response: status plus its body.

    The service answers every error with the uniform envelope
    ``{"error": {"code", "message", "request_id"}}``; surface the code
    and message (truncated) so the failure summary is actionable.
    Legacy plain-string ``error`` bodies are handled too.

    Examples
    --------
    >>> describe_failure(400, {"error": {"code": "bad_request",
    ...     "message": "estimate needs u and v", "request_id": "ab-01"}})
    '400 [bad_request]: estimate needs u and v'
    >>> describe_failure(400, {"error": "estimate needs u and v"})
    '400: estimate needs u and v'
    >>> describe_failure(503, None)
    '503: <no body>'
    """
    code = None
    if isinstance(payload, dict) and "error" in payload:
        error = payload["error"]
        if isinstance(error, dict):
            code = error.get("code")
            body = str(error.get("message", error))
        else:
            body = str(error)
    elif payload is None:
        body = "<no body>"
    else:
        body = json.dumps(payload, sort_keys=True)
    if len(body) > 200:
        body = body[:197] + "..."
    prefix = f"{status} [{code}]" if code else f"{status}"
    return f"{prefix}: {body}"


def _quantile(sorted_values: list, q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(int(q * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[index]


def _split_url(url: str) -> tuple[str, int]:
    split = urlsplit(url if "//" in url else f"http://{url}")
    return split.hostname or "127.0.0.1", split.port or 80


async def run_load(url: str, *, graph: str, algorithm: str = "mcp", k: int = 4,
                   samples: int = 500, seed: int = 0, duration: float = 3.0,
                   concurrency: int = 4, upload: str | None = None,
                   u: str = "0", v: str = "1") -> dict:
    """Run the full measurement against a live service.

    Returns a dict with the benchmark cells plus request totals; raises
    :class:`ServiceError` when any request misbehaves.  With ``upload``
    set, the file's ``.uel`` text is uploaded under ``graph`` first.
    The warm job's SSE stream is consumed and verified as part of the
    run (at least the lifecycle events, each echoing the stream's
    request id).
    """
    host, port = _split_url(url)
    await wait_ready(host, port)
    client = await ServiceClient(host, port).connect()
    try:
        if upload is not None:
            with open(upload, "r", encoding="utf-8") as handle:
                text = handle.read()
            status, payload = await client.request("PUT", f"/v1/graphs/{graph}", text)
            if status != 200:
                raise ServiceError(f"graph upload failed ({status}): {payload}", status=502)
        job_params = {"graph": graph, "algorithm": algorithm, "k": k,
                      "samples": samples, "seed": seed}

        begin = time.perf_counter()
        cold = await run_job(client, job_params)
        cold_seconds = time.perf_counter() - begin

        begin = time.perf_counter()
        warm = await run_job(client, job_params)
        warm_seconds = time.perf_counter() - begin
        if cold.get("worlds_sampled", 0) > 0 and not warm.get("warm", False):
            raise ServiceError(
                "warm repeat was not served from the oracle cache "
                f"(cold sampled {cold.get('worlds_sampled')}, "
                f"warm sampled {warm.get('worlds_sampled')})",
                status=502,
            )
        if warm.get("assignment") != cold.get("assignment"):
            raise ServiceError("warm labels differ from cold labels", status=502)

        events = await collect_job_events(host, port, warm["job"])
        if not events:
            raise ServiceError(
                f"event stream for {warm['job']} delivered no events", status=502
            )
        if any(not event.get("request_id") for event in events):
            raise ServiceError(
                "SSE events are missing the stream request id", status=502
            )

        estimate_path = (
            f"/v1/graphs/{graph}/estimate?u={u}&v={v}&samples={samples}&seed={seed}"
        )
        status, payload = await client.request("GET", estimate_path)
        if status != 200:
            raise ServiceError(f"estimate failed ({status}): {payload}", status=502)
        latencies: list = []
        failures: list = []
        stop_at = time.monotonic() + duration
        await asyncio.gather(*(
            _estimate_worker(host, port, estimate_path, stop_at, latencies, failures)
            for _ in range(concurrency)
        ))
        if failures:
            raise ServiceError(
                "sustained load saw non-200 responses: " + "; ".join(failures),
                status=502,
            )
        if not latencies:
            raise ServiceError("sustained load completed zero requests", status=502)
        latencies.sort()
    finally:
        await client.close()
    return {
        "algorithm": algorithm,
        "graph": graph,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "cold_worlds_sampled": cold.get("worlds_sampled"),
        "warm_worlds_sampled": warm.get("worlds_sampled"),
        "warm": warm.get("warm"),
        "sse_events": len(events),
        "sustained_requests": len(latencies),
        "sustained_duration_s": duration,
        "requests_per_second": len(latencies) / duration,
        "latency_p50_s": _quantile(latencies, 0.50),
        "latency_p95_s": _quantile(latencies, 0.95),
        "latency_p99_s": _quantile(latencies, 0.99),
        "concurrency": concurrency,
    }


async def scrape_metrics(url: str) -> dict[str, float]:
    """Scrape ``GET /v1/metrics`` and return the flattened series.

    Keys are ``name`` or ``name{label="value",...}`` exactly as exposed
    (see :func:`repro.telemetry.parse_prometheus_text`); the snapshot
    rides along in the ``BENCH_service.json`` artifact so a benchmark
    run records what the service actually did, not just how fast.
    """
    host, port = _split_url(url)
    client = await ServiceClient(host, port).connect()
    try:
        status, text = await client.request("GET", "/v1/metrics")
        if status != 200 or not isinstance(text, str):
            raise ServiceError(f"metrics scrape failed ({status})", status=502)
    finally:
        await client.close()
    return parse_prometheus_text(text)


async def _toggle_edge(client: ServiceClient, graph: str, u: str, v: str,
                       state: dict) -> None:
    """Alternately add and remove the synthetic edge ``(u, v)``.

    The first attempt may guess the edge's presence wrong (it might
    pre-exist in the graph); it flips and retries once, then tracks the
    state locally.
    """
    op = "remove" if state.get("present") else "add"
    ops = [{"op": op, "u": u, "v": v, **({"p": 0.5} if op == "add" else {})}]
    status, payload = await client.request("PATCH", f"/v1/graphs/{graph}/edges", {"ops": ops})
    if status != 200 and not state.get("probed"):
        state["present"] = not state.get("present")
        state["probed"] = True
        return await _toggle_edge(client, graph, u, v, state)
    if status != 200:
        raise ServiceError(
            f"mutation failed: {describe_failure(status, payload)}", status=502
        )
    state["probed"] = True
    state["present"] = op == "add"


async def run_mixed_load(url: str, *, graph: str, k: int = 4, samples: int = 500,
                         seed: int = 0, jobs: int = 12, concurrency: int = 4,
                         u: str = "0", v: str = "1",
                         client_id: str | None = None) -> dict:
    """Throughput of a mixed cold/warm/mutate job stream (jobs/second).

    Every fourth job is preceded by an edge mutation (invalidating the
    warm pool, exercising ancestor derivation), every other job
    repeats the fixed seed (warm path), and the rest use fresh seeds
    (cold path).  ``concurrency`` submitter connections drive the
    stream; the returned ``jobs_per_s`` is the scaling-vs-workers
    benchmark cell.
    """
    host, port = _split_url(url)
    await wait_ready(host, port)
    kinds = []
    for index in range(jobs):
        if index % 4 == 3:
            kinds.append("mutate")
        elif index % 2 == 1:
            kinds.append("warm")
        else:
            kinds.append("cold")
    queue: asyncio.Queue = asyncio.Queue()
    for index, kind in enumerate(kinds):
        queue.put_nowait((index, kind))
    mutate_lock = asyncio.Lock()
    mutate_state: dict = {}
    counts = {"cold": 0, "warm": 0, "mutate": 0}
    failures: list[str] = []

    async def submitter() -> None:
        client = await ServiceClient(host, port, client_id=client_id).connect()
        try:
            while True:
                try:
                    index, kind = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                params = {"graph": graph, "algorithm": "mcp", "k": k,
                          "samples": samples, "seed": seed}
                try:
                    if kind == "cold":
                        params["seed"] = seed + 1000 + index
                    elif kind == "mutate":
                        # One mutation at a time: the toggle state must
                        # match the graph's actual contents.
                        async with mutate_lock:
                            await _toggle_edge(client, graph, u, v, mutate_state)
                    await run_job(client, params)
                    counts[kind] += 1
                except ServiceError as error:
                    failures.append(f"{kind} job {index}: {error}")
                    return
        finally:
            await client.close()

    begin = time.perf_counter()
    await asyncio.gather(*(submitter() for _ in range(concurrency)))
    elapsed = time.perf_counter() - begin
    if failures:
        raise ServiceError(
            "mixed load saw failures: " + "; ".join(failures[:5]), status=502
        )
    return {
        "jobs": jobs,
        "seconds": elapsed,
        "jobs_per_s": jobs / elapsed,
        "concurrency": concurrency,
        "counts": counts,
    }


async def run_burst(url: str, *, graph: str, count: int = 16, k: int = 4,
                    samples: int = 200_000, seed: int = 0,
                    client_id: str | None = None) -> dict:
    """Burst ``count`` distinct submissions to probe admission control.

    Jobs use distinct seeds (so none coalesce) and a large sample
    budget (so they stay queued); once the queue bound fills, the
    service must answer 429 with a ``Retry-After`` header instead of
    queueing without bound.  All accepted jobs are cancelled before
    returning.  Returns acceptance/rejection counts; the caller
    decides whether a rejection was required (``--require-429``).
    """
    host, port = _split_url(url)
    await wait_ready(host, port)
    client = await ServiceClient(host, port, client_id=client_id).connect()
    accepted: list[str] = []
    rejected = 0
    retry_after_present = True
    try:
        for index in range(count):
            params = {"graph": graph, "algorithm": "mcp", "k": k,
                      "samples": samples, "seed": seed + 5000 + index}
            status, payload = await client.request("POST", "/v1/jobs", params)
            if status == 202:
                accepted.append(payload["job"])
            elif status == 429:
                rejected += 1
                if "retry-after" not in client.last_headers:
                    retry_after_present = False
            else:
                raise ServiceError(
                    f"burst submission {index} answered "
                    f"{describe_failure(status, payload)}", status=502,
                )
        for job_id in accepted:
            await client.request("DELETE", f"/v1/jobs/{job_id}")
    finally:
        await client.close()
    return {
        "submitted": count,
        "accepted": len(accepted),
        "rejected_429": rejected,
        "retry_after_present": retry_after_present,
    }


def write_artifact(results: dict, path) -> None:
    """Write ``results`` as a schema-1 ``BENCH_service.json`` artifact.

    The layout matches ``benchmarks/record.py`` so
    ``benchmarks/compare.py`` can diff service artifacts against the
    committed baseline like any other suite.  Mixed-load and burst
    phases (when run) are recorded as extra cells/metadata.
    """
    algo = results["algorithm"]
    benchmarks = {
        f"job/{algo}/cold": {
            "seconds": results["cold_seconds"],
            "items": 1,
            "throughput": 1.0 / results["cold_seconds"],
            "meta": {"graph": results["graph"], "worlds_sampled": results["cold_worlds_sampled"]},
        },
        f"job/{algo}/warm": {
            "seconds": results["warm_seconds"],
            "items": 1,
            "throughput": 1.0 / results["warm_seconds"],
            "meta": {"graph": results["graph"], "worlds_sampled": results["warm_worlds_sampled"]},
        },
        "estimate/sustained": {
            "seconds": results["sustained_duration_s"],
            "items": results["sustained_requests"],
            "throughput": results["requests_per_second"],
            "meta": {
                "concurrency": results["concurrency"],
                "latency_p50_s": results["latency_p50_s"],
                "latency_p95_s": results["latency_p95_s"],
                "latency_p99_s": results.get("latency_p99_s", 0.0),
            },
        },
    }
    mixed = results.get("mixed")
    if mixed:
        benchmarks["job/mixed"] = {
            "seconds": mixed["seconds"],
            "items": mixed["jobs"],
            "throughput": mixed["jobs_per_s"],
            "meta": {"concurrency": mixed["concurrency"], "counts": mixed["counts"]},
        }
    artifact = {
        "schema": 1,
        "suite": "service",
        "host": {
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "platform": platform.platform(),
            "cpu_count": os.cpu_count() or 1,
        },
        "benchmarks": benchmarks,
    }
    burst = results.get("burst")
    if burst:
        artifact["burst"] = burst
    metrics = results.get("metrics")
    if metrics:
        # Extra top-level key; compare.py diffs only "benchmarks", so
        # the snapshot is schema-compatible informational payload.
        artifact["metrics"] = metrics
    path = os.fspath(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")


def summarize(results: dict) -> str:
    """Human-readable one-screen summary of a load run."""
    lines = [
        f"cold {results['algorithm']} job   {results['cold_seconds'] * 1000:8.1f} ms "
        f"({results['cold_worlds_sampled']} worlds sampled)",
        f"warm {results['algorithm']} job   {results['warm_seconds'] * 1000:8.1f} ms "
        f"(zero sampling: {results['warm']}, {results.get('sse_events', 0)} SSE events)",
        f"sustained estimates {results['requests_per_second']:8.1f} req/s "
        f"over {results['sustained_duration_s']:.1f}s x{results['concurrency']} "
        f"(p50 {results['latency_p50_s'] * 1000:.1f} ms, "
        f"p95 {results['latency_p95_s'] * 1000:.1f} ms, "
        f"p99 {results.get('latency_p99_s', 0.0) * 1000:.1f} ms)",
    ]
    mixed = results.get("mixed")
    if mixed:
        lines.append(
            f"mixed job stream    {mixed['jobs_per_s']:8.2f} jobs/s "
            f"({mixed['jobs']} jobs x{mixed['concurrency']}: {mixed['counts']})"
        )
    burst = results.get("burst")
    if burst:
        lines.append(
            f"burst admission     {burst['rejected_429']}/{burst['submitted']} "
            f"rejected 429 (Retry-After: {burst['retry_after_present']})"
        )
    return "\n".join(lines)
