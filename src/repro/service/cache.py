"""In-process oracle cache: LRU byte-budget over a shared world store.

The service's hot path.  Every clustering job and reliability estimate
builds a short-lived :class:`~repro.sampling.oracle.MonteCarloOracle`
attached to one shared :class:`~repro.sampling.store.WorldStore`, so
the expensive part — the sampled world pool — is drawn once per
``pool_fingerprint(graph, seed, backend, chunk_size)`` and reused by
every later request with the same key, bit-identically (worlds are pure
functions of ``(seed, i)``).  A warm repeated request therefore
performs **zero** new world sampling and returns labels identical to
the equivalent direct library call, which is pinned by
``tests/test_service.py``'s sampler-spy test.

Pools are evicted least-recently-used once their packed masks + labels
exceed a byte budget.  Pools leased by an in-flight request are pinned
and never evicted mid-computation; eviction of a disk-backed pool
removes its directory (it will be re-sampled on the next miss — the
cache is best-effort by construction, see the PR-3 invalidation
contract in ``docs/ARCHITECTURE.md``).

Graph mutations *derive* instead of evicting: when a lease misses but
the caller supplies ancestor revisions of the graph (the registry's
lineage after ``PATCH /graphs/{name}/edges``), the cache pins the
nearest ancestor's pool and runs
:func:`~repro.sampling.deltas.derive_pool` — resampling only the
touched edge columns and repairing only the affected labels — so the
first request after a mutation is warm-ish instead of cold.  The pin
makes derive-vs-evict race-free: eviction either skips the pinned
parent or completes first, in which case derivation falls back to
cold sampling (never a crash, never wrong worlds).
"""

from __future__ import annotations

import threading
import weakref
from collections import Counter, OrderedDict
from contextlib import contextmanager

from repro import telemetry
from repro.exceptions import WorldStoreError
from repro.sampling.backends import resolve_backend
from repro.sampling.deltas import derive_pool
from repro.sampling.oracle import MonteCarloOracle
from repro.sampling.store import WorldStore, pool_fingerprint
from repro.utils.rng import ensure_seed_sequence

# One code path for the two observability views: ``GET /v1/cache``
# serves ``OracleCache.stats()`` directly, and these series are set
# *from the same stats() snapshot* by a scrape-time collector (see
# :meth:`OracleCache.attach_metrics`) — the endpoint and the metrics
# cannot drift.
_CACHE_COUNTER_KEYS = (
    "leases", "warm_leases", "evictions", "worlds_cached",
    "worlds_sampled", "pools_derived", "worlds_derived",
)
_CACHE_COUNTERS = {
    # local_only: mirrored from stats() per process — fleet-summing
    # them would break the pinned equality with GET /v1/cache.
    key: telemetry.get_registry().counter(
        f"repro_cache_{key}_total",
        f"Oracle-cache ``{key}`` (mirrors GET /v1/cache stats()).",
        local_only=True,
    )
    for key in _CACHE_COUNTER_KEYS
}
_CACHE_POOLS = telemetry.get_registry().gauge(
    "repro_cache_pools", "World pools currently held by the oracle cache.")
_CACHE_BYTES = telemetry.get_registry().gauge(
    "repro_cache_bytes", "Current pool footprint in bytes (masks + labels).")
_CACHE_MAX_BYTES = telemetry.get_registry().gauge(
    "repro_cache_max_bytes", "Configured oracle-cache byte budget.")


class OracleCache:
    """LRU byte-budget cache of sampled world pools.

    Parameters
    ----------
    store:
        The shared :class:`WorldStore` (in-memory by default; pass a
        disk-backed store to persist pools across service restarts).
    max_bytes:
        Eviction threshold over the summed packed-mask + label bytes of
        all pools.  The budget is enforced when a lease is released,
        never mid-lease, so a single pool larger than the budget still
        serves its own request (and is evicted afterwards).

    Examples
    --------
    >>> from repro.graph.uncertain_graph import UncertainGraph
    >>> g = UncertainGraph.from_edges([(0, 1, 0.5), (1, 2, 0.5)])
    >>> cache = OracleCache(max_bytes=1 << 20)
    >>> with cache.lease(g, seed=7) as oracle:
    ...     oracle.ensure_samples(64)
    >>> with cache.lease(g, seed=7) as oracle:   # warm: zero sampling
    ...     oracle.ensure_samples(64)
    ...     oracle.cache_stats["worlds_sampled"]
    0
    >>> cache.stats()["pools"]
    1
    """

    def __init__(self, store: WorldStore | None = None, *, max_bytes: int = 256 << 20):
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self._store = store if store is not None else WorldStore()
        self._max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._recency: OrderedDict[str, None] = OrderedDict()
        self._pinned: Counter[str] = Counter()
        self._leases = 0
        self._warm_leases = 0
        self._evictions = 0
        self._worlds_cached = 0
        self._worlds_sampled = 0
        self._pools_derived = 0
        self._worlds_derived = 0

    def attach_metrics(self, registry=None) -> None:
        """Mirror this cache's :meth:`stats` into the metrics registry.

        Registers a scrape-time collector that copies one ``stats()``
        snapshot into the ``repro_cache_*`` series, so ``GET
        /v1/metrics`` and ``GET /v1/cache`` report identical totals by
        construction.  The collector holds only a weak reference; a
        dropped cache stops updating the series without pinning memory.
        """
        if registry is None:
            registry = telemetry.get_registry()
        ref = weakref.ref(self)

        def collect() -> None:
            cache = ref()
            if cache is None:
                return
            stats = cache.stats()
            for key in _CACHE_COUNTER_KEYS:
                _CACHE_COUNTERS[key].set_total(stats[key])
            _CACHE_POOLS.set(stats["pools"])
            _CACHE_BYTES.set(stats["bytes"])
            _CACHE_MAX_BYTES.set(stats["max_bytes"])

        registry.register_collector(collect)

    @property
    def store(self) -> WorldStore:
        """The shared world store behind the cache."""
        return self._store

    @property
    def max_bytes(self) -> int:
        """The configured byte budget."""
        return self._max_bytes

    @contextmanager
    def lease(self, graph, *, seed, chunk_size: int = 512,
              max_samples: int = 1_000_000, backend="auto", workers=1,
              ancestors=()):
        """Yield a store-attached oracle, pinning its pool for the lease.

        The oracle is built fresh (oracles are single-threaded; the
        shared state is the store) and closed on exit.  While the lease
        is open the pool cannot be evicted; on release the pool is
        marked most-recently-used, the lease's cache statistics are
        folded into the cache totals, and the byte budget is enforced.

        ``ancestors`` (nearest first) are earlier revisions of
        ``graph``; when the graph's own pool is empty but an ancestor's
        is not, the ancestor pool is pinned and *derived* into the
        graph's pool before the oracle attaches — the post-mutation
        warm path.  Derivation failures of any kind fall through to
        cold sampling.

        The pin is taken *before* the oracle registers the pool in the
        store, and eviction clears victims while holding the cache
        lock, so pin-vs-evict is race-free: an eviction either sees the
        pin and skips the pool, or completes first — in which case this
        lease's registration re-creates the pool and simply re-samples.
        """
        seed_seq = ensure_seed_sequence(seed)
        resolved_backend = resolve_backend(backend, graph)
        digest = pool_fingerprint(graph, seed_seq, resolved_backend.name, chunk_size)
        oracle = None
        with self._lock:
            self._pinned[digest] += 1
        try:
            if ancestors:
                self._derive_from_ancestors(
                    graph, ancestors, seed_seq, resolved_backend, chunk_size, digest
                )
            oracle = MonteCarloOracle(
                graph, seed=seed_seq, chunk_size=chunk_size, max_samples=max_samples,
                backend=resolved_backend, workers=workers, store=self._store,
            )
            yield oracle
        finally:
            stats = (
                oracle.cache_stats if oracle is not None
                else {"worlds_cached": 0, "worlds_sampled": 0}
            )
            if oracle is not None:
                oracle.close()
            with self._lock:
                self._pinned[digest] -= 1
                if self._pinned[digest] <= 0:
                    del self._pinned[digest]
                self._leases += 1
                # A lease whose oracle never attached (construction
                # raised before the pool was registered) must not enter
                # the LRU: recording it would accumulate junk digests
                # from bad requests until a budget trip, and its
                # ``first_touch`` would trigger a pointless store
                # rescan.
                first_touch = False
                if oracle is not None:
                    first_touch = digest not in self._recency
                    self._recency[digest] = None
                    self._recency.move_to_end(digest)
                self._worlds_cached += stats["worlds_cached"]
                self._worlds_sampled += stats["worlds_sampled"]
                if stats["worlds_sampled"] == 0 and stats["worlds_cached"] > 0:
                    self._warm_leases += 1
            # The pool footprint can only grow when this lease sampled
            # new worlds or touched a pool we have not accounted yet —
            # warm repeats (the hot path) skip the store rescan.
            if stats["worlds_sampled"] > 0 or first_touch:
                self._enforce_budget()

    def _derive_from_ancestors(
        self, graph, ancestors, seed_seq, backend, chunk_size, digest
    ) -> None:
        """Try to derive ``graph``'s pool from the nearest warm ancestor.

        Best-effort by construction: every store interaction is allowed
        to fail (the parent may be evicted or cleared concurrently by
        another worker thread or process), in which case the lease
        simply proceeds cold.  The parent pool is pinned for the
        duration of its derivation so eviction cannot pull it out from
        under the block reads; see ``tests/test_deltas.py`` for the
        eviction-interplay pins.
        """
        try:
            if self._store.count(
                self._store.register(graph, seed_seq, backend.name, chunk_size)
            ) > 0:
                return  # already warm — nothing to derive
        except (WorldStoreError, OSError, ValueError):
            return
        for parent in ancestors:
            if parent.n_nodes != graph.n_nodes:
                continue  # lineage crossed an upload; not derivable
            parent_digest = pool_fingerprint(parent, seed_seq, backend.name, chunk_size)
            if parent_digest == digest:
                continue
            with self._lock:
                self._pinned[parent_digest] += 1
            try:
                result = derive_pool(
                    self._store, parent, graph,
                    seed=seed_seq, backend=backend, chunk_size=chunk_size,
                )
            except (WorldStoreError, OSError, ValueError):
                result = None
            finally:
                with self._lock:
                    self._pinned[parent_digest] -= 1
                    if self._pinned[parent_digest] <= 0:
                        del self._pinned[parent_digest]
            if result is not None and result.worlds_derived > 0:
                with self._lock:
                    self._pools_derived += 1
                    self._worlds_derived += result.worlds_derived
                return

    def _pool_bytes(self) -> dict[str, int]:
        """Per-pool byte sizes from the store.

        Lock ordering: callers hold the cache lock, and ``store.info()``
        takes the store's own lock — so the ordering is always *cache
        lock → store lock*.  The store never calls back into the cache,
        which keeps the ordering acyclic (no deadlock); never take the
        cache lock from code the store can invoke.
        """
        return {
            pool.digest: pool.mask_bytes + pool.label_bytes
            for pool in self._store.info()
        }

    def _enforce_budget(self) -> None:
        """Evict LRU unpinned pools until the byte budget is met.

        The size snapshot, victim selection *and* the store clears all
        happen under the cache lock.  Snapshotting outside it (the old
        behavior) let a lease register and grow a pool between snapshot
        and eviction: the new pool escaped the total, and eviction
        mis-subtracted the stale size of any concurrently-grown pool,
        leaving the budget silently overshot.
        """
        with self._lock:
            sizes = self._pool_bytes()
            total = sum(sizes.values())
            if total <= self._max_bytes:
                return
            # Pools the store holds but this process never leased (e.g.
            # left over in a disk cache dir from earlier runs) count
            # toward the total, so they must be evictable too — as the
            # oldest candidates, before anything recently used —
            # otherwise an over-budget legacy pool would force every
            # fresh pool out forever.
            unleased = [digest for digest in sorted(sizes) if digest not in self._recency]
            for digest in unleased + list(self._recency):
                if total <= self._max_bytes:
                    break
                if self._pinned.get(digest):
                    continue
                total -= sizes.get(digest, 0)
                self._recency.pop(digest, None)
                self._evictions += 1
                self._store.clear(digest)

    def stats(self) -> dict:
        """Cache counters for the service's ``GET /cache`` endpoint.

        ``leases`` counts completed leases, ``warm_leases`` the subset
        that sampled nothing new; ``bytes`` is the current pool
        footprint (packed masks + labels) against ``max_bytes``.  The
        snapshot is taken under the cache lock so the byte total and
        the counters describe one consistent instant.
        """
        with self._lock:
            sizes = self._pool_bytes()
            return {
                "pools": len(sizes),
                "bytes": sum(sizes.values()),
                "max_bytes": self._max_bytes,
                "leases": self._leases,
                "warm_leases": self._warm_leases,
                "evictions": self._evictions,
                "worlds_cached": self._worlds_cached,
                "worlds_sampled": self._worlds_sampled,
                "pools_derived": self._pools_derived,
                "worlds_derived": self._worlds_derived,
            }
