"""Minimal dependency-free asyncio HTTP/1.1 server.

The clustering service must run anywhere the library runs, so this
module implements just enough of HTTP/1.1 on top of
:func:`asyncio.start_server` — no third-party web framework:

* request parsing (request line, headers, ``Content-Length`` bodies)
  with hard limits on header and body sizes;
* keep-alive connections (closed on request, protocol error, or
  HTTP/1.0);
* a :class:`Router` mapping ``METHOD /path/{param}`` templates to
  async handlers, with a *canonical prefix* (``/v1``) and a
  deprecation shim: legacy un-prefixed paths keep working but every
  response to one carries a ``Deprecation: true`` header plus a
  ``Link: </v1/...>; rel="successor-version"`` pointer;
* a uniform response envelope — every response carries an
  ``X-Request-Id`` header (generated per request and logged via the
  ``repro.service`` logger) and every error body has exactly one
  shape, ``{"error": {"code", "message", "request_id"}}``
  (:func:`error_payload`);
* streamed responses: a handler may return an :class:`EventStream`
  whose chunks (``text/event-stream`` events) are written as they are
  produced — the job-progress SSE endpoint;
* an optional async *middleware* hook invoked before routing —
  admission control (rate limits, drain-mode 503s) plugs in there.

Handlers raise :class:`~repro.exceptions.ServiceError` for
client-visible failures; the server translates the carried status,
error code, and extra headers (e.g. ``Retry-After``).  Everything else
is deliberately boring: the interesting parts of the service live in
:mod:`repro.service.app`.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import logging
import os
import re
import time
from collections.abc import Awaitable, Callable
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

from repro import telemetry
from repro.exceptions import ServiceError

log = logging.getLogger("repro.service")

_HTTP_REQUESTS = telemetry.get_registry().counter(
    "repro_http_requests_total",
    "HTTP requests served, by route template, method, and status.",
    ("route", "method", "status"),
)
_HTTP_LATENCY = telemetry.get_registry().histogram(
    "repro_http_request_seconds",
    "Request wall time by route template and method.",
    ("route", "method"),
)

#: Upper bound on the request head (request line + headers).
MAX_HEADER_BYTES = 64 * 1024

#: Upper bound on a request body (graph uploads are the largest).
MAX_BODY_BYTES = 64 * 1024 * 1024

_REQUEST_LINE_RE = re.compile(r"^([A-Z]+) (\S+) HTTP/(1\.[01])$")
_PARAM_RE = re.compile(r"\{([a-zA-Z_][a-zA-Z0-9_]*)\}")

_STATUS_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}

#: Machine-readable error codes of the uniform envelope, by status.
ERROR_CODES = {
    400: "bad_request",
    404: "not_found",
    405: "method_not_allowed",
    409: "conflict",
    413: "payload_too_large",
    429: "rate_limited",
    500: "internal",
    501: "not_implemented",
    503: "unavailable",
}


def error_code_for(status: int) -> str:
    """The envelope ``code`` implied by an HTTP status.

    Examples
    --------
    >>> error_code_for(404)
    'not_found'
    >>> error_code_for(418)
    'error'
    """
    return ERROR_CODES.get(status, "error")


def error_payload(status: int, message: str, *, code: str | None = None,
                  request_id: str | None = None) -> dict:
    """The uniform error envelope every non-2xx response carries.

    Examples
    --------
    >>> error_payload(404, "no such graph: x", request_id="abc123")
    {'error': {'code': 'not_found', 'message': 'no such graph: x', 'request_id': 'abc123'}}
    """
    return {
        "error": {
            "code": code or error_code_for(status),
            "message": message,
            "request_id": request_id,
        }
    }


@dataclass
class Request:
    """One parsed HTTP request.

    ``params`` holds the values captured from the route template (e.g.
    ``{name}``) and is filled in by the router, not the parser.
    ``client`` is the peer address (the admission-control key when no
    ``X-Client-Id`` header overrides it), ``request_id`` the generated
    per-request id echoed in the ``X-Request-Id`` response header, and
    ``deprecated`` whether the request arrived on a legacy
    (un-versioned) path alias.
    """

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes
    params: dict[str, str] = field(default_factory=dict)
    client: str = ""
    request_id: str = ""
    deprecated: bool = False
    #: Canonical route template matched by the router (e.g.
    #: ``/v1/jobs/{id}``) — the low-cardinality metrics label; empty
    #: until resolved, and for 404/405 requests.
    route: str = ""

    @property
    def client_key(self) -> str:
        """The admission-control identity of this request.

        The ``X-Client-Id`` header when present (so load balancers and
        tests can name clients), the peer address otherwise.
        """
        return self.headers.get("x-client-id") or self.client or "unknown"

    def json(self):
        """Decode the body as JSON, raising a 400 :class:`ServiceError`.

        An empty body decodes to ``{}`` so optional-body endpoints need
        no special casing.
        """
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceError(f"malformed JSON body: {error}", status=400) from None

    def text(self) -> str:
        """Decode the body as UTF-8 text, raising a 400 :class:`ServiceError`."""
        try:
            return self.body.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ServiceError(f"body is not valid UTF-8: {error}", status=400) from None


@dataclass
class Response:
    """A buffered response: status, payload, extra headers.

    ``payload`` is JSON-encoded unless ``content_type`` is set, in
    which case it must be ``str`` or ``bytes`` and is written verbatim
    with that ``Content-Type`` (the Prometheus ``/v1/metrics`` endpoint
    serves its text format this way).
    """

    status: int
    payload: object
    headers: dict[str, str] = field(default_factory=dict)
    content_type: str | None = None

    @classmethod
    def coerce(cls, result) -> "Response":
        """Normalize a handler return value.

        Handlers may return a :class:`Response`, ``(status, payload)``,
        or ``(status, payload, headers)``.
        """
        if isinstance(result, cls):
            return result
        if isinstance(result, tuple):
            if len(result) == 2:
                return cls(result[0], result[1])
            if len(result) == 3:
                return cls(result[0], result[1], dict(result[2]))
        raise TypeError(f"handler returned {result!r}, not a Response or (status, payload[, headers])")


class EventStream:
    """A streamed ``text/event-stream`` response.

    ``chunks`` is an async iterable of ``bytes`` (pre-formatted SSE
    frames — see :func:`sse_event`); they are written to the socket as
    they are produced, and the connection is closed when the iterator
    ends (the stream has no ``Content-Length``, so close *is* the
    framing).
    """

    def __init__(self, chunks, *, status: int = 200, headers: dict | None = None):
        self.status = int(status)
        self.chunks = chunks
        self.headers = dict(headers) if headers else {}


def sse_event(data, *, event: str | None = None, event_id=None) -> bytes:
    """Format one server-sent event frame.

    ``data`` is JSON-encoded (compact, sorted keys) so every event is a
    single ``data:`` line; ``event`` and ``event_id`` become the
    optional ``event:`` / ``id:`` fields.

    Examples
    --------
    >>> sse_event({"q": 0.5}, event="progress", event_id=3)
    b'id: 3\\nevent: progress\\ndata: {"q":0.5}\\n\\n'
    """
    frame = ""
    if event_id is not None:
        frame += f"id: {event_id}\n"
    if event is not None:
        frame += f"event: {event}\n"
    frame += "data: " + json.dumps(data, separators=(",", ":"), sort_keys=True) + "\n\n"
    return frame.encode("utf-8")


Handler = Callable[[Request], Awaitable[object]]


class Router:
    """Match ``(method, path)`` pairs against ``/path/{param}`` templates.

    With a ``canonical_prefix`` (the service passes ``"/v1"``), routes
    are registered under their canonical (prefixed) paths and a legacy
    alias shim keeps the un-prefixed spellings working: a request for
    ``/graphs/x`` resolves to the ``/v1/graphs/x`` handler with
    ``request.deprecated`` set, which the server surfaces as a
    ``Deprecation: true`` response header.

    Examples
    --------
    >>> import asyncio
    >>> router = Router(canonical_prefix="/v1")
    >>> async def show(request):
    ...     return 200, {"graph": request.params["name"]}
    >>> router.add("GET", "/v1/graphs/{name}", show)
    >>> request = Request("GET", "/graphs/toy", {}, {}, b"")
    >>> handler = router.resolve(request)
    >>> request.deprecated, request.params
    (True, {'name': 'toy'})
    >>> asyncio.run(handler(request))
    (200, {'graph': 'toy'})
    """

    def __init__(self, *, canonical_prefix: str | None = None):
        self._routes: list[tuple[str, re.Pattern, str, Handler]] = []
        self._prefix = canonical_prefix

    def add(self, method: str, template: str, handler: Handler) -> None:
        """Register ``handler`` for ``method`` requests matching ``template``.

        ``{param}`` segments match any non-empty run of characters other
        than ``/`` and are exposed through ``request.params``.
        """
        pattern = _PARAM_RE.sub(r"(?P<\1>[^/]+)", re.escape(template).replace(r"\{", "{").replace(r"\}", "}"))
        self._routes.append((method.upper(), re.compile(f"^{pattern}$"), template, handler))

    def _match(self, method: str, path: str):
        """``(handler, params, template, path_known)`` for an exact path match."""
        path_known = False
        for route_method, pattern, template, handler in self._routes:
            match = pattern.match(path)
            if match is None:
                continue
            path_known = True
            if route_method == method:
                return handler, match.groupdict(), template, True
        return None, None, "", path_known

    def resolve(self, request: Request) -> Handler:
        """Return the handler for ``request``, filling ``request.params``.

        Raises a 404 :class:`ServiceError` for an unknown path and a 405
        for a known path requested with the wrong method.  Legacy
        (un-prefixed) aliases of canonical routes resolve with
        ``request.deprecated`` set (and ``request.route`` naming the
        canonical template, so metrics aggregate both spellings).
        """
        handler, params, template, path_known = self._match(request.method, request.path)
        if handler is None and self._prefix and not request.path.startswith(self._prefix + "/"):
            aliased, alias_params, alias_template, alias_known = self._match(
                request.method, self._prefix + request.path
            )
            if aliased is not None:
                request.deprecated = True
                request.params = alias_params
                request.route = alias_template
                return aliased
            path_known = path_known or alias_known
        if handler is not None:
            request.params = params
            request.route = template
            return handler
        if path_known:
            raise ServiceError(f"method {request.method} not allowed for {request.path}", status=405)
        raise ServiceError(f"no such endpoint: {request.path}", status=404)


def _serialize_headers(headers: dict[str, str]) -> str:
    return "".join(f"{name}: {value}\r\n" for name, value in headers.items())


def json_response(status: int, payload, headers: dict[str, str] | None = None) -> bytes:
    """Serialize one complete HTTP/1.1 response with a JSON body."""
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")
    return _buffered_response(status, body, "application/json", headers)


def text_response(status: int, text, content_type: str,
                  headers: dict[str, str] | None = None) -> bytes:
    """Serialize one complete HTTP/1.1 response with a verbatim body."""
    body = text if isinstance(text, bytes) else str(text).encode("utf-8")
    return _buffered_response(status, body, content_type, headers)


def _buffered_response(status: int, body: bytes, content_type: str,
                       headers: dict[str, str] | None) -> bytes:
    reason = _STATUS_REASONS.get(status, "OK")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        + _serialize_headers(headers or {})
        + "Connection: keep-alive\r\n\r\n"
    )
    return head.encode("latin-1") + body


def stream_head(status: int, headers: dict[str, str] | None = None) -> bytes:
    """The response head of a streamed ``text/event-stream`` response.

    No ``Content-Length``: the stream ends when the connection closes,
    which is why the head pins ``Connection: close``.
    """
    reason = _STATUS_REASONS.get(status, "OK")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: text/event-stream\r\n"
        f"Cache-Control: no-cache\r\n"
        + _serialize_headers(headers or {})
        + "Connection: close\r\n\r\n"
    )
    return head.encode("latin-1")


class _ProtocolError(Exception):
    """A request so malformed the connection must be dropped."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


async def _read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request off ``reader``; ``None`` on clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean close between requests
        raise _ProtocolError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise _ProtocolError(413, f"request head exceeds {MAX_HEADER_BYTES} bytes") from None
    if len(head) > MAX_HEADER_BYTES:
        raise _ProtocolError(413, f"request head exceeds {MAX_HEADER_BYTES} bytes")
    try:
        lines = head.decode("latin-1").split("\r\n")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 never fails
        raise _ProtocolError(400, "undecodable request head") from None
    match = _REQUEST_LINE_RE.match(lines[0])
    if match is None:
        raise _ProtocolError(400, f"malformed request line: {lines[0]!r}")
    method, target, version = match.groups()
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise _ProtocolError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    if "transfer-encoding" in headers:
        # Bodies are framed by Content-Length only; silently ignoring a
        # chunked body would register empty payloads and desync the
        # keep-alive stream on the leftover chunk bytes.
        raise _ProtocolError(501, "Transfer-Encoding is not supported; send a Content-Length body")
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise _ProtocolError(400, "malformed Content-Length header") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise _ProtocolError(413, f"body of {length} bytes exceeds {MAX_BODY_BYTES}")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise _ProtocolError(400, "truncated request body") from None
    request = Request(method, split.path or "/", query, headers, body)
    if version == "1.0" and headers.get("connection", "").lower() != "keep-alive":
        headers["connection"] = "close"
    return request


class HttpServer:
    """Serve a :class:`Router` over asyncio streams.

    Parameters
    ----------
    router:
        The route table; handlers are ``async (Request) -> (status,
        payload[, headers]) | Response | EventStream``.
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`port`
        after :meth:`start`).
    middleware:
        Optional ``async (Request) -> None`` invoked before routing.
        Raising :class:`ServiceError` short-circuits the request with
        that error (admission control returns its 429s/503s this way).
    """

    def __init__(self, router: Router, *, host: str = "127.0.0.1", port: int = 0,
                 middleware=None):
        self._router = router
        self._host = host
        self._requested_port = port
        self._middleware = middleware
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.Task] = set()
        # Request ids are unique per server instance *and* across
        # instances (the random prefix), so log lines from two serve
        # processes never collide.
        self._id_prefix = os.urandom(3).hex()
        self._id_counter = itertools.count(1)

    @property
    def port(self) -> int:
        """The bound port (only meaningful after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        """The configured bind host."""
        return self._host

    async def start(self) -> "HttpServer":
        """Bind and start accepting connections; returns ``self``."""
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._requested_port,
            limit=MAX_HEADER_BYTES,
        )
        return self

    async def close(self) -> None:
        """Stop accepting connections and wait for the socket to close.

        Handler tasks parked on idle keep-alive connections are
        cancelled first — on Python >= 3.12.1 ``Server.wait_closed()``
        waits for every connection handler, so leaving them blocked in
        ``readuntil`` would hang shutdown until clients disconnect.
        """
        if self._server is not None:
            self._server.close()
            for task in list(self._connections):
                task.cancel()
            if self._connections:
                await asyncio.gather(*self._connections, return_exceptions=True)
            await self._server.wait_closed()
            self._server = None

    def _response_headers(self, request: Request, extra: dict[str, str]) -> dict[str, str]:
        """Envelope headers of every response: request id + deprecation."""
        headers = {"X-Request-Id": request.request_id}
        if request.deprecated:
            headers["Deprecation"] = "true"
            headers["Link"] = f'</v1{request.path}>; rel="successor-version"'
        headers.update(extra)
        return headers

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        peer = writer.get_extra_info("peername")
        client = peer[0] if isinstance(peer, tuple) else str(peer or "")
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except _ProtocolError as error:
                    writer.write(json_response(
                        error.status, error_payload(error.status, str(error))
                    ))
                    await writer.drain()
                    break
                if request is None:
                    break
                request.client = client
                request.request_id = f"{self._id_prefix}-{next(self._id_counter):06x}"
                response = await self._dispatch(request)
                log.info(
                    "%s %s %s -> %d [%s]",
                    request.client_key, request.method, request.path,
                    response.status, request.request_id,
                )
                if isinstance(response, EventStream):
                    writer.write(stream_head(
                        response.status, self._response_headers(request, response.headers)
                    ))
                    await writer.drain()
                    async for chunk in response.chunks:
                        writer.write(chunk)
                        await writer.drain()
                    break  # Connection: close is the stream framing
                envelope = self._response_headers(request, response.headers)
                if response.content_type is not None:
                    writer.write(text_response(
                        response.status, response.payload,
                        response.content_type, envelope,
                    ))
                else:
                    writer.write(json_response(
                        response.status, response.payload, envelope,
                    ))
                await writer.drain()
                if request.headers.get("connection", "").lower() == "close":
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Server shutdown cancels handler tasks parked on idle
            # keep-alive connections; ending quietly (instead of
            # re-raising) keeps the stream-protocol teardown silent.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                # CancelledError: server.close() cancelled this handler
                # while it waited for the transport teardown — the
                # socket is closed either way.
                pass

    async def _dispatch(self, request: Request):
        tracer = telemetry.get_tracer()
        started = time.perf_counter()
        with tracer.trace(request.request_id), \
                tracer.span("http.request", method=request.method,
                            path=request.path) as span:
            response = await self._dispatch_inner(request)
            span.set("status", response.status)
        route = request.route or "unmatched"
        _HTTP_REQUESTS.labels(route=route, method=request.method,
                              status=str(response.status)).inc()
        _HTTP_LATENCY.labels(route=route, method=request.method).observe(
            time.perf_counter() - started)
        return response

    async def _dispatch_inner(self, request: Request):
        try:
            if self._middleware is not None:
                await self._middleware(request)
            handler = self._router.resolve(request)
            result = await handler(request)
            if isinstance(result, EventStream):
                return result
            return Response.coerce(result)
        except ServiceError as error:
            return Response(
                error.status,
                error_payload(error.status, str(error), code=error.code,
                              request_id=request.request_id),
                dict(error.headers),
            )
        except Exception as error:  # noqa: BLE001 - last-resort boundary
            log.exception("unhandled error serving %s %s [%s]",
                          request.method, request.path, request.request_id)
            return Response(
                500,
                error_payload(500, f"{type(error).__name__}: {error}",
                              request_id=request.request_id),
            )
