"""Minimal dependency-free asyncio HTTP/1.1 server.

The clustering service must run anywhere the library runs, so this
module implements just enough of HTTP/1.1 on top of
:func:`asyncio.start_server` — no third-party web framework:

* request parsing (request line, headers, ``Content-Length`` bodies)
  with hard limits on header and body sizes;
* keep-alive connections (closed on request, protocol error, or
  HTTP/1.0);
* a :class:`Router` mapping ``METHOD /path/{param}`` templates to
  async handlers;
* JSON responses everywhere — handlers return ``(status, payload)``
  and every error, including a handler crash, is reported as a JSON
  body ``{"error": ...}`` with the right status code.

Handlers raise :class:`~repro.exceptions.ServiceError` for
client-visible failures; the server translates the carried status.
Everything else is deliberately boring: the interesting parts of the
service live in :mod:`repro.service.app`.
"""

from __future__ import annotations

import asyncio
import json
import re
from collections.abc import Awaitable, Callable
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

from repro.exceptions import ServiceError

#: Upper bound on the request head (request line + headers).
MAX_HEADER_BYTES = 64 * 1024

#: Upper bound on a request body (graph uploads are the largest).
MAX_BODY_BYTES = 64 * 1024 * 1024

_REQUEST_LINE_RE = re.compile(r"^([A-Z]+) (\S+) HTTP/(1\.[01])$")
_PARAM_RE = re.compile(r"\{([a-zA-Z_][a-zA-Z0-9_]*)\}")

_STATUS_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
}


@dataclass
class Request:
    """One parsed HTTP request.

    ``params`` holds the values captured from the route template (e.g.
    ``{name}``) and is filled in by the router, not the parser.
    """

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes
    params: dict[str, str] = field(default_factory=dict)

    def json(self):
        """Decode the body as JSON, raising a 400 :class:`ServiceError`.

        An empty body decodes to ``{}`` so optional-body endpoints need
        no special casing.
        """
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceError(f"malformed JSON body: {error}", status=400) from None

    def text(self) -> str:
        """Decode the body as UTF-8 text, raising a 400 :class:`ServiceError`."""
        try:
            return self.body.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ServiceError(f"body is not valid UTF-8: {error}", status=400) from None


Handler = Callable[[Request], Awaitable[tuple[int, object]]]


class Router:
    """Match ``(method, path)`` pairs against ``/path/{param}`` templates.

    Examples
    --------
    >>> import asyncio
    >>> router = Router()
    >>> async def show(request):
    ...     return 200, {"graph": request.params["name"]}
    >>> router.add("GET", "/graphs/{name}", show)
    >>> request = Request("GET", "/graphs/toy", {}, {}, b"")
    >>> handler = router.resolve(request)
    >>> asyncio.run(handler(request))
    (200, {'graph': 'toy'})
    >>> request.params
    {'name': 'toy'}
    """

    def __init__(self):
        self._routes: list[tuple[str, re.Pattern, Handler]] = []

    def add(self, method: str, template: str, handler: Handler) -> None:
        """Register ``handler`` for ``method`` requests matching ``template``.

        ``{param}`` segments match any non-empty run of characters other
        than ``/`` and are exposed through ``request.params``.
        """
        pattern = _PARAM_RE.sub(r"(?P<\1>[^/]+)", re.escape(template).replace(r"\{", "{").replace(r"\}", "}"))
        self._routes.append((method.upper(), re.compile(f"^{pattern}$"), handler))

    def resolve(self, request: Request) -> Handler:
        """Return the handler for ``request``, filling ``request.params``.

        Raises a 404 :class:`ServiceError` for an unknown path and a 405
        for a known path requested with the wrong method.
        """
        path_known = False
        for method, pattern, handler in self._routes:
            match = pattern.match(request.path)
            if match is None:
                continue
            path_known = True
            if method == request.method:
                request.params = match.groupdict()
                return handler
        if path_known:
            raise ServiceError(f"method {request.method} not allowed for {request.path}", status=405)
        raise ServiceError(f"no such endpoint: {request.path}", status=404)


def json_response(status: int, payload) -> bytes:
    """Serialize one complete HTTP/1.1 response with a JSON body."""
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")
    reason = _STATUS_REASONS.get(status, "OK")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: keep-alive\r\n\r\n"
    )
    return head.encode("ascii") + body


class _ProtocolError(Exception):
    """A request so malformed the connection must be dropped."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


async def _read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request off ``reader``; ``None`` on clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean close between requests
        raise _ProtocolError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise _ProtocolError(413, f"request head exceeds {MAX_HEADER_BYTES} bytes") from None
    if len(head) > MAX_HEADER_BYTES:
        raise _ProtocolError(413, f"request head exceeds {MAX_HEADER_BYTES} bytes")
    try:
        lines = head.decode("latin-1").split("\r\n")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 never fails
        raise _ProtocolError(400, "undecodable request head") from None
    match = _REQUEST_LINE_RE.match(lines[0])
    if match is None:
        raise _ProtocolError(400, f"malformed request line: {lines[0]!r}")
    method, target, version = match.groups()
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise _ProtocolError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    if "transfer-encoding" in headers:
        # Bodies are framed by Content-Length only; silently ignoring a
        # chunked body would register empty payloads and desync the
        # keep-alive stream on the leftover chunk bytes.
        raise _ProtocolError(501, "Transfer-Encoding is not supported; send a Content-Length body")
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise _ProtocolError(400, "malformed Content-Length header") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise _ProtocolError(413, f"body of {length} bytes exceeds {MAX_BODY_BYTES}")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise _ProtocolError(400, "truncated request body") from None
    request = Request(method, split.path or "/", query, headers, body)
    if version == "1.0" and headers.get("connection", "").lower() != "keep-alive":
        headers["connection"] = "close"
    return request


class HttpServer:
    """Serve a :class:`Router` over asyncio streams.

    Parameters
    ----------
    router:
        The route table; handlers are ``async (Request) -> (status,
        payload)``.
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`port`
        after :meth:`start`).
    """

    def __init__(self, router: Router, *, host: str = "127.0.0.1", port: int = 0):
        self._router = router
        self._host = host
        self._requested_port = port
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.Task] = set()

    @property
    def port(self) -> int:
        """The bound port (only meaningful after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        """The configured bind host."""
        return self._host

    async def start(self) -> "HttpServer":
        """Bind and start accepting connections; returns ``self``."""
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._requested_port,
            limit=MAX_HEADER_BYTES,
        )
        return self

    async def close(self) -> None:
        """Stop accepting connections and wait for the socket to close.

        Handler tasks parked on idle keep-alive connections are
        cancelled first — on Python >= 3.12.1 ``Server.wait_closed()``
        waits for every connection handler, so leaving them blocked in
        ``readuntil`` would hang shutdown until clients disconnect.
        """
        if self._server is not None:
            self._server.close()
            for task in list(self._connections):
                task.cancel()
            if self._connections:
                await asyncio.gather(*self._connections, return_exceptions=True)
            await self._server.wait_closed()
            self._server = None

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except _ProtocolError as error:
                    writer.write(json_response(error.status, {"error": str(error)}))
                    await writer.drain()
                    break
                if request is None:
                    break
                status, payload = await self._dispatch(request)
                writer.write(json_response(status, payload))
                await writer.drain()
                if request.headers.get("connection", "").lower() == "close":
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Server shutdown cancels handler tasks parked on idle
            # keep-alive connections; ending quietly (instead of
            # re-raising) keeps the stream-protocol teardown silent.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _dispatch(self, request: Request) -> tuple[int, object]:
        try:
            handler = self._router.resolve(request)
            return await handler(request)
        except ServiceError as error:
            return error.status, {"error": str(error)}
        except Exception as error:  # noqa: BLE001 - last-resort boundary
            return 500, {"error": f"{type(error).__name__}: {error}"}
