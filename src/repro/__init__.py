"""repro — a reproduction of "Clustering Uncertain Graphs" (VLDB 2017).

Public API
----------
Data structure
    :class:`UncertainGraph`
Oracles
    :class:`MonteCarloOracle` (progressive sampling), :class:`ExactOracle`
Clustering algorithms
    :func:`mcp_clustering`, :func:`acp_clustering`, :func:`min_partial`
Workloads
    ``repro.workloads`` — :func:`kmedian_clustering`,
    :func:`kcenter_clustering`, :func:`expected_centrality` over the
    shared world pool, with exact-enumeration references
Baselines
    ``repro.baselines`` — :func:`mcl_clustering`, :func:`gmm_clustering`,
    :func:`kpt_clustering`
Metrics
    ``repro.metrics`` — pmin / pavg / inner- & outer-AVPR / pair confusion
Datasets
    ``repro.datasets`` — PPI-like and DBLP-like generators with planted
    ground truth
Experiments
    ``repro.experiments`` — regenerate every table and figure of the paper
Service
    ``repro.service`` — async HTTP/JSON clustering service with an
    oracle cache and a background job queue (``repro serve``)
"""

from repro.exceptions import (
    ClusteringError,
    ExperimentError,
    GraphValidationError,
    OracleError,
    ReproError,
)
from repro.graph import UncertainGraph, read_uncertain_graph, write_uncertain_graph
from repro.sampling import ExactOracle, MonteCarloOracle
from repro.core import (
    ACPResult,
    Clustering,
    MCPResult,
    MinPartialResult,
    acp_clustering,
    mcp_clustering,
    min_partial,
)
from repro.workloads import (
    CentralityResult,
    KClusteringResult,
    expected_centrality,
    kcenter_clustering,
    kmedian_clustering,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "GraphValidationError",
    "ClusteringError",
    "OracleError",
    "ExperimentError",
    "UncertainGraph",
    "read_uncertain_graph",
    "write_uncertain_graph",
    "MonteCarloOracle",
    "ExactOracle",
    "Clustering",
    "MinPartialResult",
    "min_partial",
    "MCPResult",
    "mcp_clustering",
    "ACPResult",
    "acp_clustering",
    "KClusteringResult",
    "kmedian_clustering",
    "kcenter_clustering",
    "CentralityResult",
    "expected_centrality",
]
