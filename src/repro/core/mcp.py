"""The MCP clustering algorithm (Algorithm 2).

Maximizes the *minimum* connection probability of a node to its cluster
center.  Strategy: guess a threshold ``q`` starting at 1, run
``min-partial(G, k, q, 1, q)``, and lower ``q`` until the returned
partial clustering covers every node; a final binary search between the
last failing and the first covering guess recovers threshold precision
(paper Section 5).

Guarantee (Theorem 3 / Theorem 7): the returned clustering ``C``
satisfies ``min-prob(C) >= (1 - eps) p_opt_min(k)^2 / (1 + gamma)``
with high probability, and the algorithm never needs to estimate
connection probabilities much smaller than ``p_opt_min(k)^2`` — the key
to practical running times.

The depth-limited variant (``depth=d``) optimizes ``min-prob_d`` and
carries the guarantee of Theorem 5 in terms of
``p_opt_min(k, floor(d/2))``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import telemetry
from repro.core.clustering import Clustering, complete_clustering
from repro.core.common import resolve_oracle, resolve_sample_schedule, validate_common
from repro.core.partial import min_partial
from repro.core.schedule import refine_between, resolve_guess_schedule
from repro.exceptions import ClusteringError
from repro.graph.uncertain_graph import UncertainGraph
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class GuessRecord:
    """One guess of the threshold schedule."""

    q: float
    samples: int
    covered: int
    covers_all: bool


@dataclass(frozen=True)
class MCPResult:
    """Outcome of :func:`mcp_clustering`.

    Attributes
    ----------
    clustering:
        The returned k-clustering (full unless the schedule bottomed out
        at ``p_lower`` without covering; then ``covers_all`` is False and
        the clustering was completed by best-center assignment anyway).
    q_final:
        The largest threshold whose ``min-partial`` run covered all
        nodes (or the last attempted threshold on failure).
    min_prob_estimate:
        Estimated objective value of the returned clustering.
    history:
        One :class:`GuessRecord` per ``min-partial`` invocation,
        including binary-search probes.
    """

    clustering: Clustering
    q_final: float
    covers_all: bool
    min_prob_estimate: float
    samples_used: int
    history: tuple[GuessRecord, ...] = field(repr=False)

    @property
    def n_guesses(self) -> int:
        return len(self.history)


def mcp_clustering(
    graph: UncertainGraph | None,
    k: int,
    *,
    oracle=None,
    gamma: float = 0.1,
    eps: float = 0.3,
    seed=None,
    depth: int | None = None,
    p_lower: float = 1e-4,
    guess_schedule="doubling",
    sample_schedule=None,
    refine: bool = True,
    alpha: int = 1,
    q_bar: float | None = None,
    chunk_size: int = 512,
    max_samples: int = 1_000_000,
    backend="auto",
    workers=1,
    store=None,
    cache_dir=None,
    cancel_check=None,
    progress=None,
) -> MCPResult:
    """Cluster an uncertain graph maximizing minimum connection probability.

    Parameters
    ----------
    graph:
        The uncertain graph (may be ``None`` when ``oracle`` is given).
    k:
        Number of clusters, ``1 <= k < n``.
    oracle:
        Optional pre-built oracle (e.g. :class:`ExactOracle` in tests or
        a shared :class:`MonteCarloOracle` across runs).
    gamma:
        Threshold-schedule resolution; the guarantee degrades by
        ``1/(1+gamma)`` (paper uses 0.1).
    eps:
        Monte Carlo relative-error parameter (Section 4).
    depth:
        Optional path-length limit ``d`` (Algorithm 4 semantics).
    p_lower:
        Smallest threshold the schedule may reach (``p_L``); the paper's
        experiments use ``1e-4``.
    guess_schedule:
        ``"doubling"`` (paper Section 5), ``"geometric"`` (Algorithm 2
        verbatim) or an explicit decreasing sequence.
    sample_schedule:
        ``None``/``"practical"``, ``"theoretical"`` (Eq. 9), or a
        callable ``q -> r``.
    refine:
        Run the final binary search between the last two guesses.
    alpha, q_bar:
        ``min-partial`` design parameters (defaults match Algorithm 2:
        ``alpha=1``, ``q_bar=q``).
    backend:
        World-labeling backend for a freshly built Monte Carlo oracle:
        ``"auto"``, ``"scipy"``, ``"unionfind"`` or a
        :class:`~repro.sampling.backends.WorldBackend` instance.
        Results are bit-identical across backends for a fixed seed.
        Ignored when ``oracle`` is given.
    workers:
        Sampling parallelism of a freshly built oracle: ``1`` (serial),
        a positive int, or ``"auto"`` (see
        :mod:`repro.sampling.parallel`).  Results are bit-identical
        under every worker count.  Ignored when ``oracle`` is given.
    store, cache_dir:
        World-store attachment of a freshly built oracle (see
        :mod:`repro.sampling.store`): a shared
        :class:`~repro.sampling.store.WorldStore` instance, or a cache
        directory that persists the sampled pool across process runs.
        Two calls with the same ``(graph, seed, backend, chunk_size)``
        share one pool instead of resampling.  Ignored when ``oracle``
        is given.
    cancel_check:
        Optional zero-argument callable invoked before every threshold
        guess (binary-search probes included).  Raise from it — e.g.
        :class:`~repro.exceptions.JobCancelledError` — to abort the run
        cooperatively; the exception propagates unchanged.  This is how
        the clustering service cancels jobs running off the event loop.
    progress:
        Optional callable invoked after every threshold guess
        (binary-search probes included) with a JSON-safe dict
        ``{"q", "samples", "covered", "covers_all"}`` mirroring the
        :class:`GuessRecord` just appended to the history — the hook
        the clustering service streams job-progress events from.
        Exceptions raised by the callback propagate unchanged.

    Returns
    -------
    MCPResult

    Examples
    --------
    >>> g = UncertainGraph.from_edges(
    ...     [(0, 1, 0.9), (1, 2, 0.9), (3, 4, 0.8), (4, 5, 0.8), (2, 3, 0.05)])
    >>> result = mcp_clustering(g, k=2, seed=0)
    >>> result.clustering.covers_all
    True
    """
    oracle = resolve_oracle(
        graph, oracle, seed=seed, chunk_size=chunk_size, max_samples=max_samples,
        backend=backend, workers=workers, store=store, cache_dir=cache_dir,
    )
    n = oracle.n_nodes
    validate_common(k, n, gamma, eps, p_lower, depth)
    samples_for = resolve_sample_schedule(
        sample_schedule, kind="mcp", eps=eps, gamma=gamma, n=n, p_lower=p_lower
    )
    guesses = resolve_guess_schedule(guess_schedule, gamma, p_lower)
    rng = ensure_rng(seed)
    history: list[GuessRecord] = []
    # Exact oracles need no threshold relaxation.
    oracle_is_sampled = not _is_exact(oracle)

    def run_guess(q: float):
        if cancel_check is not None:
            cancel_check()
        with telemetry.get_tracer().span("mcp.guess", q=q) as span:
            result = _run_guess_traced(q, span)
        return result

    def _run_guess_traced(q: float, span):
        oracle.ensure_samples(samples_for(q))
        result = min_partial(
            oracle,
            k,
            q,
            alpha=alpha,
            q_bar=q_bar if q_bar is not None else q,
            eps=eps if oracle_is_sampled else 0.0,
            rng=rng,
            depth=depth,
        )
        record = GuessRecord(
            q=q,
            samples=oracle.num_samples if oracle_is_sampled else 0,
            covered=result.clustering.n_covered,
            covers_all=result.covers_all,
        )
        history.append(record)
        span.set("samples", record.samples)
        span.set("covered", record.covered)
        span.set("covers_all", record.covers_all)
        if progress is not None:
            progress({"q": record.q, "samples": record.samples,
                      "covered": record.covered, "covers_all": record.covers_all})
        return result

    best = None
    q_success = None
    q_fail = None
    last = None
    for q in guesses:
        last = run_guess(q)
        if last.covers_all:
            best = last
            q_success = q
            break
        q_fail = q
    if last is None:  # pragma: no cover - resolve_guess_schedule rejects empty schedules
        raise ClusteringError("the guess schedule produced no thresholds")

    if best is None:
        # Bottomed out at p_lower without covering: more than k "reliable
        # islands" at this floor.  Return a completed best effort.
        clustering = complete_clustering(last.clustering, last.center_rows)
        return MCPResult(
            clustering=clustering,
            q_final=guesses[-1],
            covers_all=False,
            min_prob_estimate=clustering.min_prob(),
            samples_used=oracle.num_samples if oracle_is_sampled else 0,
            history=tuple(history),
        )

    if refine and q_fail is not None and q_success < q_fail:
        outcome = {}

        def succeeds(q_mid: float) -> bool:
            result_mid = run_guess(q_mid)
            if result_mid.covers_all:
                outcome[q_mid] = result_mid
                return True
            return False

        best_q = refine_between(q_success, q_fail, succeeds, ratio=1.0 - gamma)
        if best_q in outcome:
            best = outcome[best_q]
            q_success = best_q

    clustering = best.clustering
    return MCPResult(
        clustering=clustering,
        q_final=q_success,
        covers_all=True,
        min_prob_estimate=clustering.min_prob(),
        samples_used=oracle.num_samples if oracle_is_sampled else 0,
        history=tuple(history),
    )


def _is_exact(oracle) -> bool:
    """Whether the oracle returns exact probabilities (no eps relaxation)."""
    from repro.sampling.exact import ExactOracle

    return isinstance(oracle, ExactOracle)
