"""Brute-force optimal k-clusterings for tiny instances.

Used by the test suite to validate the approximation guarantees
(Theorems 3, 4, 5) and by the NP-hardness reduction tests.  Given the
pairwise connection matrix, the optimal assignment for a *fixed* center
set assigns every node to its best-connected center — for both
objectives — so optimizing reduces to enumerating the
``n choose k`` center sets.
"""

from __future__ import annotations

import math
from itertools import combinations

import numpy as np

from repro.core.clustering import Clustering
from repro.exceptions import ClusteringError

_MAX_CENTER_SETS = 2_000_000


def _pairwise(oracle, depth: int | None) -> np.ndarray:
    return oracle.pairwise_matrix(depth=depth)


def _check_size(n: int, k: int) -> None:
    if not 1 <= k < n:
        raise ClusteringError(f"k must satisfy 1 <= k < n ({n}), got {k}")
    if math.comb(n, k) > _MAX_CENTER_SETS:
        raise ClusteringError(
            f"brute force over C({n},{k}) center sets exceeds the "
            f"{_MAX_CENTER_SETS} limit; this helper is for tiny instances"
        )


def optimal_min_prob(oracle, k: int, depth: int | None = None) -> tuple[float, tuple[int, ...]]:
    """``p_opt_min(k[, d])`` and one optimal center set."""
    n = oracle.n_nodes
    _check_size(n, k)
    matrix = _pairwise(oracle, depth)
    best_value = -1.0
    best_centers: tuple[int, ...] = ()
    for centers in combinations(range(n), k):
        value = float(matrix[list(centers)].max(axis=0).min())
        if value > best_value:
            best_value = value
            best_centers = centers
    return best_value, best_centers


def optimal_avg_prob(oracle, k: int, depth: int | None = None) -> tuple[float, tuple[int, ...]]:
    """``p_opt_avg(k[, d])`` and one optimal center set."""
    n = oracle.n_nodes
    _check_size(n, k)
    matrix = _pairwise(oracle, depth)
    best_value = -1.0
    best_centers: tuple[int, ...] = ()
    for centers in combinations(range(n), k):
        value = float(matrix[list(centers)].max(axis=0).mean())
        if value > best_value:
            best_value = value
            best_centers = centers
    return best_value, best_centers


def optimal_clustering(oracle, k: int, objective: str = "min", depth: int | None = None) -> Clustering:
    """Optimal full k-clustering under ``objective`` in {"min", "avg"}."""
    if objective == "min":
        _, centers = optimal_min_prob(oracle, k, depth)
    elif objective == "avg":
        _, centers = optimal_avg_prob(oracle, k, depth)
    else:
        raise ClusteringError(f"objective must be 'min' or 'avg', got {objective!r}")
    matrix = _pairwise(oracle, depth)
    rows = matrix[list(centers)]
    assignment = np.argmax(rows, axis=0).astype(np.int32)
    centers_arr = np.asarray(centers, dtype=np.intp)
    assignment[centers_arr] = np.arange(k, dtype=np.int32)
    n = matrix.shape[0]
    probs = rows[assignment, np.arange(n)]
    return Clustering(n, centers_arr, assignment, probs)
