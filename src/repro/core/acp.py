"""The ACP clustering algorithm (Algorithm 3).

Maximizes the *average* connection probability of nodes to their cluster
centers.  Strategy: for decreasing thresholds ``q``, compute a partial
k-clustering whose covered nodes connect to their centers with
probability at least the coverage threshold, complete it by assigning
the uncovered nodes, and keep the completion with the best average
``phi``.  The loop stops as soon as smaller thresholds can no longer
beat the best average found (line 5 of Algorithm 3).

Two modes are implemented:

``mode="theoretical"``
    ``min-partial(G, k, q^3, n, q)`` — the configuration analyzed in
    Theorem 4: ``avg-prob >= (p_opt_avg(k) / ((1+gamma) H(n)))^3``.
    The ``alpha = n`` greedy scoring makes it quadratic in the number of
    uncovered nodes; intended for small graphs and validation.
``mode="practical"`` (default)
    ``min-partial(G, k, q, 1, q)`` — the configuration the paper's
    experiments use (Section 5), chosen there after a parameter study
    because it is much faster and returns clusterings of the same
    quality, albeit without the proven bound.

Depth-limited variant (Theorem 6): coverage disks use ``d``-connection
probabilities and the theoretical selection disks ``floor(d/3)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import telemetry
from repro.core.clustering import Clustering, complete_clustering
from repro.core.common import resolve_oracle, resolve_sample_schedule, validate_common
from repro.core.mcp import GuessRecord, _is_exact
from repro.core.partial import min_partial
from repro.core.schedule import resolve_guess_schedule
from repro.exceptions import ClusteringError
from repro.graph.uncertain_graph import UncertainGraph
from repro.utils.rng import ensure_rng

_MODES = ("practical", "theoretical")


@dataclass(frozen=True)
class ACPResult:
    """Outcome of :func:`acp_clustering`.

    ``phi_best`` is the paper's objective bookkeeping value: the average
    connection probability with uncovered nodes counted as 0 *before*
    completion — the invariant ``avg-prob(C_best) >= phi_best`` holds.
    ``avg_prob_estimate`` is the measured average of the returned
    (completed) clustering, which is at least ``phi_best``.
    """

    clustering: Clustering
    phi_best: float
    q_final: float
    avg_prob_estimate: float
    mode: str
    samples_used: int
    history: tuple[GuessRecord, ...] = field(repr=False)

    @property
    def n_guesses(self) -> int:
        return len(self.history)


def acp_clustering(
    graph: UncertainGraph | None,
    k: int,
    *,
    oracle=None,
    mode: str = "practical",
    gamma: float = 0.1,
    eps: float = 0.3,
    seed=None,
    depth: int | None = None,
    p_lower: float = 1e-4,
    guess_schedule="doubling",
    sample_schedule=None,
    chunk_size: int = 512,
    max_samples: int = 1_000_000,
    backend="auto",
    workers=1,
    store=None,
    cache_dir=None,
    cancel_check=None,
    progress=None,
) -> ACPResult:
    """Cluster an uncertain graph maximizing average connection probability.

    Parameters mirror :func:`repro.core.mcp.mcp_clustering` (including
    the ``backend`` world-labeling selection, the ``workers`` sampling
    parallelism and the ``store`` / ``cache_dir`` world-store
    attachment — an MCP run followed by an ACP run with the same
    ``(graph, seed, backend, chunk_size)`` and a shared store reuses
    one sampled pool, the ``cancel_check`` cooperative-cancellation
    hook called before every threshold guess, and the ``progress``
    callback invoked after every guess with the JSON-safe dict
    ``{"q", "samples", "covered", "covers_all"}``); see the module
    docstring for the ``mode`` semantics.

    Examples
    --------
    >>> g = UncertainGraph.from_edges(
    ...     [(0, 1, 0.9), (1, 2, 0.9), (3, 4, 0.8), (4, 5, 0.8), (2, 3, 0.05)])
    >>> result = acp_clustering(g, k=2, seed=0)
    >>> result.clustering.covers_all
    True
    >>> result.avg_prob_estimate >= result.phi_best
    True
    """
    if mode not in _MODES:
        raise ClusteringError(f"mode must be one of {_MODES}, got {mode!r}")
    oracle = resolve_oracle(
        graph, oracle, seed=seed, chunk_size=chunk_size, max_samples=max_samples,
        backend=backend, workers=workers, store=store, cache_dir=cache_dir,
    )
    n = oracle.n_nodes
    validate_common(k, n, gamma, eps, p_lower, depth)
    samples_for = resolve_sample_schedule(
        sample_schedule, kind="acp", eps=eps, gamma=gamma, n=n, p_lower=p_lower
    )
    guesses = resolve_guess_schedule(guess_schedule, gamma, p_lower)
    rng = ensure_rng(seed)
    oracle_is_sampled = not _is_exact(oracle)
    history: list[GuessRecord] = []

    theoretical = mode == "theoretical"
    inner_depth = None
    if depth is not None:
        inner_depth = depth // 3 if theoretical else depth
        if theoretical and inner_depth < 1:
            raise ClusteringError(
                f"theoretical depth-limited ACP needs depth >= 3 (got {depth}) so that floor(d/3) >= 1"
            )

    def coverage_threshold(q: float) -> float:
        return q**3 if theoretical else q

    def run_guess(q: float):
        if cancel_check is not None:
            cancel_check()
        with telemetry.get_tracer().span("acp.guess", q=q) as span:
            result = _run_guess_traced(q, span)
        return result

    def _run_guess_traced(q: float, span):
        oracle.ensure_samples(samples_for(q))
        result = min_partial(
            oracle,
            k,
            coverage_threshold(q),
            alpha=n if theoretical else 1,
            q_bar=q,
            eps=eps if oracle_is_sampled else 0.0,
            rng=rng,
            depth=depth,
            inner_depth=inner_depth,
        )
        record = GuessRecord(
            q=q,
            samples=oracle.num_samples if oracle_is_sampled else 0,
            covered=result.clustering.n_covered,
            covers_all=result.covers_all,
        )
        history.append(record)
        span.set("samples", record.samples)
        span.set("covered", record.covered)
        span.set("covers_all", record.covers_all)
        if progress is not None:
            progress({"q": record.q, "samples": record.samples,
                      "covered": record.covered, "covers_all": record.covers_all})
        return result

    phi_best = -1.0
    best_completed: Clustering | None = None
    q_final = guesses[0]
    for q in guesses:
        if coverage_threshold(q) < phi_best:
            break
        result = run_guess(q)
        # Line 7: phi counts uncovered nodes as 0 (partial clustering).
        phi = result.clustering.avg_prob()
        if phi >= phi_best:
            phi_best = phi
            best_completed = complete_clustering(result.clustering, result.center_rows)
            q_final = q

    if best_completed is None:  # pragma: no cover - guesses is never empty
        raise ClusteringError("the guess schedule produced no clustering")

    return ACPResult(
        clustering=best_completed,
        phi_best=phi_best,
        q_final=q_final,
        avg_prob_estimate=best_completed.avg_prob(),
        mode=mode,
        samples_used=oracle.num_samples if oracle_is_sampled else 0,
        history=tuple(history),
    )
