"""``min-partial`` — Algorithm 1 (and its depth-limited variant, Algorithm 4).

Given a probability threshold ``q``, ``min_partial`` greedily selects up
to ``k`` centers and covers every node whose (estimated) connection
probability to some selected center is at least the coverage threshold.
Nodes below the threshold for *all* centers remain uncovered (outliers).

Design parameters (Section 3.1):

``alpha``
    Size of the candidate pool ``T`` examined per iteration.  With
    ``alpha = 1`` the next center is an arbitrary uncovered node (the
    fast path used by the MCP algorithm and the paper's practical ACP
    configuration).  With ``alpha = n`` every uncovered node is scored
    and the one covering the most uncovered nodes at threshold
    ``q_bar`` wins (the theoretical ACP configuration, Lemma 4).
``q_bar``
    Selection threshold for the greedy score, in ``[q, 1]``.

Monte Carlo integration (Section 4.1): with approximation parameter
``eps`` the thresholds are relaxed to ``(1 - eps/2) * q_bar`` for
selection and ``(1 - eps/2) * q`` for coverage, so that true
probabilities ``>= q`` are kept and true probabilities ``< (1 - eps) q``
are rejected, with high probability.

Depth limits (Algorithm 4): ``depth`` bounds the path length for
coverage disks and ``inner_depth`` (``d'`` in the paper) the one for
selection disks; the MCP variant uses ``inner_depth = depth`` and the
theoretical ACP variant ``inner_depth = depth // 3``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.clustering import UNCOVERED, Clustering
from repro.exceptions import ClusteringError
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class MinPartialResult:
    """Outcome of one ``min_partial`` run.

    ``center_rows`` holds the coverage-depth connection-probability row
    of every center (shape ``(k, n)``) so callers can complete the
    clustering or recompute objectives without re-querying the oracle.
    ``n_loop_centers`` counts centers chosen by the greedy loop (the
    remainder were padding, line 11 of Algorithm 1).
    """

    clustering: Clustering
    center_rows: np.ndarray
    q: float
    q_bar: float
    alpha: int
    eps: float
    depth: int | None
    inner_depth: int | None
    n_loop_centers: int

    @property
    def covers_all(self) -> bool:
        return self.clustering.covers_all


def _select_center(oracle, uncovered_idx, candidates, threshold, inner_depth, uncovered_mask):
    """Greedy choice: candidate covering the most uncovered nodes at ``threshold``."""
    if len(candidates) == 1:
        return int(candidates[0])
    if len(candidates) == len(uncovered_idx):
        # alpha >= |V'|: score all uncovered nodes against each other with
        # one pairwise pass instead of per-candidate full rows.
        matrix = oracle.pairwise_matrix(uncovered_idx, depth=inner_depth)
        scores = (matrix >= threshold).sum(axis=1)
        return int(uncovered_idx[int(np.argmax(scores))])
    best_node = int(candidates[0])
    best_score = -1
    for node in candidates:
        row = oracle.connection_to_all(int(node), depth=inner_depth)
        score = int(np.count_nonzero(uncovered_mask & (row >= threshold)))
        if score > best_score:
            best_score = score
            best_node = int(node)
    return best_node


def min_partial(
    oracle,
    k: int,
    q: float,
    *,
    alpha: int = 1,
    q_bar: float | None = None,
    eps: float = 0.0,
    rng=None,
    depth: int | None = None,
    inner_depth: int | None = None,
) -> MinPartialResult:
    """Algorithm 1 / Algorithm 4: maximal partial k-clustering at threshold ``q``.

    Parameters
    ----------
    oracle:
        Connection-probability oracle (Monte Carlo or exact); must
        already hold enough samples for the caller's accuracy needs.
    k:
        Number of clusters, ``1 <= k < n``.
    q:
        Coverage threshold in ``(0, 1]``.
    alpha, q_bar, eps, depth, inner_depth:
        See module docstring.
    rng:
        Drives the "arbitrary" choices (candidate pool and padding).

    Returns
    -------
    MinPartialResult
        Partial clustering where every covered node has estimated
        connection probability ``>= (1 - eps/2) q`` to its center, and
        every uncovered node is below that threshold for *all* loop
        centers (maximality).
    """
    n = oracle.n_nodes
    if not 1 <= k < n:
        raise ClusteringError(f"k must satisfy 1 <= k < n_nodes ({n}), got {k}")
    if not 0 < q <= 1:
        raise ClusteringError(f"q must be in (0, 1], got {q}")
    if q_bar is None:
        q_bar = q
    if not q <= q_bar <= 1:
        raise ClusteringError(f"q_bar must lie in [q, 1] = [{q}, 1], got {q_bar}")
    if alpha < 1:
        raise ClusteringError(f"alpha must be >= 1, got {alpha}")
    if not 0 <= eps < 1:
        raise ClusteringError(f"eps must be in [0, 1), got {eps}")
    if depth is None and inner_depth is not None:
        raise ClusteringError("inner_depth requires depth to be set")
    if depth is not None and inner_depth is None:
        inner_depth = depth
    rng = ensure_rng(rng)

    coverage_threshold = (1.0 - eps / 2.0) * q
    selection_threshold = (1.0 - eps / 2.0) * q_bar

    uncovered = np.ones(n, dtype=bool)
    centers: list[int] = []
    rows: list[np.ndarray] = []

    for _ in range(k):
        uncovered_idx = np.flatnonzero(uncovered)
        if len(uncovered_idx) == 0:
            break
        pool_size = min(alpha, len(uncovered_idx))
        if pool_size == len(uncovered_idx):
            candidates = uncovered_idx
        else:
            candidates = rng.choice(uncovered_idx, size=pool_size, replace=False)
        center = _select_center(
            oracle, uncovered_idx, candidates, selection_threshold, inner_depth, uncovered
        )
        row = oracle.connection_to_all(center, depth=depth)
        centers.append(center)
        rows.append(row)
        uncovered &= ~(row >= coverage_threshold)

    n_loop_centers = len(centers)

    # Line 10-11: pad with arbitrary non-center nodes if the loop ran out
    # of uncovered nodes before selecting k centers.
    if n_loop_centers < k:
        non_centers = np.setdiff1d(np.arange(n, dtype=np.intp), np.asarray(centers, dtype=np.intp))
        extra = rng.choice(non_centers, size=k - n_loop_centers, replace=False)
        for center in extra:
            centers.append(int(center))
            rows.append(oracle.connection_to_all(int(center), depth=depth))

    center_rows = np.vstack(rows)
    covered = ~uncovered

    # Line 12: assign each covered node to its best-connected center
    # (c(u, S) in the paper; with estimates, the argmax of p~).
    assignment = np.full(n, UNCOVERED, dtype=np.int32)
    best_center = np.argmax(center_rows, axis=0)
    assignment[covered] = best_center[covered]
    # Centers always belong to their own cluster (ties at probability 1
    # may otherwise land them elsewhere).
    centers_arr = np.asarray(centers, dtype=np.intp)
    assignment[centers_arr] = np.arange(k, dtype=np.int32)

    probs = np.zeros(n, dtype=np.float64)
    covered_after = assignment != UNCOVERED
    idx = np.flatnonzero(covered_after)
    probs[idx] = center_rows[assignment[idx], idx]

    clustering = Clustering(n, centers_arr, assignment, probs)
    return MinPartialResult(
        clustering=clustering,
        center_rows=center_rows,
        q=q,
        q_bar=q_bar,
        alpha=alpha,
        eps=eps,
        depth=depth,
        inner_depth=inner_depth,
        n_loop_centers=n_loop_centers,
    )
