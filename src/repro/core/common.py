"""Shared plumbing for the MCP and ACP drivers."""

from __future__ import annotations

from collections.abc import Callable

from repro.exceptions import ClusteringError
from repro.graph.uncertain_graph import UncertainGraph
from repro.sampling.oracle import MonteCarloOracle
from repro.sampling.sizes import (
    PracticalSchedule,
    TheoreticalACPSchedule,
    TheoreticalMCPSchedule,
)


def resolve_oracle(
    graph: UncertainGraph | None,
    oracle,
    *,
    seed,
    chunk_size: int,
    max_samples: int,
    backend="auto",
    workers=1,
    store=None,
    cache_dir=None,
):
    """Return the oracle to use: the caller's, or a fresh Monte Carlo one.

    ``backend`` selects the world-labeling backend, ``workers`` the
    sampling parallelism, and ``store`` / ``cache_dir`` the world-store
    attachment of a freshly built :class:`MonteCarloOracle` (see
    :mod:`repro.sampling.backends`, :mod:`repro.sampling.parallel` and
    :mod:`repro.sampling.store`); all are ignored when the caller
    supplies an ``oracle``.

    Examples
    --------
    >>> from repro.graph.uncertain_graph import UncertainGraph
    >>> g = UncertainGraph.from_edges([(0, 1, 0.5)])
    >>> oracle = resolve_oracle(
    ...     g, None, seed=7, chunk_size=64, max_samples=1000)
    >>> oracle.num_samples
    0
    >>> resolve_oracle(None, oracle, seed=0, chunk_size=1,
    ...                max_samples=1) is oracle   # caller's oracle wins
    True
    """
    if oracle is not None:
        return oracle
    if graph is None:
        raise ClusteringError("either a graph or an oracle must be provided")
    return MonteCarloOracle(
        graph,
        seed=seed,
        chunk_size=chunk_size,
        max_samples=max_samples,
        backend=backend,
        workers=workers,
        store=store,
        cache_dir=cache_dir,
    )


def resolve_sample_schedule(
    schedule,
    *,
    kind: str,
    eps: float,
    gamma: float,
    n: int,
    p_lower: float,
) -> Callable[[float], int]:
    """Resolve a sample schedule spec into a callable ``q -> r``.

    Accepts ``None`` / ``"practical"`` (paper Section 5 configuration),
    ``"theoretical"`` (Eq. 9 for MCP, Eq. 10 for ACP), or any callable.
    """
    if schedule is None or schedule == "practical":
        return PracticalSchedule()
    if schedule == "theoretical":
        if kind == "mcp":
            return TheoreticalMCPSchedule(eps=eps, gamma=gamma, n=n, p_lower=p_lower)
        if kind == "acp":
            return TheoreticalACPSchedule(eps=eps, gamma=gamma, n=n, p_lower=p_lower)
        raise ClusteringError(f"unknown algorithm kind {kind!r}")
    if callable(schedule):
        return schedule
    raise ClusteringError(
        f"sample_schedule must be None, 'practical', 'theoretical' or callable, got {schedule!r}"
    )


def validate_common(k: int, n: int, gamma: float, eps: float, p_lower: float, depth) -> None:
    """Validate the parameters shared by both drivers."""
    if not 1 <= k < n:
        raise ClusteringError(f"k must satisfy 1 <= k < n_nodes ({n}), got {k}")
    if gamma <= 0:
        raise ClusteringError(f"gamma must be positive, got {gamma}")
    if not 0 <= eps < 1:
        raise ClusteringError(f"eps must be in [0, 1), got {eps}")
    if not 0 < p_lower <= 1:
        raise ClusteringError(f"p_lower must be in (0, 1], got {p_lower}")
    if depth is not None and depth < 1:
        raise ClusteringError(f"depth must be >= 1, got {depth}")
