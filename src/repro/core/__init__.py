"""The paper's clustering algorithms: min-partial, MCP and ACP."""

from repro.core.clustering import Clustering, complete_clustering
from repro.core.partial import MinPartialResult, min_partial
from repro.core.mcp import MCPResult, mcp_clustering
from repro.core.acp import ACPResult, acp_clustering
from repro.core.schedule import doubling_guesses, geometric_guesses, resolve_guess_schedule
from repro.core.bruteforce import optimal_avg_prob, optimal_clustering, optimal_min_prob
from repro.core.bounds import (
    GuaranteeReport,
    acp_guarantee,
    acp_iteration_bound,
    guarantee_report,
    mcp_guarantee,
    mcp_iteration_bound,
)

__all__ = [
    "Clustering",
    "complete_clustering",
    "MinPartialResult",
    "min_partial",
    "MCPResult",
    "mcp_clustering",
    "ACPResult",
    "acp_clustering",
    "doubling_guesses",
    "geometric_guesses",
    "resolve_guess_schedule",
    "optimal_min_prob",
    "GuaranteeReport",
    "mcp_guarantee",
    "acp_guarantee",
    "mcp_iteration_bound",
    "acp_iteration_bound",
    "guarantee_report",
    "optimal_avg_prob",
    "optimal_clustering",
]
