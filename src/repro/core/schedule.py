"""Guessing schedules for the probability threshold ``q``.

Both MCP (Algorithm 2) and ACP (Algorithm 3) repeatedly run
``min-partial`` with progressively smaller thresholds.  Two schedules
are provided:

* :func:`geometric_guesses` — the schedule of the pseudocode:
  ``q = 1, 1/(1+gamma), 1/(1+gamma)^2, ...`` down to ``p_lower``.
* :func:`doubling_guesses` — the schedule the paper's experiments use
  (Section 5): ``q_i = max(1 - gamma * 2^i, p_lower)``, which reaches
  small thresholds in ``O(log(1/gamma))`` coarse steps and relies on a
  subsequent binary search (:func:`refine_between`) to recover the
  precision, "essentially equivalent up to constant factors".
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable

from repro.exceptions import ClusteringError


def geometric_guesses(gamma: float, p_lower: float) -> list[float]:
    """Thresholds ``1, 1/(1+gamma), ...`` down to (and including) ``p_lower``."""
    _check(gamma, p_lower)
    guesses = []
    q = 1.0
    while q > p_lower:
        guesses.append(q)
        q /= 1.0 + gamma
    guesses.append(p_lower)
    return guesses


def doubling_guesses(gamma: float, p_lower: float) -> list[float]:
    """Paper Section 5 schedule: ``q_i = max(1 - gamma * 2^i, p_lower)``.

    A leading guess of 1.0 is included so graphs whose optimum is
    certainty are resolved immediately (Algorithm 2 starts at ``q = 1``).
    """
    _check(gamma, p_lower)
    guesses = [1.0]
    i = 0
    while True:
        q = 1.0 - gamma * 2.0**i
        i += 1
        if q <= p_lower:
            guesses.append(p_lower)
            return guesses
        if q < guesses[-1]:
            guesses.append(q)


def _check(gamma: float, p_lower: float) -> None:
    if gamma <= 0:
        raise ClusteringError(f"gamma must be positive, got {gamma}")
    if not 0 < p_lower <= 1:
        raise ClusteringError(f"p_lower must be in (0, 1], got {p_lower}")


def resolve_guess_schedule(
    schedule: str | Iterable[float],
    gamma: float,
    p_lower: float,
) -> list[float]:
    """Materialize a guess schedule from a name or an explicit sequence.

    The result is guaranteed non-empty with every threshold finite, in
    ``(0, 1]`` and strictly decreasing — the invariants the MCP/ACP
    guess loops rely on (an empty schedule would leave them with no
    clustering to return).
    """
    if isinstance(schedule, str):
        if schedule == "geometric":
            return geometric_guesses(gamma, p_lower)
        if schedule == "doubling":
            return doubling_guesses(gamma, p_lower)
        raise ClusteringError(
            f"unknown schedule {schedule!r}; expected 'geometric', 'doubling' or a sequence"
        )
    try:
        guesses = [float(q) for q in schedule]
    except (TypeError, ValueError):
        raise ClusteringError(
            f"guess_schedule must be 'geometric', 'doubling' or an iterable of "
            f"numeric thresholds, got {schedule!r}"
        ) from None
    if not guesses:
        raise ClusteringError(
            "an explicit guess schedule cannot be empty; the guess loop needs "
            "at least one threshold"
        )
    if any(not math.isfinite(q) for q in guesses):
        raise ClusteringError("guesses must be finite")
    if any(not 0 < q <= 1 for q in guesses):
        raise ClusteringError("guesses must lie in (0, 1]")
    if any(b >= a for a, b in zip(guesses, guesses[1:], strict=False)):
        raise ClusteringError("guesses must be strictly decreasing")
    return guesses


def refine_between(
    q_low: float,
    q_high: float,
    succeeds: Callable[[float], bool],
    *,
    ratio: float,
) -> float:
    """Binary search for the largest succeeding threshold in ``[q_low, q_high]``.

    ``succeeds(q_low)`` must hold and ``q_high`` must have failed.
    Probes geometric midpoints until ``q_low / q_high > ratio`` (the
    paper stops when the lower/upper ratio exceeds ``1 - gamma``).
    Returns the largest threshold observed to succeed.
    """
    if not 0 < q_low < q_high:
        raise ClusteringError(f"need 0 < q_low < q_high, got {q_low}, {q_high}")
    if not 0 < ratio < 1:
        raise ClusteringError(f"ratio must be in (0, 1), got {ratio}")
    best = q_low
    low, high = q_low, q_high
    while low / high <= ratio:
        mid = math.sqrt(low * high)
        if succeeds(mid):
            best = mid
            low = mid
        else:
            high = mid
    return best
