"""Computable forms of the paper's approximation guarantees.

Each function turns one theorem's bound into a number for concrete
parameters, so users can ask "what does the theory promise me here?"
and tests can assert achieved ≥ promised.  The bounds are loose in
practice (the paper says so explicitly; Section 5 shows measured values
far above them) — these are floors, not predictions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ClusteringError
from repro.utils.math import harmonic_number


def _check(gamma: float, eps: float = 0.0) -> None:
    if gamma <= 0:
        raise ClusteringError(f"gamma must be positive, got {gamma}")
    if not 0 <= eps < 1:
        raise ClusteringError(f"eps must be in [0, 1), got {eps}")


def mcp_guarantee(p_opt_min: float, gamma: float, *, eps: float = 0.0) -> float:
    """Theorem 3 / 7 floor on ``min-prob`` of the returned clustering.

    ``(1 - eps) * p_opt_min^2 / (1 + gamma)`` — ``eps = 0`` gives the
    oracle version (Theorem 3), ``eps > 0`` the Monte Carlo one
    (Theorem 7, which holds with high probability).
    """
    _check(gamma, eps)
    if not 0 <= p_opt_min <= 1:
        raise ClusteringError(f"p_opt_min must be in [0, 1], got {p_opt_min}")
    return (1.0 - eps) * p_opt_min**2 / (1.0 + gamma)


def acp_guarantee(p_opt_avg: float, gamma: float, n: int, *, eps: float = 0.0) -> float:
    """Theorem 4 / 8 floor on ``avg-prob`` of the returned clustering.

    ``(1 - eps) * (p_opt_avg / ((1 + gamma) H(n)))^3``.
    """
    _check(gamma, eps)
    if not 0 <= p_opt_avg <= 1:
        raise ClusteringError(f"p_opt_avg must be in [0, 1], got {p_opt_avg}")
    if n < 1:
        raise ClusteringError(f"n must be positive, got {n}")
    return (1.0 - eps) * (p_opt_avg / ((1.0 + gamma) * harmonic_number(n))) ** 3


def mcp_depth_guarantee(p_opt_min_half_depth: float, gamma: float, *, eps: float = 0.0) -> float:
    """Theorem 5 floor: in terms of ``p_opt_min(k, floor(d/2))``."""
    return mcp_guarantee(p_opt_min_half_depth, gamma, eps=eps)


def acp_depth_guarantee(p_opt_avg_third_depth: float, gamma: float, n: int, *, eps: float = 0.0) -> float:
    """Theorem 6 floor: in terms of ``p_opt_avg(k, floor(d/3))``."""
    return acp_guarantee(p_opt_avg_third_depth, gamma, n, eps=eps)


def mcp_iteration_bound(p_opt_min: float, gamma: float) -> int:
    """Theorem 3's cap on ``min-partial`` invocations.

    ``floor(2 log_{1+gamma}(1 / p_opt_min)) + 1``.
    """
    _check(gamma)
    if not 0 < p_opt_min <= 1:
        raise ClusteringError(f"p_opt_min must be in (0, 1], got {p_opt_min}")
    return int(math.floor(2.0 * math.log(1.0 / p_opt_min) / math.log1p(gamma))) + 1


def acp_iteration_bound(p_opt_avg: float, gamma: float, n: int) -> int:
    """Theorem 4's cap: ``floor(log_{1+gamma}(H(n) / p_opt_avg)) + 1``."""
    _check(gamma)
    if not 0 < p_opt_avg <= 1:
        raise ClusteringError(f"p_opt_avg must be in (0, 1], got {p_opt_avg}")
    if n < 1:
        raise ClusteringError(f"n must be positive, got {n}")
    return int(
        math.floor(math.log(harmonic_number(n) / p_opt_avg) / math.log1p(gamma))
    ) + 1


@dataclass(frozen=True)
class GuaranteeReport:
    """The theory's promises for one clustering run, side by side.

    Produced by :func:`guarantee_report`; all fields are floors/caps
    that the corresponding run must satisfy.
    """

    objective: str
    p_opt: float
    promised_value: float
    max_min_partial_calls: int
    gamma: float
    eps: float

    def render(self) -> str:
        return (
            f"{self.objective}: optimum {self.p_opt:.4f} -> promised "
            f">= {self.promised_value:.6f} within <= "
            f"{self.max_min_partial_calls} min-partial calls "
            f"(gamma={self.gamma}, eps={self.eps})"
        )


def guarantee_report(
    objective: str,
    p_opt: float,
    *,
    gamma: float = 0.1,
    eps: float = 0.0,
    n: int | None = None,
) -> GuaranteeReport:
    """Bundle the value floor and iteration cap for one objective.

    ``objective`` is ``"mcp"`` or ``"acp"``; ACP requires ``n``.
    """
    if objective == "mcp":
        value = mcp_guarantee(p_opt, gamma, eps=eps)
        calls = mcp_iteration_bound(p_opt, gamma)
    elif objective == "acp":
        if n is None:
            raise ClusteringError("acp guarantees need the node count n")
        value = acp_guarantee(p_opt, gamma, n, eps=eps)
        calls = acp_iteration_bound(p_opt, gamma, n)
    else:
        raise ClusteringError(f"objective must be 'mcp' or 'acp', got {objective!r}")
    return GuaranteeReport(
        objective=objective,
        p_opt=p_opt,
        promised_value=value,
        max_min_partial_calls=calls,
        gamma=gamma,
        eps=eps,
    )
