"""Clustering result type shared by every algorithm in the package.

A (possibly partial) k-clustering is a set of ``k`` distinct *centers*
plus an *assignment* of each node to a cluster index, with ``-1``
marking uncovered nodes (partial clusterings leave outliers uncovered;
see Section 3.1 of the paper).  By definition each center belongs to its
own cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ClusteringError

UNCOVERED = -1


@dataclass(frozen=True)
class Clustering:
    """A (partial) k-clustering with distinguished centers.

    Attributes
    ----------
    n_nodes:
        Number of nodes in the underlying graph.
    centers:
        Array of ``k`` distinct node indices; ``centers[i]`` is the
        center of cluster ``i``.
    assignment:
        Array of length ``n_nodes``; ``assignment[u]`` is the cluster
        index of ``u`` or ``UNCOVERED`` (-1).
    center_connection:
        Optional per-node estimated connection probability to the
        assigned center (0 for uncovered nodes).  Carried along so
        objective values can be reported without re-querying an oracle.
    """

    n_nodes: int
    centers: np.ndarray
    assignment: np.ndarray
    center_connection: np.ndarray | None = field(default=None)

    def __post_init__(self):
        centers = np.ascontiguousarray(self.centers, dtype=np.intp)
        assignment = np.ascontiguousarray(self.assignment, dtype=np.int32)
        object.__setattr__(self, "centers", centers)
        object.__setattr__(self, "assignment", assignment)
        if self.center_connection is not None:
            probs = np.ascontiguousarray(self.center_connection, dtype=np.float64)
            object.__setattr__(self, "center_connection", probs)
        self._validate()

    def _validate(self):
        k = len(self.centers)
        if k == 0:
            raise ClusteringError("a clustering needs at least one center")
        if len(np.unique(self.centers)) != k:
            raise ClusteringError("cluster centers must be distinct")
        if self.centers.min() < 0 or self.centers.max() >= self.n_nodes:
            raise ClusteringError("center indices out of range")
        if self.assignment.shape != (self.n_nodes,):
            raise ClusteringError(
                f"assignment must have shape ({self.n_nodes},), got {self.assignment.shape}"
            )
        if self.assignment.min() < UNCOVERED or self.assignment.max() >= k:
            raise ClusteringError("assignment values must lie in [-1, k)")
        own = self.assignment[self.centers]
        expected = np.arange(k)
        if not np.array_equal(own, expected):
            bad = int(self.centers[np.flatnonzero(own != expected)[0]])
            raise ClusteringError(f"center {bad} is not assigned to its own cluster")
        if self.center_connection is not None:
            if self.center_connection.shape != (self.n_nodes,):
                raise ClusteringError("center_connection must have one entry per node")
            if np.any(self.center_connection < 0) or np.any(self.center_connection > 1):
                raise ClusteringError("center_connection values must lie in [0, 1]")

    # ------------------------------------------------------------------

    @property
    def k(self) -> int:
        """Number of clusters."""
        return len(self.centers)

    @property
    def covered_mask(self) -> np.ndarray:
        """Boolean mask of covered nodes."""
        return self.assignment != UNCOVERED

    @property
    def n_covered(self) -> int:
        return int(np.count_nonzero(self.covered_mask))

    @property
    def covers_all(self) -> bool:
        """Whether this is a *full* k-clustering."""
        return self.n_covered == self.n_nodes

    def clusters(self) -> list[np.ndarray]:
        """Member node indices of each cluster (centers included)."""
        order = np.argsort(self.assignment, kind="stable")
        sorted_assignment = self.assignment[order]
        start = int(np.searchsorted(sorted_assignment, 0))
        members = order[start:]
        bounds = np.searchsorted(sorted_assignment[start:], np.arange(self.k + 1))
        return [members[bounds[i]:bounds[i + 1]] for i in range(self.k)]

    def cluster_sizes(self) -> np.ndarray:
        """Number of nodes per cluster."""
        covered = self.assignment[self.assignment != UNCOVERED]
        return np.bincount(covered, minlength=self.k)

    def center_of(self, node: int) -> int:
        """Center index of ``node``'s cluster (raises if uncovered)."""
        cluster = int(self.assignment[node])
        if cluster == UNCOVERED:
            raise ClusteringError(f"node {node} is uncovered")
        return int(self.centers[cluster])

    # Objective values (from the carried estimates) -------------------

    def min_prob(self) -> float:
        """``min-prob`` (Eq. 1) over covered nodes, from carried estimates."""
        if self.center_connection is None:
            raise ClusteringError("clustering carries no connection estimates")
        covered = self.covered_mask
        if not covered.any():
            return 0.0
        return float(self.center_connection[covered].min())

    def avg_prob(self) -> float:
        """``avg-prob`` (Eq. 2): average over *all* nodes, uncovered = 0."""
        if self.center_connection is None:
            raise ClusteringError("clustering carries no connection estimates")
        values = np.where(self.covered_mask, self.center_connection, 0.0)
        return float(values.mean())

    def relabel_by_size(self) -> "Clustering":
        """Return an equivalent clustering with clusters sorted by size (desc)."""
        sizes = self.cluster_sizes()
        order = np.argsort(-sizes, kind="stable")
        inverse = np.empty_like(order)
        inverse[order] = np.arange(self.k)
        new_assignment = np.where(
            self.assignment == UNCOVERED, UNCOVERED, inverse[np.maximum(self.assignment, 0)]
        )
        return Clustering(
            self.n_nodes,
            self.centers[order],
            new_assignment,
            self.center_connection,
        )

    def __repr__(self) -> str:
        return (
            f"Clustering(k={self.k}, n_nodes={self.n_nodes}, "
            f"covered={self.n_covered}/{self.n_nodes})"
        )


def complete_clustering(clustering: Clustering, center_rows: np.ndarray) -> Clustering:
    """Turn a partial clustering into a full one.

    Uncovered nodes are assigned to the center with the highest
    estimated connection probability (``center_rows[i]`` is the
    connection-probability row of center ``i``).  This is the
    "completion" step of Algorithm 3; assigning to the *best* center
    only improves on the arbitrary assignment the analysis allows.
    """
    if clustering.covers_all:
        return clustering
    center_rows = np.asarray(center_rows, dtype=np.float64)
    if center_rows.shape != (clustering.k, clustering.n_nodes):
        raise ClusteringError(
            f"center_rows must have shape ({clustering.k}, {clustering.n_nodes}), "
            f"got {center_rows.shape}"
        )
    assignment = clustering.assignment.copy()
    uncovered = np.flatnonzero(assignment == UNCOVERED)
    best = np.argmax(center_rows[:, uncovered], axis=0)
    assignment[uncovered] = best
    if clustering.center_connection is not None:
        probs = clustering.center_connection.copy()
    else:
        probs = np.zeros(clustering.n_nodes)
    probs[uncovered] = center_rows[best, uncovered]
    return Clustering(clustering.n_nodes, clustering.centers, assignment, probs)
