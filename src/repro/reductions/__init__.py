"""Complexity reductions from the paper's hardness results."""

from repro.reductions.set_cover import (
    SetCoverInstance,
    greedy_set_cover,
    has_set_cover_of_size,
    set_cover_to_mcp,
)

__all__ = [
    "SetCoverInstance",
    "set_cover_to_mcp",
    "greedy_set_cover",
    "has_set_cover_of_size",
]
