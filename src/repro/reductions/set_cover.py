"""The Set Cover -> MCP reduction behind Theorem 2.

The paper proves NP-hardness of the MCP decision problem by building,
from a set cover instance ``(U, S, k)``, an uncertain graph whose nodes
are ``U ∪ S``, with element-set edges for membership, a clique on the
sets, and *every* edge probability equal to a tiny ``eps`` (``1/N!``
with ``N = |U| + |S|`` in the paper).  Then a k-clustering with minimum
connection probability ``>= eps`` exists iff a set cover of size ``k``
exists: direct edges contribute ``eps`` while any multi-hop connection
is ``O(N * eps^2) << eps``.

``1/N!`` underflows immediately, but the argument only needs
``N * eps^2 + N * N! * eps^3``-style path sums to stay strictly below
``eps``; :func:`set_cover_to_mcp` therefore picks (or accepts) any
sufficiently small representable ``eps`` and returns the decision
threshold alongside the graph.

Beyond the tests, this module doubles as a worked example that the
clustering problem is genuinely hard even with an oracle — see
``examples/hardness_reduction.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.exceptions import ReproError
from repro.graph.uncertain_graph import UncertainGraph


@dataclass(frozen=True)
class SetCoverInstance:
    """A set cover instance over universe ``0..universe_size-1``."""

    universe_size: int
    sets: tuple[frozenset[int], ...]

    def __post_init__(self):
        if self.universe_size < 1:
            raise ReproError(f"universe_size must be positive, got {self.universe_size}")
        object.__setattr__(self, "sets", tuple(frozenset(s) for s in self.sets))
        for s in self.sets:
            if any(not 0 <= e < self.universe_size for e in s):
                raise ReproError(f"set {sorted(s)} contains elements outside the universe")

    @property
    def n_sets(self) -> int:
        return len(self.sets)

    def is_coverable(self) -> bool:
        """Whether every element belongs to at least one set."""
        covered = set()
        for s in self.sets:
            covered |= s
        return len(covered) == self.universe_size


def element_label(i: int) -> tuple[str, int]:
    """Node label of universe element ``i`` in the reduction graph."""
    return ("u", i)


def set_label(j: int) -> tuple[str, int]:
    """Node label of set ``j`` in the reduction graph."""
    return ("s", j)


def set_cover_to_mcp(
    instance: SetCoverInstance,
    *,
    eps: float | None = None,
) -> tuple[UncertainGraph, float]:
    """Build the Theorem 2 reduction graph.

    Returns ``(graph, threshold)``: the instance has a set cover of size
    ``k`` iff the graph has a k-clustering with
    ``min-prob >= threshold`` (= ``eps``).

    ``eps`` defaults to a value small enough that the union bound over
    the (fewer than ``N^N``) longer paths stays below ``eps``:
    any ``eps <= N^{-(N+1)}`` works for the paper's argument; we clamp
    at 1e-12 so exact oracles keep meaningful precision.
    """
    if not instance.is_coverable():
        raise ReproError(
            "every universe element must belong to some set "
            "(uncoverable instances are trivially 'no')"
        )
    n_total = instance.universe_size + instance.n_sets
    if eps is None:
        eps = min(float(n_total) ** -(n_total + 1), 1e-12)
        eps = max(eps, 1e-100)
    if not 0 < eps < 1:
        raise ReproError(f"eps must be in (0, 1), got {eps}")

    edges = []
    for j, members in enumerate(instance.sets):
        for i in sorted(members):
            edges.append((element_label(i), set_label(j), eps))
    for j, l in combinations(range(instance.n_sets), 2):
        edges.append((set_label(j), set_label(l), eps))
    nodes = [element_label(i) for i in range(instance.universe_size)]
    nodes += [set_label(j) for j in range(instance.n_sets)]
    graph = UncertainGraph.from_edges(edges, nodes=nodes)
    return graph, eps


def has_set_cover_of_size(instance: SetCoverInstance, k: int) -> bool:
    """Brute-force decision: does a cover with ``k`` sets exist?"""
    if k >= instance.n_sets:
        return instance.is_coverable()
    universe = frozenset(range(instance.universe_size))
    for chosen in combinations(instance.sets, k):
        covered = frozenset().union(*chosen)
        if covered == universe:
            return True
    return False


def greedy_set_cover(instance: SetCoverInstance) -> list[int]:
    """Classic ``ln n``-approximate greedy cover (indices into ``sets``)."""
    uncovered = set(range(instance.universe_size))
    chosen: list[int] = []
    while uncovered:
        best = max(range(instance.n_sets), key=lambda j: len(instance.sets[j] & uncovered))
        gain = instance.sets[best] & uncovered
        if not gain:
            raise ReproError("instance is not coverable")
        chosen.append(best)
        uncovered -= gain
    return chosen
