"""Uncertain-graph workloads over the shared world pool.

Every workload here is a thin consumer of the same
:class:`~repro.sampling.oracle.MonteCarloOracle` pool the clustering
drivers sample — one set of packed masks serves clustering, k-median /
k-center, and expected centrality alike, so warming the pool for any
workload warms it for all of them and adding a workload never
invalidates cached worlds.

Query families
--------------
:func:`kmedian_clustering`, :func:`kcenter_clustering`
    Probabilistic k-median / k-center under expected hop distance
    (:mod:`repro.workloads.kclustering`).
:func:`expected_centrality`
    Per-node expected degree / harmonic closeness / betweenness with
    progressive-sampling confidence stopping
    (:mod:`repro.workloads.centrality`).
:mod:`repro.workloads.exact`
    Exact enumeration ground truth for every objective above.
"""

from repro.workloads.centrality import (
    CentralityResult,
    CentralityRound,
    expected_centrality,
)
from repro.workloads.exact import (
    exact_best_clustering,
    exact_clustering_objective,
    exact_expected_centrality,
    exact_expected_distances,
)
from repro.workloads.kclustering import (
    KClusteringResult,
    RoundRecord,
    kcenter_clustering,
    kmedian_clustering,
)
from repro.workloads.measures import (
    MEASURE_NAMES,
    world_betweenness,
    world_degrees,
    world_harmonic,
)

__all__ = [
    "CentralityResult",
    "CentralityRound",
    "KClusteringResult",
    "MEASURE_NAMES",
    "RoundRecord",
    "exact_best_clustering",
    "exact_clustering_objective",
    "exact_expected_centrality",
    "exact_expected_distances",
    "expected_centrality",
    "kcenter_clustering",
    "kmedian_clustering",
    "world_betweenness",
    "world_degrees",
    "world_harmonic",
]
