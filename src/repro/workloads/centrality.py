"""Expected centrality over the world pool with confidence stopping.

Per Pfeiffer & Neville's sampled-centrality line of work (PAPERS.md),
the expected centrality of a node in an uncertain graph is the
expectation of its per-world centrality over possible worlds.  The
estimator here averages the per-world kernels of
:mod:`repro.workloads.measures` over the shared Monte Carlo pool —
the same packed masks every other workload consumes, so a warm pool
means zero resampling and the estimate is a pure function of the seed.

Progressive sampling reuses the guess-schedule machinery of the
clustering drivers (:mod:`repro.core.schedule`): the threshold ramp
``q = 1, 1 - gamma, 1 - 2 gamma, ...`` is mapped through
:class:`~repro.sampling.sizes.PracticalSchedule` into a growing pool
size, and after each round the estimator computes a normal-approximation
confidence half-width ``z * std / sqrt(r)`` per node from running
moments.  The run stops at the first round where the worst-case
half-width drops to ``tol`` (absolute, on the measure's own scale), or
when the sample budget is exhausted — ``converged`` records which.

Chunks already folded into the running moments are never re-read:
each round only processes the chunks the pool grew by.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.core.common import resolve_oracle
from repro.core.schedule import resolve_guess_schedule
from repro.exceptions import ClusteringError
from repro.graph.uncertain_graph import UncertainGraph
from repro.sampling.sizes import PracticalSchedule
from repro.workloads.measures import MEASURE_KERNELS, MEASURE_NAMES

#: Two-sided normal quantile of the 95% confidence half-width.
_Z_95 = 1.959963984540054


@dataclass(frozen=True)
class CentralityRound:
    """One progressive-sampling round of :func:`expected_centrality`."""

    q: float
    samples: int
    half_width: float
    converged: bool


@dataclass(frozen=True)
class CentralityResult:
    """Outcome of :func:`expected_centrality`.

    Attributes
    ----------
    values:
        Per-node expected centrality estimates, shape ``(n,)``.
    measure:
        The measure estimated (``degree``/``harmonic``/``betweenness``).
    samples_used:
        Worlds the final estimate averages over (0 for an exact oracle).
    half_width:
        Final worst-case 95% confidence half-width across nodes
        (0 for an exact oracle).
    converged:
        Whether ``half_width <= tol`` was reached within the budget.
    history:
        One :class:`CentralityRound` per progressive round.
    """

    values: np.ndarray = field(repr=False)
    measure: str
    samples_used: int
    half_width: float
    converged: bool
    history: tuple[CentralityRound, ...] = field(repr=False)

    @property
    def n_rounds(self) -> int:
        return len(self.history)


def expected_centrality(
    graph: UncertainGraph | None,
    *,
    measure: str = "degree",
    oracle=None,
    seed=None,
    samples: int = 2000,
    tol: float = 0.05,
    gamma: float = 0.5,
    p_lower: float = 1e-4,
    guess_schedule="doubling",
    chunk_size: int = 512,
    max_samples: int = 1_000_000,
    backend="auto",
    workers=1,
    store=None,
    cache_dir=None,
    cancel_check=None,
    progress=None,
) -> CentralityResult:
    """Estimate per-node expected centrality with confidence stopping.

    Parameters
    ----------
    graph:
        The uncertain graph (may be ``None`` when ``oracle`` is given).
    measure:
        ``"degree"``, ``"harmonic"`` or ``"betweenness"`` (see
        :mod:`repro.workloads.measures`).
    oracle:
        Optional pre-built oracle.  A
        :class:`~repro.sampling.exact.ExactOracle` short-circuits the
        sampling loop entirely: the result is the exact enumeration
        value with ``half_width`` 0.
    samples:
        Sample budget — the pool size the progressive ramp may grow to.
    tol:
        Stop once every node's 95% confidence half-width is at most
        this (absolute, on the measure's own scale).
    gamma, p_lower, guess_schedule:
        The threshold ramp reused from the clustering drivers
        (:func:`repro.core.schedule.resolve_guess_schedule`); each
        threshold ``q`` is mapped to a pool size by
        :class:`~repro.sampling.sizes.PracticalSchedule`.
    backend, workers, store, cache_dir:
        Monte Carlo oracle configuration as in
        :func:`repro.core.mcp.mcp_clustering`; ignored when ``oracle``
        is given.
    cancel_check:
        Called before every round; raise from it to abort cooperatively.
    progress:
        Called after every round with a JSON-safe dict
        ``{"q", "samples", "half_width", "converged"}``.

    Examples
    --------
    >>> g = UncertainGraph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
    >>> result = expected_centrality(g, measure="degree", seed=0, samples=100)
    >>> result.values.tolist()  # certain path: degrees are exact
    [1.0, 2.0, 1.0]
    >>> result.converged
    True
    """
    from repro.core.mcp import _is_exact

    if measure not in MEASURE_NAMES:
        raise ClusteringError(
            f"measure must be one of {MEASURE_NAMES}, got {measure!r}"
        )
    if not (isinstance(tol, (int, float)) and math.isfinite(tol) and tol > 0):
        raise ClusteringError(f"tol must be a positive number, got {tol!r}")
    oracle = resolve_oracle(
        graph, oracle, seed=seed, chunk_size=chunk_size, max_samples=max_samples,
        backend=backend, workers=workers, store=store, cache_dir=cache_dir,
    )
    target = oracle.graph

    if _is_exact(oracle):
        from repro.workloads.exact import exact_expected_centrality

        values = exact_expected_centrality(target, measure)
        return CentralityResult(
            values=values, measure=measure, samples_used=0,
            half_width=0.0, converged=True, history=(),
        )

    if samples < 1:
        raise ClusteringError(f"samples must be >= 1, got {samples}")
    kernel = MEASURE_KERNELS[measure]
    n = target.n_nodes
    schedule = resolve_guess_schedule(guess_schedule, gamma, p_lower)
    pool_size_for = PracticalSchedule(max_samples=samples)

    count = 0
    sums = np.zeros(n, dtype=np.float64)
    sumsq = np.zeros(n, dtype=np.float64)
    processed_chunks = 0
    history: list[CentralityRound] = []
    converged = False
    half_width = math.inf
    for q in schedule:
        if cancel_check is not None:
            cancel_check()
        with telemetry.get_tracer().span("centrality.round", q=float(q)) as span:
            wanted = max(pool_size_for(q), count)
            if wanted > count or count == 0:
                oracle.ensure_samples(wanted)
                while processed_chunks < oracle.n_chunks:
                    chunk_values = kernel(target, oracle.chunk_masks(processed_chunks))
                    count += chunk_values.shape[0]
                    sums += chunk_values.sum(axis=0)
                    sumsq += np.square(chunk_values).sum(axis=0)
                    processed_chunks += 1
            mean = sums / count
            if count > 1:
                variance = np.maximum(sumsq - count * np.square(mean), 0.0) / (count - 1)
                half_width = float(np.sqrt(variance / count).max() * _Z_95)
            else:
                half_width = math.inf
            converged = half_width <= tol
            span.set("samples", count)
            span.set("half_width", half_width)
            span.set("converged", converged)
        record = CentralityRound(
            q=float(q), samples=count, half_width=half_width, converged=converged
        )
        history.append(record)
        if progress is not None:
            progress({"q": record.q, "samples": record.samples,
                      "half_width": record.half_width, "converged": record.converged})
        if converged or count >= samples:
            break

    return CentralityResult(
        values=sums / count,
        measure=measure,
        samples_used=count,
        half_width=half_width,
        converged=converged,
        history=tuple(history),
    )
