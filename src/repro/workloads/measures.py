"""Per-world centrality kernels shared by the MC and exact estimators.

Each kernel maps a batch of sampled worlds — an ``(r, m)`` boolean edge
mask matrix — to an ``(r, n)`` float64 matrix of per-node values, one
row per world.  The Monte Carlo estimator
(:func:`repro.workloads.centrality.expected_centrality`) averages these
rows over the pool; the exact reference
(:func:`repro.workloads.exact.exact_expected_centrality`) weights them
by world probability.  Sharing one kernel per measure means the two
paths cannot disagree about what a measure *is* — only about how worlds
are weighted.

Measures
--------
``degree``
    Number of present incident edges.  One sparse product per batch.
``harmonic``
    Harmonic closeness ``(1/(n-1)) * sum_u 1/d(v, u)`` with
    ``1/inf = 0`` for unreachable pairs — the standard centrality that
    stays well defined on the disconnected worlds uncertain graphs
    routinely produce.  One block-diagonal BFS per source walks all
    worlds of the batch at once.
``betweenness``
    Brandes shortest-path betweenness (unordered pairs, endpoints
    excluded).  Computed per world in ``O(n * m)`` each — exact and
    simple, but by far the most expensive measure; intended for the
    small graphs the workload suite and its enumeration ground truth
    target.
"""

from __future__ import annotations

from collections import deque

import numpy as np
import scipy.sparse as sp

from repro.graph.uncertain_graph import UncertainGraph
from repro.sampling.worlds import block_bfs_distances, world_block_csr

#: Valid ``measure=`` names, in the order the CLI/API document them.
MEASURE_NAMES = ("degree", "harmonic", "betweenness")


def _as_mask_matrix(graph: UncertainGraph, masks) -> np.ndarray:
    masks = np.asarray(masks, dtype=bool)
    if masks.ndim != 2 or masks.shape[1] != graph.n_edges:
        raise ValueError(
            f"masks must have shape (r, {graph.n_edges}), got {masks.shape}"
        )
    return masks


def world_degrees(graph: UncertainGraph, masks) -> np.ndarray:
    """Per-world node degrees, shape ``(r, n)``.

    Examples
    --------
    >>> g = UncertainGraph.from_edges([(0, 1, 0.5), (1, 2, 0.5)])
    >>> world_degrees(g, [[True, True], [True, False]]).tolist()
    [[1.0, 2.0, 1.0], [1.0, 1.0, 0.0]]
    """
    masks = _as_mask_matrix(graph, masks)
    r = masks.shape[0]
    n, m = graph.n_nodes, graph.n_edges
    if m == 0:
        return np.zeros((r, n), dtype=np.float64)
    incidence = sp.csr_matrix(
        (
            np.ones(2 * m, dtype=np.float64),
            (
                np.concatenate([np.arange(m), np.arange(m)]),
                np.concatenate([graph.edge_src, graph.edge_dst]),
            ),
        ),
        shape=(m, n),
    )
    return np.asarray((incidence.T @ masks.astype(np.float64).T).T)


def world_harmonic(graph: UncertainGraph, masks) -> np.ndarray:
    """Per-world harmonic closeness, shape ``(r, n)``.

    ``value[i, v] = (1/(n-1)) * sum_{u != v} 1/d_i(v, u)`` with
    unreachable pairs contributing 0; values lie in ``[0, 1]``.

    Examples
    --------
    >>> g = UncertainGraph.from_edges([(0, 1, 0.5), (1, 2, 0.5)])
    >>> world_harmonic(g, [[True, True]]).round(2).tolist()  # path 0-1-2
    [[0.75, 1.0, 0.75]]
    """
    masks = _as_mask_matrix(graph, masks)
    r = masks.shape[0]
    n = graph.n_nodes
    values = np.zeros((r, n), dtype=np.float64)
    if n <= 1 or r == 0:
        return values
    block = world_block_csr(graph, masks)
    for source in range(n):
        dist = block_bfs_distances(block, n, r, source).astype(np.float64)
        with np.errstate(divide="ignore"):
            inverse = np.where(dist > 0, 1.0 / dist, 0.0)
        values[:, source] = inverse.sum(axis=1)
    values /= n - 1
    return values


def world_betweenness(graph: UncertainGraph, masks) -> np.ndarray:
    """Per-world Brandes betweenness over unordered pairs, shape ``(r, n)``.

    Examples
    --------
    >>> g = UncertainGraph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
    >>> world_betweenness(g, [[True, True, True]]).tolist()  # path 0-1-2-3
    [[0.0, 2.0, 2.0, 0.0]]
    """
    masks = _as_mask_matrix(graph, masks)
    r = masks.shape[0]
    n = graph.n_nodes
    values = np.zeros((r, n), dtype=np.float64)
    edge_src, edge_dst = graph.edge_src, graph.edge_dst
    for world in range(r):
        adjacency: list[list[int]] = [[] for _ in range(n)]
        for edge in np.flatnonzero(masks[world]):
            u, v = int(edge_src[edge]), int(edge_dst[edge])
            adjacency[u].append(v)
            adjacency[v].append(u)
        values[world] = _brandes(adjacency, n)
    return values


def _brandes(adjacency: list[list[int]], n: int) -> np.ndarray:
    """Betweenness of one unweighted world (Brandes 2001), halved so
    each unordered pair counts once."""
    centrality = np.zeros(n, dtype=np.float64)
    for source in range(n):
        order: list[int] = []
        preds: list[list[int]] = [[] for _ in range(n)]
        sigma = np.zeros(n, dtype=np.float64)
        sigma[source] = 1.0
        dist = np.full(n, -1, dtype=np.int64)
        dist[source] = 0
        queue = deque([source])
        while queue:
            v = queue.popleft()
            order.append(v)
            for w in adjacency[v]:
                if dist[w] < 0:
                    dist[w] = dist[v] + 1
                    queue.append(w)
                if dist[w] == dist[v] + 1:
                    sigma[w] += sigma[v]
                    preds[w].append(v)
        delta = np.zeros(n, dtype=np.float64)
        for w in reversed(order):
            for v in preds[w]:
                delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w])
            if w != source:
                centrality[w] += delta[w]
    return centrality / 2.0


#: Kernel registry keyed by measure name.
MEASURE_KERNELS = {
    "degree": world_degrees,
    "harmonic": world_harmonic,
    "betweenness": world_betweenness,
}
