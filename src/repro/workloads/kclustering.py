"""Probabilistic k-median and k-center over sampled worlds.

Following Han-style approximation algorithms for probabilistic graphs
(Han et al.; see PAPERS.md), both workloads optimize an
*expected-distance* objective: the distance between two nodes in one
possible world is their hop distance, a disconnected pair counts the
**disconnection penalty** ``n`` (one more than any achievable hop
count), and the pairwise cost is the expectation over worlds.  With
that convention every per-world distance is a metric (if both legs of a
triangle are connected the third is too), hence so is its expectation —
which is what makes the classic greedy algorithms meaningful here:

* **k-median** — greedy seeding (each round adds the center that most
  reduces the summed expected distance) followed by Lloyd-style
  alternation of nearest-center assignment and per-cluster medoid
  updates.  Objective: *mean* expected distance of a node to its
  center.
* **k-center** — farthest-point traversal (Gonzalez) seeded at the node
  of minimum eccentricity.  Objective: *max* expected distance of a
  node to its center; on a metric the greedy is a 2-approximation.

Both are thin consumers of the shared world pool: the expected-distance
matrix is computed from the same packed masks MCP/ACP sample, so a warm
pool means **zero** resampling, and the estimate is a pure function of
the seed — bit-identical across backends, stores, and worker counts.
Ties break toward the lowest node index everywhere, so the clustering
itself is deterministic too.

Run against :class:`repro.sampling.exact.ExactOracle` the same code
optimizes the exact objective, which is how the test suite pins the
Monte Carlo estimates to ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.core.clustering import Clustering
from repro.core.common import resolve_oracle
from repro.exceptions import ClusteringError
from repro.graph.uncertain_graph import UncertainGraph


@dataclass(frozen=True)
class RoundRecord:
    """One greedy round (or refinement sweep) of a k-clustering run."""

    round: int
    phase: str  # "seed" or "refine"
    center: int
    objective: float


@dataclass(frozen=True)
class KClusteringResult:
    """Outcome of :func:`kmedian_clustering` / :func:`kcenter_clustering`.

    Attributes
    ----------
    clustering:
        The k-clustering (always complete: every node is assigned to
        its nearest center under expected distance).
    objective:
        Mean (k-median) or max (k-center) expected distance of a node
        to its cluster center, under the disconnection penalty ``n``.
    node_costs:
        Per-node expected distance to the assigned center, shape ``(n,)``.
    samples_used:
        Worlds in the pool the estimate was computed over (0 for an
        exact oracle).
    history:
        One :class:`RoundRecord` per greedy round / refinement sweep.
    """

    clustering: Clustering
    objective: float
    node_costs: np.ndarray = field(repr=False)
    samples_used: int
    history: tuple[RoundRecord, ...] = field(repr=False)

    @property
    def n_rounds(self) -> int:
        return len(self.history)


def _prepare(graph, oracle, k, samples, *, seed, chunk_size, max_samples,
             backend, workers, store, cache_dir):
    """Resolve the oracle, validate, and compute the expected-distance matrix."""
    from repro.core.mcp import _is_exact

    oracle = resolve_oracle(
        graph, oracle, seed=seed, chunk_size=chunk_size, max_samples=max_samples,
        backend=backend, workers=workers, store=store, cache_dir=cache_dir,
    )
    n = oracle.n_nodes
    if not 1 <= k < n:
        raise ClusteringError(f"k must satisfy 1 <= k < n_nodes ({n}), got {k}")
    exact = _is_exact(oracle)
    if not exact:
        if samples < 1:
            raise ClusteringError(f"samples must be >= 1, got {samples}")
        oracle.ensure_samples(samples)
    matrix = oracle.expected_distances()
    samples_used = 0 if exact else oracle.num_samples
    return oracle, matrix, samples_used


def _assignment_from(matrix: np.ndarray, centers: list[int]) -> tuple[np.ndarray, np.ndarray]:
    """Nearest-center assignment (ties -> lowest cluster index) and costs."""
    center_rows = matrix[np.asarray(centers, dtype=np.intp)]
    assignment = np.argmin(center_rows, axis=0).astype(np.int64)
    costs = center_rows[assignment, np.arange(matrix.shape[0])]
    return assignment, costs


def _emit(history, progress, cancel_check, *, phase, center, objective, samples):
    if cancel_check is not None:
        cancel_check()
    record = RoundRecord(
        round=len(history), phase=phase, center=int(center), objective=float(objective)
    )
    history.append(record)
    # An event marker, not a timed region: rounds end where the next one
    # begins, so the span carries the round's outcome with ~zero width.
    with telemetry.get_tracer().span(
        "kclustering.round", round=record.round, phase=record.phase,
        center=record.center, objective=record.objective,
    ):
        pass
    if progress is not None:
        progress({"round": record.round, "phase": record.phase,
                  "center": record.center, "objective": record.objective,
                  "samples": samples})


def kmedian_clustering(
    graph: UncertainGraph | None,
    k: int,
    *,
    oracle=None,
    seed=None,
    samples: int = 1000,
    max_iters: int = 20,
    chunk_size: int = 512,
    max_samples: int = 1_000_000,
    backend="auto",
    workers=1,
    store=None,
    cache_dir=None,
    cancel_check=None,
    progress=None,
) -> KClusteringResult:
    """Probabilistic k-median under expected hop distance.

    Parameters mirror :func:`repro.core.mcp.mcp_clustering` where they
    overlap: ``oracle=`` substitutes a pre-built (possibly exact)
    oracle; ``backend=`` / ``workers=`` / ``store=`` / ``cache_dir=``
    configure a freshly built Monte Carlo oracle; ``cancel_check`` runs
    before every greedy round (raise from it to abort cooperatively);
    ``progress`` receives one JSON-safe dict per round.

    ``samples`` is the pool size the expected distances are estimated
    over (ignored for an exact oracle).  ``max_iters`` bounds the
    Lloyd-style refinement sweeps after greedy seeding.

    Examples
    --------
    >>> g = UncertainGraph.from_edges(
    ...     [(0, 1, 0.9), (1, 2, 0.9), (3, 4, 0.9), (4, 5, 0.9), (2, 3, 0.05)])
    >>> result = kmedian_clustering(g, k=2, seed=0, samples=400)
    >>> sorted(result.clustering.centers.tolist())
    [1, 4]
    """
    _, matrix, samples_used = _prepare(
        graph, oracle, k, samples, seed=seed, chunk_size=chunk_size,
        max_samples=max_samples, backend=backend, workers=workers,
        store=store, cache_dir=cache_dir,
    )
    if max_iters < 0:
        raise ClusteringError(f"max_iters must be non-negative, got {max_iters}")
    n = matrix.shape[0]
    history: list[RoundRecord] = []

    # Greedy seeding: each round adds the center minimizing the summed
    # cost min(existing cost, distance to the candidate).
    centers: list[int] = []
    best_cost = np.full(n, np.inf)
    for _ in range(k):
        totals = np.minimum(matrix, best_cost[None, :]).sum(axis=1)
        if centers:
            totals[np.asarray(centers, dtype=np.intp)] = np.inf
        choice = int(np.argmin(totals))
        centers.append(choice)
        best_cost = np.minimum(best_cost, matrix[choice])
        _emit(history, progress, cancel_check, phase="seed", center=choice,
              objective=best_cost.mean(), samples=samples_used)

    # Lloyd-style refinement: alternate nearest-center assignment with
    # per-cluster medoid updates (candidates restricted to the cluster's
    # members, which keeps centers distinct).
    for _ in range(max_iters):
        assignment, _ = _assignment_from(matrix, centers)
        updated = list(centers)
        for cluster in range(k):
            members = np.flatnonzero(assignment == cluster)
            if len(members) == 0:
                continue
            member_costs = matrix[np.ix_(members, members)].sum(axis=1)
            updated[cluster] = int(members[np.argmin(member_costs)])
        if updated == centers:
            break
        centers = updated
        _, costs = _assignment_from(matrix, centers)
        _emit(history, progress, cancel_check, phase="refine", center=centers[-1],
              objective=costs.mean(), samples=samples_used)

    assignment, costs = _assignment_from(matrix, centers)
    clustering = Clustering(
        n_nodes=n,
        centers=np.asarray(centers, dtype=np.int64),
        assignment=assignment,
    )
    return KClusteringResult(
        clustering=clustering,
        objective=float(costs.mean()),
        node_costs=costs,
        samples_used=samples_used,
        history=tuple(history),
    )


def kcenter_clustering(
    graph: UncertainGraph | None,
    k: int,
    *,
    oracle=None,
    seed=None,
    samples: int = 1000,
    chunk_size: int = 512,
    max_samples: int = 1_000_000,
    backend="auto",
    workers=1,
    store=None,
    cache_dir=None,
    cancel_check=None,
    progress=None,
) -> KClusteringResult:
    """Probabilistic k-center under expected hop distance.

    Farthest-point (Gonzalez) traversal on the expected-distance
    matrix: the first center minimizes the maximum expected distance
    (the exact 1-center optimum), and each following round adds the
    node farthest from its nearest center.  Because the expected
    distance is a metric (see the module docstring) this is a
    2-approximation of the optimal expected-distance k-center
    objective.  Parameters as in :func:`kmedian_clustering`.

    Examples
    --------
    Run against the exact oracle the traversal is fully determined by
    the true expected distances (the first center hugs the weak
    bridge, the second is the farthest node from it):

    >>> from repro.sampling import ExactOracle
    >>> g = UncertainGraph.from_edges(
    ...     [(0, 1, 0.9), (1, 2, 0.9), (3, 4, 0.9), (4, 5, 0.9), (2, 3, 0.05)])
    >>> result = kcenter_clustering(g, k=2, oracle=ExactOracle(g))
    >>> sorted(result.clustering.centers.tolist())
    [2, 5]
    >>> result.samples_used
    0
    """
    _, matrix, samples_used = _prepare(
        graph, oracle, k, samples, seed=seed, chunk_size=chunk_size,
        max_samples=max_samples, backend=backend, workers=workers,
        store=store, cache_dir=cache_dir,
    )
    n = matrix.shape[0]
    history: list[RoundRecord] = []

    first = int(np.argmin(matrix.max(axis=1)))
    centers = [first]
    best_cost = matrix[first].copy()
    _emit(history, progress, cancel_check, phase="seed", center=first,
          objective=best_cost.max(), samples=samples_used)
    while len(centers) < k:
        farthest = int(np.argmax(best_cost))
        centers.append(farthest)
        best_cost = np.minimum(best_cost, matrix[farthest])
        _emit(history, progress, cancel_check, phase="seed", center=farthest,
              objective=best_cost.max(), samples=samples_used)

    assignment, costs = _assignment_from(matrix, centers)
    clustering = Clustering(
        n_nodes=n,
        centers=np.asarray(centers, dtype=np.int64),
        assignment=assignment,
    )
    return KClusteringResult(
        clustering=clustering,
        objective=float(costs.max()),
        node_costs=costs,
        samples_used=samples_used,
        history=tuple(history),
    )
