"""Exact workload objectives by possible-world enumeration.

Ground truth for the workload suite: every quantity the Monte Carlo
estimators in :mod:`repro.workloads` approximate is computed here
exactly by materializing all ``2^m`` worlds of a tiny graph
(:func:`repro.sampling.exact.enumerate_worlds`) and weighting per-world
values by world probability.  The per-world kernels are *shared* with
the estimators (:mod:`repro.workloads.measures`), so the two paths can
only differ in how worlds are weighted — which is exactly what the
tolerance tests pin.

Conventions match the estimators: hop distance per world, disconnected
pairs count the disconnection penalty ``n`` (see
:meth:`repro.sampling.oracle.MonteCarloOracle.expected_distances`),
k-median averages and k-center maximizes the expected distance of a
node to its nearest center.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.exceptions import ClusteringError
from repro.graph.traversal import bfs_distances
from repro.graph.uncertain_graph import UncertainGraph
from repro.sampling.exact import _DEFAULT_MAX_UNCERTAIN_EDGES, enumerate_worlds
from repro.workloads.measures import MEASURE_KERNELS, MEASURE_NAMES

_OBJECTIVE_KINDS = ("kmedian", "kcenter")


def exact_expected_distances(
    graph: UncertainGraph,
    *,
    max_uncertain_edges: int = _DEFAULT_MAX_UNCERTAIN_EDGES,
) -> np.ndarray:
    """Exact ``(n, n)`` expected hop distances, disconnection counting ``n``.

    Examples
    --------
    >>> g = UncertainGraph.from_edges([(0, 1, 0.5)])
    >>> exact_expected_distances(g).tolist()  # d=1 or penalty 2, p=1/2 each
    [[0.0, 1.5], [1.5, 0.0]]
    """
    n = graph.n_nodes
    matrix = np.zeros((n, n), dtype=np.float64)
    for mask, world_prob in enumerate_worlds(graph, max_uncertain_edges=max_uncertain_edges):
        if world_prob == 0.0:
            continue
        for source in range(n):
            dist = bfs_distances(graph, source, edge_mask=mask).astype(np.float64)
            dist[dist < 0] = float(n)
            matrix[source] += world_prob * dist
    return matrix


def exact_clustering_objective(
    graph: UncertainGraph,
    centers,
    *,
    kind: str = "kmedian",
    max_uncertain_edges: int = _DEFAULT_MAX_UNCERTAIN_EDGES,
) -> float:
    """Exact k-median/k-center objective of a given center set.

    Each node's cost is its minimum exact expected distance to a
    center; ``kind="kmedian"`` averages the costs, ``kind="kcenter"``
    maximizes them — the exact counterparts of the objectives reported
    by :func:`repro.workloads.kmedian_clustering` /
    :func:`repro.workloads.kcenter_clustering`.
    """
    if kind not in _OBJECTIVE_KINDS:
        raise ClusteringError(f"kind must be one of {_OBJECTIVE_KINDS}, got {kind!r}")
    centers = np.asarray(centers, dtype=np.intp)
    if centers.ndim != 1 or len(centers) == 0:
        raise ClusteringError("centers must be a non-empty 1-D sequence")
    if len(np.unique(centers)) != len(centers):
        raise ClusteringError("centers must be distinct")
    n = graph.n_nodes
    if len(centers) and (centers.min() < 0 or centers.max() >= n):
        raise ClusteringError("centers out of range")
    matrix = exact_expected_distances(graph, max_uncertain_edges=max_uncertain_edges)
    costs = matrix[centers].min(axis=0)
    return float(costs.mean() if kind == "kmedian" else costs.max())


def exact_best_clustering(
    graph: UncertainGraph,
    k: int,
    *,
    kind: str = "kmedian",
    max_uncertain_edges: int = _DEFAULT_MAX_UNCERTAIN_EDGES,
) -> tuple[tuple[int, ...], float]:
    """Brute-force optimal centers and objective over all ``C(n, k)`` sets.

    Ties break toward the lexicographically smallest center set, so the
    result is deterministic.  Only feasible for tiny graphs; used to
    assert the greedy drivers' approximation quality in tests.
    """
    if kind not in _OBJECTIVE_KINDS:
        raise ClusteringError(f"kind must be one of {_OBJECTIVE_KINDS}, got {kind!r}")
    n = graph.n_nodes
    if not 1 <= k < n:
        raise ClusteringError(f"k must satisfy 1 <= k < n_nodes ({n}), got {k}")
    matrix = exact_expected_distances(graph, max_uncertain_edges=max_uncertain_edges)
    best_centers: tuple[int, ...] | None = None
    best_objective = np.inf
    for candidate in combinations(range(n), k):
        costs = matrix[np.asarray(candidate, dtype=np.intp)].min(axis=0)
        objective = float(costs.mean() if kind == "kmedian" else costs.max())
        if objective < best_objective:
            best_objective = objective
            best_centers = candidate
    assert best_centers is not None  # k >= 1 guarantees at least one candidate
    return best_centers, best_objective


def exact_expected_centrality(
    graph: UncertainGraph,
    measure: str,
    *,
    max_uncertain_edges: int = _DEFAULT_MAX_UNCERTAIN_EDGES,
) -> np.ndarray:
    """Exact per-node expected centrality, shape ``(n,)``.

    Examples
    --------
    >>> g = UncertainGraph.from_edges([(0, 1, 0.5), (1, 2, 0.5)])
    >>> exact_expected_centrality(g, "degree").tolist()
    [0.5, 1.0, 0.5]
    """
    if measure not in MEASURE_NAMES:
        raise ClusteringError(f"measure must be one of {MEASURE_NAMES}, got {measure!r}")
    kernel = MEASURE_KERNELS[measure]
    values = np.zeros(graph.n_nodes, dtype=np.float64)
    for mask, world_prob in enumerate_worlds(graph, max_uncertain_edges=max_uncertain_edges):
        if world_prob == 0.0:
            continue
        values += world_prob * kernel(graph, mask[None, :])[0]
    return values
