"""Delta-aware world-pool derivation: warm clustering across mutations.

Before this module, mutating a single edge probability invalidated the
whole world pool: the fingerprint changed, the cache missed, and every
world was cold-resampled and relabeled even though only one Bernoulli
column differed.  Delta derivation turns that cliff into an increment:

1.  Mask bit ``(i, e)`` is a pure function of ``(root seed, u, v, i)``
    (per-edge streams, :mod:`repro.sampling.parallel`), so a pool for
    the mutated graph shares every untouched edge's column with the
    parent pool bit-for-bit.  The store's edge-major columnar layout
    (:mod:`repro.sampling.store`) makes copying those columns a row
    copy and resampling the touched ones a row write.
2.  Component labels only change in worlds where a touched edge's
    *presence* actually flipped; within such a world, only the
    components containing the flipped edge's endpoints are affected.
    The labeling backends expose an incremental
    ``repair_labels`` path (union-find over the affected components
    only; scipy recomputes fully and is the cross-check).
3.  A mutated graph fingerprints identically to cold-building its
    final edge set (mutations keep canonical edge order), so the
    derived pool registers under the digest the cold path would use:
    every later consumer — oracle, service cache, CLI — finds it warm
    without knowing it was derived.

The determinism pin (``tests/test_deltas.py``): for any mutation
sequence, labels obtained by delta replay are **bit-identical** to
cold-sampling the final graph at the same ``(seed, backend,
chunk_size)``, across both backends.

Derivation is best-effort, exactly like the store itself: any failure
(parent pool evicted mid-read, disk corruption, races) degrades to
cold sampling of whatever remains underived — never to wrong worlds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import WorldStoreError
from repro.graph.uncertain_graph import UncertainGraph
from repro.sampling.backends import resolve_backend
from repro.sampling.parallel import edge_stream_state, sample_edge_column
from repro.sampling.store import (
    WorldStore,
    pack_mask_columns,
    packed_words,
    unpack_mask_columns,
)
from repro.utils.rng import ensure_seed_sequence

__all__ = ["DeriveResult", "EdgeDiff", "derive_pool", "diff_edges"]

#: Above this many touched edges the component-local repair bookkeeping
#: (an ``(worlds, nodes, 2 * touched)`` membership tensor) costs more
#: than relabeling the affected worlds outright, so derivation switches
#: to the full relabel of exactly those worlds.
_REPAIR_TOUCHED_LIMIT = 64


@dataclass(frozen=True)
class EdgeDiff:
    """Edge-level difference between two graphs on the same node set.

    Index arrays refer to the graphs' edge arrays: ``kept_*`` pairs up
    edges present in both with unchanged probability, ``updated_*``
    pairs up edges whose probability changed, ``added_child`` /
    ``removed_parent`` hold the one-sided edges.
    """

    kept_parent: np.ndarray
    kept_child: np.ndarray
    updated_parent: np.ndarray
    updated_child: np.ndarray
    added_child: np.ndarray
    removed_parent: np.ndarray

    @property
    def n_touched(self) -> int:
        """Columns that must be resampled or dropped."""
        return len(self.updated_child) + len(self.added_child) + len(self.removed_parent)


def diff_edges(parent: UncertainGraph, child: UncertainGraph) -> EdgeDiff:
    """Classify every edge of ``parent`` and ``child`` for derivation.

    The graphs must share the node set (mutations never renumber
    nodes).  Works for *any* pair of graphs — a whole delta chain
    collapses into one diff, so deriving grandchild-from-grandparent
    never replays intermediate revisions.

    Examples
    --------
    >>> g = UncertainGraph.from_edges([(0, 1, 0.5), (1, 2, 0.5)])
    >>> g2, _ = g.mutate(update=[(0, 1, 0.9)], add=[(0, 2, 0.4)])
    >>> diff = diff_edges(g, g2)
    >>> (len(diff.kept_child), len(diff.updated_child), len(diff.added_child))
    (1, 1, 1)
    """
    if parent.n_nodes != child.n_nodes:
        raise ValueError(
            f"cannot diff graphs with different node counts "
            f"({parent.n_nodes} vs {child.n_nodes})"
        )
    n = parent.n_nodes
    parent_keys = parent.edge_src.astype(np.int64) * n + parent.edge_dst
    child_keys = child.edge_src.astype(np.int64) * n + child.edge_dst
    _, parent_common, child_common = np.intersect1d(
        parent_keys, child_keys, assume_unique=True, return_indices=True
    )
    same = parent.edge_prob[parent_common] == child.edge_prob[child_common]
    added = np.flatnonzero(~np.isin(child_keys, parent_keys, assume_unique=True))
    removed = np.flatnonzero(~np.isin(parent_keys, child_keys, assume_unique=True))
    return EdgeDiff(
        kept_parent=parent_common[same],
        kept_child=child_common[same],
        updated_parent=parent_common[~same],
        updated_child=child_common[~same],
        added_child=added,
        removed_parent=removed,
    )


@dataclass(frozen=True)
class DeriveResult:
    """Outcome of one :func:`derive_pool` call.

    ``worlds_derived`` counts the worlds appended to the child pool by
    this call; ``worlds_repaired`` the subset whose labels needed
    repair (a touched edge's presence flipped there);
    ``columns_resampled`` the number of *distinct* edge columns
    regenerated (the updated + added edges — every derived block
    resamples the same set, so the count is independent of how many
    blocks the pool spans, and 0 when no block was derived);
    ``complete`` is False when derivation stopped early (a read or
    append failed — the remainder cold-samples).
    """

    digest: str
    worlds_available: int
    worlds_derived: int
    worlds_repaired: int
    columns_resampled: int
    complete: bool


def _column_bits(packed_row: np.ndarray, rows: int) -> np.ndarray:
    """One edge's presence bits over a block's worlds."""
    return unpack_mask_columns(packed_row[None, :], rows)[:, 0]


def _pack_column(bits: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_column_bits` for one edge row."""
    return pack_mask_columns(bits[:, None])[0]


def derive_pool(
    store: WorldStore,
    parent_graph: UncertainGraph,
    child_graph: UncertainGraph,
    *,
    seed,
    backend="auto",
    chunk_size: int = 512,
) -> DeriveResult | None:
    """Derive the child graph's world pool from the parent's.

    Reads the parent pool block by block, copies the untouched edges'
    packed columns, resamples the touched edges' columns from the same
    per-edge streams cold sampling would use, repairs the labels of
    exactly the worlds where a presence bit flipped, and appends the
    result under the child's own fingerprint.  The derived pool is
    bit-identical to cold-sampling the child graph.

    Returns ``None`` when there is nothing to work from (no parent
    pool, identical fingerprints, store errors before the first
    block); otherwise a :class:`DeriveResult` — possibly partial
    (``complete=False``) when the parent pool vanished mid-derivation,
    e.g. because the service cache evicted it.  Either way the child
    pool only ever contains correct worlds; callers cold-sample
    whatever is missing.

    Examples
    --------
    >>> from repro.sampling.oracle import MonteCarloOracle
    >>> g = UncertainGraph.from_edges([(0, 1, 0.5), (1, 2, 0.5)])
    >>> store = WorldStore()
    >>> with MonteCarloOracle(g, seed=7, store=store) as oracle:
    ...     oracle.ensure_samples(100)
    >>> g2, _ = g.update_edge(0, 1, 0.9)
    >>> result = derive_pool(store, g, g2, seed=7)
    >>> (result.worlds_derived, result.complete)
    (100, True)
    >>> with MonteCarloOracle(g2, seed=7, store=store) as warm:
    ...     warm.ensure_samples(100)
    ...     warm.cache_stats["worlds_sampled"]
    0
    """
    seed_seq = ensure_seed_sequence(seed)
    resolved = resolve_backend(backend, child_graph)
    try:
        parent_digest = store.register(
            parent_graph, seed_seq, resolved.name, chunk_size
        )
        child_digest = store.register(child_graph, seed_seq, resolved.name, chunk_size)
        if parent_digest == child_digest:
            return None  # nothing changed; the "parent" pool already serves
        available = store.count(parent_digest)
        have = store.count(child_digest)
    except (WorldStoreError, OSError, ValueError):
        return None
    if available == 0:
        return None
    if available <= have:
        return DeriveResult(child_digest, available, 0, 0, 0, True)

    diff = diff_edges(parent_graph, child_graph)
    child_src, child_dst, child_prob = (
        child_graph.edge_src,
        child_graph.edge_dst,
        child_graph.edge_prob,
    )
    parent_src, parent_dst = parent_graph.edge_src, parent_graph.edge_dst
    # Memoize the touched edges' stream states across blocks.
    states = {
        (int(child_src[c]), int(child_dst[c])): edge_stream_state(
            seed_seq, int(child_src[c]), int(child_dst[c])
        )
        for c in np.concatenate([diff.updated_child, diff.added_child])
    }
    m_child = child_graph.n_edges
    derived = repaired = resampled = 0
    for start in range(have, available, chunk_size):
        stop = min(start + chunk_size, available)
        rows = stop - start
        try:
            packed_parent, labels_parent = store.read(parent_digest, start, stop)
        except (WorldStoreError, OSError, ValueError):
            return DeriveResult(child_digest, available, derived, repaired, resampled, False)
        packed_child = np.zeros((m_child, packed_words(rows)), dtype=np.uint64)
        packed_child[diff.kept_child] = packed_parent[diff.kept_parent]
        flips: list[tuple[int, int, np.ndarray]] = []
        for p_idx, c_idx in zip(diff.updated_parent, diff.updated_child, strict=True):
            u, v = int(child_src[c_idx]), int(child_dst[c_idx])
            new_bits = sample_edge_column(
                seed_seq, u, v, float(child_prob[c_idx]), start, rows,
                state=states[(u, v)],
            )
            packed_child[c_idx] = _pack_column(new_bits)
            flip = _column_bits(packed_parent[p_idx], rows) != new_bits
            if flip.any():
                flips.append((u, v, flip))
        for c_idx in diff.added_child:
            u, v = int(child_src[c_idx]), int(child_dst[c_idx])
            new_bits = sample_edge_column(
                seed_seq, u, v, float(child_prob[c_idx]), start, rows,
                state=states[(u, v)],
            )
            packed_child[c_idx] = _pack_column(new_bits)
            if new_bits.any():
                flips.append((u, v, new_bits))
        for p_idx in diff.removed_parent:
            old_bits = _column_bits(packed_parent[p_idx], rows)
            if old_bits.any():
                flips.append((int(parent_src[p_idx]), int(parent_dst[p_idx]), old_bits))
        # Distinct columns, not a per-block accumulation: each block
        # regenerates the same updated + added columns.
        resampled = len(diff.updated_child) + len(diff.added_child)

        if flips:
            flip_matrix = np.stack([flip for _, _, flip in flips])  # (t, rows)
            affected_worlds = np.flatnonzero(flip_matrix.any(axis=0))
            labels_child = np.array(labels_parent)  # copy; reads may be views
            if len(affected_worlds):
                old = np.ascontiguousarray(labels_parent[affected_worlds])
                labels_child[affected_worlds] = _relabel_affected(
                    resolved, child_graph, packed_child, rows, affected_worlds,
                    old, flips, flip_matrix[:, affected_worlds],
                )
                repaired += len(affected_worlds)
        else:
            labels_child = labels_parent  # label rows carry over unchanged
        try:
            store.append(child_digest, start, packed_child, labels_child)
        except (WorldStoreError, OSError, ValueError):
            return DeriveResult(child_digest, available, derived, repaired, resampled, False)
        derived += rows
    return DeriveResult(child_digest, available, derived, repaired, resampled, True)


def _relabel_affected(
    backend, graph, packed_cols, rows, affected_worlds, old_labels, flips, flip_matrix
):
    """New labels for the affected worlds, via the cheapest sound path."""
    repair = getattr(backend, "repair_labels", None)
    if repair is None or len(flips) > _REPAIR_TOUCHED_LIMIT:
        # Backends without an incremental path — and deltas so wide
        # that the membership tensor would dwarf the relabeling —
        # recompute the affected worlds outright (still only those).
        packed_labeler = getattr(backend, "component_labels_packed", None)
        if packed_labeler is not None and len(affected_worlds) == rows:
            # Every world flipped: hand the derived block to the packed
            # kernel as-is, no boolean round-trip.
            return packed_labeler(graph, packed_cols, rows)
        masks = unpack_mask_columns(packed_cols, rows)[affected_worlds]
        return backend.component_labels(graph, masks)
    masks = unpack_mask_columns(packed_cols, rows)[affected_worlds]
    endpoints = np.array([[u, v] for u, v, _ in flips])  # (t, 2)
    flipped_here = flip_matrix.T  # (worlds, t)
    target_u = np.where(flipped_here, old_labels[:, endpoints[:, 0]], -1)
    target_v = np.where(flipped_here, old_labels[:, endpoints[:, 1]], -1)
    targets = np.concatenate([target_u, target_v], axis=1)  # (worlds, 2t)
    affected = (old_labels[:, :, None] == targets[:, None, :]).any(axis=2)
    return repair(graph, masks, old_labels, affected)
