"""Bit-packed, content-addressed persistent store of sampled worlds.

Monte Carlo world sampling dominates the running time of both MCP and
ACP (paper Section 4), yet the sampled pool is a pure function of
``(graph, seed, backend)``: mask bit ``(i, e)`` depends only on the
root seed, edge ``e``'s endpoints and ``i`` (per-edge streams,
:mod:`repro.sampling.parallel`), and the canonical labels depend only
on the masks.  This module exploits that purity three ways:

Bit packing, edge-major
    A block of ``(r, m)`` boolean edge masks is stored *columnar*: an
    ``(m, w)`` ``uint64`` matrix with ``w = packed_words(r)`` — row
    ``e`` is edge ``e``'s presence bitset over the block's worlds.
    That is still the 8x memory cut over numpy's byte-per-bool layout,
    but now one edge's bits are one contiguous row: a graph delta that
    touches ``t`` edges rewrites ``t`` rows and leaves the other
    ``m - t`` untouched (:mod:`repro.sampling.deltas`).  Masks are
    unpacked on demand, only where a consumer genuinely needs booleans
    (e.g. building the block-diagonal CSR for depth-limited queries).
    Padding is per edge per *block* (≤ 7 bytes each), so pools grown in
    many small progressive steps carry more padding than pools written
    in whole chunks — a deliberate trade for append-only blocks.

Content addressing
    Pools are keyed by a SHA-256 digest of the graph's edge endpoints
    and probabilities, the root seed, the backend name, and the chunk
    size (:func:`pool_fingerprint`).  Any change to any input yields a
    different digest, so a cache can never serve stale worlds — the
    *invalidation contract*, pinned by ``tests/test_store.py`` and
    documented in ``docs/ARCHITECTURE.md``.

Delta derivation
    Because a mutated graph's fingerprint equals the fingerprint of
    cold-building its final edge set, a pool for the mutated graph can
    be *derived* from the parent pool — resampling only the touched
    columns, repairing only the affected labels — and registered under
    the digest the cold path would use (:func:`repro.sampling.deltas
    .derive_pool`).  Derived and cold pools are bit-identical.

:class:`WorldStore` holds one growing pool per digest, either purely in
memory or spilled to a disk directory (one subdirectory per digest with
raw ``numpy`` files read back through :class:`numpy.memmap`).  Pools
grow in *blocks* (one per append; ``meta.json`` records the block world
counts, since columnar packing makes block boundaries part of the
layout).  Because cached and freshly drawn worlds are bit-identical, a
:class:`~repro.sampling.oracle.MonteCarloOracle` can resume progressive
sampling from a cached pool mid-schedule and extend it in place.

Concurrency: reads are safe from any number of processes.  Disk
appends take an advisory ``flock`` on the pool directory and re-read
the on-disk world count first, so concurrent writers of the *same*
pool trim each other's overlap instead of misaligning file rows (safe
because any two writers produce identical rows — worlds are pure
functions of their position).  A pool cleared externally while a
writer is running simply stops being extended (the write is dropped,
never misplaced).  Within one process, every count/read/append (and
the size snapshots behind :meth:`WorldStore.info`) runs under a
per-store thread lock, so a single :class:`WorldStore` can back many
oracles across executor threads — the clustering service's hot path
(:mod:`repro.service`) relies on exactly this.  Individual
:class:`~repro.sampling.oracle.MonteCarloOracle` instances are *not*
thread-safe; share worlds by giving each thread its own oracle
attached to the shared store.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import telemetry
from repro.exceptions import WorldStoreError
from repro.graph.uncertain_graph import UncertainGraph
from repro.utils.rng import ensure_seed_sequence

_STORE_POOLS = telemetry.get_registry().counter(
    "repro_store_pools_registered_total",
    "World pools attached to a store (new pool objects, not lookups).",
)
_STORE_WORLDS_READ = telemetry.get_registry().counter(
    "repro_store_worlds_read_total",
    "Worlds served from the store instead of being re-sampled.",
)
_STORE_BYTES_READ = telemetry.get_registry().counter(
    "repro_store_bytes_read_total",
    "Bytes of masks and labels served from the store.",
)
_STORE_WORLDS_APPENDED = telemetry.get_registry().counter(
    "repro_store_worlds_appended_total",
    "Freshly sampled worlds appended to the store.",
)
_STORE_BYTES_APPENDED = telemetry.get_registry().counter(
    "repro_store_bytes_appended_total",
    "Bytes of masks and labels appended to the store.",
)
_STORE_FLOCK_WAIT = telemetry.get_registry().histogram(
    "repro_store_flock_wait_seconds",
    "Time spent waiting for the advisory pool write lock (contention "
    "between concurrent appenders).",
    buckets=(0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0),
)

__all__ = [
    "WorldStore",
    "pack_mask_columns",
    "pack_masks",
    "packed_words",
    "pool_fingerprint",
    "unpack_mask_columns",
    "unpack_masks",
]

#: Bits per packed word; masks are stored as ``uint64`` bitsets.
WORD_BITS = 64

#: On-disk format version; bumped on any layout change so old cache
#: directories are treated as misses rather than misread.  Version 2 is
#: the edge-major columnar layout (v1 row-major pools are discarded).
FORMAT_VERSION = 2

_META_NAME = "meta.json"
_MASKS_NAME = "masks.u64"
_LABELS_NAME = "labels.i32"
_LOCK_NAME = ".lock"

#: Pool directories are named by their SHA-256 hex digest.
_DIGEST_RE = re.compile(r"[0-9a-f]{64}")


@contextmanager
def _pool_write_lock(directory: Path):
    """Advisory cross-process write lock on one pool directory."""
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX platforms
        yield
        return
    with open(directory / _LOCK_NAME, "a+b") as handle:
        waited = time.perf_counter()
        fcntl.flock(handle, fcntl.LOCK_EX)
        _STORE_FLOCK_WAIT.observe(time.perf_counter() - waited)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


def packed_words(n_bits: int) -> int:
    """Number of ``uint64`` words needed to hold ``n_bits`` mask bits.

    Examples
    --------
    >>> packed_words(0), packed_words(1), packed_words(64), packed_words(65)
    (0, 1, 1, 2)
    """
    if n_bits < 0:
        raise ValueError(f"n_bits must be non-negative, got {n_bits}")
    return (int(n_bits) + WORD_BITS - 1) // WORD_BITS


def _pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a 2-D boolean matrix along axis 1 into whole uint64 words."""
    rows, n = bits.shape
    words = packed_words(n)
    packed_bytes = np.packbits(bits, axis=1, bitorder="little")
    row_bytes = words * (WORD_BITS // 8)
    if packed_bytes.shape[1] != row_bytes:
        padded = np.zeros((rows, row_bytes), dtype=np.uint8)
        padded[:, : packed_bytes.shape[1]] = packed_bytes
        packed_bytes = padded
    return np.ascontiguousarray(packed_bytes).view(np.uint64)


def _unpack_bits(packed: np.ndarray, n_bits: int) -> np.ndarray:
    """Inverse of :func:`_pack_bits` (drops the pad bits)."""
    if packed.shape[1] != packed_words(n_bits):
        raise ValueError(
            f"packed rows hold {packed.shape[1]} words but {n_bits} bits "
            f"need {packed_words(n_bits)}"
        )
    if n_bits == 0:
        return np.zeros((packed.shape[0], 0), dtype=bool)
    bits = np.unpackbits(packed.view(np.uint8), axis=1, count=n_bits, bitorder="little")
    return bits.view(np.bool_)


def pack_masks(masks: np.ndarray) -> np.ndarray:
    """Pack boolean edge masks into world-major ``uint64`` bitset rows.

    The result has shape ``(r, packed_words(m))``: row ``i`` is world
    ``i``'s edge bitset.  Bit ``j`` of row ``i`` — little-endian within
    each word — is ``masks[i, j]``.  The store itself keeps the
    *columnar* layout (:func:`pack_mask_columns`); this row-major
    variant remains for world-at-a-time consumers.

    Examples
    --------
    >>> masks = np.array([[True, False, True], [False, True, False]])
    >>> packed = pack_masks(masks)
    >>> packed.shape, packed.dtype.name
    ((2, 1), 'uint64')
    >>> bool(np.array_equal(unpack_masks(packed, 3), masks))
    True
    """
    masks = np.ascontiguousarray(masks, dtype=bool)
    if masks.ndim != 2:
        raise ValueError(f"masks must be 2-D (worlds, edges), got shape {masks.shape}")
    return _pack_bits(masks)


def unpack_masks(packed: np.ndarray, n_edges: int) -> np.ndarray:
    """Unpack world-major ``uint64`` bitset rows back into boolean masks.

    Inverse of :func:`pack_masks`: returns a ``(r, n_edges)`` boolean
    array.  ``packed`` may be any array-like (including a
    :class:`numpy.memmap` slice read back from disk).
    """
    packed = np.ascontiguousarray(packed, dtype=np.uint64)
    if packed.ndim != 2:
        raise ValueError(f"packed masks must be 2-D, got shape {packed.shape}")
    return _unpack_bits(packed, n_edges)


def pack_mask_columns(masks: np.ndarray) -> np.ndarray:
    """Pack boolean edge masks into the store's edge-major columnar form.

    The result has shape ``(m, packed_words(r))``: row ``e`` is edge
    ``e``'s presence bitset over the ``r`` worlds (bit ``i`` of row
    ``e`` is ``masks[i, e]``, little-endian within each word).  Same 8x
    memory cut as :func:`pack_masks`, but one edge's bits are one
    contiguous row — the property delta application relies on.

    Examples
    --------
    >>> masks = np.array([[True, False, True], [False, True, False]])
    >>> cols = pack_mask_columns(masks)
    >>> cols.shape, cols.dtype.name
    ((3, 1), 'uint64')
    >>> bool(np.array_equal(unpack_mask_columns(cols, 2), masks))
    True
    """
    masks = np.ascontiguousarray(masks, dtype=bool)
    if masks.ndim != 2:
        raise ValueError(f"masks must be 2-D (worlds, edges), got shape {masks.shape}")
    return _pack_bits(np.ascontiguousarray(masks.T))


def unpack_mask_columns(packed_cols: np.ndarray, n_worlds: int) -> np.ndarray:
    """Unpack columnar masks back into a world-major boolean matrix.

    Inverse of :func:`pack_mask_columns`: returns ``(n_worlds, m)``
    booleans from an ``(m, packed_words(n_worlds))`` word matrix.
    """
    packed_cols = np.ascontiguousarray(packed_cols, dtype=np.uint64)
    if packed_cols.ndim != 2:
        raise ValueError(f"packed columns must be 2-D, got shape {packed_cols.shape}")
    if packed_cols.shape[0] == 0:
        if packed_cols.shape[1] != packed_words(n_worlds):
            raise ValueError(
                f"packed columns hold {packed_cols.shape[1]} words but "
                f"{n_worlds} worlds need {packed_words(n_worlds)}"
            )
        return np.zeros((n_worlds, 0), dtype=bool)
    return np.ascontiguousarray(_unpack_bits(packed_cols, n_worlds).T)


def pool_fingerprint(graph: UncertainGraph, seed, backend_name: str, chunk_size: int) -> str:
    """Content digest addressing one pool of sampled worlds.

    The SHA-256 digest covers everything the pool content depends on:
    the graph's node count, edge endpoints and probabilities, the root
    seed (entropy + spawn key of the resolved
    :class:`numpy.random.SeedSequence`), the world-labeling backend
    name, and the oracle chunk size.  Mutating *any* of these yields a
    different digest, so a cached pool can never be served for changed
    inputs.  (Chunk size does not actually change the sampled worlds —
    including it is deliberate conservatism, not a correctness need.)

    Because :meth:`UncertainGraph.mutate` stores edges in the canonical
    sorted order ``from_edges`` produces, a mutated graph fingerprints
    identically to cold-building its final edge set — which is what
    lets :func:`repro.sampling.deltas.derive_pool` register a derived
    pool under the digest the cold path would look up.

    Examples
    --------
    >>> g = UncertainGraph.from_edges([(0, 1, 0.5)])
    >>> a = pool_fingerprint(g, 7, "unionfind", 512)
    >>> a == pool_fingerprint(g, 7, "unionfind", 512)
    True
    >>> a == pool_fingerprint(g, 8, "unionfind", 512)
    False
    """
    seed_seq = ensure_seed_sequence(seed)
    digest = hashlib.sha256()
    digest.update(b"repro-world-pool-v%d" % FORMAT_VERSION)
    digest.update(str(graph.n_nodes).encode())
    digest.update(np.ascontiguousarray(graph.edge_src, dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(graph.edge_dst, dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(graph.edge_prob, dtype=np.float64).tobytes())
    digest.update(str(seed_seq.entropy).encode())
    digest.update(repr(tuple(int(k) for k in seed_seq.spawn_key)).encode())
    digest.update(str(backend_name).encode())
    digest.update(str(int(chunk_size)).encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class PoolInfo:
    """Summary of one stored pool (for ``repro cache info`` and tests)."""

    digest: str
    n_worlds: int
    n_nodes: int
    n_edges: int
    n_blocks: int
    mask_bytes: int
    label_bytes: int
    persistent: bool
    backend: str = "?"
    chunk_size: int = 0


def _mask_block_bytes(n_edges: int, block_counts) -> int:
    return sum(int(n_edges) * packed_words(int(c)) * 8 for c in block_counts)


def _coerce_block_counts(value, n_worlds: int):
    """Validate a meta ``block_counts`` list against ``n_worlds``."""
    counts = [int(c) for c in value]
    if any(c <= 0 for c in counts) or sum(counts) != int(n_worlds):
        raise ValueError(f"block_counts {counts} do not sum to {n_worlds}")
    return counts


class _MemoryPool:
    """In-memory pool: growing lists of columnar-mask and label blocks."""

    def __init__(self, meta: dict):
        self.meta = meta
        self.packed_parts: list[np.ndarray] = []
        self.label_parts: list[np.ndarray] = []
        self.count = 0

    @property
    def block_counts(self) -> list[int]:
        return [part.shape[0] for part in self.label_parts]

    def read(self, start: int, stop: int) -> tuple[np.ndarray, np.ndarray]:
        # Serve block-aligned ranges (the oracle's warm path reads the
        # pool back chunk by chunk) as stored views — parts are
        # append-only and treated as immutable, so no copy is needed.
        if start == stop:
            return _empty_cols(self.meta), _empty_labels(self.meta)
        offset = 0
        bool_slices, label_slices = [], []
        for packed_cols, labels in zip(self.packed_parts, self.label_parts, strict=True):
            rows = labels.shape[0]
            lo = max(start - offset, 0)
            hi = min(stop - offset, rows)
            if lo < hi:
                if lo == 0 and hi == rows and start == offset and stop == offset + rows:
                    return packed_cols, labels
                bool_slices.append(unpack_mask_columns(packed_cols, rows)[lo:hi])
                label_slices.append(labels[lo:hi])
            offset += rows
            if offset >= stop:
                break
        masks = np.concatenate(bool_slices, axis=0)
        return pack_mask_columns(masks), np.concatenate(label_slices, axis=0)

    def read_labels(self, start: int, stop: int) -> np.ndarray:
        label_slices = []
        offset = 0
        for labels in self.label_parts:
            rows = labels.shape[0]
            lo = max(start - offset, 0)
            hi = min(stop - offset, rows)
            if lo < hi:
                if lo == 0 and hi == rows and start == offset and stop == offset + rows:
                    return labels
                label_slices.append(labels[lo:hi])
            offset += rows
            if offset >= stop:
                break
        if not label_slices:
            return _empty_labels(self.meta)
        return np.concatenate(label_slices, axis=0)

    def append(self, packed_cols: np.ndarray, labels: np.ndarray) -> None:
        self.packed_parts.append(np.ascontiguousarray(packed_cols, dtype=np.uint64))
        self.label_parts.append(np.ascontiguousarray(labels, dtype=np.int32))
        self.count += labels.shape[0]
        self.meta["n_worlds"] = self.count
        self.meta["block_counts"] = self.block_counts

    def nbytes(self) -> tuple[int, int]:
        return (
            sum(part.nbytes for part in self.packed_parts),
            sum(part.nbytes for part in self.label_parts),
        )


class _DiskPool:
    """Disk-backed pool: append-only block files + an atomic meta record.

    ``masks.u64`` holds the columnar blocks back to back (block ``b``
    occupies ``n_edges * packed_words(block_counts[b])`` words);
    ``labels.i32`` holds world-major label rows.  Data is appended
    first and the block list in ``meta.json`` updated (atomically, via
    ``os.replace``) last, so a torn append leaves trailing garbage that
    no reader ever addresses.
    """

    def __init__(self, directory: Path, meta: dict):
        self.directory = directory
        self.meta = meta
        self.count = int(meta.get("n_worlds", 0))
        self.block_counts = list(meta.get("block_counts", []))

    @property
    def masks_path(self) -> Path:
        return self.directory / _MASKS_NAME

    @property
    def labels_path(self) -> Path:
        return self.directory / _LABELS_NAME

    def _implied_bytes(self, count: int, block_counts) -> tuple[int, int]:
        return (
            _mask_block_bytes(int(self.meta["n_edges"]), block_counts),
            count * int(self.meta["n_nodes"]) * 4,
        )

    def refresh(self, truncate: bool = False) -> None:
        """Adopt the on-disk world count (another process may have grown
        or cleared the pool since we registered).  With ``truncate=True``
        — callers must hold the pool write lock — also restore the
        file-bytes == block-layout invariant by truncating any trailing
        bytes a torn append left behind (never safe from the read path:
        a concurrent writer's fresh rows look like trailing garbage
        until its meta lands).  Unsound state resets the count to 0 —
        re-sampling, never wrong worlds."""
        count = 0
        block_counts: list[int] = []
        try:
            with open(self.directory / _META_NAME, encoding="utf-8") as handle:
                disk = json.load(handle)
            if (
                disk.get("format") == FORMAT_VERSION
                and disk.get("digest") == self.meta["digest"]
                and int(disk["n_worlds"]) >= 0
            ):
                count = int(disk["n_worlds"])
                block_counts = _coerce_block_counts(disk.get("block_counts", []), count)
        except (OSError, ValueError, KeyError, TypeError):
            count, block_counts = 0, []
        mask_bytes, label_bytes = self._implied_bytes(count, block_counts)
        for path, implied in ((self.masks_path, mask_bytes), (self.labels_path, label_bytes)):
            size = path.stat().st_size if path.exists() else 0
            if size < implied:
                count, block_counts = 0, []  # data cannot back the meta: reset
                mask_bytes, label_bytes = self._implied_bytes(0, [])
                break
        if truncate:
            for path, implied in ((self.masks_path, mask_bytes), (self.labels_path, label_bytes)):
                if path.exists() and path.stat().st_size > implied:
                    os.truncate(path, implied)
        self.count = count
        self.block_counts = block_counts
        self.meta["n_worlds"] = count
        self.meta["block_counts"] = block_counts

    def read_labels(self, start: int, stop: int) -> np.ndarray:
        n = int(self.meta["n_nodes"])
        labels_map = np.memmap(
            self.labels_path, dtype=np.int32, mode="r", shape=(self.count, n)
        )
        labels = np.array(labels_map[start:stop])
        del labels_map
        return labels

    def read(self, start: int, stop: int) -> tuple[np.ndarray, np.ndarray]:
        n_edges = int(self.meta["n_edges"])
        labels = self.read_labels(start, stop)
        if start == stop:
            return _empty_cols(self.meta), labels
        if n_edges == 0:
            return np.zeros((0, packed_words(stop - start)), dtype=np.uint64), labels
        masks_map = np.memmap(self.masks_path, dtype=np.uint64, mode="r")
        try:
            offset_words = 0
            bool_slices = []
            block_start = 0
            for rows in self.block_counts:
                words = packed_words(rows)
                lo = max(start - block_start, 0)
                hi = min(stop - block_start, rows)
                if lo < hi:
                    block = np.array(
                        masks_map[offset_words: offset_words + n_edges * words]
                    ).reshape(n_edges, words)
                    if lo == 0 and hi == rows and start == block_start and stop == block_start + rows:
                        return block, labels
                    bool_slices.append(unpack_mask_columns(block, rows)[lo:hi])
                offset_words += n_edges * words
                block_start += rows
                if block_start >= stop:
                    break
            masks = np.concatenate(bool_slices, axis=0)
            return pack_mask_columns(masks), labels
        finally:
            del masks_map

    def append(self, packed_cols: np.ndarray, labels: np.ndarray) -> None:
        packed_cols = np.ascontiguousarray(packed_cols, dtype=np.uint64)
        labels = np.ascontiguousarray(labels, dtype=np.int32)
        if packed_cols.shape[0]:
            with open(self.masks_path, "ab") as handle:
                handle.write(packed_cols.tobytes())
        with open(self.labels_path, "ab") as handle:
            handle.write(labels.tobytes())
        self.count += labels.shape[0]
        self.block_counts.append(int(labels.shape[0]))
        self.meta["n_worlds"] = self.count
        self.meta["block_counts"] = list(self.block_counts)
        _write_meta(self.directory, self.meta)

    def nbytes(self) -> tuple[int, int]:
        return self._implied_bytes(self.count, self.block_counts)


def _empty_cols(meta: dict) -> np.ndarray:
    return np.zeros((int(meta["n_edges"]), 0), dtype=np.uint64)


def _empty_labels(meta: dict) -> np.ndarray:
    return np.zeros((0, int(meta["n_nodes"])), dtype=np.int32)


def _slice_block_worlds(packed_cols: np.ndarray, rows: int, lo: int, hi: int) -> np.ndarray:
    """Columnar re-slice of worlds ``[lo, hi)`` out of a packed block."""
    if lo == 0 and hi == rows:
        return packed_cols
    return pack_mask_columns(unpack_mask_columns(packed_cols, rows)[lo:hi])


def _write_meta(directory: Path, meta: dict) -> None:
    tmp = directory / (_META_NAME + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(meta, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, directory / _META_NAME)


class WorldStore:
    """Content-addressed store of bit-packed world pools.

    Parameters
    ----------
    cache_dir:
        ``None`` keeps every pool in memory (useful for sharing pools
        between oracles inside one process).  A directory path spills
        pools to disk — one subdirectory per digest, raw binary data
        files read back through :class:`numpy.memmap` — so pools
        persist across process runs.  The directory is created lazily
        on the first append.

    Examples
    --------
    >>> from repro.sampling.oracle import MonteCarloOracle
    >>> g = UncertainGraph.from_edges([(0, 1, 0.5), (1, 2, 0.5)])
    >>> store = WorldStore()                     # in-memory
    >>> with MonteCarloOracle(g, seed=7, store=store) as oracle:
    ...     oracle.ensure_samples(100)
    >>> [pool.n_worlds for pool in store.info()]
    [100]
    >>> with MonteCarloOracle(g, seed=7, store=store) as warm:
    ...     warm.ensure_samples(100)             # served from the store
    ...     warm.cache_stats["worlds_cached"]
    100
    """

    def __init__(self, cache_dir: str | os.PathLike | None = None):
        self._cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._pools: dict[str, _MemoryPool | _DiskPool] = {}
        self._lock = threading.Lock()

    @property
    def cache_dir(self) -> Path | None:
        """Spill directory, or ``None`` for a purely in-memory store."""
        return self._cache_dir

    @property
    def persistent(self) -> bool:
        return self._cache_dir is not None

    # ------------------------------------------------------------------
    # Pool registry
    # ------------------------------------------------------------------

    def register(
        self, graph: UncertainGraph, seed, backend_name: str, chunk_size: int
    ) -> str:
        """Resolve (and, on disk, validate) the pool for these inputs.

        Returns the pool digest used by :meth:`count` / :meth:`read` /
        :meth:`append`.  A disk pool whose metadata or data files are
        missing, truncated, or inconsistent is discarded and treated as
        empty — corruption can cost re-sampling, never wrong worlds.
        """
        digest = pool_fingerprint(graph, seed, backend_name, chunk_size)
        meta = {
            "format": FORMAT_VERSION,
            "digest": digest,
            "n_worlds": 0,
            "block_counts": [],
            "n_nodes": int(graph.n_nodes),
            "n_edges": int(graph.n_edges),
            "backend": str(backend_name),
            "chunk_size": int(chunk_size),
        }
        with self._lock:
            pool = self._pools.get(digest)
            if pool is not None and not isinstance(pool, _DiskPool):
                return digest
            if self._cache_dir is None:
                self._pools[digest] = _MemoryPool(meta)
                _STORE_POOLS.inc()
            else:
                # Disk pools are (re-)validated on every register, even
                # when _scan_disk already listed them: scanning only
                # reads metadata, and the corruption-recovery contract
                # (reset, never crash) must hold for oracle attachment.
                directory = self._cache_dir / digest
                disk_meta = self._load_valid_meta(directory, meta)
                if digest not in self._pools:
                    _STORE_POOLS.inc()
                self._pools[digest] = _DiskPool(directory, disk_meta)
        return digest

    def _load_valid_meta(self, directory: Path, fresh_meta: dict) -> dict:
        """Validate an existing pool directory; reset it when unsound."""
        meta_path = directory / _META_NAME
        if not meta_path.exists():
            return dict(fresh_meta)
        try:
            with open(meta_path, encoding="utf-8") as handle:
                meta = json.load(handle)
            count = int(meta["n_worlds"])
            ok = (
                meta.get("format") == FORMAT_VERSION
                and meta.get("digest") == fresh_meta["digest"]
                and int(meta["n_nodes"]) == fresh_meta["n_nodes"]
                and int(meta["n_edges"]) == fresh_meta["n_edges"]
                and count >= 0
            )
            block_counts: list[int] = []
            if ok:
                block_counts = _coerce_block_counts(meta.get("block_counts", []), count)
            if ok and count:
                mask_bytes = _mask_block_bytes(fresh_meta["n_edges"], block_counts)
                if mask_bytes:
                    ok = (directory / _MASKS_NAME).stat().st_size >= mask_bytes
                ok = ok and (
                    (directory / _LABELS_NAME).stat().st_size
                    >= count * fresh_meta["n_nodes"] * 4
                )
            if ok:
                merged = dict(fresh_meta)
                merged["n_worlds"] = count
                merged["block_counts"] = block_counts
                return merged
        except (OSError, ValueError, KeyError, TypeError):
            pass
        shutil.rmtree(directory, ignore_errors=True)
        return dict(fresh_meta)

    def _pool(self, digest: str):
        try:
            return self._pools[digest]
        except KeyError:
            raise WorldStoreError(
                f"unknown pool digest {digest[:12]}...; call register() first"
            ) from None

    # ------------------------------------------------------------------
    # Pool access
    # ------------------------------------------------------------------

    def count(self, digest: str) -> int:
        """Worlds currently stored for ``digest``.

        Disk pools re-read the on-disk count, so growth (or clearing)
        by another process is observed before the next read or append.
        """
        pool = self._pool(digest)
        with self._lock:
            if isinstance(pool, _DiskPool):
                pool.refresh()
            return pool.count

    def read(self, digest: str, start: int, stop: int) -> tuple[np.ndarray, np.ndarray]:
        """Columnar masks and labels of stored worlds ``[start, stop)``.

        Returns ``(packed_cols, labels)`` of shapes
        ``(m, packed_words(rows))`` uint64 and ``(rows, n)`` int32.
        Block-aligned ranges (the oracle's warm path) are served as
        stored views/copies directly; misaligned ranges are re-packed.
        Disk pools are copied out of their memmap so no file handle
        outlives the call; in-memory pools may return *views* of the
        stored parts (parts are append-only and treated as immutable),
        so callers must not mutate the result.

        The range check and the copy-out run under the store lock, so a
        concurrent :meth:`append` or disk :meth:`refresh` from another
        thread (the service's job executor shares one store across all
        worker threads) can never shift ``pool.count`` between the
        validation and the slice.  Readers in *other processes* are
        lock-free as before: data files are append-only and the meta
        block list lands atomically after the rows it describes.
        """
        with self._lock:
            pool = self._pool(digest)
            if not 0 <= start <= stop <= pool.count:
                raise WorldStoreError(
                    f"read range [{start}, {stop}) outside stored pool of {pool.count} worlds"
                )
            packed_cols, labels = pool.read(start, stop)
        _STORE_WORLDS_READ.inc(stop - start)
        _STORE_BYTES_READ.inc(packed_cols.nbytes + labels.nbytes)
        return packed_cols, labels

    def read_labels(self, digest: str, start: int, stop: int) -> np.ndarray:
        """Labels only, worlds ``[start, stop)`` — no mask bytes touched.

        The warm clustering fast path: unbounded connection queries
        never look at the masks, so a warm oracle loads labels eagerly
        and defers the (possibly repack-heavy) columnar mask read until
        a depth-limited query actually needs it.  Same locking and
        view/copy contract as :meth:`read`.
        """
        with self._lock:
            pool = self._pool(digest)
            if not 0 <= start <= stop <= pool.count:
                raise WorldStoreError(
                    f"read range [{start}, {stop}) outside stored pool of {pool.count} worlds"
                )
            labels = pool.read_labels(start, stop)
        _STORE_WORLDS_READ.inc(stop - start)
        _STORE_BYTES_READ.inc(labels.nbytes)
        return labels

    def append(self, digest: str, start: int, packed_cols: np.ndarray, labels: np.ndarray) -> int:
        """Append worlds ``[start, start + rows)``; returns the new count.

        ``packed_cols`` is the columnar block (``(m, packed_words(rows))``
        uint64, see :func:`pack_mask_columns`); ``labels`` its ``(rows,
        n)`` world labels; ``start`` the absolute pool position of the
        first appended world.  Worlds the store already holds are
        silently dropped (safe: worlds are pure functions of their
        position, so any two writers produce identical rows).  A gap
        beyond the current end raises
        :class:`~repro.exceptions.WorldStoreError` for in-memory pools
        (a same-process logic error); for disk pools — where a gap
        means another process cleared the pool out from under us — the
        write is dropped and the current count returned, keeping the
        cache best-effort instead of failing the sampling run.

        Disk appends hold an advisory ``flock`` on the pool directory
        and re-read the on-disk count first, so concurrent writers of
        the same pool interleave safely (each extends whatever the
        other already persisted).
        """
        packed_cols = np.ascontiguousarray(packed_cols, dtype=np.uint64)
        labels = np.ascontiguousarray(labels, dtype=np.int32)
        rows = labels.shape[0]
        if packed_cols.shape[1] != packed_words(rows):
            raise WorldStoreError(
                f"columnar block holds {packed_cols.shape[1]} words per edge "
                f"but {rows} label rows need {packed_words(rows)}"
            )
        with self._lock:
            pool = self._pool(digest)
            if packed_cols.shape[0] != int(pool.meta["n_edges"]):
                raise WorldStoreError(
                    f"columnar block has {packed_cols.shape[0]} edge rows, "
                    f"pool expects {pool.meta['n_edges']}"
                )
            if isinstance(pool, _DiskPool):
                pool.directory.mkdir(parents=True, exist_ok=True)
                with _pool_write_lock(pool.directory):
                    pool.refresh(truncate=True)
                    if start > pool.count:
                        return pool.count  # pool was cleared underneath us
                    skip = pool.count - start
                    if skip < rows:
                        if not (pool.directory / _META_NAME).exists():
                            _write_meta(pool.directory, pool.meta)
                        block = _slice_block_worlds(packed_cols, rows, skip, rows)
                        pool.append(block, labels[skip:])
                        _STORE_WORLDS_APPENDED.inc(rows - skip)
                        _STORE_BYTES_APPENDED.inc(block.nbytes + labels[skip:].nbytes)
                return pool.count
            if start > pool.count:
                raise WorldStoreError(
                    f"append at {start} would leave a gap (pool has {pool.count} worlds)"
                )
            skip = pool.count - start
            if skip < rows:
                block = _slice_block_worlds(packed_cols, rows, skip, rows)
                pool.append(block, labels[skip:])
                _STORE_WORLDS_APPENDED.inc(rows - skip)
                _STORE_BYTES_APPENDED.inc(block.nbytes + labels[skip:].nbytes)
            return pool.count

    # ------------------------------------------------------------------
    # Maintenance (CLI `repro cache {info,clear}`)
    # ------------------------------------------------------------------

    def _scan_disk(self) -> None:
        """Register every pool directory found under ``cache_dir``."""
        if self._cache_dir is None or not self._cache_dir.is_dir():
            return
        for entry in sorted(self._cache_dir.iterdir()):
            meta_path = entry / _META_NAME
            if entry.name in self._pools or not meta_path.is_file():
                continue
            try:
                with open(meta_path, encoding="utf-8") as handle:
                    meta = json.load(handle)
                if meta.get("format") != FORMAT_VERSION or meta.get("digest") != entry.name:
                    continue
                # Coerce the required keys now so a meta.json missing any
                # of them is skipped here instead of crashing info() later.
                for key in ("n_worlds", "n_nodes", "n_edges"):
                    meta[key] = int(meta[key])
                meta["block_counts"] = _coerce_block_counts(
                    meta.get("block_counts", []), meta["n_worlds"]
                )
                with self._lock:
                    self._pools.setdefault(entry.name, _DiskPool(entry, meta))
            except (OSError, ValueError, KeyError, TypeError):
                continue

    def info(self) -> list[PoolInfo]:
        """One :class:`PoolInfo` per stored pool (disk pools included).

        Thread-safe: sizes are snapshotted under the store lock, so a
        pool growing in another thread is reported at a consistent
        count rather than mid-append.
        """
        self._scan_disk()
        rows = []
        with self._lock:
            pools = sorted(self._pools.items())
        for digest, pool in pools:
            with self._lock:
                if self._pools.get(digest) is not pool:
                    continue  # cleared between the snapshot and this row
                mask_bytes, label_bytes = pool.nbytes()
                n_worlds = pool.count
                n_blocks = len(pool.block_counts)
            rows.append(
                PoolInfo(
                    digest=digest,
                    n_worlds=n_worlds,
                    n_nodes=int(pool.meta["n_nodes"]),
                    n_edges=int(pool.meta["n_edges"]),
                    n_blocks=n_blocks,
                    mask_bytes=mask_bytes,
                    label_bytes=label_bytes,
                    persistent=isinstance(pool, _DiskPool),
                    backend=str(pool.meta.get("backend", "?")),
                    chunk_size=int(pool.meta.get("chunk_size", 0)),
                )
            )
        return rows

    def clear(self, digest: str | None = None) -> int:
        """Drop one pool (or all of them); returns how many were removed.

        On a disk store this removes the named directories themselves,
        including pool directories whose metadata is corrupt or from an
        older format version — ``clear`` is the recovery tool, so it
        must not skip exactly the pools that failed to register.
        """
        self._scan_disk()
        with self._lock:
            digests = [digest] if digest is not None else list(self._pools)
            removed = 0
            for key in digests:
                pool = self._pools.pop(key, None)
                if isinstance(pool, _DiskPool):
                    shutil.rmtree(pool.directory, ignore_errors=True)
                if pool is not None:
                    removed += 1
            if self._cache_dir is not None and self._cache_dir.is_dir():
                # Sweep unregistered leftovers (corrupt meta, old format)
                # — but only directories that look like pools (64-hex
                # digest name + meta file), so clearing a mistyped path
                # can never destroy unrelated user data.
                leftovers = (
                    [self._cache_dir / digest] if digest is not None
                    else list(self._cache_dir.iterdir())
                )
                for entry in leftovers:
                    if (
                        entry.is_dir()
                        and _DIGEST_RE.fullmatch(entry.name)
                        and (entry / _META_NAME).exists()
                    ):
                        shutil.rmtree(entry, ignore_errors=True)
                        removed += 1
        return removed

    def __repr__(self) -> str:
        where = str(self._cache_dir) if self._cache_dir is not None else "memory"
        return f"WorldStore(pools={len(self._pools)}, cache_dir={where!r})"
