"""Bit-packed, content-addressed persistent store of sampled worlds.

Monte Carlo world sampling dominates the running time of both MCP and
ACP (paper Section 4), yet the sampled pool is a pure function of
``(graph, seed, backend)``: world ``i``'s edge mask depends only on the
root seed and ``i`` (sharded streams, :mod:`repro.sampling.parallel`),
and the canonical labels depend only on the mask.  This module exploits
that purity twice:

Bit packing
    A chunk of ``(r, m)`` boolean edge masks is stored as ``(r, w)``
    ``uint64`` words (``w = ceil(m / 64)``) — an 8x memory cut over
    numpy's byte-per-bool layout.  Masks are unpacked on demand, only
    where a consumer genuinely needs booleans (e.g. building the
    block-diagonal CSR for depth-limited queries).

Content addressing
    Pools are keyed by a SHA-256 digest of the graph's edge endpoints
    and probabilities, the root seed, the backend name, and the chunk
    size (:func:`pool_fingerprint`).  Any change to any input yields a
    different digest, so a cache can never serve stale worlds — the
    *invalidation contract*, pinned by ``tests/test_store.py`` and
    documented in ``docs/ARCHITECTURE.md``.

:class:`WorldStore` holds one growing pool per digest, either purely in
memory or spilled to a disk directory (one subdirectory per digest with
raw ``numpy`` files read back through :class:`numpy.memmap`).  Because
cached and freshly drawn worlds are bit-identical, a
:class:`~repro.sampling.oracle.MonteCarloOracle` can resume progressive
sampling from a cached pool mid-schedule and extend it in place.

Concurrency: reads are safe from any number of processes.  Disk
appends take an advisory ``flock`` on the pool directory and re-read
the on-disk world count first, so concurrent writers of the *same*
pool trim each other's overlap instead of misaligning file rows (safe
because any two writers produce identical rows — worlds are pure
functions of their position).  A pool cleared externally while a
writer is running simply stops being extended (the write is dropped,
never misplaced).  Within one process, every count/read/append (and
the size snapshots behind :meth:`WorldStore.info`) runs under a
per-store thread lock, so a single :class:`WorldStore` can back many
oracles across executor threads — the clustering service's hot path
(:mod:`repro.service`) relies on exactly this.  Individual
:class:`~repro.sampling.oracle.MonteCarloOracle` instances are *not*
thread-safe; share worlds by giving each thread its own oracle
attached to the shared store.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.exceptions import WorldStoreError
from repro.graph.uncertain_graph import UncertainGraph
from repro.utils.rng import ensure_seed_sequence

__all__ = [
    "WorldStore",
    "pack_masks",
    "packed_words",
    "pool_fingerprint",
    "unpack_masks",
]

#: Bits per packed word; masks are stored as ``uint64`` bitsets.
WORD_BITS = 64

#: On-disk format version; bumped on any layout change so old cache
#: directories are treated as misses rather than misread.
FORMAT_VERSION = 1

_META_NAME = "meta.json"
_MASKS_NAME = "masks.u64"
_LABELS_NAME = "labels.i32"
_LOCK_NAME = ".lock"

#: Pool directories are named by their SHA-256 hex digest.
_DIGEST_RE = re.compile(r"[0-9a-f]{64}")


@contextmanager
def _pool_write_lock(directory: Path):
    """Advisory cross-process write lock on one pool directory."""
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX platforms
        yield
        return
    with open(directory / _LOCK_NAME, "a+b") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


def packed_words(n_edges: int) -> int:
    """Number of ``uint64`` words needed to hold ``n_edges`` mask bits.

    Examples
    --------
    >>> packed_words(0), packed_words(1), packed_words(64), packed_words(65)
    (0, 1, 1, 2)
    """
    if n_edges < 0:
        raise ValueError(f"n_edges must be non-negative, got {n_edges}")
    return (int(n_edges) + WORD_BITS - 1) // WORD_BITS


def pack_masks(masks: np.ndarray) -> np.ndarray:
    """Pack boolean edge masks into ``uint64`` bitset rows.

    The result has shape ``(r, packed_words(m))`` and uses 1/8 of the
    mask bytes (plus at most 7 bytes of padding per row).  Bit ``j`` of
    row ``i`` — little-endian within each word — is ``masks[i, j]``.

    Examples
    --------
    >>> masks = np.array([[True, False, True], [False, True, False]])
    >>> packed = pack_masks(masks)
    >>> packed.shape, packed.dtype.name
    ((2, 1), 'uint64')
    >>> bool(np.array_equal(unpack_masks(packed, 3), masks))
    True
    """
    masks = np.ascontiguousarray(masks, dtype=bool)
    if masks.ndim != 2:
        raise ValueError(f"masks must be 2-D (worlds, edges), got shape {masks.shape}")
    r, m = masks.shape
    words = packed_words(m)
    packed_bytes = np.packbits(masks, axis=1, bitorder="little")
    row_bytes = words * (WORD_BITS // 8)
    if packed_bytes.shape[1] != row_bytes:
        padded = np.zeros((r, row_bytes), dtype=np.uint8)
        padded[:, : packed_bytes.shape[1]] = packed_bytes
        packed_bytes = padded
    return np.ascontiguousarray(packed_bytes).view(np.uint64)


def unpack_masks(packed: np.ndarray, n_edges: int) -> np.ndarray:
    """Unpack ``uint64`` bitset rows back into boolean edge masks.

    Inverse of :func:`pack_masks`: returns a ``(r, n_edges)`` boolean
    array.  ``packed`` may be any array-like (including a
    :class:`numpy.memmap` slice read back from disk).
    """
    packed = np.ascontiguousarray(packed, dtype=np.uint64)
    if packed.ndim != 2:
        raise ValueError(f"packed masks must be 2-D, got shape {packed.shape}")
    words = packed_words(n_edges)
    if packed.shape[1] != words:
        raise ValueError(
            f"packed rows hold {packed.shape[1]} words but {n_edges} edges need {words}"
        )
    if n_edges == 0:
        return np.zeros((packed.shape[0], 0), dtype=bool)
    bits = np.unpackbits(packed.view(np.uint8), axis=1, count=n_edges, bitorder="little")
    return bits.view(np.bool_)


def pool_fingerprint(graph: UncertainGraph, seed, backend_name: str, chunk_size: int) -> str:
    """Content digest addressing one pool of sampled worlds.

    The SHA-256 digest covers everything the pool content depends on:
    the graph's node count, edge endpoints and probabilities, the root
    seed (entropy + spawn key of the resolved
    :class:`numpy.random.SeedSequence`), the world-labeling backend
    name, and the oracle chunk size.  Mutating *any* of these yields a
    different digest, so a cached pool can never be served for changed
    inputs.  (Chunk size does not actually change the sampled worlds —
    including it is deliberate conservatism, not a correctness need.)

    Examples
    --------
    >>> g = UncertainGraph.from_edges([(0, 1, 0.5)])
    >>> a = pool_fingerprint(g, 7, "unionfind", 512)
    >>> a == pool_fingerprint(g, 7, "unionfind", 512)
    True
    >>> a == pool_fingerprint(g, 8, "unionfind", 512)
    False
    """
    seed_seq = ensure_seed_sequence(seed)
    digest = hashlib.sha256()
    digest.update(b"repro-world-pool-v%d" % FORMAT_VERSION)
    digest.update(str(graph.n_nodes).encode())
    digest.update(np.ascontiguousarray(graph.edge_src, dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(graph.edge_dst, dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(graph.edge_prob, dtype=np.float64).tobytes())
    digest.update(str(seed_seq.entropy).encode())
    digest.update(repr(tuple(int(k) for k in seed_seq.spawn_key)).encode())
    digest.update(str(backend_name).encode())
    digest.update(str(int(chunk_size)).encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class PoolInfo:
    """Summary of one stored pool (for ``repro cache info`` and tests)."""

    digest: str
    n_worlds: int
    n_nodes: int
    n_edges: int
    words: int
    mask_bytes: int
    label_bytes: int
    persistent: bool
    backend: str = "?"
    chunk_size: int = 0


class _MemoryPool:
    """In-memory pool: growing lists of packed-mask and label blocks."""

    def __init__(self, meta: dict):
        self.meta = meta
        self.packed_parts: list[np.ndarray] = []
        self.label_parts: list[np.ndarray] = []
        self.count = 0

    def read(self, start: int, stop: int) -> tuple[np.ndarray, np.ndarray]:
        # Slice only the parts the range touches: a warm oracle reads
        # chunk by chunk, and rebuilding the whole pool per read would
        # make warming quadratic in pool size.
        packed_slices, label_slices = [], []
        offset = 0
        for packed, labels in zip(self.packed_parts, self.label_parts):
            rows = packed.shape[0]
            lo = max(start - offset, 0)
            hi = min(stop - offset, rows)
            if lo < hi:
                packed_slices.append(packed[lo:hi])
                label_slices.append(labels[lo:hi])
            offset += rows
            if offset >= stop:
                break
        if not packed_slices:
            return _empty_packed(self.meta), _empty_labels(self.meta)
        if len(packed_slices) == 1:
            # The common case — oracle reads are chunk-aligned, so the
            # range falls inside one stored part.  Return views instead
            # of copies: warm oracles treat pool rows as immutable, and
            # copying would make every warm request pay O(pool bytes).
            return packed_slices[0], label_slices[0]
        return (
            np.concatenate(packed_slices, axis=0),
            np.concatenate(label_slices, axis=0),
        )

    def append(self, packed: np.ndarray, labels: np.ndarray) -> None:
        self.packed_parts.append(np.ascontiguousarray(packed, dtype=np.uint64))
        self.label_parts.append(np.ascontiguousarray(labels, dtype=np.int32))
        self.count += packed.shape[0]

    def nbytes(self) -> tuple[int, int]:
        return (
            sum(part.nbytes for part in self.packed_parts),
            sum(part.nbytes for part in self.label_parts),
        )


class _DiskPool:
    """Disk-backed pool: raw append-only files + an atomic meta record.

    Data rows are appended to ``masks.u64`` / ``labels.i32`` first and
    the world count in ``meta.json`` is updated (atomically, via
    ``os.replace``) last, so a torn append leaves trailing garbage that
    no reader ever addresses.
    """

    def __init__(self, directory: Path, meta: dict):
        self.directory = directory
        self.meta = meta
        self.count = int(meta.get("n_worlds", 0))

    @property
    def masks_path(self) -> Path:
        return self.directory / _MASKS_NAME

    @property
    def labels_path(self) -> Path:
        return self.directory / _LABELS_NAME

    def _row_bytes(self) -> tuple[int, int]:
        return int(self.meta["words"]) * 8, int(self.meta["n_nodes"]) * 4

    def refresh(self, truncate: bool = False) -> None:
        """Adopt the on-disk world count (another process may have grown
        or cleared the pool since we registered).  With ``truncate=True``
        — callers must hold the pool write lock — also restore the
        file-rows == world-indices invariant by truncating any trailing
        bytes a torn append left behind (never safe from the read path:
        a concurrent writer's fresh rows look like trailing garbage
        until its meta lands).  Unsound state resets the count to 0 —
        re-sampling, never wrong worlds."""
        count = 0
        try:
            with open(self.directory / _META_NAME, encoding="utf-8") as handle:
                disk = json.load(handle)
            if (
                disk.get("format") == FORMAT_VERSION
                and disk.get("digest") == self.meta["digest"]
                and int(disk["n_worlds"]) >= 0
            ):
                count = int(disk["n_worlds"])
        except (OSError, ValueError, KeyError, TypeError):
            count = 0
        mask_row, label_row = self._row_bytes()
        for path, row_bytes in ((self.masks_path, mask_row), (self.labels_path, label_row)):
            if not row_bytes:
                continue
            size = path.stat().st_size if path.exists() else 0
            if size < count * row_bytes:
                count = 0  # data cannot back the recorded count: reset
        if truncate:
            for path, row_bytes in ((self.masks_path, mask_row), (self.labels_path, label_row)):
                if row_bytes and path.exists() and path.stat().st_size > count * row_bytes:
                    os.truncate(path, count * row_bytes)
        self.count = count
        self.meta["n_worlds"] = count

    def read(self, start: int, stop: int) -> tuple[np.ndarray, np.ndarray]:
        words = int(self.meta["words"])
        n = int(self.meta["n_nodes"])
        if words:
            masks_map = np.memmap(
                self.masks_path, dtype=np.uint64, mode="r", shape=(self.count, words)
            )
            packed = np.array(masks_map[start:stop])
            del masks_map
        else:
            packed = np.zeros((stop - start, 0), dtype=np.uint64)
        labels_map = np.memmap(
            self.labels_path, dtype=np.int32, mode="r", shape=(self.count, n)
        )
        labels = np.array(labels_map[start:stop])
        del labels_map
        return packed, labels

    def append(self, packed: np.ndarray, labels: np.ndarray) -> None:
        packed = np.ascontiguousarray(packed, dtype=np.uint64)
        labels = np.ascontiguousarray(labels, dtype=np.int32)
        if packed.shape[1]:
            with open(self.masks_path, "ab") as handle:
                handle.write(packed.tobytes())
        with open(self.labels_path, "ab") as handle:
            handle.write(labels.tobytes())
        self.count += packed.shape[0]
        self.meta["n_worlds"] = self.count
        _write_meta(self.directory, self.meta)

    def nbytes(self) -> tuple[int, int]:
        words = int(self.meta["words"])
        n = int(self.meta["n_nodes"])
        return (self.count * words * 8, self.count * n * 4)


def _empty_packed(meta: dict) -> np.ndarray:
    return np.zeros((0, int(meta["words"])), dtype=np.uint64)


def _empty_labels(meta: dict) -> np.ndarray:
    return np.zeros((0, int(meta["n_nodes"])), dtype=np.int32)


def _write_meta(directory: Path, meta: dict) -> None:
    tmp = directory / (_META_NAME + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(meta, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, directory / _META_NAME)


class WorldStore:
    """Content-addressed store of bit-packed world pools.

    Parameters
    ----------
    cache_dir:
        ``None`` keeps every pool in memory (useful for sharing pools
        between oracles inside one process).  A directory path spills
        pools to disk — one subdirectory per digest, raw binary data
        files read back through :class:`numpy.memmap` — so pools
        persist across process runs.  The directory is created lazily
        on the first append.

    Examples
    --------
    >>> from repro.sampling.oracle import MonteCarloOracle
    >>> g = UncertainGraph.from_edges([(0, 1, 0.5), (1, 2, 0.5)])
    >>> store = WorldStore()                     # in-memory
    >>> with MonteCarloOracle(g, seed=7, store=store) as oracle:
    ...     oracle.ensure_samples(100)
    >>> [pool.n_worlds for pool in store.info()]
    [100]
    >>> with MonteCarloOracle(g, seed=7, store=store) as warm:
    ...     warm.ensure_samples(100)             # served from the store
    ...     warm.cache_stats["worlds_cached"]
    100
    """

    def __init__(self, cache_dir: str | os.PathLike | None = None):
        self._cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._pools: dict[str, _MemoryPool | _DiskPool] = {}
        self._lock = threading.Lock()

    @property
    def cache_dir(self) -> Path | None:
        """Spill directory, or ``None`` for a purely in-memory store."""
        return self._cache_dir

    @property
    def persistent(self) -> bool:
        return self._cache_dir is not None

    # ------------------------------------------------------------------
    # Pool registry
    # ------------------------------------------------------------------

    def register(
        self, graph: UncertainGraph, seed, backend_name: str, chunk_size: int
    ) -> str:
        """Resolve (and, on disk, validate) the pool for these inputs.

        Returns the pool digest used by :meth:`count` / :meth:`read` /
        :meth:`append`.  A disk pool whose metadata or data files are
        missing, truncated, or inconsistent is discarded and treated as
        empty — corruption can cost re-sampling, never wrong worlds.
        """
        digest = pool_fingerprint(graph, seed, backend_name, chunk_size)
        meta = {
            "format": FORMAT_VERSION,
            "digest": digest,
            "n_worlds": 0,
            "n_nodes": int(graph.n_nodes),
            "n_edges": int(graph.n_edges),
            "words": packed_words(graph.n_edges),
            "backend": str(backend_name),
            "chunk_size": int(chunk_size),
        }
        with self._lock:
            pool = self._pools.get(digest)
            if pool is not None and not isinstance(pool, _DiskPool):
                return digest
            if self._cache_dir is None:
                self._pools[digest] = _MemoryPool(meta)
            else:
                # Disk pools are (re-)validated on every register, even
                # when _scan_disk already listed them: scanning only
                # reads metadata, and the corruption-recovery contract
                # (reset, never crash) must hold for oracle attachment.
                directory = self._cache_dir / digest
                disk_meta = self._load_valid_meta(directory, meta)
                self._pools[digest] = _DiskPool(directory, disk_meta)
        return digest

    def _load_valid_meta(self, directory: Path, fresh_meta: dict) -> dict:
        """Validate an existing pool directory; reset it when unsound."""
        meta_path = directory / _META_NAME
        if not meta_path.exists():
            return dict(fresh_meta)
        try:
            with open(meta_path, encoding="utf-8") as handle:
                meta = json.load(handle)
            count = int(meta["n_worlds"])
            ok = (
                meta.get("format") == FORMAT_VERSION
                and meta.get("digest") == fresh_meta["digest"]
                and int(meta["n_nodes"]) == fresh_meta["n_nodes"]
                and int(meta["words"]) == fresh_meta["words"]
                and count >= 0
            )
            if ok and count:
                words = int(meta["words"])
                if words:
                    ok = (directory / _MASKS_NAME).stat().st_size >= count * words * 8
                ok = ok and (
                    (directory / _LABELS_NAME).stat().st_size
                    >= count * fresh_meta["n_nodes"] * 4
                )
            if ok:
                merged = dict(fresh_meta)
                merged["n_worlds"] = count
                return merged
        except (OSError, ValueError, KeyError, TypeError):
            pass
        shutil.rmtree(directory, ignore_errors=True)
        return dict(fresh_meta)

    def _pool(self, digest: str):
        try:
            return self._pools[digest]
        except KeyError:
            raise WorldStoreError(
                f"unknown pool digest {digest[:12]}...; call register() first"
            ) from None

    # ------------------------------------------------------------------
    # Pool access
    # ------------------------------------------------------------------

    def count(self, digest: str) -> int:
        """Worlds currently stored for ``digest``.

        Disk pools re-read the on-disk count, so growth (or clearing)
        by another process is observed before the next read or append.
        """
        pool = self._pool(digest)
        with self._lock:
            if isinstance(pool, _DiskPool):
                pool.refresh()
            return pool.count

    def read(self, digest: str, start: int, stop: int) -> tuple[np.ndarray, np.ndarray]:
        """Packed masks and labels of stored worlds ``[start, stop)``.

        Returns ``(packed, labels)`` of shapes ``(rows, words)`` uint64
        and ``(rows, n)`` int32.  Disk pools are copied out of their
        memmap so no file handle outlives the call; in-memory pools may
        return *views* of the stored parts (parts are append-only and
        treated as immutable), so callers must not mutate the result.

        The range check and the copy-out run under the store lock, so a
        concurrent :meth:`append` or disk :meth:`refresh` from another
        thread (the service's job executor shares one store across all
        worker threads) can never shift ``pool.count`` between the
        validation and the slice.  Readers in *other processes* are
        lock-free as before: data files are append-only and the meta
        count lands atomically after the rows it describes.
        """
        with self._lock:
            pool = self._pool(digest)
            if not 0 <= start <= stop <= pool.count:
                raise WorldStoreError(
                    f"read range [{start}, {stop}) outside stored pool of {pool.count} worlds"
                )
            return pool.read(start, stop)

    def append(self, digest: str, start: int, packed: np.ndarray, labels: np.ndarray) -> int:
        """Append worlds ``[start, start + rows)``; returns the new count.

        ``start`` is the absolute pool position of the first appended
        world.  Rows the store already holds are silently dropped
        (safe: worlds are pure functions of their position, so any two
        writers produce identical rows).  A gap beyond the current end
        raises :class:`~repro.exceptions.WorldStoreError` for in-memory
        pools (a same-process logic error); for disk pools — where a
        gap means another process cleared the pool out from under us —
        the write is dropped and the current count returned, keeping
        the cache best-effort instead of failing the sampling run.

        Disk appends hold an advisory ``flock`` on the pool directory
        and re-read the on-disk count first, so concurrent writers of
        the same pool interleave safely (each extends whatever the
        other already persisted).
        """
        packed = np.ascontiguousarray(packed, dtype=np.uint64)
        labels = np.ascontiguousarray(labels, dtype=np.int32)
        if packed.shape[0] != labels.shape[0]:
            raise WorldStoreError(
                f"packed/labels row mismatch: {packed.shape[0]} vs {labels.shape[0]}"
            )
        with self._lock:
            pool = self._pool(digest)
            if isinstance(pool, _DiskPool):
                pool.directory.mkdir(parents=True, exist_ok=True)
                with _pool_write_lock(pool.directory):
                    pool.refresh(truncate=True)
                    if start > pool.count:
                        return pool.count  # pool was cleared underneath us
                    skip = pool.count - start
                    if skip < packed.shape[0]:
                        if not (pool.directory / _META_NAME).exists():
                            _write_meta(pool.directory, pool.meta)
                        pool.append(packed[skip:], labels[skip:])
                return pool.count
            if start > pool.count:
                raise WorldStoreError(
                    f"append at {start} would leave a gap (pool has {pool.count} worlds)"
                )
            skip = pool.count - start
            if skip < packed.shape[0]:
                pool.append(packed[skip:], labels[skip:])
            return pool.count

    # ------------------------------------------------------------------
    # Maintenance (CLI `repro cache {info,clear}`)
    # ------------------------------------------------------------------

    def _scan_disk(self) -> None:
        """Register every pool directory found under ``cache_dir``."""
        if self._cache_dir is None or not self._cache_dir.is_dir():
            return
        for entry in sorted(self._cache_dir.iterdir()):
            meta_path = entry / _META_NAME
            if entry.name in self._pools or not meta_path.is_file():
                continue
            try:
                with open(meta_path, encoding="utf-8") as handle:
                    meta = json.load(handle)
                if meta.get("format") != FORMAT_VERSION or meta.get("digest") != entry.name:
                    continue
                # Coerce the required keys now so a meta.json missing any
                # of them is skipped here instead of crashing info() later.
                for key in ("n_worlds", "n_nodes", "n_edges", "words"):
                    meta[key] = int(meta[key])
                with self._lock:
                    self._pools.setdefault(entry.name, _DiskPool(entry, meta))
            except (OSError, ValueError, KeyError, TypeError):
                continue

    def info(self) -> list[PoolInfo]:
        """One :class:`PoolInfo` per stored pool (disk pools included).

        Thread-safe: sizes are snapshotted under the store lock, so a
        pool growing in another thread is reported at a consistent
        count rather than mid-append.
        """
        self._scan_disk()
        rows = []
        with self._lock:
            pools = sorted(self._pools.items())
        for digest, pool in pools:
            with self._lock:
                if self._pools.get(digest) is not pool:
                    continue  # cleared between the snapshot and this row
                mask_bytes, label_bytes = pool.nbytes()
                n_worlds = pool.count
            rows.append(
                PoolInfo(
                    digest=digest,
                    n_worlds=n_worlds,
                    n_nodes=int(pool.meta["n_nodes"]),
                    n_edges=int(pool.meta["n_edges"]),
                    words=int(pool.meta["words"]),
                    mask_bytes=mask_bytes,
                    label_bytes=label_bytes,
                    persistent=isinstance(pool, _DiskPool),
                    backend=str(pool.meta.get("backend", "?")),
                    chunk_size=int(pool.meta.get("chunk_size", 0)),
                )
            )
        return rows

    def clear(self, digest: str | None = None) -> int:
        """Drop one pool (or all of them); returns how many were removed.

        On a disk store this removes the named directories themselves,
        including pool directories whose metadata is corrupt or from an
        older format version — ``clear`` is the recovery tool, so it
        must not skip exactly the pools that failed to register.
        """
        self._scan_disk()
        with self._lock:
            digests = [digest] if digest is not None else list(self._pools)
            removed = 0
            for key in digests:
                pool = self._pools.pop(key, None)
                if isinstance(pool, _DiskPool):
                    shutil.rmtree(pool.directory, ignore_errors=True)
                if pool is not None:
                    removed += 1
            if self._cache_dir is not None and self._cache_dir.is_dir():
                # Sweep unregistered leftovers (corrupt meta, old format)
                # — but only directories that look like pools (64-hex
                # digest name + meta file), so clearing a mistyped path
                # can never destroy unrelated user data.
                leftovers = (
                    [self._cache_dir / digest] if digest is not None
                    else list(self._cache_dir.iterdir())
                )
                for entry in leftovers:
                    if (
                        entry.is_dir()
                        and _DIGEST_RE.fullmatch(entry.name)
                        and (entry / _META_NAME).exists()
                    ):
                        shutil.rmtree(entry, ignore_errors=True)
                        removed += 1
        return removed

    def __repr__(self) -> str:
        where = str(self._cache_dir) if self._cache_dir is not None else "memory"
        return f"WorldStore(pools={len(self._pools)}, cache_dir={where!r})"
