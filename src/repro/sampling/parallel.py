"""Parallel world-sampling engine.

The Monte Carlo pipelines spend nearly all their time drawing and
labeling possible worlds (paper Section 4), and a chunk of ``r`` worlds
is embarrassingly parallel: every world is an independent function of
the edge probabilities and its own random stream.  This module supplies
the execution layer that exploits that structure without giving up
reproducibility.

Sharded random streams
----------------------
The pool of worlds is divided into fixed-size *shards* of
:data:`DEFAULT_SHARD_WORLDS` consecutive worlds.  Shard ``j`` draws its
edge masks from its own ``numpy`` stream, constructed as
``SeedSequence(entropy, spawn_key=root.spawn_key + (j,))`` — the same
derivation :meth:`numpy.random.SeedSequence.spawn` uses, but keyed by
the shard's *position in the pool* instead of by spawn order.  Rows
inside a shard are addressed by offset with a single O(1)
``BitGenerator.advance`` jump.  Consequences:

* the masks of world ``i`` depend only on the root seed and ``i`` —
  never on the chunking pattern of ``ensure_samples`` calls, and never
  on how many workers drew them;
* the serial path (``workers=1``) and the process-pool path compute
  **bit-identical** pools for a fixed seed, because both evaluate the
  same pure function per shard (pinned by ``tests/test_parallel.py``).

Execution
---------
:class:`ParallelSampler` partitions each requested chunk into shard
tasks and either runs them inline (serial path) or fans them out over a
:class:`concurrent.futures.ProcessPoolExecutor`.  Workers are recreated
per graph: the pool's initializer receives the (pickled) graph and
backend name once, so per-task payloads are a few integers.  When the
pool cannot start or dies mid-flight (sandboxes, missing semaphores,
OOM-killed children), the sampler falls back to the serial path and
stays there — parallelism is a throughput optimization, never a
correctness dependency.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.exceptions import OracleError
from repro.graph.uncertain_graph import UncertainGraph
from repro.sampling.backends import BACKENDS, WorldBackend, resolve_backend
from repro.utils.rng import ensure_seed_sequence

__all__ = [
    "DEFAULT_SHARD_WORLDS",
    "ParallelSampler",
    "WORKERS_AUTO",
    "ensure_seed_sequence",
    "resolve_workers",
    "validate_workers_spec",
    "sample_shard_masks",
    "shard_plan",
    "shard_seed_sequence",
]

#: Worlds per shard: the unit of random-stream derivation and of
#: parallel dispatch.  128 worlds amortize process round-trips while
#: keeping a 512-world default chunk divisible into 4 parallel tasks.
DEFAULT_SHARD_WORLDS = 128

#: Values accepted wherever a ``workers=`` option is exposed.
WORKERS_AUTO = "auto"


def shard_seed_sequence(root: np.random.SeedSequence, shard: int) -> np.random.SeedSequence:
    """The stream of shard ``shard`` under root seed ``root``.

    Children are constructed by explicit spawn key, so shard ``j``
    always receives the same stream regardless of the order (or
    process) in which shards are materialized.
    """
    return np.random.SeedSequence(
        entropy=root.entropy, spawn_key=tuple(root.spawn_key) + (int(shard),)
    )


def sample_shard_masks(
    edge_prob: np.ndarray,
    root: np.random.SeedSequence,
    shard: int,
    offset: int,
    rows: int,
) -> np.ndarray:
    """Rows ``[offset, offset + rows)`` of shard ``shard``'s mask block.

    Each mask row consumes exactly ``m`` uniform doubles — one 64-bit
    PCG64 output per edge — so a row offset is a single O(1)
    ``advance(offset * m)`` jump.  ``tests/test_parallel.py`` pins that
    split draws equal whole draws.
    """
    edge_prob = np.asarray(edge_prob, dtype=np.float64)
    rng = np.random.default_rng(shard_seed_sequence(root, shard))
    if offset:
        rng.bit_generator.advance(offset * len(edge_prob))
    return rng.random((rows, len(edge_prob))) < edge_prob


def shard_plan(
    start: int, count: int, shard_worlds: int = DEFAULT_SHARD_WORLDS
) -> list[tuple[int, int, int]]:
    """Split pool worlds ``[start, start + count)`` into shard tasks.

    Returns ``(shard, offset, rows)`` triples aligned to the absolute
    shard grid, in pool order.

    Examples
    --------
    >>> shard_plan(0, 70, 32)
    [(0, 0, 32), (1, 0, 32), (2, 0, 6)]
    >>> shard_plan(70, 60, 32)
    [(2, 6, 26), (3, 0, 32), (4, 0, 2)]
    """
    if start < 0 or count < 0:
        raise ValueError(f"start and count must be non-negative, got {start}, {count}")
    if shard_worlds <= 0:
        raise ValueError(f"shard_worlds must be positive, got {shard_worlds}")
    tasks = []
    position = start
    end = start + count
    while position < end:
        shard, offset = divmod(position, shard_worlds)
        rows = min(shard_worlds - offset, end - position)
        tasks.append((shard, offset, rows))
        position += rows
    return tasks


def validate_workers_spec(spec):
    """Check a ``workers=`` spec without resolving it.

    The single source of truth for what every layer (oracle, MCP/ACP
    drivers, :class:`~repro.experiments.config.ExperimentScale`, CLI)
    accepts: ``"auto"``/``None`` or a positive int.  Returns the spec
    (``None`` normalized to ``"auto"``); raises :class:`OracleError`
    otherwise.

    Examples
    --------
    >>> validate_workers_spec(None)
    'auto'
    >>> validate_workers_spec(3)
    3
    """
    if spec is None or spec == WORKERS_AUTO:
        return WORKERS_AUTO
    if isinstance(spec, (int, np.integer)) and not isinstance(spec, bool):
        if spec < 1:
            raise OracleError(f"workers must be >= 1 or 'auto', got {spec}")
        return int(spec)
    raise OracleError(f"workers must be a positive int or 'auto', got {spec!r}")


def resolve_workers(
    spec,
    *,
    chunk_size: int,
    shard_worlds: int = DEFAULT_SHARD_WORLDS,
    cpu_count: int | None = None,
) -> int:
    """Resolve a ``workers=`` spec into a concrete worker count.

    ``"auto"``/``None`` means ``min(cpu_count, ceil(chunk_size /
    shard_worlds))`` — no more workers than the chunk has shard tasks
    to hand out, and never more than the machine has cores.  Integers
    must be positive and are returned as-is.

    Examples
    --------
    >>> resolve_workers("auto", chunk_size=512, shard_worlds=128, cpu_count=16)
    4
    >>> resolve_workers("auto", chunk_size=64, shard_worlds=128, cpu_count=16)
    1
    >>> resolve_workers(3, chunk_size=512)
    3
    """
    spec = validate_workers_spec(spec)
    if spec == WORKERS_AUTO:
        cores = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
        tasks = max(1, -(-int(chunk_size) // int(shard_worlds)))
        return max(1, min(cores, tasks))
    return spec


# ----------------------------------------------------------------------
# Worker-process side.  State is installed once per pool (the graph and
# backend travel through the initializer, not with every task).
# ----------------------------------------------------------------------

_worker_graph: UncertainGraph | None = None
_worker_backend: WorldBackend | None = None


def _init_worker(graph: UncertainGraph, backend_name: str) -> None:
    global _worker_graph, _worker_backend
    _worker_graph = graph
    _worker_backend = BACKENDS[backend_name]()


def _run_shard_task(args):
    root, shard, offset, rows = args
    masks = sample_shard_masks(_worker_graph.edge_prob, root, shard, offset, rows)
    return masks, _worker_backend.component_labels(_worker_graph, masks)


class ParallelSampler:
    """Draws and labels chunks of worlds, serially or across processes.

    Parameters
    ----------
    graph:
        The uncertain graph being sampled.
    backend:
        World-labeling backend spec (see
        :func:`repro.sampling.backends.resolve_backend`).  Only the
        named built-in backends are dispatched to worker processes;
        custom backend *instances* always run on the serial path so
        their (possibly stateful) behavior stays observable.
    workers:
        ``"auto"``, ``None`` or a positive int — resolved once via
        :func:`resolve_workers` against ``chunk_size``.
    chunk_size:
        The owning oracle's chunk size; only used by the ``"auto"``
        worker heuristic.
    shard_worlds:
        Shard granularity; the default is almost always right.

    Examples
    --------
    >>> g = UncertainGraph.from_edges([(0, 1, 0.5), (1, 2, 0.5)])
    >>> sampler = ParallelSampler(g, workers=1)
    >>> masks, labels = sampler.sample_chunk(np.random.SeedSequence(3), 0, 10)
    >>> masks.shape, labels.shape
    ((10, 2), (10, 3))
    """

    def __init__(
        self,
        graph: UncertainGraph,
        *,
        backend="auto",
        workers=1,
        chunk_size: int = 512,
        shard_worlds: int = DEFAULT_SHARD_WORLDS,
    ):
        if shard_worlds <= 0:
            raise ValueError(f"shard_worlds must be positive, got {shard_worlds}")
        self._graph = graph
        self._backend = resolve_backend(backend, graph)
        self._shard_worlds = int(shard_worlds)
        self._workers = resolve_workers(
            workers, chunk_size=chunk_size, shard_worlds=shard_worlds
        )
        self._pool: ProcessPoolExecutor | None = None
        self._pool_broken = False

    @property
    def backend(self) -> WorldBackend:
        return self._backend

    @property
    def workers(self) -> int:
        """The resolved worker count (1 means the serial path)."""
        return self._workers

    @property
    def shard_worlds(self) -> int:
        return self._shard_worlds

    def _parallelizable(self) -> bool:
        return (
            self._workers > 1
            and not self._pool_broken
            and self._backend.name in BACKENDS
            and type(self._backend) is BACKENDS[self._backend.name]
        )

    def _ensure_pool(self) -> ProcessPoolExecutor | None:
        if self._pool is not None:
            return self._pool
        try:
            import multiprocessing

            context = None
            if "fork" in multiprocessing.get_all_start_methods():
                # fork shares the graph pages copy-on-write and skips
                # re-importing the package in every worker.
                context = multiprocessing.get_context("fork")
            self._pool = ProcessPoolExecutor(
                max_workers=self._workers,
                mp_context=context,
                initializer=_init_worker,
                initargs=(self._graph, self._backend.name),
            )
        except Exception as error:  # pragma: no cover - environment-specific
            self._mark_broken(error)
        return self._pool

    def _mark_broken(self, error: Exception) -> None:
        self._pool_broken = True
        self.close()
        warnings.warn(
            f"process pool unavailable ({type(error).__name__}: {error}); "
            "falling back to serial sampling",
            RuntimeWarning,
            stacklevel=3,
        )

    def sample_chunk(
        self, root: np.random.SeedSequence, start: int, count: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Masks and labels of pool worlds ``[start, start + count)``.

        Returns ``(masks, labels)`` of shapes ``(count, m)`` and
        ``(count, n)``.  The result is a pure function of
        ``(graph, backend, root, start, count)`` — identical under any
        worker count or chunking pattern.
        """
        tasks = shard_plan(start, count, self._shard_worlds)
        # Dispatch only when there are at least two full shards of work;
        # below that, pool startup and pickling dominate and the serial
        # path is faster (small runs stay serial under "auto").
        if count >= 2 * self._shard_worlds and self._parallelizable():
            pool = self._ensure_pool()
            if pool is not None:
                try:
                    parts = list(
                        pool.map(
                            _run_shard_task,
                            [(root, shard, offset, rows) for shard, offset, rows in tasks],
                        )
                    )
                    masks = np.concatenate([part[0] for part in parts], axis=0)
                    labels = np.concatenate([part[1] for part in parts], axis=0)
                    return masks, labels
                except Exception as error:
                    self._mark_broken(error)
        return self._sample_serial(root, tasks, count)

    def _sample_serial(self, root, tasks, count) -> tuple[np.ndarray, np.ndarray]:
        edge_prob = self._graph.edge_prob
        if tasks:
            masks = np.concatenate(
                [
                    sample_shard_masks(edge_prob, root, shard, offset, rows)
                    for shard, offset, rows in tasks
                ],
                axis=0,
            )
        else:
            masks = np.zeros((0, len(edge_prob)), dtype=bool)
        # One labeling call per chunk, so instrumented backends observe
        # exactly the progressive-sampling growth steps.
        return masks, self._backend.component_labels(self._graph, masks)

    def close(self) -> None:
        """Shut down the worker pool (no-op on the serial path)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown timing
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (
            f"ParallelSampler(backend={self._backend.name!r}, "
            f"workers={self._workers}, shard_worlds={self._shard_worlds})"
        )
