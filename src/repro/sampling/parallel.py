"""Parallel world-sampling engine with per-edge random streams.

The Monte Carlo pipelines spend nearly all their time drawing and
labeling possible worlds (paper Section 4), and a chunk of ``r`` worlds
is embarrassingly parallel: every world is an independent function of
the edge probabilities and its own random stream.  This module supplies
the execution layer that exploits that structure without giving up
reproducibility — and, since the delta-aware refactor, without giving
up *incremental resampling* either.

Per-edge random streams
-----------------------
Every edge ``(u, v)`` (canonical ``u < v``) owns its own ``numpy``
stream, constructed by explicit spawn key::

    SeedSequence(entropy, spawn_key=root.spawn_key + (EDGE_STREAM_TAG, u, v))

World ``i``'s presence bit for the edge consumes exactly one uniform
double — one 64-bit PCG64 output — at stream position ``i``, reached
with a single O(1) ``BitGenerator.advance`` jump.  Consequences:

* mask bit ``(i, e)`` depends only on the root seed, the edge's
  endpoints and ``i`` — never on the chunking pattern of
  ``ensure_samples`` calls, never on the worker count, never on the
  edge's *column position*, and never on any other edge;
* the serial path (``workers=1``) and the process-pool path compute
  **bit-identical** pools for a fixed seed (pinned by
  ``tests/test_parallel.py``);
* mutating one edge's probability (or adding/removing an edge) changes
  only that edge's column: :mod:`repro.sampling.deltas` regenerates the
  touched columns from the same streams and gets bits identical to
  cold-sampling the mutated graph — the determinism contract behind
  delta-aware world invalidation (pinned by ``tests/test_deltas.py``).

Execution
---------
:class:`ParallelSampler` partitions each requested chunk into
fixed-size shard tasks (:data:`DEFAULT_SHARD_WORLDS` consecutive
worlds, purely a dispatch granularity) and either runs them inline
(serial path) or fans them out over a
:class:`concurrent.futures.ProcessPoolExecutor`.  Workers are recreated
per graph: the pool's initializer receives the (pickled) graph and
backend name once, so per-task payloads are a few integers.  Both paths
memoize the per-edge stream states, so the SeedSequence hashing cost is
paid once per edge, not once per chunk.  When the pool cannot start or
dies mid-flight (sandboxes, missing semaphores, OOM-killed children),
the sampler falls back to the serial path and stays there —
parallelism is a throughput optimization, never a correctness
dependency.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro import telemetry
from repro.exceptions import OracleError
from repro.graph.uncertain_graph import UncertainGraph
from repro.sampling.backends import BACKENDS, WorldBackend, resolve_backend
from repro.sampling.store import pack_mask_columns
from repro.utils.rng import ensure_seed_sequence

_SAMPLER_CHUNKS = telemetry.get_registry().counter(
    "repro_sampler_chunks_total",
    "World chunks produced, by backend and execution path "
    "(serial, pool, packed).",
    ("backend", "path"),
)
_SAMPLER_WORLDS = telemetry.get_registry().counter(
    "repro_sampler_worlds_total",
    "Worlds drawn and labeled, by backend and execution path.",
    ("backend", "path"),
)
_SAMPLER_SAMPLE_SECONDS = telemetry.get_registry().counter(
    "repro_sampler_sample_seconds_total",
    "Wall seconds drawing edge masks, by backend (the process-pool "
    "path fuses drawing and labeling; its whole wall is counted here).",
    ("backend",),
)
_SAMPLER_LABEL_SECONDS = telemetry.get_registry().counter(
    "repro_sampler_label_seconds_total",
    "Wall seconds labeling components, by backend.",
    ("backend",),
)
_SAMPLER_CHUNK_SECONDS = telemetry.get_registry().histogram(
    "repro_sampler_chunk_seconds",
    "Per-chunk wall time (sample + label), by backend and path.",
    ("backend", "path"),
)

__all__ = [
    "DEFAULT_SHARD_WORLDS",
    "EDGE_STREAM_TAG",
    "ParallelSampler",
    "WORKERS_AUTO",
    "edge_seed_sequence",
    "edge_stream_state",
    "ensure_seed_sequence",
    "resolve_workers",
    "sample_edge_column",
    "sample_mask_rows",
    "shard_plan",
    "validate_workers_spec",
]

#: Worlds per shard: the unit of parallel dispatch.  128 worlds
#: amortize process round-trips while keeping a 512-world default chunk
#: divisible into 4 parallel tasks.  (Purely an execution knob — the
#: per-edge streams make pool content independent of it.)
DEFAULT_SHARD_WORLDS = 128

#: Spawn-key tag separating per-edge mask streams from any other
#: SeedSequence children a caller might derive from the same root.
EDGE_STREAM_TAG = 0x65646765  # ascii "edge", fits a uint32 spawn-key word

#: Values accepted wherever a ``workers=`` option is exposed.
WORKERS_AUTO = "auto"


def edge_seed_sequence(root: np.random.SeedSequence, u: int, v: int) -> np.random.SeedSequence:
    """The mask stream of edge ``(u, v)`` under root seed ``root``.

    Streams are keyed by the edge's canonical endpoints (``u < v`` is
    enforced here), so an edge keeps its stream across mutations of
    *other* edges, across column reorderings, and across graphs that
    merely share the edge.  Position ``i`` of the stream is world
    ``i``'s uniform draw for the edge.

    Examples
    --------
    >>> root = np.random.SeedSequence(7)
    >>> edge_seed_sequence(root, 2, 5).spawn_key == (EDGE_STREAM_TAG, 2, 5)
    True
    >>> edge_seed_sequence(root, 5, 2).spawn_key == (EDGE_STREAM_TAG, 2, 5)
    True
    """
    u, v = int(u), int(v)
    if u > v:
        u, v = v, u
    return np.random.SeedSequence(
        entropy=root.entropy, spawn_key=tuple(root.spawn_key) + (EDGE_STREAM_TAG, u, v)
    )


def sample_edge_column(
    root: np.random.SeedSequence,
    u: int,
    v: int,
    probability: float,
    start: int,
    count: int,
    *,
    state=None,
) -> np.ndarray:
    """Presence bits of edge ``(u, v)`` in worlds ``[start, start + count)``.

    Each world consumes exactly one uniform double from the edge's
    stream, so ``start`` is a single O(1) ``advance`` jump and split
    draws equal whole draws.  ``state`` optionally supplies the cached
    position-0 PCG64 state of the edge's stream (see
    :func:`edge_stream_state`), skipping the SeedSequence hashing.

    The result is a pure function of ``(root, u, v, probability, start,
    count)`` — in particular it is *independent of the rest of the
    graph*, which is what lets a graph delta resample only the touched
    edges' columns, bit-identically to a cold run.

    Examples
    --------
    >>> root = np.random.SeedSequence(3)
    >>> whole = sample_edge_column(root, 0, 1, 0.5, 0, 20)
    >>> parts = [sample_edge_column(root, 0, 1, 0.5, 0, 8),
    ...          sample_edge_column(root, 0, 1, 0.5, 8, 12)]
    >>> bool(np.array_equal(whole, np.concatenate(parts)))
    True
    """
    if start < 0 or count < 0:
        raise ValueError(f"start and count must be non-negative, got {start}, {count}")
    bit_generator = np.random.PCG64(0)
    bit_generator.state = state if state is not None else edge_stream_state(root, u, v)
    if start:
        bit_generator.advance(start)
    return np.random.Generator(bit_generator).random(count) < float(probability)


def edge_stream_state(root: np.random.SeedSequence, u: int, v: int):
    """Position-0 PCG64 state of edge ``(u, v)``'s stream (cacheable)."""
    return np.random.PCG64(edge_seed_sequence(root, u, v)).state


def sample_mask_rows(
    edge_src: np.ndarray,
    edge_dst: np.ndarray,
    edge_prob: np.ndarray,
    root: np.random.SeedSequence,
    start: int,
    rows: int,
    state_cache: dict | None = None,
) -> np.ndarray:
    """Edge masks of pool worlds ``[start, start + rows)``.

    Returns a ``(rows, m)`` boolean matrix assembled column by column
    from the per-edge streams.  ``state_cache`` (an ``{(u, v): state}``
    dict) memoizes each edge's stream state across calls, so repeated
    chunks pay the SeedSequence hashing once per edge.

    Examples
    --------
    >>> src, dst = np.array([0, 1]), np.array([1, 2])
    >>> masks = sample_mask_rows(src, dst, np.array([0.5, 0.5]),
    ...                          np.random.SeedSequence(1), 0, 10)
    >>> masks.shape
    (10, 2)
    """
    if start < 0 or rows < 0:
        raise ValueError(f"start and rows must be non-negative, got {start}, {rows}")
    edge_prob = np.asarray(edge_prob, dtype=np.float64)
    m = len(edge_prob)
    masks = np.empty((rows, m), dtype=bool)
    bit_generator = np.random.PCG64(0)
    for j in range(m):
        key = (int(edge_src[j]), int(edge_dst[j]))
        state = state_cache.get(key) if state_cache is not None else None
        if state is None:
            state = edge_stream_state(root, *key)
            if state_cache is not None:
                state_cache[key] = state
        bit_generator.state = state
        if start:
            bit_generator.advance(start)
        masks[:, j] = np.random.Generator(bit_generator).random(rows) < edge_prob[j]
    return masks


def shard_plan(
    start: int, count: int, shard_worlds: int = DEFAULT_SHARD_WORLDS
) -> list[tuple[int, int, int]]:
    """Split pool worlds ``[start, start + count)`` into shard tasks.

    Returns ``(shard, offset, rows)`` triples aligned to the absolute
    shard grid, in pool order.  Shards are the unit of parallel
    dispatch; the per-edge streams make the output independent of them.

    Examples
    --------
    >>> shard_plan(0, 70, 32)
    [(0, 0, 32), (1, 0, 32), (2, 0, 6)]
    >>> shard_plan(70, 60, 32)
    [(2, 6, 26), (3, 0, 32), (4, 0, 2)]
    """
    if start < 0 or count < 0:
        raise ValueError(f"start and count must be non-negative, got {start}, {count}")
    if shard_worlds <= 0:
        raise ValueError(f"shard_worlds must be positive, got {shard_worlds}")
    tasks = []
    position = start
    end = start + count
    while position < end:
        shard, offset = divmod(position, shard_worlds)
        rows = min(shard_worlds - offset, end - position)
        tasks.append((shard, offset, rows))
        position += rows
    return tasks


def validate_workers_spec(spec):
    """Check a ``workers=`` spec without resolving it.

    The single source of truth for what every layer (oracle, MCP/ACP
    drivers, :class:`~repro.experiments.config.ExperimentScale`, CLI)
    accepts: ``"auto"``/``None`` or a positive int.  Returns the spec
    (``None`` normalized to ``"auto"``); raises :class:`OracleError`
    otherwise.

    Examples
    --------
    >>> validate_workers_spec(None)
    'auto'
    >>> validate_workers_spec(3)
    3
    """
    if spec is None or spec == WORKERS_AUTO:
        return WORKERS_AUTO
    if isinstance(spec, (int, np.integer)) and not isinstance(spec, bool):
        if spec < 1:
            raise OracleError(f"workers must be >= 1 or 'auto', got {spec}")
        return int(spec)
    raise OracleError(f"workers must be a positive int or 'auto', got {spec!r}")


def resolve_workers(
    spec,
    *,
    chunk_size: int,
    shard_worlds: int = DEFAULT_SHARD_WORLDS,
    cpu_count: int | None = None,
) -> int:
    """Resolve a ``workers=`` spec into a concrete worker count.

    ``"auto"``/``None`` means ``min(cpu_count, ceil(chunk_size /
    shard_worlds))`` — no more workers than the chunk has shard tasks
    to hand out, and never more than the machine has cores.  Integers
    must be positive and are returned as-is.

    Examples
    --------
    >>> resolve_workers("auto", chunk_size=512, shard_worlds=128, cpu_count=16)
    4
    >>> resolve_workers("auto", chunk_size=64, shard_worlds=128, cpu_count=16)
    1
    >>> resolve_workers(3, chunk_size=512)
    3
    """
    spec = validate_workers_spec(spec)
    if spec == WORKERS_AUTO:
        cores = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
        tasks = max(1, -(-int(chunk_size) // int(shard_worlds)))
        return max(1, min(cores, tasks))
    return spec


# ----------------------------------------------------------------------
# Worker-process side.  State is installed once per pool (the graph and
# backend travel through the initializer, not with every task); the
# per-edge stream states are memoized per worker process and reset when
# a task arrives under a different root seed.
# ----------------------------------------------------------------------

_worker_graph: UncertainGraph | None = None
_worker_backend: WorldBackend | None = None
_worker_states: dict | None = None
_worker_states_root: tuple | None = None


def _init_worker(graph: UncertainGraph, backend_name: str) -> None:
    global _worker_graph, _worker_backend, _worker_states, _worker_states_root
    _worker_graph = graph
    _worker_backend = BACKENDS[backend_name]()
    _worker_states = {}
    _worker_states_root = None


def _run_shard_task(args):
    global _worker_states, _worker_states_root
    root, start, rows = args
    root_key = (root.entropy, tuple(root.spawn_key))
    if root_key != _worker_states_root:
        _worker_states = {}
        _worker_states_root = root_key
    masks = sample_mask_rows(
        _worker_graph.edge_src,
        _worker_graph.edge_dst,
        _worker_graph.edge_prob,
        root,
        start,
        rows,
        state_cache=_worker_states,
    )
    return masks, _worker_backend.component_labels(_worker_graph, masks)


class ParallelSampler:
    """Draws and labels chunks of worlds, serially or across processes.

    Parameters
    ----------
    graph:
        The uncertain graph being sampled.
    backend:
        World-labeling backend spec (see
        :func:`repro.sampling.backends.resolve_backend`).  Only the
        named built-in backends are dispatched to worker processes;
        custom backend *instances* always run on the serial path so
        their (possibly stateful) behavior stays observable.
    workers:
        ``"auto"``, ``None`` or a positive int — resolved once via
        :func:`resolve_workers` against ``chunk_size``.
    chunk_size:
        The owning oracle's chunk size; only used by the ``"auto"``
        worker heuristic.
    shard_worlds:
        Dispatch granularity; the default is almost always right.

    Examples
    --------
    >>> g = UncertainGraph.from_edges([(0, 1, 0.5), (1, 2, 0.5)])
    >>> sampler = ParallelSampler(g, workers=1)
    >>> masks, labels = sampler.sample_chunk(np.random.SeedSequence(3), 0, 10)
    >>> masks.shape, labels.shape
    ((10, 2), (10, 3))
    """

    def __init__(
        self,
        graph: UncertainGraph,
        *,
        backend="auto",
        workers=1,
        chunk_size: int = 512,
        shard_worlds: int = DEFAULT_SHARD_WORLDS,
    ):
        if shard_worlds <= 0:
            raise ValueError(f"shard_worlds must be positive, got {shard_worlds}")
        self._graph = graph
        self._backend = resolve_backend(backend, graph)
        self._shard_worlds = int(shard_worlds)
        self._workers = resolve_workers(
            workers, chunk_size=chunk_size, shard_worlds=shard_worlds
        )
        self._pool: ProcessPoolExecutor | None = None
        self._pool_broken = False
        self._edge_states: dict = {}
        self._edge_states_root: tuple | None = None
        #: Cumulative phase wall time of this sampler instance, the
        #: source of the per-job ``timings`` breakdown (the global
        #: telemetry counters aggregate the same numbers fleet-wide).
        self.sample_seconds = 0.0
        self.label_seconds = 0.0
        self.chunks_produced = 0

    def _record_chunk(self, path: str, worlds: int,
                      sample_s: float, label_s: float) -> None:
        backend = self._backend.name
        self.sample_seconds += sample_s
        self.label_seconds += label_s
        self.chunks_produced += 1
        _SAMPLER_CHUNKS.labels(backend=backend, path=path).inc()
        _SAMPLER_WORLDS.labels(backend=backend, path=path).inc(worlds)
        _SAMPLER_SAMPLE_SECONDS.labels(backend=backend).inc(sample_s)
        _SAMPLER_LABEL_SECONDS.labels(backend=backend).inc(label_s)
        _SAMPLER_CHUNK_SECONDS.labels(backend=backend, path=path).observe(
            sample_s + label_s)

    @property
    def backend(self) -> WorldBackend:
        return self._backend

    @property
    def workers(self) -> int:
        """The resolved worker count (1 means the serial path)."""
        return self._workers

    @property
    def shard_worlds(self) -> int:
        return self._shard_worlds

    def _parallelizable(self) -> bool:
        return (
            self._workers > 1
            and not self._pool_broken
            and self._backend.name in BACKENDS
            and type(self._backend) is BACKENDS[self._backend.name]
        )

    def _ensure_pool(self) -> ProcessPoolExecutor | None:
        if self._pool is not None:
            return self._pool
        try:
            import multiprocessing

            context = None
            if "fork" in multiprocessing.get_all_start_methods():
                # fork shares the graph pages copy-on-write and skips
                # re-importing the package in every worker.
                context = multiprocessing.get_context("fork")
            self._pool = ProcessPoolExecutor(
                max_workers=self._workers,
                mp_context=context,
                initializer=_init_worker,
                initargs=(self._graph, self._backend.name),
            )
        except Exception as error:  # pragma: no cover - environment-specific
            self._mark_broken(error)
        return self._pool

    def _mark_broken(self, error: Exception) -> None:
        self._pool_broken = True
        self.close()
        warnings.warn(
            f"process pool unavailable ({type(error).__name__}: {error}); "
            "falling back to serial sampling",
            RuntimeWarning,
            stacklevel=3,
        )

    def sample_chunk(
        self, root: np.random.SeedSequence, start: int, count: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Masks and labels of pool worlds ``[start, start + count)``.

        Returns ``(masks, labels)`` of shapes ``(count, m)`` and
        ``(count, n)``.  The result is a pure function of
        ``(graph, backend, root, start, count)`` — identical under any
        worker count or chunking pattern.
        """
        tasks = shard_plan(start, count, self._shard_worlds)
        # Dispatch only when there are at least two full shards of work;
        # below that, pool startup and pickling dominate and the serial
        # path is faster (small runs stay serial under "auto").
        if count >= 2 * self._shard_worlds and self._parallelizable():
            pool = self._ensure_pool()
            if pool is not None:
                started = time.perf_counter()
                try:
                    parts = list(
                        pool.map(
                            _run_shard_task,
                            [
                                (root, shard * self._shard_worlds + offset, rows)
                                for shard, offset, rows in tasks
                            ],
                        )
                    )
                    masks = np.concatenate([part[0] for part in parts], axis=0)
                    labels = np.concatenate([part[1] for part in parts], axis=0)
                    # Workers fuse drawing and labeling, so the split is
                    # unobservable here; the whole wall counts as sampling.
                    self._record_chunk("pool", count,
                                       time.perf_counter() - started, 0.0)
                    return masks, labels
                except Exception as error:
                    self._mark_broken(error)
        return self._sample_serial(root, start, count)

    def sample_chunk_packed(
        self, root: np.random.SeedSequence, start: int, count: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Packed columns and labels of pool worlds ``[start, start + count)``.

        Returns ``(packed_cols, labels)`` where ``packed_cols`` is the
        store's edge-major ``(m, packed_words(count))`` ``uint64`` form
        (:func:`repro.sampling.store.pack_mask_columns`).  When the
        backend implements the packed fast path
        (``component_labels_packed``, see
        :mod:`repro.sampling.backends.base`) the chunk is packed once
        and labeled straight from the words — no boolean round-trip
        between packing and labeling; otherwise this is
        :meth:`sample_chunk` plus a pack.  Bit-identical either way.
        """
        packed_labeler = getattr(self._backend, "component_labels_packed", None)
        if packed_labeler is None or (
            count >= 2 * self._shard_worlds and self._parallelizable()
        ):
            masks, labels = self.sample_chunk(root, start, count)
            return pack_mask_columns(masks), labels
        root_key = (root.entropy, tuple(root.spawn_key))
        if root_key != self._edge_states_root:
            self._edge_states = {}
            self._edge_states_root = root_key
        started = time.perf_counter()
        masks = sample_mask_rows(
            self._graph.edge_src,
            self._graph.edge_dst,
            self._graph.edge_prob,
            root,
            start,
            count,
            state_cache=self._edge_states,
        )
        packed = pack_mask_columns(masks)
        sampled_at = time.perf_counter()
        # One packed labeling call per chunk (mirrors the serial boolean
        # path), so instrumented packed backends observe the same
        # progressive-sampling growth steps.
        labels = packed_labeler(self._graph, packed, count)
        self._record_chunk("packed", count, sampled_at - started,
                           time.perf_counter() - sampled_at)
        return packed, labels

    def _sample_serial(self, root, start, count) -> tuple[np.ndarray, np.ndarray]:
        root_key = (root.entropy, tuple(root.spawn_key))
        if root_key != self._edge_states_root:
            self._edge_states = {}
            self._edge_states_root = root_key
        started = time.perf_counter()
        masks = sample_mask_rows(
            self._graph.edge_src,
            self._graph.edge_dst,
            self._graph.edge_prob,
            root,
            start,
            count,
            state_cache=self._edge_states,
        )
        sampled_at = time.perf_counter()
        # One labeling call per chunk, so instrumented backends observe
        # exactly the progressive-sampling growth steps.
        labels = self._backend.component_labels(self._graph, masks)
        self._record_chunk("serial", count, sampled_at - started,
                           time.perf_counter() - sampled_at)
        return masks, labels

    def close(self) -> None:
        """Shut down the worker pool (no-op on the serial path)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown timing
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (
            f"ParallelSampler(backend={self._backend.name!r}, "
            f"workers={self._workers}, shard_worlds={self._shard_worlds})"
        )
