"""Exact connection probabilities by possible-world enumeration.

Two-terminal reliability is #P-complete, so exact computation is only
feasible for toy graphs; :class:`ExactOracle` enumerates all ``2^m``
assignments of the *uncertain* edges (edges with ``p = 1`` are folded in
as always present).  It exists to

* validate the Monte Carlo oracle in tests,
* check the triangle inequality (Theorem 1) and its depth-limited
  analogue (Eq. 6) property-based style, and
* compute brute-force optimal clusterings (``repro.core.bruteforce``)
  against which the approximation guarantees are asserted.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.exceptions import OracleError
from repro.graph.components import UnionFind
from repro.graph.traversal import bfs_distances
from repro.graph.uncertain_graph import UncertainGraph

_DEFAULT_MAX_UNCERTAIN_EDGES = 22


def enumerate_worlds(graph: UncertainGraph, *, max_uncertain_edges: int = _DEFAULT_MAX_UNCERTAIN_EDGES) -> Iterator[tuple[np.ndarray, float]]:
    """Yield every possible world as ``(edge_mask, probability)``.

    Edges with probability exactly 1 are present in every world and are
    not enumerated over.  Worlds are yielded in increasing order of the
    bitmask over uncertain edges; probabilities sum to 1.
    """
    prob = graph.edge_prob
    uncertain = np.flatnonzero(prob < 1.0)
    if len(uncertain) > max_uncertain_edges:
        raise OracleError(
            f"{len(uncertain)} uncertain edges would require 2^{len(uncertain)} worlds; "
            f"limit is {max_uncertain_edges}"
        )
    base_mask = prob >= 1.0
    p_uncertain = prob[uncertain]
    for bits in range(1 << len(uncertain)):
        mask = base_mask.copy()
        world_prob = 1.0
        for position, edge_id in enumerate(uncertain):
            if bits >> position & 1:
                mask[edge_id] = True
                world_prob *= p_uncertain[position]
            else:
                world_prob *= 1.0 - p_uncertain[position]
        yield mask, world_prob


class ExactOracle:
    """Exact (d-)connection probabilities for small uncertain graphs.

    Presents the same query interface as
    :class:`repro.sampling.oracle.MonteCarloOracle` (``connection``,
    ``connection_to_all``, ``pairwise_matrix``) so the clustering
    algorithms can run against it unchanged; ``ensure_samples`` is a
    no-op for signature compatibility.
    """

    def __init__(self, graph: UncertainGraph, *, max_uncertain_edges: int = _DEFAULT_MAX_UNCERTAIN_EDGES):
        self._graph = graph
        self._max_uncertain_edges = max_uncertain_edges
        self._matrices: dict[int | None, np.ndarray] = {}
        self._distances: np.ndarray | None = None

    @property
    def graph(self) -> UncertainGraph:
        return self._graph

    @property
    def n_nodes(self) -> int:
        return self._graph.n_nodes

    @property
    def num_samples(self) -> int:
        """Exact oracles behave as if they had infinitely many samples."""
        return np.iinfo(np.int64).max

    def ensure_samples(self, r: int) -> None:
        """No-op: the oracle is exact."""

    def _matrix(self, depth: int | None) -> np.ndarray:
        cached = self._matrices.get(depth)
        if cached is not None:
            return cached
        graph = self._graph
        n = graph.n_nodes
        matrix = np.zeros((n, n), dtype=np.float64)
        for mask, world_prob in enumerate_worlds(graph, max_uncertain_edges=self._max_uncertain_edges):
            if world_prob == 0.0:
                continue
            if depth is None:
                uf = UnionFind(n)
                uf.union_edges(graph.edge_src[mask], graph.edge_dst[mask])
                labels = uf.labels()
                same = labels[:, None] == labels[None, :]
            else:
                same = np.zeros((n, n), dtype=bool)
                for source in range(n):
                    dist = bfs_distances(graph, source, max_depth=depth, edge_mask=mask)
                    same[source] = dist >= 0
            matrix += world_prob * same
        # Accumulated world probabilities can overshoot 1 by an ulp.
        np.clip(matrix, 0.0, 1.0, out=matrix)
        np.fill_diagonal(matrix, 1.0)
        self._matrices[depth] = matrix
        return matrix

    def connection(self, u: int, v: int, depth: int | None = None) -> float:
        """Exact (d-)connection probability between ``u`` and ``v``."""
        return float(self._matrix(depth)[u, v])

    def connection_to_all(self, node: int, depth: int | None = None) -> np.ndarray:
        """Exact (d-)connection probabilities from ``node`` to every node."""
        return self._matrix(depth)[node].copy()

    def pairwise_matrix(self, nodes=None, depth: int | None = None) -> np.ndarray:
        """Exact pairwise (d-)connection matrix over ``nodes``."""
        matrix = self._matrix(depth)
        if nodes is None:
            return matrix.copy()
        nodes = np.asarray(nodes, dtype=np.intp)
        return matrix[np.ix_(nodes, nodes)]

    def expected_distances(self, sources=None) -> np.ndarray:
        """Exact expected hop distances, disconnection counting ``n_nodes``.

        Same contract as
        :meth:`repro.sampling.oracle.MonteCarloOracle.expected_distances`
        (the ``(s, n)`` matrix, the disconnection penalty of ``n``), so
        the workload drivers in :mod:`repro.workloads` run against this
        oracle unchanged and become exact.
        """
        if self._distances is None:
            graph = self._graph
            n = graph.n_nodes
            matrix = np.zeros((n, n), dtype=np.float64)
            for mask, world_prob in enumerate_worlds(
                graph, max_uncertain_edges=self._max_uncertain_edges
            ):
                if world_prob == 0.0:
                    continue
                for source in range(n):
                    dist = bfs_distances(graph, source, edge_mask=mask).astype(np.float64)
                    dist[dist < 0] = float(n)
                    matrix[source] += world_prob * dist
            self._distances = matrix
        if sources is None:
            return self._distances.copy()
        sources = np.asarray(sources, dtype=np.intp)
        return self._distances[sources].copy()

    def __repr__(self) -> str:
        return f"ExactOracle(n_nodes={self._graph.n_nodes}, n_edges={self._graph.n_edges})"
