"""Representative possible worlds (Parchas et al., reference [27]).

Sometimes a single deterministic graph that "summarizes" the uncertain
graph is wanted — e.g. to run legacy deterministic algorithms once
instead of over many sampled worlds.  Reference [27] of the paper
proposes extracting a *representative instance* that preserves expected
vertex degrees.  Two extractors are provided:

:func:`most_probable_world`
    The mode of the distribution: include exactly the edges with
    ``p(e) > 1/2`` (for independent edges this is the single most likely
    world).  Simple but can be badly sparse/dense when probabilities
    cluster around 1/2.
:func:`average_degree_representative`
    Greedy ADR-style extraction: start from the most probable world and
    flip edges while flips reduce the total discrepancy between world
    degrees and expected degrees — the objective of [27].
"""

from __future__ import annotations

import numpy as np

from repro.graph.uncertain_graph import UncertainGraph


def most_probable_world(graph: UncertainGraph, *, tie_probability: float = 0.5) -> np.ndarray:
    """Edge mask of the most probable possible world.

    Includes each edge iff ``p(e) > 1/2``; at exactly 1/2 both choices
    are equally likely and ``tie_probability`` edges are included iff
    ``p(e) >= tie_probability`` (default keeps them).
    """
    prob = graph.edge_prob
    return (prob > 0.5) | (prob >= tie_probability)


def degree_discrepancy(graph: UncertainGraph, mask: np.ndarray) -> float:
    """Total absolute difference between world and expected degrees.

    The objective minimized by the representative extraction of [27]:
    ``sum_v | deg_mask(v) - E[deg(v)] |``.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != (graph.n_edges,):
        raise ValueError(f"mask must have shape ({graph.n_edges},), got {mask.shape}")
    expected = np.zeros(graph.n_nodes)
    actual = np.zeros(graph.n_nodes)
    np.add.at(expected, graph.edge_src, graph.edge_prob)
    np.add.at(expected, graph.edge_dst, graph.edge_prob)
    np.add.at(actual, graph.edge_src, mask.astype(float))
    np.add.at(actual, graph.edge_dst, mask.astype(float))
    return float(np.abs(actual - expected).sum())


def average_degree_representative(
    graph: UncertainGraph,
    *,
    max_passes: int = 10,
) -> np.ndarray:
    """Greedy expected-degree-preserving representative world.

    Starts from :func:`most_probable_world` and repeatedly flips the
    edge whose flip most reduces the degree discrepancy, passing over
    the edge list until no flip helps (or ``max_passes`` passes).
    Runs in ``O(passes * m)``.

    Returns the edge mask of the representative world; use
    ``graph.subgraph`` / ``edge_mask`` consumers or
    :func:`repro.graph.traversal.build_csr_matrix` to materialize it.
    """
    if max_passes < 1:
        raise ValueError(f"max_passes must be >= 1, got {max_passes}")
    mask = most_probable_world(graph).copy()
    src, dst, prob = graph.edge_src, graph.edge_dst, graph.edge_prob

    expected = np.zeros(graph.n_nodes)
    np.add.at(expected, src, prob)
    np.add.at(expected, dst, prob)
    actual = np.zeros(graph.n_nodes)
    np.add.at(actual, src, mask.astype(float))
    np.add.at(actual, dst, mask.astype(float))
    delta = actual - expected  # positive: node is over-covered

    for _ in range(max_passes):
        improved = False
        for edge in range(graph.n_edges):
            u, v = src[edge], dst[edge]
            if mask[edge]:
                # Removing the edge changes |delta| by:
                gain = (abs(delta[u]) + abs(delta[v])) - (
                    abs(delta[u] - 1) + abs(delta[v] - 1)
                )
                if gain > 1e-12:
                    mask[edge] = False
                    delta[u] -= 1
                    delta[v] -= 1
                    improved = True
            else:
                gain = (abs(delta[u]) + abs(delta[v])) - (
                    abs(delta[u] + 1) + abs(delta[v] + 1)
                )
                if gain > 1e-12:
                    mask[edge] = True
                    delta[u] += 1
                    delta[v] += 1
                    improved = True
        if not improved:
            break
    return mask
