"""Vectorized sampling of possible worlds.

A *possible world* of an uncertain graph keeps each edge independently
with its probability.  A batch of ``r`` sampled worlds is represented
two ways:

* an ``(r, m)`` boolean *edge mask* matrix, and
* a single **block-diagonal** sparse adjacency matrix with ``r * n``
  vertices, world ``i`` occupying the vertex range ``[i*n, (i+1)*n)``.

Component labeling is pluggable (:mod:`repro.sampling.backends`): the
``scipy`` backend labels every world with one C-level
``connected_components`` call over the block-diagonal matrix, while the
``unionfind`` backend runs a vectorized union-find that never builds
the matrix.  The block-diagonal CSR form remains the workhorse of
depth-limited queries: one sparse gather advances a BFS frontier *in
every world simultaneously*.  This substitutes for the OpenMP parallel
sampler in the authors' C++ implementation.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.uncertain_graph import UncertainGraph
from repro.sampling.backends import resolve_backend
from repro.sampling.backends.base import block_edge_endpoints
from repro.utils.rng import ensure_rng


def sample_edge_masks(edge_prob: np.ndarray, r: int, rng=None) -> np.ndarray:
    """Sample ``r`` possible worlds as an ``(r, m)`` boolean mask matrix."""
    if r < 0:
        raise ValueError(f"r must be non-negative, got {r}")
    rng = ensure_rng(rng)
    edge_prob = np.asarray(edge_prob, dtype=np.float64)
    return rng.random((r, len(edge_prob))) < edge_prob


def world_component_labels(
    graph: UncertainGraph, masks: np.ndarray, backend=None
) -> np.ndarray:
    """Component labels for each sampled world.

    Returns an ``(r, n)`` int32 array in the canonical form shared by
    all labeling backends: ``labels[i, v]`` is the smallest node index
    in ``v``'s component of world ``i`` (so labels are directly
    comparable across backends, not just within a row).

    ``backend`` accepts anything :func:`repro.sampling.backends.resolve_backend`
    does: ``None``/``"auto"``, ``"scipy"``, ``"unionfind"``, or a
    :class:`~repro.sampling.backends.WorldBackend` instance.
    """
    return resolve_backend(backend, graph).component_labels(graph, masks)


def world_block_csr(graph: UncertainGraph, masks: np.ndarray) -> sp.csr_matrix:
    """Symmetric block-diagonal CSR adjacency of the sampled worlds.

    Shape ``(r*n, r*n)``; world ``i`` occupies rows/cols
    ``[i*n, (i+1)*n)``.  Data entries are 1 (int8).
    """
    bsrc, bdst, r = block_edge_endpoints(graph, masks)
    total = r * graph.n_nodes
    data = np.ones(2 * len(bsrc), dtype=np.int8)
    matrix = sp.coo_matrix(
        (data, (np.concatenate([bsrc, bdst]), np.concatenate([bdst, bsrc]))),
        shape=(total, total),
    )
    return matrix.tocsr()


def _gather_ranges(indptr: np.ndarray, nodes: np.ndarray) -> np.ndarray:
    """Concatenate the CSR index ranges of ``nodes`` without a Python loop."""
    starts = indptr[nodes]
    lengths = indptr[nodes + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    shifts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    return np.repeat(starts - shifts, lengths) + np.arange(total, dtype=np.int64)


def block_bfs_distances(
    block: sp.csr_matrix,
    n_nodes: int,
    r: int,
    source: int,
    max_depth: int | None = None,
) -> np.ndarray:
    """Hop distances from ``source`` in each of ``r`` worlds.

    Same frontier-driven traversal as :func:`block_bfs_reached`, but
    recording the BFS level at which each vertex is first reached.
    Returns an ``(r, n_nodes)`` int32 matrix; unreachable nodes (and,
    with ``max_depth``, nodes further than that many hops) are ``-1``.
    This is the workhorse of the expected-distance queries behind the
    k-median / k-center workloads: one call walks *every* sampled world
    simultaneously.
    """
    if max_depth is not None and max_depth < 0:
        raise ValueError(f"max_depth must be non-negative, got {max_depth}")
    total = r * n_nodes
    dist = np.full(total, -1, dtype=np.int32)
    frontier = source + np.arange(r, dtype=np.int64) * n_nodes
    dist[frontier] = 0
    indptr, indices = block.indptr, block.indices
    depth = 0
    while len(frontier):
        if max_depth is not None and depth >= max_depth:
            break
        neighbours = indices[_gather_ranges(indptr, frontier)]
        neighbours = neighbours[dist[neighbours] < 0]
        if len(neighbours) == 0:
            break
        frontier = np.unique(neighbours)
        depth += 1
        dist[frontier] = depth
    return dist.reshape(r, n_nodes)


def block_bfs_reached(
    block: sp.csr_matrix,
    n_nodes: int,
    r: int,
    source: int,
    depth: int,
) -> np.ndarray:
    """Nodes within ``depth`` hops of ``source`` in each of ``r`` worlds.

    Runs a frontier-driven BFS from ``source`` simultaneously in every
    world of a block-diagonal adjacency.  Because the matrix is
    symmetric its CSR arrays double as CSC, so the neighbours of the
    whole frontier are one vectorized gather — total work is
    proportional to the edges actually reached, not ``depth * nnz``.
    Returns an ``(r, n_nodes)`` boolean matrix.
    """
    if depth < 0:
        raise ValueError(f"depth must be non-negative, got {depth}")
    total = r * n_nodes
    reached = np.zeros(total, dtype=bool)
    frontier = source + np.arange(r, dtype=np.int64) * n_nodes
    reached[frontier] = True
    indptr, indices = block.indptr, block.indices
    for _ in range(depth):
        if len(frontier) == 0:
            break
        neighbours = indices[_gather_ranges(indptr, frontier)]
        neighbours = neighbours[~reached[neighbours]]
        if len(neighbours) == 0:
            break
        frontier = np.unique(neighbours)
        reached[frontier] = True
    return reached.reshape(r, n_nodes)
