"""Sample-size formulas and progressive-sampling schedules (Section 4).

The paper's algorithms lower a probability threshold ``q`` and, at each
guess, need every relevant connection probability ``>= q`` estimated
within relative error ``eps/2``.  The number of Monte Carlo samples
required is given by Eq. (4) generally, and by Eq. (9) / Eq. (10) for
the specific union bounds of the MCP / ACP implementations.

Schedules are callables ``schedule(q) -> r`` handed to the clustering
algorithms.  :class:`PracticalSchedule` reproduces the configuration the
paper actually evaluates (Section 5): progressive sampling that starts
from 50 samples, scales like ``1/q``, and clamps at a budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.math import harmonic_number


def epsilon_delta_sample_size(p: float, eps: float, delta: float) -> int:
    """Eq. (4): samples for an ``(eps, delta)``-approximation of ``p``.

    ``r >= 3 ln(2/delta) / (eps^2 p)`` guarantees relative error at most
    ``eps`` with probability at least ``1 - delta``.
    """
    if not 0 < p <= 1:
        raise ValueError(f"p must be in (0, 1], got {p}")
    if not 0 < eps < 1:
        raise ValueError(f"eps must be in (0, 1), got {eps}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    return int(math.ceil(3.0 * math.log(2.0 / delta) / (eps * eps * p)))


def _schedule_length(gamma: float, p_lower: float, numerator: float = 1.0) -> int:
    """``1 + floor(log_{1+gamma}(numerator / p_lower))`` guesses overall."""
    if gamma <= 0:
        raise ValueError(f"gamma must be positive, got {gamma}")
    if not 0 < p_lower <= 1:
        raise ValueError(f"p_lower must be in (0, 1], got {p_lower}")
    ratio = numerator / p_lower
    if ratio < 1.0:
        return 1
    return 1 + int(math.floor(math.log(ratio) / math.log1p(gamma)))


def mcp_sample_size(q: float, *, eps: float, gamma: float, n: int, p_lower: float) -> int:
    """Eq. (9): per-guess sample size for the MCP implementation.

    ``r = ceil( 12/(q eps^2) * ln(2 n^3 (1 + floor(log_{1+gamma} 1/p_L))) )``
    """
    if not 0 < q <= 1:
        raise ValueError(f"q must be in (0, 1], got {q}")
    if not 0 < eps < 1:
        raise ValueError(f"eps must be in (0, 1), got {eps}")
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    guesses = _schedule_length(gamma, p_lower)
    return int(math.ceil(12.0 / (q * eps * eps) * math.log(2.0 * n**3 * guesses)))


def acp_sample_size(q: float, *, eps: float, gamma: float, n: int, p_lower: float) -> int:
    """Eq. (10): per-guess sample size for the ACP implementation.

    As Eq. (9) but probabilities down to ``q^3`` must be reliable and the
    schedule length is ``1 + floor(log_{1+gamma}(H(n)/p_L))``.
    """
    if not 0 < q <= 1:
        raise ValueError(f"q must be in (0, 1], got {q}")
    if not 0 < eps < 1:
        raise ValueError(f"eps must be in (0, 1), got {eps}")
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    guesses = _schedule_length(gamma, p_lower, numerator=harmonic_number(n))
    return int(math.ceil(12.0 / (q**3 * eps * eps) * math.log(2.0 * n**3 * guesses)))


@dataclass(frozen=True)
class TheoreticalMCPSchedule:
    """Sample schedule implementing Eq. (9) verbatim."""

    eps: float
    gamma: float
    n: int
    p_lower: float

    def __call__(self, q: float) -> int:
        return mcp_sample_size(q, eps=self.eps, gamma=self.gamma, n=self.n, p_lower=self.p_lower)


@dataclass(frozen=True)
class TheoreticalACPSchedule:
    """Sample schedule implementing Eq. (10) verbatim."""

    eps: float
    gamma: float
    n: int
    p_lower: float

    def __call__(self, q: float) -> int:
        return acp_sample_size(q, eps=self.eps, gamma=self.gamma, n=self.n, p_lower=self.p_lower)


@dataclass(frozen=True)
class PracticalSchedule:
    """The progressive schedule the paper's experiments use (Section 5).

    Starts at ``min_samples`` (the paper verified 50 is accurate in
    practice), grows like ``scale / q`` as the threshold drops, and is
    clamped at ``max_samples`` to keep worst-case work bounded.
    """

    min_samples: int = 50
    max_samples: int = 2000
    scale: float = 50.0

    def __post_init__(self):
        if self.min_samples <= 0:
            raise ValueError(f"min_samples must be positive, got {self.min_samples}")
        if self.max_samples < self.min_samples:
            raise ValueError(
                f"max_samples ({self.max_samples}) must be >= min_samples ({self.min_samples})"
            )
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    def __call__(self, q: float) -> int:
        if not 0 < q <= 1:
            raise ValueError(f"q must be in (0, 1], got {q}")
        wanted = int(math.ceil(self.scale / q))
        return max(self.min_samples, min(self.max_samples, wanted))
