"""Possible-world sampling and connection-probability oracles."""

from repro.sampling.backends import (
    BACKEND_NAMES,
    ScipyWorldBackend,
    UnionFindWorldBackend,
    WorldBackend,
    resolve_backend,
)
from repro.sampling.parallel import (
    DEFAULT_SHARD_WORLDS,
    ParallelSampler,
    edge_seed_sequence,
    ensure_seed_sequence,
    resolve_workers,
    sample_edge_column,
    sample_mask_rows,
    shard_plan,
)
from repro.sampling.store import (
    WorldStore,
    pack_mask_columns,
    pack_masks,
    packed_words,
    pool_fingerprint,
    unpack_mask_columns,
    unpack_masks,
)
from repro.sampling.deltas import DeriveResult, derive_pool, diff_edges
from repro.sampling.worlds import (
    block_bfs_distances,
    block_bfs_reached,
    sample_edge_masks,
    world_component_labels,
    world_block_csr,
)
from repro.sampling.oracle import MonteCarloOracle
from repro.sampling.exact import ExactOracle, enumerate_worlds
from repro.sampling.sizes import (
    epsilon_delta_sample_size,
    mcp_sample_size,
    acp_sample_size,
    PracticalSchedule,
    TheoreticalMCPSchedule,
    TheoreticalACPSchedule,
)
from repro.sampling.representative import (
    average_degree_representative,
    degree_discrepancy,
    most_probable_world,
)

__all__ = [
    "BACKEND_NAMES",
    "DEFAULT_SHARD_WORLDS",
    "DeriveResult",
    "ParallelSampler",
    "derive_pool",
    "diff_edges",
    "edge_seed_sequence",
    "ensure_seed_sequence",
    "resolve_workers",
    "sample_edge_column",
    "sample_mask_rows",
    "shard_plan",
    "ScipyWorldBackend",
    "UnionFindWorldBackend",
    "WorldBackend",
    "WorldStore",
    "pack_mask_columns",
    "pack_masks",
    "packed_words",
    "pool_fingerprint",
    "unpack_mask_columns",
    "unpack_masks",
    "resolve_backend",
    "average_degree_representative",
    "degree_discrepancy",
    "most_probable_world",
    "block_bfs_distances",
    "block_bfs_reached",
    "sample_edge_masks",
    "world_component_labels",
    "world_block_csr",
    "MonteCarloOracle",
    "ExactOracle",
    "enumerate_worlds",
    "epsilon_delta_sample_size",
    "mcp_sample_size",
    "acp_sample_size",
    "PracticalSchedule",
    "TheoreticalMCPSchedule",
    "TheoreticalACPSchedule",
]
