"""Monte Carlo connection-probability oracle with progressive sampling.

:class:`MonteCarloOracle` is the sampling backend behind every clustering
algorithm in ``repro.core``.  It maintains a pool of sampled possible
worlds that *grows monotonically* ("progressive sampling", Section 4 of
the paper): when a guessing schedule lowers the probability threshold
``q`` and therefore needs more samples (Eq. 9/10), previously sampled
worlds are reused and only the difference is drawn.

Storage is chunked.  Each chunk keeps

* the component labels of its worlds — an ``(c, n)`` int32 matrix — for
  unbounded connection queries,
* the edge masks, bit-packed into edge-major ``uint64`` columns (1/8 of
  the boolean bytes; see :mod:`repro.sampling.store`) and unpacked on
  demand, and
* (lazily) the block-diagonal CSR adjacency for depth-limited queries.

With ``store=`` / ``cache_dir=``, chunks are additionally served from a
content-addressed :class:`~repro.sampling.store.WorldStore` before any
sampling happens: a pool drawn once for ``(graph, seed, backend,
chunk_size)`` is reused across oracles — and, with a cache directory,
across process runs — bit-identically, because world ``i`` is a pure
function of ``(seed, i)``.

Queries are answered against the whole pool:

``connection_to_all(u)``
    one vectorized equality pass per chunk, ``O(r * n)``;
``connection_to_all(u, depth=d)``
    ``d`` sparse mat-vecs per chunk (BFS in all worlds at once);
``pairwise_matrix(nodes)``
    one sparse product per pool, used by the theoretical ACP variant
    (``alpha = n``) and by the AVPR quality metrics.

Thread-safety: an oracle instance is single-threaded (its pool lists
mutate without locks).  To share sampled worlds across threads —
the pattern :mod:`repro.service` uses for its job executor — give each
thread its own oracle attached to one shared
:class:`~repro.sampling.store.WorldStore`, whose operations are
thread-safe; the worlds are then drawn once and served to every
oracle bit-identically.
"""

from __future__ import annotations

import time

import numpy as np
import scipy.sparse as sp

from repro import telemetry
from repro.exceptions import OracleError
from repro.graph.uncertain_graph import UncertainGraph
from repro.sampling.backends import WorldBackend, resolve_backend
from repro.sampling.parallel import ParallelSampler, ensure_seed_sequence
from repro.sampling.store import WorldStore, unpack_mask_columns
from repro.sampling.worlds import (
    block_bfs_distances,
    block_bfs_reached,
    world_block_csr,
)


class MonteCarloOracle:
    """Progressive Monte Carlo estimator of connection probabilities.

    Parameters
    ----------
    graph:
        The uncertain graph to sample.
    seed:
        Seed for world sampling: ``None``, an ``int``, a
        :class:`numpy.random.SeedSequence`, or a generator (one integer
        is drawn from it to derive the root sequence).  World ``i``'s
        edge mask is a pure function of the seed and ``i`` (sharded
        streams, :mod:`repro.sampling.parallel`), so the pool content
        is independent of the chunking pattern and the worker count.
    chunk_size:
        Worlds sampled per growth step (amortizes the labelling cost).
    max_samples:
        Hard budget; :meth:`ensure_samples` raises :class:`OracleError`
        beyond it *before* drawing anything.  Guards against schedules
        running away on graphs whose optimum is genuinely tiny.
    backend:
        World-labeling backend: ``"auto"`` (default; picks by graph
        size), ``"scipy"``, ``"unionfind"``, or a
        :class:`~repro.sampling.backends.WorldBackend` instance.  The
        masks are sampled independently of the backend, so estimates
        and clusterings are bit-identical across backends for a fixed
        seed.
    workers:
        Worker processes for chunk sampling: ``1`` (default, serial),
        a positive int, or ``"auto"`` (``min(cpu_count, ceil(chunk_size
        / shard))``).  Results are bit-identical under every worker
        count; custom backend instances and broken pools fall back to
        the serial path.
    store:
        Optional :class:`~repro.sampling.store.WorldStore`.  The oracle
        registers its ``(graph, seed, backend, chunk_size)`` pool in
        the store, serves :meth:`ensure_samples` from already-stored
        worlds before drawing anything, and appends freshly drawn
        chunks back.  Cached and fresh worlds are bit-identical, so a
        warm oracle resumes progressive sampling mid-schedule.
    cache_dir:
        Convenience for ``store=WorldStore(cache_dir)``: a directory
        the pool is persisted to across process runs.  Mutually
        exclusive with ``store``.

    Examples
    --------
    >>> g = UncertainGraph.from_edges([(0, 1, 0.5)])
    >>> oracle = MonteCarloOracle(g, seed=7)
    >>> oracle.ensure_samples(2000)
    >>> abs(oracle.connection(0, 1) - 0.5) < 0.05
    True
    >>> MonteCarloOracle(g, seed=7, backend="unionfind").backend_name
    'unionfind'
    """

    def __init__(
        self,
        graph: UncertainGraph,
        *,
        seed=None,
        chunk_size: int = 512,
        max_samples: int = 1_000_000,
        backend="auto",
        workers=1,
        store: WorldStore | None = None,
        cache_dir=None,
    ):
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        if max_samples <= 0:
            raise ValueError(f"max_samples must be positive, got {max_samples}")
        if store is not None and cache_dir is not None:
            raise ValueError("pass either store= or cache_dir=, not both")
        self._graph = graph
        self._seed_seq = ensure_seed_sequence(seed)
        self._chunk_size = int(chunk_size)
        self._max_samples = int(max_samples)
        self._backend = resolve_backend(backend, graph)
        self._sampler = ParallelSampler(
            graph, backend=self._backend, workers=workers, chunk_size=self._chunk_size
        )
        if cache_dir is not None:
            store = WorldStore(cache_dir)
        self._store = store
        self._pool_digest = (
            store.register(graph, self._seed_seq, self._backend.name, self._chunk_size)
            if store is not None
            else None
        )
        #: Columnar packed-mask blocks; ``None`` marks a chunk served
        #: from the store whose masks have not been needed yet (labels
        #: load eagerly, masks lazily — unbounded queries never touch
        #: them).  ``_chunk_starts`` remembers where such a chunk lives.
        self._packed_chunks: list[np.ndarray | None] = []
        self._chunk_starts: list[int] = []
        self._label_chunks: list[np.ndarray] = []
        self._csr_chunks: list[sp.csr_matrix | None] = []
        self._n_samples = 0
        self._worlds_cached = 0
        self._worlds_sampled = 0
        self._store_read_s = 0.0

    # ------------------------------------------------------------------
    # Pool management
    # ------------------------------------------------------------------

    @property
    def graph(self) -> UncertainGraph:
        return self._graph

    @property
    def n_nodes(self) -> int:
        return self._graph.n_nodes

    @property
    def num_samples(self) -> int:
        """Worlds currently in the pool."""
        return self._n_samples

    @property
    def max_samples(self) -> int:
        return self._max_samples

    @property
    def backend(self) -> WorldBackend:
        """The world-labeling backend in use."""
        return self._backend

    @property
    def backend_name(self) -> str:
        return self._backend.name

    @property
    def workers(self) -> int:
        """Resolved worker-process count (1 means the serial path)."""
        return self._sampler.workers

    @property
    def store(self) -> WorldStore | None:
        """The attached world store, if any."""
        return self._store

    @property
    def pool_digest(self) -> str | None:
        """Content digest of this oracle's pool in the store (or ``None``)."""
        return self._pool_digest

    @property
    def cache_stats(self) -> dict:
        """Worlds served from the store vs freshly sampled, so far."""
        return {
            "worlds_cached": self._worlds_cached,
            "worlds_sampled": self._worlds_sampled,
        }

    @property
    def phase_timings(self) -> dict:
        """Cumulative wall seconds per sampling phase, so far.

        ``sample_s`` is mask drawing, ``label_s`` component labeling
        (both from the attached :class:`ParallelSampler`), and
        ``store_read_s`` the time spent serving worlds from the store
        instead of sampling.  The service's per-job ``timings``
        breakdown is the delta of this dict across one job.
        """
        return {
            "sample_s": self._sampler.sample_seconds,
            "label_s": self._sampler.label_seconds,
            "store_read_s": self._store_read_s,
            "chunks": self._sampler.chunks_produced,
        }

    @property
    def packed_mask_nbytes(self) -> int:
        """Bytes of the *materialized* bit-packed mask chunks (1/8 of
        boolean).  Store-served chunks whose masks were never needed
        (the unbounded-query warm path) count as 0 until a depth query
        materializes them."""
        return sum(chunk.nbytes for chunk in self._packed_chunks if chunk is not None)

    def ensure_samples(self, r: int) -> None:
        """Grow the pool to at least ``r`` worlds (never shrinks).

        Progressive-sampling invariant: chunks already in the pool are
        never re-sampled or re-labeled — only the difference between
        ``r`` and the current pool size is drawn.  With a store
        attached, that difference is first covered from stored worlds
        (bit-identical to freshly drawn ones); only the remainder is
        sampled, and sampled chunks are appended back to the store.

        Raises
        ------
        OracleError
            If ``r`` exceeds ``max_samples``.  The check runs before
            any chunk is drawn, so a rejected request leaves the pool
            exactly as it was.
        """
        if r < 0:
            raise ValueError(f"r must be non-negative, got {r}")
        if r > self._max_samples:
            raise OracleError(
                f"requested {r} samples exceeds max_samples={self._max_samples}; "
                "raise the budget or use a clamping sample schedule"
            )
        tracer = telemetry.get_tracer()
        while self._n_samples < r:
            start = self._n_samples
            count = min(self._chunk_size, r - start)
            with tracer.span("oracle.chunk", start=start, count=count) as span:
                labels = self._load_cached_labels(start, count)
                if labels is not None:
                    packed = None  # masks stay in the store until a depth query
                    self._worlds_cached += labels.shape[0]
                    span.set("source", "store")
                else:
                    # The sampler packs the chunk columnar for the store and
                    # pool either way; packed-capable backends (bitparallel)
                    # also label straight from the packed words.
                    packed, labels = self._sampler.sample_chunk_packed(
                        self._seed_seq, start, count
                    )
                    self._worlds_sampled += count
                    span.set("source", "sampled")
                    if self._store is not None:
                        self._store.append(self._pool_digest, start, packed, labels)
            self._packed_chunks.append(packed)
            self._chunk_starts.append(start)
            self._label_chunks.append(labels)
            self._csr_chunks.append(None)
            self._n_samples += labels.shape[0]

    def _load_cached_labels(self, start: int, want: int):
        """Labels of up to ``want`` stored worlds from ``start`` (miss: ``None``).

        Only the labels are read here; the packed mask columns stay in
        the store and are materialized by :meth:`_masks_chunk` if a
        depth-limited query ever needs them.  A pool cleared or
        truncated by another process between the count and the read is
        treated as a miss (we fall back to sampling), never as an
        error — the cache is best effort.
        """
        if self._store is None:
            return None
        started = time.perf_counter()
        try:
            available = self._store.count(self._pool_digest)
            if available <= start:
                return None
            take = min(want, available - start)
            return self._store.read_labels(self._pool_digest, start, start + take)
        except (OSError, ValueError, OracleError):
            return None
        finally:
            self._store_read_s += time.perf_counter() - started

    def close(self) -> None:
        """Release the sampler's worker pool (serial path: no-op)."""
        self._sampler.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    @property
    def component_labels(self) -> np.ndarray:
        """Component labels of every sampled world, shape ``(r, n)``.

        Labels follow the canonical backend contract — entry ``(i, v)``
        is the smallest node index in ``v``'s component of world ``i``
        — so they are identical across backends.  Used by the AVPR
        metrics, which count same-component pairs per world.
        """
        if not self._label_chunks:
            return np.empty((0, self._graph.n_nodes), dtype=np.int32)
        return np.concatenate(self._label_chunks, axis=0)

    def _masks_chunk(self, index: int) -> np.ndarray:
        """Boolean edge masks of chunk ``index``, unpacked on demand.

        A chunk served from the store loads its packed columns here on
        first touch.  Should the stored pool have been cleared in the
        meantime, the chunk is resampled instead — masks are pure
        functions of ``(seed, start, count)``, so the result is
        bit-identical either way.
        """
        packed = self._packed_chunks[index]
        rows = self._label_chunks[index].shape[0]
        if packed is None:
            start = self._chunk_starts[index]
            try:
                packed, _labels = self._store.read(self._pool_digest, start, start + rows)
            except (OSError, ValueError, OracleError):
                packed, _labels = self._sampler.sample_chunk_packed(
                    self._seed_seq, start, rows
                )
            self._packed_chunks[index] = packed
        return unpack_mask_columns(packed, rows)

    def _csr_chunk(self, index: int) -> sp.csr_matrix:
        block = self._csr_chunks[index]
        if block is None:
            block = world_block_csr(self._graph, self._masks_chunk(index))
            self._csr_chunks[index] = block
        return block

    def _require_samples(self) -> None:
        if self._n_samples == 0:
            raise OracleError("the oracle has no samples; call ensure_samples() first")

    # ------------------------------------------------------------------
    # Chunked pool access (the workload surface)
    # ------------------------------------------------------------------
    #
    # ``repro.workloads`` consumers iterate the pool chunk by chunk so
    # every query family (clustering, k-median/k-center, centrality)
    # shares one set of sampled worlds: a pool warmed by any workload is
    # warm for all of them, and a store-served chunk loads its masks
    # from the store — never from the sampler.

    @property
    def n_chunks(self) -> int:
        """Number of chunks currently in the pool."""
        return len(self._label_chunks)

    def chunk_worlds(self, index: int) -> int:
        """Worlds held by chunk ``index``."""
        return self._label_chunks[index].shape[0]

    def chunk_masks(self, index: int) -> np.ndarray:
        """Boolean ``(worlds, m)`` edge masks of chunk ``index``.

        Store-served chunks materialize their packed columns from the
        store on first touch (a read, not a resample).
        """
        return self._masks_chunk(index)

    def chunk_csr(self, index: int) -> sp.csr_matrix:
        """Block-diagonal CSR adjacency of chunk ``index`` (cached)."""
        return self._csr_chunk(index)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def connection_to_all(self, node: int, depth: int | None = None) -> np.ndarray:
        """Estimated connection probability of ``node`` to every node.

        With ``depth=d`` the estimate is of the *d-connection*
        probability ``Pr(node ~d v)`` (paths of length at most ``d``).
        Entry ``node`` is exactly 1.
        """
        self._require_samples()
        n = self._graph.n_nodes
        if not 0 <= node < n:
            raise IndexError(f"node {node} out of range [0, {n})")
        counts = np.zeros(n, dtype=np.int64)
        if depth is None:
            for labels in self._label_chunks:
                counts += (labels == labels[:, node:node + 1]).sum(axis=0)
        else:
            if depth < 0:
                raise ValueError(f"depth must be non-negative, got {depth}")
            for index, labels in enumerate(self._label_chunks):
                block = self._csr_chunk(index)
                reached = block_bfs_reached(block, n, labels.shape[0], node, depth)
                counts += reached.sum(axis=0)
        return counts / self._n_samples

    def connection(self, u: int, v: int, depth: int | None = None) -> float:
        """Estimated (d-)connection probability between ``u`` and ``v``."""
        self._require_samples()
        if u == v:
            return 1.0
        if depth is None:
            hits = 0
            for labels in self._label_chunks:
                hits += int(np.sum(labels[:, u] == labels[:, v]))
            return hits / self._n_samples
        return float(self.connection_to_all(u, depth=depth)[v])

    def pairwise_matrix(self, nodes=None, depth: int | None = None) -> np.ndarray:
        """Estimated pairwise (d-)connection matrix over ``nodes``.

        Returns a dense symmetric ``(s, s)`` matrix with unit diagonal.
        For the unbounded case this runs one sparse indicator product
        over the pool (cost ~ sum of squared component sizes), not
        ``s^2`` individual queries.
        """
        self._require_samples()
        n = self._graph.n_nodes
        if nodes is None:
            nodes = np.arange(n, dtype=np.intp)
        else:
            nodes = np.asarray(nodes, dtype=np.intp)
            if len(nodes) and (nodes.min() < 0 or nodes.max() >= n):
                raise IndexError("pairwise_matrix nodes out of range")
        s = len(nodes)
        if s == 0:
            return np.zeros((0, 0))
        if depth is not None:
            matrix = np.empty((s, s), dtype=np.float64)
            for row_pos, u in enumerate(nodes):
                matrix[row_pos] = self.connection_to_all(int(u), depth=depth)[nodes]
            matrix = 0.5 * (matrix + matrix.T)  # symmetrize Monte Carlo noise
            np.fill_diagonal(matrix, 1.0)
            return matrix
        labels = self.component_labels[:, nodes]  # (r, s)
        r = labels.shape[0]
        # Compact the (world, label) pairs into group ids, then count
        # group co-membership with one sparse product Z Z^T.
        keys = labels.astype(np.int64) + np.arange(r, dtype=np.int64)[:, None] * (labels.max() + 1 if labels.size else 1)
        _, group = np.unique(keys.ravel(), return_inverse=True)
        node_pos = np.tile(np.arange(s, dtype=np.int64), r)
        data = np.ones(r * s, dtype=np.float64)
        z = sp.coo_matrix((data, (node_pos, group)), shape=(s, group.max() + 1 if len(group) else 1))
        z = z.tocsr()
        matrix = np.asarray((z @ z.T).todense()) / r
        np.fill_diagonal(matrix, 1.0)
        return matrix

    def expected_distances(self, sources=None) -> np.ndarray:
        """Estimated expected hop distance from each source to every node.

        Returns an ``(s, n)`` float64 matrix over the whole pool.  In a
        world where a pair is *disconnected* its distance is taken to be
        ``n_nodes`` — one more than any achievable hop count — so
        expected distances are finite, well defined on disconnected
        worlds, and each per-world distance (hence the expectation)
        remains a metric.  This "disconnection penalty" convention is
        shared by the exact-enumeration reference
        (:mod:`repro.workloads.exact`), making the estimate directly
        checkable against ground truth.

        Cost: one block-diagonal BFS per (chunk, source) — all worlds
        of a chunk are walked simultaneously.

        Examples
        --------
        >>> from repro.graph.uncertain_graph import UncertainGraph
        >>> g = UncertainGraph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
        >>> oracle = MonteCarloOracle(g, seed=0)
        >>> oracle.ensure_samples(10)
        >>> oracle.expected_distances()[0].tolist()  # certain path 0-1-2
        [0.0, 1.0, 2.0]
        """
        self._require_samples()
        n = self._graph.n_nodes
        if sources is None:
            sources = np.arange(n, dtype=np.intp)
        else:
            sources = np.asarray(sources, dtype=np.intp)
            if len(sources) and (sources.min() < 0 or sources.max() >= n):
                raise IndexError("expected_distances sources out of range")
        sums = np.zeros((len(sources), n), dtype=np.float64)
        for index in range(self.n_chunks):
            rows = self.chunk_worlds(index)
            block = self._csr_chunk(index)
            for pos, source in enumerate(sources):
                dist = block_bfs_distances(block, n, rows, int(source))
                dist = dist.astype(np.float64)
                dist[dist < 0] = float(n)
                sums[pos] += dist.sum(axis=0)
        return sums / self._n_samples

    def __repr__(self) -> str:
        return (
            f"MonteCarloOracle(n_nodes={self._graph.n_nodes}, "
            f"num_samples={self._n_samples}, max_samples={self._max_samples}, "
            f"backend={self._backend.name!r}, workers={self.workers})"
        )
