"""Vectorized union-find labeling backend.

Labels all ``r`` worlds of a mask chunk **without ever materializing
the** ``(r*n, r*n)`` **block-diagonal sparse matrix** the scipy backend
builds.  The state is a single flat parent array over the ``r * n``
block vertices; hooking and compression are whole-array numpy
operations, so the per-edge constant is a handful of vectorized passes
instead of a sparse-matrix construction plus a C graph traversal.

The algorithm is the scatter-min variant of parallel union-find used by
GPU connected-components kernels (hook to the smaller label, then path
halving), adapted to numpy:

1. **First hook.**  ``parent`` starts as the identity and edges are
   stored with ``src < dst``, so the first round needs no root lookups
   at all — it is a single conflict-resolving ``np.minimum.at`` scatter.
2. **Iterate.**  While some edge still straddles two trees: gather both
   endpoint parents, hook the larger onto the smaller (scatter-min),
   and apply one path-halving pass (``parent = parent[parent]``).
   Hooked parents only ever decrease and every written value stays
   inside the true component, so the iteration converges to one root
   per component — necessarily the component's smallest block index.
3. **Compress.**  Path-halve to idempotence and subtract the block
   offsets, yielding the canonical min-node-index labels shared by all
   backends (see :mod:`repro.sampling.backends.base`).

Worlds are processed in sub-batches (default ≤ 64) so the parent array
stays cache-resident; per-world independence makes the split invisible
in the output.
"""

from __future__ import annotations

import numpy as np

from repro.graph.uncertain_graph import UncertainGraph
from repro.sampling.backends.base import validate_masks

# Worlds per internal labeling batch.  Small batches keep the flat
# parent array (and the per-batch edge arrays) inside the CPU cache;
# measured sweet spot on benchmarks/test_bench_backends.py substrates.
_DEFAULT_WORLD_BATCH = 64

# The flat block domain is indexed with int32; one batch must satisfy
# batch * n_nodes < 2**31.
_INT32_LIMIT = 2**31 - 1


class UnionFindWorldBackend:
    """Label worlds via whole-chunk vectorized union-find.

    Parameters
    ----------
    world_batch:
        Maximum worlds labeled per internal pass (cache-size tuning
        knob; the output is independent of it).

    Examples
    --------
    >>> from repro.graph.uncertain_graph import UncertainGraph
    >>> g = UncertainGraph.from_edges([(0, 1, 0.9), (2, 3, 0.9)])
    >>> masks = np.array([[True, False], [True, True]])
    >>> UnionFindWorldBackend().component_labels(g, masks)
    array([[0, 0, 2, 3],
           [0, 0, 2, 2]], dtype=int32)
    """

    name = "unionfind"

    def __init__(self, *, world_batch: int = _DEFAULT_WORLD_BATCH):
        if world_batch <= 0:
            raise ValueError(f"world_batch must be positive, got {world_batch}")
        self._world_batch = int(world_batch)

    def component_labels(self, graph: UncertainGraph, masks: np.ndarray) -> np.ndarray:
        masks = validate_masks(graph, masks)
        r, n = masks.shape[0], graph.n_nodes
        if r == 0 or n == 0:
            return np.empty((r, n), dtype=np.int32)
        batch = self._world_batch
        if batch * n > _INT32_LIMIT:
            batch = max(1, _INT32_LIMIT // max(n, 1))
        if r <= batch:
            return self._label_batch(graph, masks)
        chunks = [
            self._label_batch(graph, masks[start:start + batch])
            for start in range(0, r, batch)
        ]
        return np.concatenate(chunks, axis=0)

    def repair_labels(
        self,
        graph: UncertainGraph,
        masks: np.ndarray,
        old_labels: np.ndarray,
        affected: np.ndarray,
    ) -> np.ndarray:
        """Component-local union-find repair (the incremental path).

        Instead of relabeling the whole worlds, the union-find runs only
        over edge instances whose world-local component actually changed:
        an edge is *allowed* iff it is present in the post-delta mask
        **and** its endpoint lies in an affected component.  Nodes
        outside the affected components keep their old labels; affected
        nodes get fresh canonical min-node labels from the restricted
        union-find (unaffected nodes come out of it as singletons and
        are immediately overwritten by their old labels).

        Soundness rests on the caller's guarantee (see
        :meth:`WorldBackend.repair_labels <repro.sampling.backends.base.WorldBackend.repair_labels>`)
        that no present post-delta edge crosses the affected/unaffected
        boundary — so testing one endpoint per edge suffices, and the
        restricted components equal the full relabeling's components.
        Pinned bit-identical against the scipy full relabel by
        ``tests/test_deltas.py``.
        """
        masks = validate_masks(graph, masks)
        r, n = masks.shape[0], graph.n_nodes
        old_labels = np.ascontiguousarray(old_labels, dtype=np.int32)
        affected = np.asarray(affected, dtype=bool)
        if old_labels.shape != (r, n) or affected.shape != (r, n):
            raise ValueError(
                f"old_labels and affected must have shape ({r}, {n}), got "
                f"{old_labels.shape} and {affected.shape}"
            )
        if r == 0 or n == 0:
            return old_labels.copy()
        allowed = masks & affected[:, graph.edge_src]
        fresh = self.component_labels(graph, allowed)
        return np.where(affected, fresh, old_labels)

    @staticmethod
    def _label_batch(graph: UncertainGraph, masks: np.ndarray) -> np.ndarray:
        r, n = masks.shape[0], graph.n_nodes
        world_idx, edge_idx = np.nonzero(masks)
        offset = world_idx.astype(np.int32)
        offset *= np.int32(n)
        src = graph.edge_src[edge_idx].astype(np.int32)
        src += offset
        dst = graph.edge_dst[edge_idx].astype(np.int32)
        dst += offset
        parent = np.arange(r * n, dtype=np.int32)
        if len(src):
            # First hook: parent is the identity and src < dst holds
            # elementwise, so hooking is a bare scatter-min.
            np.minimum.at(parent, dst, src)
            parent = parent[parent]
            while True:
                ps = parent[src]
                pd = parent[dst]
                if np.array_equal(ps, pd):
                    break
                np.minimum.at(parent, np.maximum(ps, pd), np.minimum(ps, pd))
                parent = parent[parent]
        # Compress to idempotence: every vertex points at its root.
        while True:
            hopped = parent[parent]
            if np.array_equal(hopped, parent):
                break
            parent = hopped
        labels = parent.reshape(r, n)
        labels -= np.arange(0, r * n, n, dtype=np.int32)[:, None]
        return labels
