"""The :class:`WorldBackend` protocol and shared mask plumbing.

A *world-labeling backend* turns a chunk of sampled possible worlds —
an ``(r, m)`` boolean edge-mask matrix — into per-world connected
component labels.  Backends are the hot path of
:class:`repro.sampling.oracle.MonteCarloOracle`: every progressive
sampling step funnels its freshly drawn masks through exactly one
:meth:`WorldBackend.component_labels` call.

Canonical labeling contract
---------------------------
All backends must return the *same* ``(r, n)`` int32 array for the same
``(graph, masks)`` input: ``labels[i, v]`` is the **smallest node index
in the connected component of** ``v`` **in world** ``i``.  Because the
masks are sampled once by the oracle (backends never consume RNG state),
this makes every downstream quantity — ``connection_to_all``,
``pairwise_matrix``, MCP/ACP clusterings — bit-identical across
backends for a fixed seed.  The cross-backend equivalence suite in
``tests/test_backends.py`` pins this contract.

Packed fast path (optional)
---------------------------
Backends *may* implement ``component_labels_packed(graph, packed_cols,
n_worlds) -> labels``, accepting the store's edge-major bit-packed
columns (:func:`repro.sampling.store.pack_mask_columns`: shape
``(m, packed_words(n_worlds))`` ``uint64``, row ``e`` holding edge
``e``'s presence bitset, little-endian, pad bits zero) *without a
boolean round-trip*.  The contract: bit-identical to
``component_labels`` on the unpacked masks.  Callers discover the
method with ``getattr`` — :class:`repro.sampling.parallel.ParallelSampler`
routes freshly packed chunks through it, and
:mod:`repro.sampling.deltas` hands derived blocks straight to it when
every world needs relabeling.  The bit-parallel backend
(:mod:`repro.sampling.backends.bitparallel`) is the shipped
implementation; like ``repair_labels`` it is deliberately not part of
the runtime protocol.

Incremental relabeling (optional)
---------------------------------
Backends *may* additionally implement ``repair_labels(graph, masks,
old_labels, affected) -> labels`` — the delta-derivation fast path
(:mod:`repro.sampling.deltas`).  ``masks`` are the post-delta edge
masks of the worlds needing repair, ``old_labels`` their pre-delta
canonical labels, and ``affected`` an ``(r, n)`` boolean matrix marking
every node whose pre-delta component contains an endpoint of a flipped
edge.  The contract: the result must be **bit-identical** to
``component_labels(graph, masks)`` — incrementality is an optimization,
never a different answer.  The caller guarantees that no post-delta
present edge joins an affected node to an unaffected one (flipped
edges' endpoints are affected by construction, and unflipped present
edges connect nodes of one pre-delta component, which is affected
either wholly or not at all) — which is what makes component-local
repair sound.  The method is deliberately *not* part of the runtime
protocol: custom backends without it simply take the full-relabel path.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.graph.uncertain_graph import UncertainGraph


@runtime_checkable
class WorldBackend(Protocol):
    """Labels every world of a sampled mask chunk.

    Implementations must be deterministic pure functions of
    ``(graph, masks)`` and follow the canonical labeling contract of
    this module: ``labels[i, v]`` is the smallest node index in ``v``'s
    component of world ``i``.
    """

    name: str

    def component_labels(self, graph: UncertainGraph, masks: np.ndarray) -> np.ndarray:
        """Return ``(r, n)`` int32 canonical component labels."""
        ...  # pragma: no cover - protocol


def validate_masks(graph: UncertainGraph, masks: np.ndarray) -> np.ndarray:
    """Coerce ``masks`` to a boolean ``(r, m)`` matrix for ``graph``."""
    masks = np.asarray(masks, dtype=bool)
    if masks.ndim != 2 or masks.shape[1] != graph.n_edges:
        raise ValueError(
            f"masks must have shape (r, {graph.n_edges}), got {masks.shape}"
        )
    return masks


def block_edge_endpoints(
    graph: UncertainGraph, masks: np.ndarray
) -> tuple[np.ndarray, np.ndarray, int]:
    """Endpoints of all sampled edges, shifted into their world's block.

    Returns ``(bsrc, bdst, r)`` where world ``i`` occupies the index
    range ``[i*n, (i+1)*n)``.  Because graph edges are stored with
    ``src < dst``, the returned arrays satisfy ``bsrc < bdst``
    elementwise — a property the union-find backend's first hooking
    round exploits.
    """
    masks = validate_masks(graph, masks)
    r = masks.shape[0]
    world_idx, edge_idx = np.nonzero(masks)
    offset = world_idx.astype(np.int64) * graph.n_nodes
    bsrc = graph.edge_src[edge_idx].astype(np.int64) + offset
    bdst = graph.edge_dst[edge_idx].astype(np.int64) + offset
    return bsrc, bdst, r
