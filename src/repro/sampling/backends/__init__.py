"""Pluggable world-labeling backends for the Monte Carlo oracle.

A backend turns a chunk of sampled edge masks into per-world connected
component labels (see :mod:`repro.sampling.backends.base` for the
canonical labeling contract).  Three implementations ship:

``"scipy"``
    :class:`ScipyWorldBackend` — one block-diagonal sparse matrix and a
    single C-level ``connected_components`` call (the seed behavior).
``"unionfind"``
    :class:`UnionFindWorldBackend` — whole-chunk vectorized union-find
    with path halving; never builds the ``(r*n, r*n)`` sparse matrix,
    roughly halving the peak per-chunk memory of ``ensure_samples``.
``"bitparallel"``
    :class:`BitParallelWorldBackend` — bit-plane min-label propagation
    directly on the store's packed ``uint64`` mask columns (64 worlds
    per word, no boolean round-trip); the only backend implementing the
    packed fast path ``component_labels_packed``.

Selection is by name, by instance (any object satisfying
:class:`WorldBackend` — custom or instrumented backends plug straight
in), or ``"auto"``/``None``, which picks by graph size using
:data:`AUTO_NODE_THRESHOLD`.  ``"auto"`` never picks ``bitparallel``:
on the committed bench substrates the packed kernel's bit-plane passes
(``ceil(log2 n)`` per propagation round) measure ~2x the vectorized
union-find's whole-chunk scatter-min on a single core
(``benchmarks/test_bench_backends.py`` records the cells), so the
packed backend stays opt-in until a measured crossover exists.
"""

from __future__ import annotations

from repro.exceptions import OracleError
from repro.graph.uncertain_graph import UncertainGraph
from repro.sampling.backends.base import (
    WorldBackend,
    block_edge_endpoints,
    validate_masks,
)
from repro.sampling.backends.bitparallel import BitParallelWorldBackend
from repro.sampling.backends.scipy_backend import ScipyWorldBackend
from repro.sampling.backends.unionfind import UnionFindWorldBackend

#: Name -> factory for the built-in backends.
BACKENDS = {
    ScipyWorldBackend.name: ScipyWorldBackend,
    UnionFindWorldBackend.name: UnionFindWorldBackend,
    BitParallelWorldBackend.name: BitParallelWorldBackend,
}

#: Names accepted wherever a ``backend=`` option is exposed.
BACKEND_NAMES = ("auto", *sorted(BACKENDS))

#: ``"auto"`` picks the union-find backend at or above this many nodes.
#: Below it the graphs are small enough that the sparse-matrix detour is
#: harmless and the scipy path has the shortest constant factor
#: (measured in ``benchmarks/test_bench_backends.py``).
AUTO_NODE_THRESHOLD = 512


def resolve_backend(spec=None, graph: UncertainGraph | None = None) -> WorldBackend:
    """Resolve a backend spec into a :class:`WorldBackend` instance.

    Parameters
    ----------
    spec:
        ``None`` or ``"auto"`` for graph-size auto-selection, a name
        from :data:`BACKENDS`, or a ready :class:`WorldBackend`
        instance (returned as-is).
    graph:
        The graph the backend will label; required only for
        auto-selection.

    Examples
    --------
    >>> resolve_backend("scipy").name
    'scipy'
    >>> resolve_backend("unionfind").name
    'unionfind'
    >>> small = UncertainGraph.from_edges([(0, 1, 0.5)])
    >>> resolve_backend("auto", small).name
    'scipy'
    """
    if spec is None or spec == "auto":
        if graph is not None and graph.n_nodes >= AUTO_NODE_THRESHOLD:
            return UnionFindWorldBackend()
        return ScipyWorldBackend()
    if isinstance(spec, str):
        try:
            return BACKENDS[spec]()
        except KeyError:
            raise OracleError(
                f"unknown world backend {spec!r}; expected one of {BACKEND_NAMES}"
            ) from None
    if isinstance(spec, WorldBackend):
        return spec
    raise OracleError(
        f"backend must be a name from {BACKEND_NAMES} or a WorldBackend instance, "
        f"got {type(spec).__name__}"
    )


__all__ = [
    "AUTO_NODE_THRESHOLD",
    "BACKENDS",
    "BACKEND_NAMES",
    "BitParallelWorldBackend",
    "ScipyWorldBackend",
    "UnionFindWorldBackend",
    "WorldBackend",
    "block_edge_endpoints",
    "resolve_backend",
    "validate_masks",
]
