"""Bit-parallel world labeling: 64 worlds per ``uint64`` word.

The store already keeps sampled masks *edge-major and bit-packed*
(:func:`repro.sampling.store.pack_mask_columns`): row ``e`` is edge
``e``'s presence bitset over the chunk's worlds.  Both earlier backends
unpack that to booleans and label world-by-world, so their cost scales
with the number of *worlds*.  This backend runs connectivity directly
on the packed words, so one ``uint64`` operation advances 64 worlds at
once and labeling cost scales with *words* (``ceil(r / 64)``).

Algorithm: bit-plane min-label propagation
------------------------------------------
Each node carries its current per-world label encoded across
``B = ceil(log2 n)`` *bit planes*: plane ``b`` is an ``(n, w)``
``uint64`` matrix whose world-bit ``i`` of row ``v`` is bit ``b`` of
``v``'s label in world ``i``.  Labels start as the identity and the
kernel iterates the min-representative propagation idiom (the same
fixpoint RobinL's clustering-in-SQL reaches row-wise): every round,
each node takes the minimum of its own label and its present
neighbors' labels, **per world, across all worlds of a word at once**:

1. *Masked segment-min.*  Arcs (both directions of every edge) are
   pre-sorted by receiving node.  For each plane, most significant
   first, one ``bitwise_or.reduceat`` over the arc segment answers
   "does any still-surviving candidate have a 0 here?" for 64 worlds
   per word; the minimum's bit is 1 only where no candidate does, and
   survivors are narrowed to the zero-bit candidates where one exists.
   Candidate validity is exactly the packed edge bitset — absent edges
   never survive, so no boolean unpacking ever happens.
2. *Bit-plane compare-and-take.*  A carry-free MSB-first comparator
   marks the worlds where the segment minimum beats the node's current
   label; those planes are blended in with two bitwise ops per plane.
3. *Delta compaction.*  Only arcs whose source node changed in some
   world stay live for the next round, so late rounds (the long
   diameter tail of near-critical worlds) touch a vanishing arc
   subset.  The loop ends when no arc is live — the min-label
   fixpoint, which on every world is the canonical smallest-node
   labeling shared by all backends
   (:mod:`repro.sampling.backends.base`).

The output is bit-identical to the scipy and union-find backends —
pinned by ``tests/test_backends.py`` — and the packed fast path
(:meth:`BitParallelWorldBackend.component_labels_packed`) is pinned
bit-identical to the boolean path (``docs/ARCHITECTURE.md`` invariant).

Pad bits (world bits at or above ``r`` in the last word) carry no
edges in store-packed columns, so they idle through the propagation
and are dropped by the final ``count=r`` unpack; stray pad garbage in
caller-built columns costs work but never correctness.
"""

from __future__ import annotations

import numpy as np

from repro.graph.uncertain_graph import UncertainGraph
from repro.sampling.backends.base import validate_masks
from repro.sampling.store import WORD_BITS, pack_mask_columns, packed_words

#: All 64 bits set — the plane value of a label bit that is 1.
_FULL_WORD = np.uint64(0xFFFFFFFFFFFFFFFF)


class BitParallelWorldBackend:
    """Label worlds via bit-plane min-label propagation on packed masks.

    Examples
    --------
    >>> from repro.graph.uncertain_graph import UncertainGraph
    >>> g = UncertainGraph.from_edges([(0, 1, 0.9), (2, 3, 0.9)])
    >>> masks = np.array([[True, False], [True, True]])
    >>> BitParallelWorldBackend().component_labels(g, masks)
    array([[0, 0, 2, 3],
           [0, 0, 2, 2]], dtype=int32)
    """

    name = "bitparallel"

    def component_labels(self, graph: UncertainGraph, masks: np.ndarray) -> np.ndarray:
        """Boolean-mask entry point: packs, then runs the packed kernel."""
        masks = validate_masks(graph, masks)
        return self.component_labels_packed(graph, pack_mask_columns(masks), masks.shape[0])

    def component_labels_packed(
        self, graph: UncertainGraph, packed_cols: np.ndarray, n_worlds: int
    ) -> np.ndarray:
        """Label ``n_worlds`` worlds straight from edge-major packed columns.

        ``packed_cols`` is the store's columnar form — shape
        ``(n_edges, packed_words(n_worlds))`` ``uint64``, row ``e``
        holding edge ``e``'s presence bitset (little-endian bit order,
        pad bits zero).  Returns the same ``(r, n)`` int32 canonical
        labels as :meth:`component_labels` on the unpacked masks,
        bit-for-bit, without ever materializing the boolean matrix.
        """
        r = int(n_worlds)
        if r < 0:
            raise ValueError(f"n_worlds must be non-negative, got {n_worlds}")
        n, m = graph.n_nodes, graph.n_edges
        packed_cols = np.ascontiguousarray(packed_cols, dtype=np.uint64)
        if packed_cols.ndim != 2 or packed_cols.shape != (m, packed_words(r)):
            raise ValueError(
                f"packed columns must have shape ({m}, {packed_words(r)}) for "
                f"{r} worlds, got {packed_cols.shape}"
            )
        if r == 0 or n == 0:
            return np.empty((r, n), dtype=np.int32)
        identity = np.tile(np.arange(n, dtype=np.int32), (r, 1))
        if m == 0 or not packed_cols.any():
            return identity
        arcs = _arc_table(graph)
        out = np.empty((n, r), dtype=np.int32)
        for word in range(packed_cols.shape[1]):
            n_bits = min(WORD_BITS, r - word * WORD_BITS)
            batch = _label_word_batch(
                np.ascontiguousarray(packed_cols[:, word]), n, arcs
            )
            out[:, word * WORD_BITS:word * WORD_BITS + n_bits] = batch[:, :n_bits]
        return np.ascontiguousarray(out.T)

    def repair_labels(
        self,
        graph: UncertainGraph,
        masks: np.ndarray,
        old_labels: np.ndarray,
        affected: np.ndarray,
    ) -> np.ndarray:
        """Component-local repair (the delta-derivation fast path).

        Same restriction as the union-find backend's repair: an edge is
        *allowed* iff present post-delta **and** its endpoint lies in an
        affected component; unaffected nodes keep their old labels.
        Soundness rests on the caller's no-boundary-edge guarantee (see
        :meth:`~repro.sampling.backends.base.WorldBackend.repair_labels`);
        pinned bit-identical to the scipy full relabel by
        ``tests/test_deltas.py``.
        """
        masks = validate_masks(graph, masks)
        r, n = masks.shape[0], graph.n_nodes
        old_labels = np.ascontiguousarray(old_labels, dtype=np.int32)
        affected = np.asarray(affected, dtype=bool)
        if old_labels.shape != (r, n) or affected.shape != (r, n):
            raise ValueError(
                f"old_labels and affected must have shape ({r}, {n}), got "
                f"{old_labels.shape} and {affected.shape}"
            )
        if r == 0 or n == 0:
            return old_labels.copy()
        allowed = masks & affected[:, graph.edge_src]
        fresh = self.component_labels(graph, allowed)
        return np.where(affected, fresh, old_labels)

def _arc_table(graph: UncertainGraph) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Both directions of every edge, pre-sorted by receiving node.

    Sorting once lets every propagation round cover each node's
    candidate segment with a single ``reduceat``; the table is shared
    by all word batches of a chunk.
    """
    recv = np.concatenate([graph.edge_dst, graph.edge_src])
    src = np.concatenate([graph.edge_src, graph.edge_dst])
    eid = np.concatenate([np.arange(graph.n_edges)] * 2)
    order = np.argsort(recv, kind="stable")
    return (
        np.ascontiguousarray(recv[order]),
        np.ascontiguousarray(src[order]),
        np.ascontiguousarray(eid[order]),
    )


def _label_word_batch(
    edge_word: np.ndarray, n: int, arcs: tuple[np.ndarray, np.ndarray, np.ndarray]
) -> np.ndarray:
    """Canonical labels for one 64-world word: ``(n, 64)`` int32.

    Every array in the loop is a ``uint64`` *word*: bit ``i`` of a word
    is world ``i``'s value, so each bitwise op advances 64 worlds at
    once.  A round is three packed steps:

    * *Masked segment-min* — arcs are pre-sorted by receiving node, so
      one ``bitwise_or.reduceat`` per bit plane (MSB first) asks "does
      any surviving candidate have a 0 here?" for all 64 worlds of a
      word; the minimum's bit is 1 only where no candidate does, and
      survivors narrow to the zero-bit candidates where one exists.
      Candidate validity is ``edge_word & changed[src]``: an arc only
      participates in the worlds where its edge is present *and* its
      source's label improved last round, so late rounds (the diameter
      tail of a few worlds) touch a vanishing arc subset.
    * *Carry-free compare* — an MSB-first comparator marks the worlds
      where the segment minimum beats the node's current label
      (``lt |= diff & cur``, two ops per plane).
    * *Blend* — winning planes are merged in with two bitwise ops per
      plane, and the take-word *is* the next round's changed bitset —
      no packing step.

    Labels are only decoded to int32 once, at the fixpoint.
    """
    recv_s, src_s, eid_s = arcs
    n_planes = max(1, (n - 1).bit_length())
    # planes[b, v]: bit i is bit b of v's current label in world i.
    node_bits = (
        np.arange(n, dtype=np.uint64)[:, None]
        >> np.arange(n_planes, dtype=np.uint64)[None, :]
    ) & np.uint64(1)
    planes = np.ascontiguousarray(
        np.where(node_bits == 1, _FULL_WORD, np.uint64(0)).T
    )
    changed_word = np.full(n, _FULL_WORD)
    changed_any = np.ones(n, dtype=bool)
    while True:
        # Two-level liveness: cheap node-granular cut, then the packed
        # per-world candidate bits (edge present *and* source changed).
        cand = np.flatnonzero(changed_any[src_s])
        if cand.size == 0:
            break
        surv = edge_word[eid_s[cand]] & changed_word[src_s[cand]]
        rows = surv != 0
        if not rows.any():
            break
        live = cand[rows]
        surv = surv[rows]
        live_recv = recv_s[live]
        live_src = src_s[live]
        starts = np.flatnonzero(np.r_[True, live_recv[1:] != live_recv[:-1]])
        seg_nodes = live_recv[starts]
        singles = starts.size == live_recv.size  # every segment is one arc
        src_planes = planes[:, live_src]
        if singles:
            has_any = surv
            res = src_planes & surv[None, :]
        else:
            seg_of_arc = np.repeat(
                np.arange(seg_nodes.size), np.diff(np.r_[starts, live_recv.size])
            )
            has_any = np.bitwise_or.reduceat(surv, starts)
            res = np.empty((n_planes, seg_nodes.size), dtype=np.uint64)
            for b in range(n_planes - 1, -1, -1):
                cand_zero = surv & ~src_planes[b]
                has_zero = np.bitwise_or.reduceat(cand_zero, starts)
                res[b] = has_any & ~has_zero
                if b:
                    surv &= cand_zero | ~has_zero[seg_of_arc]

        # Carry-free MSB-first comparator: lt bit set where res < cur.
        # Garbage bits of res in no-candidate worlds are masked out by
        # seeding ``undecided`` with has_any.
        cur = planes[:, seg_nodes]
        lt = np.zeros(seg_nodes.size, dtype=np.uint64)
        undecided = has_any.copy()
        for b in range(n_planes - 1, -1, -1):
            diff = (cur[b] ^ res[b]) & undecided
            lt |= diff & cur[b]
            undecided &= ~diff
        if not lt.any():
            break
        keep = ~lt
        planes[:, seg_nodes] = (cur & keep[None, :]) | (res & lt[None, :])
        changed_word = np.zeros(n, dtype=np.uint64)
        changed_word[seg_nodes] = lt
        changed_any = changed_word != 0

    # Single decode at the fixpoint: planes -> (n, 64) int32.
    labels = np.zeros((n, WORD_BITS), dtype=np.int32)
    for b in range(n_planes):
        bits = np.unpackbits(
            planes[b].view(np.uint8).reshape(n, 8), axis=1, bitorder="little"
        )
        labels += bits.astype(np.int32) << np.int32(b)
    return labels
