"""Block-diagonal scipy labeling backend (the seed implementation).

Stacks the ``r`` sampled worlds into one block-diagonal sparse
adjacency with ``r * n`` vertices and labels every world with a single
C-level :func:`scipy.sparse.csgraph.connected_components` call, then
renumbers the labels to the canonical min-node-index form shared by all
backends (see :mod:`repro.sampling.backends.base`).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse import csgraph

from repro.graph.uncertain_graph import UncertainGraph
from repro.sampling.backends.base import block_edge_endpoints


class ScipyWorldBackend:
    """Label worlds via one block-diagonal ``connected_components`` call.

    Examples
    --------
    >>> from repro.graph.uncertain_graph import UncertainGraph
    >>> g = UncertainGraph.from_edges([(0, 1, 0.9), (2, 3, 0.9)])
    >>> masks = np.array([[True, False], [True, True]])
    >>> ScipyWorldBackend().component_labels(g, masks)
    array([[0, 0, 2, 3],
           [0, 0, 2, 2]], dtype=int32)
    """

    name = "scipy"

    def component_labels(self, graph: UncertainGraph, masks: np.ndarray) -> np.ndarray:
        bsrc, bdst, r = block_edge_endpoints(graph, masks)
        n = graph.n_nodes
        if r == 0 or n == 0:
            return np.empty((r, n), dtype=np.int32)
        total = r * n
        data = np.ones(len(bsrc), dtype=np.int8)
        matrix = sp.coo_matrix((data, (bsrc, bdst)), shape=(total, total))
        _, flat = csgraph.connected_components(matrix, directed=False)
        # Canonicalize: the component's smallest block index is its first
        # occurrence in flat order (blocks are node-ordered), so a
        # reversed scatter leaves the earliest index per component.
        first = np.empty(int(flat.max()) + 1, dtype=np.int64)
        indices = np.arange(total, dtype=np.int64)
        first[flat[::-1]] = indices[::-1]
        return (first[flat] % n).reshape(r, n).astype(np.int32)

    def repair_labels(
        self,
        graph: UncertainGraph,
        masks: np.ndarray,
        old_labels: np.ndarray,
        affected: np.ndarray,
    ) -> np.ndarray:
        """Relabel the given worlds from scratch (the cross-check path).

        The scipy backend deliberately ignores the repair hints and
        recomputes every requested world: it is the reference the
        union-find backend's component-local repair is validated
        against (``tests/test_deltas.py``), exactly as its
        ``component_labels`` is the reference for chunk labeling.
        """
        return self.component_labels(graph, masks)
