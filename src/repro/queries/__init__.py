"""Reliability query primitives on uncertain graphs.

The clustering paper builds on a line of work about querying uncertain
graphs by connection probability: k-nearest-neighbour queries under
probabilistic distance (Potamias et al., reference [29]) and
most-reliable-source problems (reference [13], a special case of MCP
with ``k = 1``).  This package provides those primitives on top of the
same oracles the clustering algorithms use.
"""

from repro.queries.reliability import (
    k_nearest_by_reliability,
    most_reliable_source,
    reliability_histogram,
    reliable_set,
)

__all__ = [
    "k_nearest_by_reliability",
    "most_reliable_source",
    "reliable_set",
    "reliability_histogram",
]
