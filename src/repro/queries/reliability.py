"""Connection-probability (reliability) queries.

All functions take an oracle (Monte Carlo or exact) rather than a graph,
so accuracy/cost tradeoffs stay under the caller's control, exactly as
in the clustering algorithms.  Depth-limited variants are available
everywhere through the ``depth`` keyword.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ClusteringError


def k_nearest_by_reliability(
    oracle,
    source: int,
    k: int,
    *,
    depth: int | None = None,
    include_disconnected: bool = False,
) -> list[tuple[int, float]]:
    """The ``k`` nodes most reliably connected to ``source``.

    The uncertain-graph analogue of a k-NN query (Potamias et al.):
    neighbours are ranked by (estimated) connection probability, the
    source itself excluded.  Ties break toward smaller node index for
    determinism.

    Parameters
    ----------
    oracle:
        Connection-probability oracle (must already hold samples).
    source:
        Query node index.
    k:
        Number of neighbours, ``1 <= k < n``.
    depth:
        Optional path-length limit.
    include_disconnected:
        Keep entries with probability 0 (default drops them, so fewer
        than ``k`` results may be returned on fragmented graphs).

    Returns
    -------
    list[(node, probability)]
        Sorted by decreasing probability.
    """
    n = oracle.n_nodes
    if not 1 <= k < n:
        raise ClusteringError(f"k must satisfy 1 <= k < n ({n}), got {k}")
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range [0, {n})")
    row = oracle.connection_to_all(source, depth=depth)
    order = np.lexsort((np.arange(n), -row))
    result: list[tuple[int, float]] = []
    for node in order:
        if node == source:
            continue
        p = float(row[node])
        if p == 0.0 and not include_disconnected:
            break
        result.append((int(node), p))
        if len(result) == k:
            break
    return result


def most_reliable_source(
    oracle,
    candidates=None,
    *,
    targets=None,
    depth: int | None = None,
    aggregate: str = "min",
) -> tuple[int, float]:
    """The candidate best connected to the targets (reference [13]).

    With ``aggregate="min"`` this is the 1-center version of MCP: the
    node maximizing the minimum connection probability to every target.
    ``aggregate="avg"`` gives the 1-median (ACP) version.

    Parameters
    ----------
    oracle:
        Connection-probability oracle.
    candidates:
        Candidate source nodes (default: all nodes).
    targets:
        Nodes that must be reached (default: all nodes).
    depth:
        Optional path-length limit.
    aggregate:
        ``"min"`` or ``"avg"``.

    Returns
    -------
    (node, score)
        The best candidate and its aggregate connection probability.
    """
    if aggregate not in ("min", "avg"):
        raise ClusteringError(f"aggregate must be 'min' or 'avg', got {aggregate!r}")
    n = oracle.n_nodes
    candidates = np.arange(n) if candidates is None else np.asarray(candidates, dtype=np.intp)
    targets = np.arange(n) if targets is None else np.asarray(targets, dtype=np.intp)
    if len(candidates) == 0 or len(targets) == 0:
        raise ClusteringError("candidates and targets must be non-empty")
    best_node, best_score = int(candidates[0]), -1.0
    for candidate in candidates:
        row = oracle.connection_to_all(int(candidate), depth=depth)[targets]
        score = float(row.min()) if aggregate == "min" else float(row.mean())
        if score > best_score:
            best_node, best_score = int(candidate), score
    return best_node, best_score


def reliable_set(
    oracle,
    source: int,
    threshold: float,
    *,
    depth: int | None = None,
) -> np.ndarray:
    """Nodes connected to ``source`` with probability at least ``threshold``.

    This is exactly the "disk" primitive inside ``min-partial``
    (Algorithm 1); exposed because threshold reachability is a common
    query in its own right (e.g. "which proteins interact with X with
    probability >= 0.5?").  The source itself is included.
    """
    if not 0 < threshold <= 1:
        raise ClusteringError(f"threshold must be in (0, 1], got {threshold}")
    row = oracle.connection_to_all(source, depth=depth)
    return np.flatnonzero(row >= threshold)


def reliability_histogram(
    oracle,
    source: int,
    *,
    bins=10,
    depth: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of connection probabilities from ``source`` to all others.

    Useful for picking clustering thresholds: the histogram's gaps are
    natural values of ``q``.  Returns ``(counts, bin_edges)`` as
    :func:`numpy.histogram` does, over the ``n - 1`` other nodes.
    """
    row = oracle.connection_to_all(source, depth=depth)
    others = np.delete(row, source)
    return np.histogram(others, bins=bins, range=(0.0, 1.0))
