"""Connection-probability quality metrics (Section 5.1 of the paper).

All metrics take a clustering *and an oracle* so that every algorithm —
including baselines that never look at possible worlds — is scored under
the same measure, exactly as in the paper's comparison:

``pmin``
    minimum connection probability of any covered node to its center;
``pavg``
    average connection probability of nodes to their centers
    (uncovered nodes count 0);
``inner-AVPR`` / ``outer-AVPR``
    average pairwise connection probability within / across clusters.

The AVPR metrics are computed from the oracle's per-world component
labels with per-world group counting — cost ``O(r * n log n)`` overall
rather than ``O(n^2)`` pairwise queries.
"""

from __future__ import annotations

import numpy as np

from repro.core.clustering import UNCOVERED, Clustering
from repro.exceptions import OracleError


def connection_to_centers(clustering: Clustering, oracle, depth: int | None = None) -> np.ndarray:
    """Estimated (d-)connection probability of each node to its center.

    Uncovered nodes get 0.  One oracle row per center.
    """
    n = clustering.n_nodes
    values = np.zeros(n, dtype=np.float64)
    for cluster_id, center in enumerate(clustering.centers):
        members = np.flatnonzero(clustering.assignment == cluster_id)
        if len(members) == 0:
            continue
        row = oracle.connection_to_all(int(center), depth=depth)
        values[members] = row[members]
    return values


def min_connection_probability(clustering: Clustering, oracle, depth: int | None = None) -> float:
    """``pmin``: Eq. (1) over covered nodes, re-estimated via ``oracle``."""
    values = connection_to_centers(clustering, oracle, depth)
    covered = clustering.covered_mask
    if not covered.any():
        return 0.0
    return float(values[covered].min())


def avg_connection_probability(clustering: Clustering, oracle, depth: int | None = None) -> float:
    """``pavg``: Eq. (2), uncovered nodes contributing 0."""
    values = connection_to_centers(clustering, oracle, depth)
    values[~clustering.covered_mask] = 0.0
    return float(values.mean())


def _pair_counts(labels_row_keys: np.ndarray) -> float:
    """Sum of ``C(c, 2)`` over the multiplicities of ``labels_row_keys``."""
    _, counts = np.unique(labels_row_keys, return_counts=True)
    return float(np.sum(counts * (counts - 1) // 2))


def avpr(clustering: Clustering, oracle) -> tuple[float, float]:
    """``(inner-AVPR, outer-AVPR)`` of a *full* clustering.

    inner-AVPR averages ``Pr(u ~ v)`` over within-cluster pairs,
    outer-AVPR over cross-cluster pairs.  A good clustering has high
    inner and low outer values.  Returns ``nan`` for a side with no
    pairs (e.g. all-singleton clusters have no inner pairs).
    """
    if not hasattr(oracle, "component_labels"):
        return _avpr_from_matrix(clustering, oracle)
    labels = oracle.component_labels
    if labels.shape[0] == 0:
        raise OracleError("the oracle has no samples; call ensure_samples() first")
    n = clustering.n_nodes
    r = labels.shape[0]
    assignment = clustering.assignment.astype(np.int64)
    if np.any(assignment == UNCOVERED):
        # Treat uncovered nodes as singleton clusters: they contribute
        # only to the outer side, matching "arbitrary completion" least
        # favourably and keeping the metric well-defined.
        uncovered = assignment == UNCOVERED
        assignment = assignment.copy()
        assignment[uncovered] = clustering.k + np.arange(int(uncovered.sum()))

    sizes = np.bincount(assignment)
    inner_denominator = float(np.sum(sizes * (sizes - 1) // 2))
    total_pairs = n * (n - 1) // 2
    outer_denominator = float(total_pairs) - inner_denominator

    # Per world: connected pairs overall, and connected pairs that are
    # also within a cluster — via group counting on composite keys.
    label64 = labels.astype(np.int64)
    n_clusters = int(assignment.max()) + 1
    row_offset = np.arange(r, dtype=np.int64)[:, None]
    label_span = int(label64.max()) + 1 if label64.size else 1
    world_keys = row_offset * label_span + label64
    inner_keys = world_keys * n_clusters + assignment[None, :]

    connected_pairs = _pair_counts(world_keys.ravel())
    inner_connected = _pair_counts(inner_keys.ravel())
    outer_connected = connected_pairs - inner_connected

    inner_value = inner_connected / (r * inner_denominator) if inner_denominator else float("nan")
    outer_value = outer_connected / (r * outer_denominator) if outer_denominator else float("nan")
    return inner_value, outer_value


def _avpr_from_matrix(clustering: Clustering, oracle) -> tuple[float, float]:
    """Exact-oracle fallback: AVPR from the full pairwise matrix."""
    matrix = oracle.pairwise_matrix()
    n = clustering.n_nodes
    assignment = clustering.assignment.astype(np.int64)
    uncovered = assignment == UNCOVERED
    if uncovered.any():
        assignment = assignment.copy()
        assignment[uncovered] = clustering.k + np.arange(int(uncovered.sum()))
    same_cluster = assignment[:, None] == assignment[None, :]
    upper = np.triu(np.ones((n, n), dtype=bool), k=1)
    inner_mask = same_cluster & upper
    outer_mask = ~same_cluster & upper
    inner_value = float(matrix[inner_mask].mean()) if inner_mask.any() else float("nan")
    outer_value = float(matrix[outer_mask].mean()) if outer_mask.any() else float("nan")
    return inner_value, outer_value


def inner_avpr(clustering: Clustering, oracle) -> float:
    """inner-AVPR only (see :func:`avpr`)."""
    return avpr(clustering, oracle)[0]


def outer_avpr(clustering: Clustering, oracle) -> float:
    """outer-AVPR only (see :func:`avpr`)."""
    return avpr(clustering, oracle)[1]
