"""Pair-level prediction metrics for the protein-complex task (Section 5.2).

The paper evaluates clusterings as *predictors* of co-complex protein
pairs: a pair of proteins placed in the same cluster is a positive
prediction, which is *true* iff both appear together in some
ground-truth complex.  Evaluation is restricted to proteins that appear
in at least one ground-truth complex (the MIPS ∩ Krogan universe in the
paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.core.clustering import UNCOVERED, Clustering
from repro.exceptions import ClusteringError

_MAX_DENSE_UNIVERSE = 20_000


@dataclass(frozen=True)
class PairConfusion:
    """Confusion counts over node pairs, with TPR/FPR accessors."""

    tp: int
    fp: int
    fn: int
    tn: int

    @property
    def n_pairs(self) -> int:
        return self.tp + self.fp + self.fn + self.tn

    @property
    def tpr(self) -> float:
        """True positive rate (recall); ``nan`` if there are no positives."""
        positives = self.tp + self.fn
        return self.tp / positives if positives else float("nan")

    @property
    def fpr(self) -> float:
        """False positive rate; ``nan`` if there are no negatives."""
        negatives = self.fp + self.tn
        return self.fp / negatives if negatives else float("nan")

    @property
    def precision(self) -> float:
        predicted = self.tp + self.fp
        return self.tp / predicted if predicted else float("nan")

    @property
    def f1(self) -> float:
        p, r = self.precision, self.tpr
        if not np.isfinite(p) or not np.isfinite(r) or p + r == 0:
            return float("nan")
        return 2 * p * r / (p + r)


def pair_confusion(
    clustering: Clustering | np.ndarray,
    complexes: Sequence[np.ndarray],
    *,
    n_nodes: int | None = None,
) -> PairConfusion:
    """Confusion matrix of co-cluster predictions against complexes.

    Parameters
    ----------
    clustering:
        A :class:`Clustering` or a raw assignment array (``-1`` =
        uncovered; uncovered nodes are treated as singletons, so they
        predict no pairs).
    complexes:
        Ground-truth complexes as arrays of node indices; complexes may
        overlap.  Only nodes appearing in at least one complex form the
        evaluation universe, as in the paper.
    n_nodes:
        Required when passing a raw assignment that might be shorter
        than the graph (defensive check only).

    Returns
    -------
    PairConfusion
    """
    if isinstance(clustering, Clustering):
        assignment = clustering.assignment
        n = clustering.n_nodes
    else:
        assignment = np.asarray(clustering)
        n = n_nodes if n_nodes is not None else len(assignment)
        if len(assignment) != n:
            raise ClusteringError(
                f"assignment has {len(assignment)} entries but n_nodes={n}"
            )
    if len(complexes) == 0:
        raise ClusteringError("at least one ground-truth complex is required")

    members = [np.asarray(c, dtype=np.intp) for c in complexes]
    for c in members:
        if len(c) and (c.min() < 0 or c.max() >= n):
            raise ClusteringError("complex member index out of range")
    universe = np.unique(np.concatenate(members))
    s = len(universe)
    if s < 2:
        raise ClusteringError("the complex universe must contain at least two nodes")
    if s > _MAX_DENSE_UNIVERSE:
        raise ClusteringError(
            f"universe of {s} nodes exceeds the dense limit {_MAX_DENSE_UNIVERSE}"
        )

    position = np.full(n, -1, dtype=np.intp)
    position[universe] = np.arange(s)

    # Predicted co-membership: same (covered) cluster.
    local_assignment = assignment[universe].astype(np.int64)
    uncovered = local_assignment == UNCOVERED
    local_assignment[uncovered] = local_assignment.max() + 1 + np.arange(int(uncovered.sum()))
    predicted = local_assignment[:, None] == local_assignment[None, :]

    # True co-membership: together in >= 1 complex (complexes overlap,
    # so use an indicator product rather than group counting).
    truth = np.zeros((s, s), dtype=bool)
    for c in members:
        local = position[c]
        truth[np.ix_(local, local)] = True

    upper = np.triu(np.ones((s, s), dtype=bool), k=1)
    tp = int(np.count_nonzero(predicted & truth & upper))
    fp = int(np.count_nonzero(predicted & ~truth & upper))
    fn = int(np.count_nonzero(~predicted & truth & upper))
    tn = int(np.count_nonzero(~predicted & ~truth & upper))
    return PairConfusion(tp=tp, fp=fp, fn=fn, tn=tn)
