"""Clustering quality metrics used in the paper's evaluation."""

from repro.metrics.quality import (
    avg_connection_probability,
    avpr,
    connection_to_centers,
    inner_avpr,
    min_connection_probability,
    outer_avpr,
)
from repro.metrics.prediction import PairConfusion, pair_confusion

__all__ = [
    "min_connection_probability",
    "avg_connection_probability",
    "connection_to_centers",
    "avpr",
    "inner_avpr",
    "outer_avpr",
    "PairConfusion",
    "pair_confusion",
]
