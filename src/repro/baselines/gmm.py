"""``gmm`` — the Gonzalez k-center heuristic on shortest-path distances.

The paper's sanity-check baseline: take the classic greedy 2-approximate
k-center algorithm of Gonzalez (repeatedly pick the node *farthest* from
the current centers) and run it on the deterministic weighted graph with
edge weights ``w(e) = ln(1 / p(e))``, i.e. most-probable-path distances.
This deliberately ignores possible-world semantics — the paper uses its
poor quality to argue that naive adaptations of deterministic clustering
do not work on uncertain graphs.

The farthest-point traversal is implemented with one single-source
Dijkstra (C-level, via scipy) per center, maintaining the running
minimum distance to the center set.
"""

from __future__ import annotations

import numpy as np

from repro.core.clustering import Clustering
from repro.exceptions import ClusteringError
from repro.graph.traversal import build_csr_matrix
from repro.graph.uncertain_graph import UncertainGraph
from repro.utils.rng import ensure_rng

from scipy.sparse import csgraph


def gmm_clustering(
    graph: UncertainGraph,
    k: int,
    *,
    seed=None,
    first_center: int | None = None,
) -> Clustering:
    """Greedy k-center on ``-ln p`` shortest-path distances.

    Parameters
    ----------
    graph:
        The uncertain graph (probabilities become weights).
    k:
        Number of clusters, ``1 <= k < n``.
    seed:
        Seeds the choice of the first center (Gonzalez starts from an
        arbitrary node) unless ``first_center`` pins it.

    Returns
    -------
    Clustering
        Full k-clustering; each node is assigned to its nearest center.
        ``center_connection`` carries ``exp(-dist)``, the probability of
        the most probable path — an upper-bound proxy, *not* the true
        connection probability (use the metrics module with an oracle
        for honest quality numbers).
    """
    n = graph.n_nodes
    if not 1 <= k < n:
        raise ClusteringError(f"k must satisfy 1 <= k < n_nodes ({n}), got {k}")
    rng = ensure_rng(seed)
    if first_center is None:
        first_center = int(rng.integers(n))
    if not 0 <= first_center < n:
        raise ClusteringError(f"first_center {first_center} out of range [0, {n})")

    weights = graph.log_distance_weights()
    matrix = build_csr_matrix(graph, weights=weights)

    centers = [first_center]
    dist_to_set = csgraph.dijkstra(matrix, directed=False, indices=first_center)
    nearest = np.zeros(n, dtype=np.int32)
    while len(centers) < k:
        farthest = int(np.argmax(dist_to_set))
        if dist_to_set[farthest] == 0.0:
            # All remaining nodes coincide with a center (duplicate
            # distances 0); pick any non-center to keep centers distinct.
            remaining = np.setdiff1d(np.arange(n), np.asarray(centers))
            farthest = int(remaining[0])
        centers.append(farthest)
        dist_new = csgraph.dijkstra(matrix, directed=False, indices=farthest)
        closer = dist_new < dist_to_set
        nearest[closer] = len(centers) - 1
        dist_to_set = np.where(closer, dist_new, dist_to_set)

    centers_arr = np.asarray(centers, dtype=np.intp)
    assignment = nearest.astype(np.int32)
    assignment[centers_arr] = np.arange(k, dtype=np.int32)
    with np.errstate(over="ignore"):
        proxy = np.exp(-dist_to_set)
    return Clustering(n, centers_arr, assignment, np.clip(proxy, 0.0, 1.0))
