"""``kpt`` — the pKwikCluster algorithm of Kollios, Potamias and Terzi.

Reference [21] of the paper ("Clustering large probabilistic graphs",
TKDE 2013) clusters an uncertain graph by minimizing the *expected edit
distance* between a cluster graph (disjoint cliques) and a random
possible world.  That objective is an instance of weighted correlation
clustering, and their 5-approximation is the randomized pivot algorithm
(KwikCluster) run on the *majority graph*: pick a random unclustered
pivot, form a cluster from the pivot plus all unclustered neighbours
connected with probability ``>= 1/2``, repeat.

Properties the paper criticizes (and our experiments reproduce):

* the number of clusters cannot be controlled — it emerges from the
  pivoting, and is at least ``n / (max_degree + 1)``;
* clusters are *stars* around pivots: only local, edge-level information
  is used, no multi-hop connectivity.

The pivot is the natural cluster "center" for metric purposes.
"""

from __future__ import annotations

import numpy as np

from repro.core.clustering import Clustering
from repro.exceptions import ClusteringError
from repro.graph.uncertain_graph import UncertainGraph
from repro.utils.rng import ensure_rng


def kpt_clustering(
    graph: UncertainGraph,
    *,
    seed=None,
    threshold: float = 0.5,
) -> Clustering:
    """pKwikCluster: random-pivot clustering of the majority graph.

    Parameters
    ----------
    graph:
        The uncertain graph.
    seed:
        Seeds the random pivot order (the approximation guarantee is in
        expectation over this order).
    threshold:
        Probability above which an edge is "positive" (1/2 for the edit
        distance objective; exposed for sensitivity experiments).

    Returns
    -------
    Clustering
        Full clustering with pivots as centers.  ``center_connection``
        carries the direct edge probability to the pivot (1 for pivots
        themselves, 0 if the node was clustered with a sub-threshold
        neighbour — which cannot happen here but keeps the convention).
    """
    if not 0 < threshold <= 1:
        raise ClusteringError(f"threshold must be in (0, 1], got {threshold}")
    n = graph.n_nodes
    rng = ensure_rng(seed)
    order = rng.permutation(n)

    assignment = np.full(n, -1, dtype=np.int32)
    probs = np.zeros(n, dtype=np.float64)
    centers: list[int] = []
    indptr, adj_nodes, adj_edges = graph.adjacency
    edge_prob = graph.edge_prob

    for pivot in order:
        if assignment[pivot] != -1:
            continue
        cluster_id = len(centers)
        centers.append(int(pivot))
        assignment[pivot] = cluster_id
        probs[pivot] = 1.0
        start, stop = indptr[pivot], indptr[pivot + 1]
        for pos in range(start, stop):
            neighbour = adj_nodes[pos]
            if assignment[neighbour] != -1:
                continue
            p = edge_prob[adj_edges[pos]]
            if p >= threshold:
                assignment[neighbour] = cluster_id
                probs[neighbour] = p

    centers_arr = np.asarray(centers, dtype=np.intp)
    return Clustering(n, centers_arr, assignment, probs)
