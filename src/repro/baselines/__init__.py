"""Competitor algorithms the paper compares against (Section 5)."""

from repro.baselines.mcl import MCLResult, mcl_clustering
from repro.baselines.gmm import gmm_clustering
from repro.baselines.kpt import kpt_clustering

__all__ = [
    "MCLResult",
    "mcl_clustering",
    "gmm_clustering",
    "kpt_clustering",
]
