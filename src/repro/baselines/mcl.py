"""The Markov Cluster algorithm (van Dongen), ``mcl``.

mcl clusters a weighted graph by simulating flow: it alternates
*expansion* (matrix squaring — flow spreads along random walks) and
*inflation* (entry-wise powering + column renormalization — strong flow
is boosted, weak flow starved) on a column-stochastic matrix until a
doubly idempotent steady state.  The *inflation* parameter controls
cluster granularity indirectly; there is no way to request a specific
number of clusters, which is the flexibility gap the paper highlights.

Applied to uncertain graphs by treating edge probabilities as weights —
exactly how previous work (and the paper's experiments) use it.  Cluster
*centers*, needed by the paper's pmin/pavg metrics, are taken to be the
attractor nodes (footnote 2 of the paper); for clusters with several
attractors the one holding the most flow wins.

Implementation notes: sparse column-stochastic matrices (CSC), with the
standard pruning heuristic (drop entries below ``prune_threshold`` after
inflation) that the reference implementation uses to stay sparse.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.core.clustering import Clustering
from repro.exceptions import ClusteringError
from repro.graph.components import connected_component_labels
from repro.graph.uncertain_graph import UncertainGraph


@dataclass(frozen=True)
class MCLResult:
    """Outcome of :func:`mcl_clustering`."""

    clustering: Clustering
    inflation: float
    n_iterations: int
    converged: bool

    @property
    def n_clusters(self) -> int:
        return self.clustering.k


def _normalize_columns(matrix: sp.csc_matrix) -> sp.csc_matrix:
    sums = np.asarray(matrix.sum(axis=0)).ravel()
    sums[sums == 0.0] = 1.0
    scale = sp.diags(1.0 / sums)
    return (matrix @ scale).tocsc()


def _inflate(matrix: sp.csc_matrix, inflation: float, prune_threshold: float) -> sp.csc_matrix:
    inflated = matrix.copy()
    inflated.data = np.power(inflated.data, inflation)
    if prune_threshold > 0.0:
        inflated.data[inflated.data < prune_threshold] = 0.0
        inflated.eliminate_zeros()
    return _normalize_columns(inflated)


def mcl_clustering(
    graph: UncertainGraph,
    *,
    inflation: float = 2.0,
    expansion: int = 2,
    loop_weight: float = 1.0,
    prune_threshold: float = 1e-5,
    max_iterations: int = 200,
    tolerance: float = 1e-8,
    max_nnz: int | None = 50_000_000,
) -> MCLResult:
    """Run mcl on an uncertain graph, using probabilities as weights.

    Parameters
    ----------
    graph:
        The uncertain graph.
    inflation:
        Granularity knob (> 1); higher values give more, smaller
        clusters.  The paper sweeps {1.2, 1.5, 2.0} on PPI networks and
        {1.15, 1.2, 1.3} on DBLP.
    expansion:
        Matrix power used in the expansion step (2 is standard).
    loop_weight:
        Self-loop weight added before normalization (stabilizes flow).
    prune_threshold:
        Entries below this are dropped after inflation (keeps the matrix
        sparse, as in the reference implementation).
    max_iterations, tolerance:
        Convergence controls; iteration stops when the matrix changes by
        at most ``tolerance`` (max absolute entry difference).
    max_nnz:
        Memory guard: raise :class:`MemoryError` if the expanded matrix
        exceeds this many stored entries.  Low inflation on large graphs
        densifies the flow matrix — the failure mode the paper observed
        (mcl ran out of memory on DBLP for small k, Figure 4).

    Returns
    -------
    MCLResult
        Clustering whose clusters are the weakly connected components of
        the converged flow matrix and whose centers are attractors.
    """
    if inflation <= 1.0:
        raise ClusteringError(f"inflation must be > 1, got {inflation}")
    if expansion < 2:
        raise ClusteringError(f"expansion must be >= 2, got {expansion}")
    if loop_weight < 0:
        raise ClusteringError(f"loop_weight must be non-negative, got {loop_weight}")
    n = graph.n_nodes
    src, dst, prob = graph.edge_src, graph.edge_dst, graph.edge_prob
    rows = np.concatenate([src, dst, np.arange(n)])
    cols = np.concatenate([dst, src, np.arange(n)])
    data = np.concatenate([prob, prob, np.full(n, loop_weight, dtype=np.float64)])
    matrix = sp.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsc()
    matrix = _normalize_columns(matrix)

    converged = False
    n_iterations = 0
    for iteration in range(1, max_iterations + 1):
        n_iterations = iteration
        expanded = matrix
        for _ in range(expansion - 1):
            expanded = (expanded @ matrix).tocsc()
            if max_nnz is not None and expanded.nnz > max_nnz:
                raise MemoryError(
                    f"mcl expansion produced {expanded.nnz} stored entries "
                    f"(limit {max_nnz}); inflation={inflation} is too low for "
                    "this graph size"
                )
        new_matrix = _inflate(expanded, inflation, prune_threshold)
        delta = abs(new_matrix - matrix)
        change = delta.max() if delta.nnz else 0.0
        matrix = new_matrix
        if change <= tolerance:
            converged = True
            break

    clustering = _interpret(matrix, n)
    return MCLResult(
        clustering=clustering,
        inflation=inflation,
        n_iterations=n_iterations,
        converged=converged,
    )


def _interpret(matrix: sp.csc_matrix, n: int) -> Clustering:
    """Extract clusters and attractor centers from the converged matrix.

    Clusters are the weakly connected components of the support graph of
    the flow matrix (the standard mcl interpretation).  Attractors are
    nodes with positive return flow (``M[i, i] > 0``); each cluster's
    center is its attractor with the largest total incoming flow.
    """
    coo = matrix.tocoo()
    keep = coo.data > 0.0
    rows, cols = coo.row[keep], coo.col[keep]
    labels = connected_component_labels(n, rows.astype(np.intp), cols.astype(np.intp))
    n_clusters = int(labels.max()) + 1 if n else 0

    diag = matrix.diagonal()
    incoming = np.asarray(matrix.sum(axis=1)).ravel()
    # Prefer attractors; break ties by incoming flow, then by index.
    score = np.where(diag > 0.0, 1.0, 0.0) * (1.0 + incoming)
    centers = np.empty(n_clusters, dtype=np.intp)
    for cluster in range(n_clusters):
        members = np.flatnonzero(labels == cluster)
        best = members[np.argmax(score[members] + incoming[members] * 1e-9)]
        centers[cluster] = best
    assignment = labels.astype(np.int32)
    return Clustering(n, centers, assignment)
