"""Name-based dataset registry used by the experiment harness."""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.datasets.collaboration import dblp_like
from repro.datasets.ppi import PPIDataset, collins_like, gavin_like, krogan_like
from repro.exceptions import ExperimentError
from repro.graph.uncertain_graph import UncertainGraph

DATASET_NAMES = ("collins", "gavin", "krogan", "dblp")

_PPI_GENERATORS: dict[str, Callable[..., PPIDataset]] = {
    "collins": collins_like,
    "gavin": gavin_like,
    "krogan": krogan_like,
}


def load_dataset(
    name: str,
    *,
    seed=0,
    scale: float = 1.0,
    dblp_authors: int = 20_000,
) -> tuple[UncertainGraph, tuple[np.ndarray, ...] | None]:
    """Load a dataset by name, returning ``(graph, complexes_or_None)``.

    ``scale`` shrinks the PPI networks proportionally (1.0 = paper
    sizes); ``dblp_authors`` sets the DBLP author pool, which the paper
    cannot be matched on in pure Python (see DESIGN.md).
    """
    if name in _PPI_GENERATORS:
        dataset = _PPI_GENERATORS[name](seed=seed, scale=scale)
        return dataset.graph, dataset.complexes
    if name == "dblp":
        authors = max(int(dblp_authors * scale), 100)
        return dblp_like(authors, seed=seed), None
    raise ExperimentError(f"unknown dataset {name!r}; available: {DATASET_NAMES}")
