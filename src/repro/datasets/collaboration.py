"""DBLP-like collaboration graphs.

The paper derives an uncertain graph from DBLP: authors are nodes, an
edge connects co-authors of at least one journal paper, and the edge
probability is ``1 - exp(-x/2)`` where ``x`` is the number of
co-authored papers (one collaboration -> 0.39, two -> 0.63, five ->
0.91; about 80% of the edges sit at 0.39 and 12% at 0.63).

This generator reproduces that construction from a synthetic
publication process: papers arrive with small author teams whose
members are drawn with preferential attachment (prolific authors keep
publishing), which yields both a heavy-tailed degree distribution and
the observed collaboration-count distribution.  The paper's graph has
636,751 nodes — far beyond a pure-Python laptop run — so the default
size is scaled down; the construction (and hence the probability law)
is unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphValidationError
from repro.graph.uncertain_graph import UncertainGraph
from repro.utils.rng import ensure_rng


def collaboration_probability(x) -> np.ndarray:
    """Edge probability for ``x`` co-authored papers: ``1 - exp(-x/2)``."""
    return -np.expm1(-0.5 * np.asarray(x, dtype=np.float64))


# Distribution of per-pair collaboration counts reported in the paper:
# ~80% of edges at x=1 (p=0.39), ~12% at x=2 (p=0.63), remaining 8%
# higher.  The tail follows the paper's "authors likely to collaborate
# again" intuition with geometrically decaying mass.
_COLLAB_COUNTS = np.array([1, 2, 3, 4, 5, 7, 10])
_COLLAB_WEIGHTS = np.array([0.80, 0.12, 0.04, 0.02, 0.012, 0.006, 0.002])


def sample_collaboration_counts(m: int, rng) -> np.ndarray:
    """Sample per-edge co-authored-paper counts with the paper's marginal."""
    weights = _COLLAB_WEIGHTS / _COLLAB_WEIGHTS.sum()
    return rng.choice(_COLLAB_COUNTS, size=m, p=weights)


def dblp_like(
    n_authors: int = 20_000,
    *,
    papers_per_author: float = 1.4,
    team_mean: float = 1.15,
    preferential_weight: float = 0.8,
    seed=None,
    largest_cc: bool = True,
) -> UncertainGraph:
    """Generate a DBLP-like uncertain collaboration graph.

    Parameters
    ----------
    n_authors:
        Author pool size before restriction to the largest component.
    papers_per_author:
        Controls the paper count (``n_papers = papers_per_author * n_authors``).
    team_mean:
        Mean of the Poisson governing extra co-authors per paper
        (team size is ``2 + Poisson(team_mean - 1)`` clipped to [2, 6];
        single-author papers create no edges and are skipped).
    preferential_weight:
        Strength of preferential attachment: author sampling weights are
        ``1 + preferential_weight * papers_so_far``.  Zero gives uniform
        team sampling; larger values fatten the collaboration tail.
    largest_cc:
        Restrict the result to the largest connected component (paper
        protocol).

    Returns
    -------
    UncertainGraph
        Collaboration graph with probabilities ``1 - exp(-x/2)``.
    """
    if n_authors < 10:
        raise GraphValidationError(f"n_authors must be >= 10, got {n_authors}")
    if papers_per_author <= 0 or team_mean < 1.0:
        raise GraphValidationError("papers_per_author must be > 0 and team_mean >= 1")
    rng = ensure_rng(seed)
    n_papers = int(papers_per_author * n_authors)

    # Preferential attachment via a growing endpoint pool: each authorship
    # appends `preferential_weight` copies of the author (in expectation)
    # to the pool, so busy authors are drawn more often.
    weights = np.ones(n_authors, dtype=np.float64)
    pair_src: list[np.ndarray] = []
    pair_dst: list[np.ndarray] = []
    team_sizes = 2 + rng.poisson(team_mean - 1.0, size=n_papers)
    np.clip(team_sizes, 2, 6, out=team_sizes)

    # Vectorize in batches: weights change slowly, so refreshing the
    # cumulative distribution every batch is an excellent approximation
    # of per-paper updates and orders of magnitude faster.
    batch = max(256, n_papers // 64)
    for start in range(0, n_papers, batch):
        sizes = team_sizes[start:start + batch]
        total = int(sizes.sum())
        cumulative = np.cumsum(weights)
        cumulative /= cumulative[-1]
        draws = np.searchsorted(cumulative, rng.random(total))
        np.add.at(weights, draws, preferential_weight)
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        for i in range(len(sizes)):
            team = np.unique(draws[offsets[i]:offsets[i + 1]])
            if len(team) < 2:
                continue
            u, v = np.meshgrid(team, team, indexing="ij")
            upper = u < v
            pair_src.append(u[upper])
            pair_dst.append(v[upper])

    if not pair_src:
        raise GraphValidationError("the publication process produced no collaborations")
    src = np.concatenate(pair_src)
    dst = np.concatenate(pair_dst)
    keys = src.astype(np.int64) * n_authors + dst
    unique_keys, process_counts = np.unique(keys, return_counts=True)
    edge_src = (unique_keys // n_authors).astype(np.intp)
    edge_dst = (unique_keys % n_authors).astype(np.intp)
    # The publication process fixes the topology; per-pair collaboration
    # counts follow the paper's reported marginal (pairs that the
    # process itself repeated keep their higher count).
    counts = np.maximum(
        process_counts, sample_collaboration_counts(len(unique_keys), rng)
    )
    prob = collaboration_probability(counts)

    graph = UncertainGraph(n_authors, edge_src, edge_dst, prob, validate=False)
    if largest_cc:
        graph = graph.largest_component()
    return graph
