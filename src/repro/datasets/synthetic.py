"""Generic synthetic uncertain graphs.

Building blocks used by tests, examples and the domain-specific
generators in :mod:`repro.datasets.ppi` and
:mod:`repro.datasets.collaboration`.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphValidationError
from repro.graph.uncertain_graph import UncertainGraph
from repro.utils.rng import ensure_rng


def _dedupe_pairs(src: np.ndarray, dst: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Canonicalize and deduplicate undirected pairs, dropping self loops."""
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    keep = lo != hi
    lo, hi = lo[keep], hi[keep]
    keys = lo.astype(np.int64) * n + hi
    unique_keys = np.unique(keys)
    return (unique_keys // n).astype(np.intp), (unique_keys % n).astype(np.intp)


def sample_distinct_pairs(n: int, count: int, rng, *, exclude_keys=None) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``count`` distinct node pairs uniformly (no self loops).

    ``exclude_keys`` is an optional sorted int64 array of canonical pair
    keys (``lo * n + hi``) to avoid.  Raises when the request cannot be
    met.
    """
    max_pairs = n * (n - 1) // 2
    excluded = 0 if exclude_keys is None else len(exclude_keys)
    if count > max_pairs - excluded:
        raise GraphValidationError(
            f"cannot sample {count} distinct pairs from {max_pairs - excluded} available"
        )
    chosen: np.ndarray = np.empty(0, dtype=np.int64)
    while len(chosen) < count:
        need = count - len(chosen)
        src = rng.integers(0, n, size=2 * need + 16)
        dst = rng.integers(0, n, size=2 * need + 16)
        lo, hi = np.minimum(src, dst), np.maximum(src, dst)
        keep = lo != hi
        keys = lo[keep].astype(np.int64) * n + hi[keep]
        if exclude_keys is not None and len(exclude_keys):
            keys = keys[~np.isin(keys, exclude_keys)]
        chosen = np.unique(np.concatenate([chosen, keys]))
        if len(chosen) > count:
            chosen = rng.permutation(chosen)[:count]
            chosen = np.sort(chosen)
    return (chosen // n).astype(np.intp), (chosen % n).astype(np.intp)


def gnm_uncertain(
    n: int,
    m: int,
    *,
    prob_low: float = 0.1,
    prob_high: float = 1.0,
    seed=None,
) -> UncertainGraph:
    """Uniform random graph with ``m`` edges and U[prob_low, prob_high] probabilities."""
    if n < 2:
        raise GraphValidationError(f"n must be >= 2, got {n}")
    rng = ensure_rng(seed)
    src, dst = sample_distinct_pairs(n, m, rng)
    prob = rng.uniform(prob_low, prob_high, size=m)
    prob = np.clip(prob, np.nextafter(0.0, 1.0), 1.0)
    return UncertainGraph(n, src, dst, prob, validate=False)


def planted_partition(
    n: int,
    k: int,
    *,
    intra_degree: float = 6.0,
    inter_degree: float = 1.0,
    intra_prob: tuple[float, float] = (0.6, 0.95),
    inter_prob: tuple[float, float] = (0.05, 0.3),
    seed=None,
) -> tuple[UncertainGraph, np.ndarray]:
    """Planted-partition uncertain graph with ``k`` equal communities.

    Nodes are split into ``k`` groups; each node receives on average
    ``intra_degree`` within-group edge endpoints and ``inter_degree``
    cross-group ones.  Within-group edges draw probabilities from
    ``intra_prob`` and cross edges from ``inter_prob`` (uniform ranges).
    Every community is additionally wired with a random spanning path so
    it is connected in the skeleton.

    Returns
    -------
    (graph, membership)
        ``membership[u]`` is the planted community of node ``u``.
    """
    if k < 1 or n < 2 * k:
        raise GraphValidationError(f"need n >= 2k, got n={n}, k={k}")
    rng = ensure_rng(seed)
    membership = np.repeat(np.arange(k), int(np.ceil(n / k)))[:n]
    rng.shuffle(membership)

    intra_src_parts: list[np.ndarray] = []
    intra_dst_parts: list[np.ndarray] = []
    for community in range(k):
        nodes = np.flatnonzero(membership == community)
        order = rng.permutation(nodes)
        intra_src_parts.append(order[:-1])  # spanning path
        intra_dst_parts.append(order[1:])
        extra = int(round(intra_degree * len(nodes) / 2))
        if extra > 0:
            s = rng.choice(nodes, size=extra)
            t = rng.choice(nodes, size=extra)
            intra_src_parts.append(s)
            intra_dst_parts.append(t)
    intra_src = np.concatenate(intra_src_parts)
    intra_dst = np.concatenate(intra_dst_parts)
    intra_src, intra_dst = _dedupe_pairs(intra_src, intra_dst, n)

    n_inter = int(round(inter_degree * n / 2))
    inter_src = rng.integers(0, n, size=n_inter)
    inter_dst = rng.integers(0, n, size=n_inter)
    inter_src, inter_dst = _dedupe_pairs(inter_src, inter_dst, n)
    cross = membership[inter_src] != membership[inter_dst]
    inter_src, inter_dst = inter_src[cross], inter_dst[cross]

    # Drop inter pairs that duplicate intra pairs.
    intra_keys = intra_src.astype(np.int64) * n + intra_dst
    inter_keys = inter_src.astype(np.int64) * n + inter_dst
    fresh = ~np.isin(inter_keys, intra_keys)
    inter_src, inter_dst = inter_src[fresh], inter_dst[fresh]

    src = np.concatenate([intra_src, inter_src])
    dst = np.concatenate([intra_dst, inter_dst])
    prob = np.concatenate(
        [
            rng.uniform(*intra_prob, size=len(intra_src)),
            rng.uniform(*inter_prob, size=len(inter_src)),
        ]
    )
    prob = np.clip(prob, np.nextafter(0.0, 1.0), 1.0)
    graph = UncertainGraph(n, src, dst, prob, validate=False)
    return graph, membership


def path_graph(n: int, prob: float = 0.9) -> UncertainGraph:
    """Path ``0 - 1 - ... - n-1`` with uniform edge probability."""
    if n < 2:
        raise GraphValidationError(f"n must be >= 2, got {n}")
    idx = np.arange(n - 1, dtype=np.intp)
    return UncertainGraph(n, idx, idx + 1, np.full(n - 1, prob), validate=True)


def star_graph(n_leaves: int, prob: float = 0.9) -> UncertainGraph:
    """Star with center 0 and ``n_leaves`` leaves, uniform probability."""
    if n_leaves < 1:
        raise GraphValidationError(f"n_leaves must be >= 1, got {n_leaves}")
    src = np.zeros(n_leaves, dtype=np.intp)
    dst = np.arange(1, n_leaves + 1, dtype=np.intp)
    return UncertainGraph(n_leaves + 1, src, dst, np.full(n_leaves, prob), validate=True)
