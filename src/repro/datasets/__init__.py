"""Dataset generators standing in for the paper's real-world graphs."""

from repro.datasets.synthetic import (
    gnm_uncertain,
    path_graph,
    planted_partition,
    star_graph,
)
from repro.datasets.ppi import PPIDataset, collins_like, gavin_like, krogan_like
from repro.datasets.collaboration import dblp_like
from repro.datasets.registry import DATASET_NAMES, load_dataset

__all__ = [
    "planted_partition",
    "gnm_uncertain",
    "path_graph",
    "star_graph",
    "PPIDataset",
    "collins_like",
    "gavin_like",
    "krogan_like",
    "dblp_like",
    "DATASET_NAMES",
    "load_dataset",
]
