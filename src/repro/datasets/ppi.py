"""PPI-network-like uncertain graphs with planted protein complexes.

The paper evaluates on three S. cerevisiae protein-protein interaction
networks whose raw data we do not have.  These generators produce
synthetic stand-ins that match what the algorithms actually see:

========  =======  =======  =====================================================
dataset   nodes    edges    edge-probability profile (paper Section 5)
========  =======  =======  =====================================================
Collins   1004     8323     mostly high probabilities
Gavin     1727     7534     mostly low probabilities
Krogan    2559     7031     1/4 of edges > 0.9, rest ~ uniform on [0.27, 0.9]
========  =======  =======  =====================================================

Topology: proteins are grouped into *complexes* (planted communities
with MIPS-like sizes); complexes are densely wired internally and the
remaining edges connect random protein pairs.  Within-complex edges
preferentially receive the higher probabilities — the biological signal
(co-complex interactions are observed more reliably) that makes the
complex-prediction task (Table 2) meaningful.

Each generator returns a :class:`PPIDataset` restricted to the largest
connected component (as the paper does), with complexes remapped and
filtered to the surviving proteins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.synthetic import _dedupe_pairs
from repro.exceptions import GraphValidationError
from repro.graph.components import largest_component_indices
from repro.graph.uncertain_graph import UncertainGraph
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class PPIDataset:
    """A PPI-like uncertain graph plus its planted complexes.

    ``complexes`` hold node indices *into* ``graph`` and play the role
    of the MIPS ground truth in the prediction experiments.
    """

    name: str
    graph: UncertainGraph
    complexes: tuple[np.ndarray, ...]

    @property
    def n_complex_proteins(self) -> int:
        if not self.complexes:
            return 0
        return len(np.unique(np.concatenate(self.complexes)))


def _sample_complex_sizes(rng, n_nodes: int, coverage: float, mean_size: float) -> list[int]:
    """MIPS-like complex sizes: 2 + geometric tail, until coverage is met."""
    target = int(coverage * n_nodes)
    sizes: list[int] = []
    used = 0
    # Geometric with the requested mean above the minimum size of 2.
    tail_mean = max(mean_size - 2.0, 0.5)
    while used < target:
        size = 2 + int(rng.geometric(1.0 / (tail_mean + 1.0)) - 1)
        size = min(size, 30, n_nodes - used)
        if size < 2:
            break
        sizes.append(size)
        used += size
    return sizes


def _wire_complexes(rng, sizes: list[int], n_nodes: int, intra_density: float):
    """Assign nodes to complexes and wire each internally.

    Every complex gets a spanning path plus random internal pairs up to
    ``intra_density`` of its possible pairs.  Nodes left over after the
    complexes are filled are *background* proteins: each is attached to
    the rest of the graph by a single pendant edge (real PPI networks
    have a large degree-1 periphery, which is what produces the low
    minimum connection probabilities the paper reports).
    """
    order = rng.permutation(n_nodes)
    complexes: list[np.ndarray] = []
    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    cursor = 0
    for size in sizes:
        members = order[cursor:cursor + size]
        cursor += size
        complexes.append(np.sort(members))
        path = rng.permutation(members)
        src_parts.append(path[:-1])
        dst_parts.append(path[1:])
        extra = int(round(intra_density * size * (size - 1) / 2))
        if extra > 0:
            src_parts.append(rng.choice(members, size=extra))
            dst_parts.append(rng.choice(members, size=extra))
    src = np.concatenate(src_parts) if src_parts else np.empty(0, dtype=np.intp)
    dst = np.concatenate(dst_parts) if dst_parts else np.empty(0, dtype=np.intp)
    src, dst = _dedupe_pairs(src, dst, n_nodes)

    # Background proteins: pendant attachment to a random complex member.
    background = order[cursor:]
    if len(background) and cursor > 0:
        anchors = rng.choice(order[:cursor], size=len(background))
        pendant_src = np.minimum(background, anchors).astype(np.intp)
        pendant_dst = np.maximum(background, anchors).astype(np.intp)
    else:
        pendant_src = np.empty(0, dtype=np.intp)
        pendant_dst = np.empty(0, dtype=np.intp)
    return complexes, src, dst, pendant_src, pendant_dst


def _fill_cross_edges(rng, n_nodes: int, n_edges: int, src: np.ndarray, dst: np.ndarray, is_cross: np.ndarray):
    """Add random cross edges until exactly ``n_edges`` total.

    ``is_cross`` flags the already-wired edges; newly added random edges
    are always flagged cross.  If the wired edges exceed the budget they
    are subsampled (flags kept aligned).
    """
    keys = src.astype(np.int64) * n_nodes + dst
    if len(keys) > n_edges:
        chosen = np.sort(rng.permutation(len(keys))[:n_edges])
        keys = keys[chosen]
        flags = is_cross[chosen]
        return (keys // n_nodes).astype(np.intp), (keys % n_nodes).astype(np.intp), flags
    existing = set(keys.tolist())
    need = n_edges - len(keys)
    new_keys: list[int] = []
    while len(new_keys) < need:
        u = int(rng.integers(n_nodes))
        v = int(rng.integers(n_nodes))
        if u == v:
            continue
        key = min(u, v) * n_nodes + max(u, v)
        if key in existing:
            continue
        existing.add(key)
        new_keys.append(key)
    all_keys = np.concatenate([keys, np.asarray(new_keys, dtype=np.int64)])
    flags = np.concatenate([is_cross, np.ones(need, dtype=bool)])
    return (all_keys // n_nodes).astype(np.intp), (all_keys % n_nodes).astype(np.intp), flags


def _ppi_like(
    name: str,
    *,
    n_nodes: int,
    n_edges: int,
    seed,
    scale: float,
    intra_density: float,
    coverage: float,
    mean_complex_size: float,
    prob_sampler,
) -> PPIDataset:
    if scale <= 0 or scale > 1:
        raise GraphValidationError(f"scale must be in (0, 1], got {scale}")
    n = max(int(round(n_nodes * scale)), 20)
    m = max(int(round(n_edges * scale)), n)
    m = min(m, n * (n - 1) // 2)
    rng = ensure_rng(seed)

    sizes = _sample_complex_sizes(rng, n, coverage, mean_complex_size)
    complexes, intra_src, intra_dst, pend_src, pend_dst = _wire_complexes(
        rng, sizes, n, intra_density
    )
    # Pendant (background) edges count as cross: they carry the weaker
    # probability profile, producing the degree-1 periphery that drives
    # the low pmin values the paper reports.
    wired_src = np.concatenate([intra_src, pend_src])
    wired_dst = np.concatenate([intra_dst, pend_dst])
    wired_cross = np.concatenate(
        [np.zeros(len(intra_src), dtype=bool), np.ones(len(pend_src), dtype=bool)]
    )
    src, dst, is_cross = _fill_cross_edges(rng, n, m, wired_src, wired_dst, wired_cross)

    prob = prob_sampler(rng, len(src), is_cross)
    prob = np.clip(prob, 1e-6, 1.0)
    graph = UncertainGraph(n, src, dst, prob, validate=False)

    # Restrict to the largest connected component, as the paper does.
    keep = largest_component_indices(graph.connected_components())
    lcc = graph.subgraph(keep)
    remap = np.full(n, -1, dtype=np.intp)
    remap[keep] = np.arange(len(keep))
    surviving: list[np.ndarray] = []
    for complex_members in complexes:
        mapped = remap[complex_members]
        mapped = mapped[mapped >= 0]
        if len(mapped) >= 2:
            surviving.append(np.sort(mapped))
    return PPIDataset(name=name, graph=lcc, complexes=tuple(surviving))


def _collins_probs(rng, m: int, is_cross: np.ndarray) -> np.ndarray:
    """Mostly high probabilities; cross-complex edges markedly weaker.

    The within-complex edges dominate the edge count (Collins is a
    co-complex-derived network), so the overall profile stays "mostly
    high" while the sparse cross edges keep the graph from collapsing
    into one perfectly reliable blob.
    """
    prob = rng.beta(8.0, 1.2, size=m)
    prob[is_cross] = rng.beta(1.6, 3.2, size=int(is_cross.sum()))
    return prob


def _gavin_probs(rng, m: int, is_cross: np.ndarray) -> np.ndarray:
    """Mostly low probabilities; intra edges somewhat stronger."""
    prob = rng.beta(2.2, 4.0, size=m)
    prob[is_cross] = rng.beta(1.2, 6.0, size=int(is_cross.sum()))
    return prob


def _krogan_probs(rng, m: int, is_cross: np.ndarray) -> np.ndarray:
    """25% of edges above 0.9, the rest uniform on [0.27, 0.9].

    High-probability slots are handed to within-complex edges first,
    then to cross edges if any remain.
    """
    n_high = int(round(0.25 * m))
    prob = rng.uniform(0.27, 0.9, size=m)
    intra_idx = np.flatnonzero(~is_cross)
    cross_idx = np.flatnonzero(is_cross)
    order = np.concatenate([rng.permutation(intra_idx), rng.permutation(cross_idx)])
    high = order[:n_high]
    prob[high] = rng.uniform(0.9, 1.0, size=len(high))
    return prob


def collins_like(seed=0, *, scale: float = 1.0) -> PPIDataset:
    """Collins-like PPI network: dense, mostly high-probability edges."""
    return _ppi_like(
        "collins",
        n_nodes=1004,
        n_edges=8323,
        seed=seed,
        scale=scale,
        # Collins is derived from co-complex scores: near-clique modules
        # (large, dense) carry almost all edges; cross edges are rare.
        intra_density=0.95,
        coverage=0.85,
        mean_complex_size=18.0,
        prob_sampler=_collins_probs,
    )


def gavin_like(seed=0, *, scale: float = 1.0) -> PPIDataset:
    """Gavin-like PPI network: mostly low-probability edges."""
    return _ppi_like(
        "gavin",
        n_nodes=1727,
        n_edges=7534,
        seed=seed,
        scale=scale,
        intra_density=0.45,
        coverage=0.65,
        mean_complex_size=5.0,
        prob_sampler=_gavin_probs,
    )


def krogan_like(seed=0, *, scale: float = 1.0) -> PPIDataset:
    """Krogan(CORE)-like PPI network: bimodal probability profile."""
    return _ppi_like(
        "krogan",
        n_nodes=2559,
        n_edges=7031,
        seed=seed,
        scale=scale,
        intra_density=0.60,
        coverage=0.55,
        mean_complex_size=4.5,
        prob_sampler=_krogan_probs,
    )
