"""Command-line interface.

Usage::

    python -m repro.cli stats graph.uel
    python -m repro.cli estimate graph.uel A B --samples 4000
    python -m repro.cli cluster graph.uel --k 20 --algorithm mcp -o out.tsv
    python -m repro.cli kmedian graph.uel --k 20 --samples 2000 -o out.tsv
    python -m repro.cli kcenter graph.uel --k 20 --samples 2000 -o out.tsv
    python -m repro.cli centrality graph.uel --measure harmonic -o values.tsv
    python -m repro.cli mutate graph.uel --update A B 0.9 --add A C 0.4 \
        -o graph2.uel --world-cache .world-cache
    python -m repro.cli generate krogan --scale 0.2 -o krogan.uel
    python -m repro.cli cache info .world-cache
    python -m repro.cli cache clear .world-cache
    python -m repro.cli serve --port 8722 --world-cache .world-cache
    python -m repro.cli bench-serve http://127.0.0.1:8722 --graph krogan

Graphs are read/written in the ``.uel`` text format (``u v probability``
per line); clusterings are written as TSV ``node<TAB>cluster<TAB>center``.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro import __version__
from repro.baselines.gmm import gmm_clustering
from repro.baselines.kpt import kpt_clustering
from repro.baselines.mcl import mcl_clustering
from repro.core.acp import acp_clustering
from repro.core.clustering import Clustering
from repro.core.mcp import mcp_clustering
from repro.datasets.registry import DATASET_NAMES, load_dataset
from repro.exceptions import ReproError
from repro.graph.io import read_uncertain_graph, write_uncertain_graph
from repro.sampling.backends import BACKEND_NAMES
from repro.sampling.oracle import MonteCarloOracle
from repro.sampling.parallel import validate_workers_spec
from repro.sampling.sizes import PracticalSchedule
from repro.sampling.store import WorldStore
from repro.workloads import (
    MEASURE_NAMES,
    expected_centrality,
    kcenter_clustering,
    kmedian_clustering,
)

_CLUSTER_ALGORITHMS = ("mcp", "acp", "mcl", "gmm", "kpt")


def _print_profile(total_s: float, oracle) -> None:
    """Print the per-run phase breakdown table (``--profile``).

    The same ``timings`` breakdown the service reports per job (see
    ``GET /v1/jobs/{id}``), computed from the run's oracle; algorithms
    without an oracle (mcl/gmm/kpt) attribute everything to clustering.
    """
    from repro.service.workers import _phase_breakdown

    phases = stats = None
    if oracle is not None:
        phases = oracle.phase_timings
        stats = oracle.cache_stats
    timings = _phase_breakdown(total_s, phases, stats)
    print("phase         wall_ms", file=sys.stderr)
    for name, key in (("sample", "sample_ms"), ("label", "label_ms"),
                      ("store read", "store_read_ms"),
                      ("cluster", "cluster_ms"), ("total", "total_ms")):
        print(f"{name:<12} {timings[key]:>9.3f}", file=sys.stderr)
    print(f"worlds sampled {timings['worlds_sampled']}", file=sys.stderr)
    print(f"worlds reused  {timings['worlds_reused']}", file=sys.stderr)


def _write_clustering(clustering: Clustering, graph, stream) -> None:
    labels = graph.node_labels
    stream.write("node\tcluster\tcenter\n")
    for node in range(clustering.n_nodes):
        cluster = int(clustering.assignment[node])
        center = labels[clustering.centers[cluster]] if cluster >= 0 else "-"
        stream.write(f"{labels[node]}\t{cluster}\t{center}\n")


def _cmd_stats(args) -> int:
    graph = read_uncertain_graph(args.graph, merge=args.merge)
    degrees = graph.degrees()
    prob = graph.edge_prob
    lcc = graph.largest_component()
    print(f"nodes            {graph.n_nodes}")
    print(f"edges            {graph.n_edges}")
    print(f"largest CC       {lcc.n_nodes} nodes / {lcc.n_edges} edges")
    print(f"expected edges   {graph.expected_edge_count():.1f}")
    if graph.n_edges:
        print(f"degree           mean={degrees.mean():.2f} max={int(degrees.max())}")
        print(
            "edge probability "
            f"min={prob.min():.3f} median={float(np.median(prob)):.3f} max={prob.max():.3f}"
        )
    return 0


def _cmd_estimate(args) -> int:
    graph = read_uncertain_graph(args.graph, merge=args.merge)
    u = graph.index_of(args.u) if args.u in graph.node_labels else graph.index_of(_coerce(args.u))
    v = graph.index_of(args.v) if args.v in graph.node_labels else graph.index_of(_coerce(args.v))
    started = time.perf_counter()
    oracle = MonteCarloOracle(
        graph, seed=args.seed, backend=args.backend, workers=args.workers,
        cache_dir=args.world_cache,
    )
    oracle.ensure_samples(args.samples)
    estimate = oracle.connection(u, v, depth=args.depth)
    suffix = f" (paths <= {args.depth})" if args.depth else ""
    print(f"Pr({args.u} ~ {args.v}){suffix} ~= {estimate:.4f}  [{args.samples} worlds]")
    if args.profile:
        _print_profile(time.perf_counter() - started, oracle)
    return 0


def _coerce(token: str):
    try:
        return int(token)
    except ValueError:
        return token


def _parse_workers(token: str):
    """argparse type for ``--workers``: ``auto`` or a positive int."""
    try:
        spec = int(token)
    except ValueError:
        spec = token
    try:
        return validate_workers_spec(spec)
    except ReproError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _cmd_cluster(args) -> int:
    graph = read_uncertain_graph(args.graph, merge=args.merge)
    schedule = PracticalSchedule(max_samples=args.samples)
    started = time.perf_counter()
    oracle = None
    if args.algorithm in ("mcp", "acp") and args.profile:
        # Built explicitly (instead of inside the algorithm) so the
        # profile table can read its phase timings afterwards.
        oracle = MonteCarloOracle(
            graph, seed=args.seed, backend=args.backend, workers=args.workers,
            cache_dir=args.world_cache,
        )
    if args.algorithm == "mcp":
        result = mcp_clustering(
            graph, args.k, oracle=oracle, seed=args.seed, depth=args.depth,
            sample_schedule=schedule, backend=args.backend, workers=args.workers,
            cache_dir=args.world_cache,
        )
        clustering = result.clustering
        print(f"mcp: k={args.k} min-prob~={result.min_prob_estimate:.3f} q={result.q_final:.4f}", file=sys.stderr)
    elif args.algorithm == "acp":
        result = acp_clustering(
            graph, args.k, oracle=oracle, seed=args.seed, depth=args.depth,
            sample_schedule=schedule, backend=args.backend, workers=args.workers,
            cache_dir=args.world_cache,
        )
        clustering = result.clustering
        print(f"acp: k={args.k} avg-prob~={result.avg_prob_estimate:.3f}", file=sys.stderr)
    elif args.algorithm == "mcl":
        result = mcl_clustering(graph, inflation=args.inflation)
        clustering = result.clustering
        print(f"mcl: inflation={args.inflation} -> {result.n_clusters} clusters", file=sys.stderr)
    elif args.algorithm == "gmm":
        clustering = gmm_clustering(graph, args.k, seed=args.seed)
    elif args.algorithm == "kpt":
        clustering = kpt_clustering(graph, seed=args.seed)
        print(f"kpt: {clustering.k} clusters", file=sys.stderr)
    else:  # pragma: no cover - argparse restricts choices
        raise ReproError(f"unknown algorithm {args.algorithm}")

    total_s = time.perf_counter() - started
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            _write_clustering(clustering, graph, handle)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        _write_clustering(clustering, graph, sys.stdout)
    if args.profile:
        _print_profile(total_s, oracle)
    return 0


def _cmd_kclustering(args) -> int:
    """Shared runner of the ``kmedian`` / ``kcenter`` subcommands."""
    graph = read_uncertain_graph(args.graph, merge=args.merge)
    run = kmedian_clustering if args.command == "kmedian" else kcenter_clustering
    result = run(
        graph, args.k, seed=args.seed, samples=args.samples,
        backend=args.backend, workers=args.workers, cache_dir=args.world_cache,
    )
    aggregate = "mean" if args.command == "kmedian" else "max"
    print(
        f"{args.command}: k={args.k} {aggregate}-expected-distance~="
        f"{result.objective:.3f} [{result.samples_used} worlds]",
        file=sys.stderr,
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            _write_clustering(result.clustering, graph, handle)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        _write_clustering(result.clustering, graph, sys.stdout)
    return 0


def _cmd_centrality(args) -> int:
    graph = read_uncertain_graph(args.graph, merge=args.merge)
    result = expected_centrality(
        graph, measure=args.measure, seed=args.seed, samples=args.samples,
        tol=args.tol, backend=args.backend, workers=args.workers,
        cache_dir=args.world_cache,
    )
    status = "converged" if result.converged else "budget exhausted"
    print(
        f"centrality: measure={args.measure} half-width~={result.half_width:.4f} "
        f"({status}, {result.samples_used} worlds, {result.n_rounds} rounds)",
        file=sys.stderr,
    )

    def write_values(stream):
        labels = graph.node_labels
        stream.write("node\tvalue\n")
        for node, value in enumerate(result.values):
            stream.write(f"{labels[node]}\t{value:.6g}\n")

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            write_values(handle)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        write_values(sys.stdout)
    return 0


def _format_bytes(n_bytes: int) -> str:
    value = float(n_bytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024
    return f"{int(value)}B"  # pragma: no cover - loop always returns


def _cmd_cache_info(args) -> int:
    store = WorldStore(args.dir)
    pools = store.info()
    if not pools:
        print(f"{args.dir}: no cached pools")
        return 0
    print("digest        worlds   nodes   edges  backend     chunk  masks      labels")
    total_masks = total_labels = 0
    for pool in pools:
        total_masks += pool.mask_bytes
        total_labels += pool.label_bytes
        print(
            f"{pool.digest[:12]}  {pool.n_worlds:>6}  {pool.n_nodes:>6}  "
            f"{pool.n_edges:>6}  {pool.backend:<10}  {pool.chunk_size:>5}  "
            f"{_format_bytes(pool.mask_bytes):<9}  {_format_bytes(pool.label_bytes)}"
        )
    print(
        f"{len(pools)} pool(s), {_format_bytes(total_masks)} packed masks, "
        f"{_format_bytes(total_labels)} labels"
    )
    return 0


def _cmd_cache_clear(args) -> int:
    store = WorldStore(args.dir)
    if args.digest:
        matches = [pool.digest for pool in store.info() if pool.digest.startswith(args.digest)]
        if not matches:
            print(f"error: no cached pool matches digest {args.digest!r}", file=sys.stderr)
            return 2
        removed = sum(store.clear(digest) for digest in matches)
    else:
        removed = store.clear()
    print(f"removed {removed} pool(s) from {args.dir}", file=sys.stderr)
    return 0


def _cmd_mutate(args) -> int:
    """Apply edge mutations to a .uel graph, optionally migrating pools."""
    from repro.sampling.deltas import derive_pool

    graph = read_uncertain_graph(args.graph, merge=args.merge)

    def label(token):
        # Same two-way resolution as `repro estimate`: a token is a
        # label as-typed, or its int coercion for integer-labeled nodes.
        return token if token in graph.node_labels else _coerce(token)

    def probability(token):
        try:
            return float(token)
        except ValueError:
            raise ReproError(f"probability {token!r} is not a number") from None

    add = [(label(u), label(v), probability(p)) for u, v, p in (args.add or [])]
    remove = [(label(u), label(v)) for u, v in (args.remove or [])]
    update = [(label(u), label(v), probability(p)) for u, v, p in (args.update or [])]
    if not (add or remove or update):
        print("error: no mutation ops given (--add/--remove/--update)", file=sys.stderr)
        return 2
    mutated, delta = graph.mutate(add=add, remove=remove, update=update)
    output = args.output or args.graph
    write_uncertain_graph(
        mutated, output,
        header=f"mutated from {args.graph}: "
        + " ".join(f"{k}={c}" for k, c in delta.summary().items() if c),
    )
    counts = delta.summary()
    print(
        f"wrote {output}: {mutated.n_nodes} nodes, {mutated.n_edges} edges "
        f"(+{counts['added']} -{counts['removed']} ~{counts['updated']} edges, "
        f"revision {graph.revision} -> {mutated.revision})",
        file=sys.stderr,
    )
    if args.world_cache:
        # Derive against the graph as *re-read* from the written file:
        # .uel text is the durable identity (probabilities round-trip
        # through %.10g), so pools must be keyed to what later runs
        # will parse, not to the in-memory float values.
        reread = read_uncertain_graph(output, merge=args.merge)
        store = WorldStore(args.world_cache)
        result = derive_pool(
            store, graph, reread,
            seed=args.seed, backend=args.backend, chunk_size=args.chunk_size,
        )
        if result is None or result.worlds_derived == 0:
            print(
                f"world cache {args.world_cache}: no parent pool for "
                f"(seed={args.seed}, backend={args.backend}, chunk={args.chunk_size}) "
                "- the next run samples cold",
                file=sys.stderr,
            )
        else:
            print(
                f"world cache {args.world_cache}: derived {result.worlds_derived} worlds "
                f"({result.worlds_repaired} relabeled, "
                f"{result.columns_resampled} columns resampled"
                + ("" if result.complete else "; incomplete - remainder samples cold")
                + ")",
                file=sys.stderr,
            )
    return 0


def _cmd_generate(args) -> int:
    graph, complexes = load_dataset(args.dataset, seed=args.seed, scale=args.scale, dblp_authors=args.dblp_authors)
    write_uncertain_graph(graph, args.output, header=f"{args.dataset} (seed={args.seed}, scale={args.scale})")
    message = f"wrote {args.output}: {graph.n_nodes} nodes, {graph.n_edges} edges"
    if complexes is not None:
        message += f", {len(complexes)} planted complexes"
    print(message, file=sys.stderr)
    return 0


def _cmd_serve(args) -> int:
    """Run the async clustering service until shutdown."""
    from repro.service import ClusterService, serve
    from repro.service.admission import AdmissionControl

    preloaded = []
    for spec in args.graph or ():
        path, sep, name = spec.partition(":")
        if not sep:
            name = path.rsplit("/", 1)[-1].removesuffix(".uel")
        preloaded.append((name, path, read_uncertain_graph(path, merge=args.merge)))
    admission = AdmissionControl(
        rate_limit=args.rate_limit,
        max_queued=args.max_queued if args.max_queued > 0 else None,
        max_jobs_per_client=(
            args.max_jobs_per_client if args.max_jobs_per_client > 0 else None
        ),
    )
    service = ClusterService(
        world_cache=args.world_cache,
        cache_bytes=args.cache_bytes,
        job_workers=args.job_threads,
        worker_processes=args.workers,
        sampling_workers=args.sampling_workers,
        admission=admission,
        shutdown_grace_s=args.grace,
        dataset_scale=args.dataset_scale,
        trace_log=args.trace_log,
    )
    for name, path, graph in preloaded:
        service.graphs.register_graph(name, graph, source=path)
        print(
            f"registered graph {name!r}: {graph.n_nodes} nodes, {graph.n_edges} edges",
            file=sys.stderr,
        )
    return serve(service, host=args.host, port=args.port)


def _cmd_bench_serve(args) -> int:
    """Load-generate against a running service; write BENCH_service.json."""
    import asyncio

    from repro.service.loadgen import (
        run_burst,
        run_load,
        run_mixed_load,
        scrape_metrics,
        summarize,
        write_artifact,
    )

    async def measure():
        results = await run_load(
            args.url,
            graph=args.graph,
            algorithm=args.algorithm,
            k=args.k,
            samples=args.samples,
            seed=args.seed,
            duration=args.duration,
            concurrency=args.concurrency,
            upload=args.upload,
            u=args.u,
            v=args.v,
        )
        if args.mixed_jobs > 0:
            results["mixed"] = await run_mixed_load(
                args.url, graph=args.graph, k=args.k, samples=args.samples,
                seed=args.seed, jobs=args.mixed_jobs,
                concurrency=args.concurrency, u=args.u, v=args.v,
            )
        if args.burst > 0:
            results["burst"] = await run_burst(
                args.url, graph=args.graph, count=args.burst, k=args.k,
                seed=args.seed,
            )
        # Scrape last so the snapshot reflects the whole run.
        results["metrics"] = await scrape_metrics(args.url)
        return results

    results = asyncio.run(measure())
    print(summarize(results))
    if args.output:
        write_artifact(results, args.output)
        print(f"wrote {args.output}", file=sys.stderr)
    if args.require_429:
        burst = results.get("burst")
        if not burst or burst["rejected_429"] < 1 or not burst["retry_after_present"]:
            print(
                "bench-serve: --require-429 failed: burst produced no 429 "
                f"with Retry-After ({burst})",
                file=sys.stderr,
            )
            return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro`` argument parser (all subcommands attached).

    Examples
    --------
    >>> parser = build_parser()
    >>> sorted(parser.parse_args(["stats", "g.uel"]).__dict__)[:2]
    ['command', 'func']
    """
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    stats = sub.add_parser("stats", help="print statistics of a .uel graph")
    stats.add_argument("graph")
    stats.add_argument("--merge", default="error", help="duplicate-edge policy")
    stats.set_defaults(func=_cmd_stats)

    estimate = sub.add_parser("estimate", help="estimate a connection probability")
    estimate.add_argument("graph")
    estimate.add_argument("u")
    estimate.add_argument("v")
    estimate.add_argument("--samples", type=int, default=2000)
    estimate.add_argument("--depth", type=int, default=None)
    estimate.add_argument("--seed", type=int, default=0)
    estimate.add_argument("--merge", default="error")
    estimate.add_argument(
        "--backend", choices=BACKEND_NAMES, default="auto",
        help="world-labeling backend (auto picks by graph size)",
    )
    estimate.add_argument(
        "--workers", type=_parse_workers, default="auto", metavar="N|auto",
        help="sampling worker processes (auto = min(cpu count, chunk heuristic); "
        "1 forces the serial path; results are identical either way)",
    )
    estimate.add_argument(
        "--world-cache", default=None, metavar="DIR",
        help="persistent world-store directory: sampled pools are reused "
        "across runs with the same (graph, seed, backend, chunk size)",
    )
    estimate.add_argument(
        "--profile", action="store_true",
        help="print the phase breakdown (sample/label/store read/cluster "
        "wall ms, worlds sampled vs reused) after the estimate",
    )
    estimate.set_defaults(func=_cmd_estimate)

    cluster = sub.add_parser("cluster", help="cluster a .uel graph")
    cluster.add_argument("graph")
    cluster.add_argument("--algorithm", choices=_CLUSTER_ALGORITHMS, default="mcp")
    cluster.add_argument("--k", type=int, default=10, help="clusters (mcp/acp/gmm)")
    cluster.add_argument("--depth", type=int, default=None, help="path-length limit (mcp/acp)")
    cluster.add_argument("--inflation", type=float, default=2.0, help="mcl granularity")
    cluster.add_argument("--samples", type=int, default=1000, help="Monte Carlo budget")
    cluster.add_argument(
        "--backend", choices=BACKEND_NAMES, default="auto",
        help="world-labeling backend for mcp/acp (auto picks by graph size)",
    )
    cluster.add_argument(
        "--workers", type=_parse_workers, default="auto", metavar="N|auto",
        help="sampling worker processes for mcp/acp (auto = min(cpu count, "
        "chunk heuristic); 1 forces the serial path)",
    )
    cluster.add_argument(
        "--world-cache", default=None, metavar="DIR",
        help="persistent world-store directory for mcp/acp: sampled pools are "
        "reused across runs with the same (graph, seed, backend, chunk size)",
    )
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument("--merge", default="error")
    cluster.add_argument("-o", "--output", default=None, help="write TSV here (default stdout)")
    cluster.add_argument(
        "--profile", action="store_true",
        help="print the phase breakdown (sample/label/store read/cluster "
        "wall ms, worlds sampled vs reused) after clustering",
    )
    cluster.set_defaults(func=_cmd_cluster)

    for kind, objective in (("kmedian", "mean"), ("kcenter", "max")):
        workload = sub.add_parser(
            kind,
            help=f"probabilistic {kind[1:]} clustering ({objective} expected "
            "hop distance over sampled worlds)",
        )
        workload.add_argument("graph")
        workload.add_argument("--k", type=int, default=10, help="number of clusters")
        workload.add_argument(
            "--samples", type=int, default=1000,
            help="worlds the expected distances are estimated over",
        )
        workload.add_argument("--seed", type=int, default=0)
        workload.add_argument(
            "--backend", choices=BACKEND_NAMES, default="auto",
            help="world-labeling backend (results are identical across backends)",
        )
        workload.add_argument(
            "--workers", type=_parse_workers, default="auto", metavar="N|auto",
            help="sampling worker processes (results are identical either way)",
        )
        workload.add_argument(
            "--world-cache", default=None, metavar="DIR",
            help="persistent world-store directory; the pool is shared with "
            "every other workload of the same (graph, seed, backend, chunk size)",
        )
        workload.add_argument("--merge", default="error", help="duplicate-edge policy")
        workload.add_argument(
            "-o", "--output", default=None, help="write TSV here (default stdout)"
        )
        workload.set_defaults(func=_cmd_kclustering)

    centrality = sub.add_parser(
        "centrality",
        help="expected per-node centrality over sampled worlds "
        "(progressive sampling with confidence stopping)",
    )
    centrality.add_argument("graph")
    centrality.add_argument(
        "--measure", choices=MEASURE_NAMES, default="degree",
        help="centrality measure to estimate",
    )
    centrality.add_argument(
        "--samples", type=int, default=2000, help="sample budget (worlds)"
    )
    centrality.add_argument(
        "--tol", type=float, default=0.05,
        help="stop once every node's 95%% confidence half-width is below this",
    )
    centrality.add_argument("--seed", type=int, default=0)
    centrality.add_argument(
        "--backend", choices=BACKEND_NAMES, default="auto",
        help="world-labeling backend (results are identical across backends)",
    )
    centrality.add_argument(
        "--workers", type=_parse_workers, default="auto", metavar="N|auto",
        help="sampling worker processes (results are identical either way)",
    )
    centrality.add_argument(
        "--world-cache", default=None, metavar="DIR",
        help="persistent world-store directory; the pool is shared with "
        "every other workload of the same (graph, seed, backend, chunk size)",
    )
    centrality.add_argument("--merge", default="error", help="duplicate-edge policy")
    centrality.add_argument(
        "-o", "--output", default=None,
        help="write TSV node/value pairs here (default stdout)",
    )
    centrality.set_defaults(func=_cmd_centrality)

    mutate = sub.add_parser(
        "mutate",
        help="apply edge mutations to a .uel graph (and migrate cached world pools)",
    )
    mutate.add_argument("graph", help="input .uel graph")
    mutate.add_argument(
        "--add", action="append", nargs=3, metavar=("U", "V", "P"),
        help="add edge U-V with probability P (repeatable)",
    )
    mutate.add_argument(
        "--remove", action="append", nargs=2, metavar=("U", "V"),
        help="remove edge U-V (repeatable)",
    )
    mutate.add_argument(
        "--update", action="append", nargs=3, metavar=("U", "V", "P"),
        help="set edge U-V's probability to P (repeatable)",
    )
    mutate.add_argument(
        "-o", "--output", default=None,
        help="write the mutated graph here (default: overwrite the input)",
    )
    mutate.add_argument("--merge", default="error", help="duplicate-edge policy")
    mutate.add_argument(
        "--world-cache", default=None, metavar="DIR",
        help="derive the mutated graph's cached world pool from the input "
        "graph's instead of leaving the next run cold; --seed/--backend/"
        "--chunk-size must match the run that filled the cache",
    )
    mutate.add_argument("--seed", type=int, default=0)
    mutate.add_argument(
        "--backend", choices=BACKEND_NAMES, default="auto",
        help="world-labeling backend of the cached pool",
    )
    mutate.add_argument(
        "--chunk-size", type=int, default=512,
        help="oracle chunk size of the cached pool",
    )
    mutate.set_defaults(func=_cmd_mutate)

    generate = sub.add_parser("generate", help="generate a synthetic dataset")
    generate.add_argument("dataset", choices=DATASET_NAMES)
    generate.add_argument("-o", "--output", required=True)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--scale", type=float, default=1.0)
    generate.add_argument("--dblp-authors", type=int, default=20_000)
    generate.set_defaults(func=_cmd_generate)

    cache = sub.add_parser("cache", help="inspect or clear a world-store cache directory")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_info = cache_sub.add_parser("info", help="list cached pools and their sizes")
    cache_info.add_argument("dir", help="world-cache directory (as passed to --world-cache)")
    cache_info.set_defaults(func=_cmd_cache_info)
    cache_clear = cache_sub.add_parser("clear", help="delete cached pools")
    cache_clear.add_argument("dir", help="world-cache directory (as passed to --world-cache)")
    cache_clear.add_argument(
        "--digest", default=None,
        help="remove only pools whose digest starts with this prefix (default: all)",
    )
    cache_clear.set_defaults(func=_cmd_cache_clear)

    serve = sub.add_parser(
        "serve", help="run the async clustering service (HTTP/JSON API)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8722)
    serve.add_argument(
        "--world-cache", default=None, metavar="DIR",
        help="persist the service's world pools to this directory "
        "(default: in-memory only)",
    )
    serve.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="clustering worker processes; 0 runs jobs on in-process "
        "executor threads instead (see --job-threads)",
    )
    serve.add_argument(
        "--job-threads", type=int, default=2, metavar="N",
        help="executor threads for in-process jobs (only with --workers 0)",
    )
    serve.add_argument(
        "--grace", type=float, default=5.0, metavar="SECONDS",
        help="default drain grace period of POST /v1/shutdown",
    )
    serve.add_argument(
        "--max-queued", type=int, default=64, metavar="N",
        help="queued-job bound before submissions get 429 + Retry-After "
        "(0 disables)",
    )
    serve.add_argument(
        "--max-jobs-per-client", type=int, default=32, metavar="N",
        help="non-terminal jobs one client may hold (0 disables)",
    )
    serve.add_argument(
        "--rate-limit", type=float, default=None, metavar="RPS",
        help="per-client token-bucket rate limit in requests/second "
        "(default: unlimited)",
    )
    serve.add_argument(
        "--sampling-workers", type=_parse_workers, default=1, metavar="N|auto",
        help="sampling worker processes per oracle (results are identical "
        "under any value)",
    )
    serve.add_argument(
        "--cache-bytes", type=int, default=256 << 20, metavar="BYTES",
        help="LRU byte budget of the oracle cache (packed masks + labels)",
    )
    serve.add_argument(
        "--graph", action="append", default=None, metavar="PATH[:NAME]",
        help="pre-register a .uel graph at startup (repeatable); NAME "
        "defaults to the file stem",
    )
    serve.add_argument(
        "--dataset-scale", type=float, default=1.0,
        help="scale used when a built-in dataset is first loaded",
    )
    serve.add_argument("--merge", default="error", help="duplicate-edge policy for --graph files")
    serve.add_argument(
        "--trace-log", default=None, metavar="PATH",
        help="append one JSON span line per traced operation (HTTP "
        "requests, jobs, threshold guesses) to this file; spans carry "
        "the request's X-Request-Id as trace_id",
    )
    serve.set_defaults(func=_cmd_serve)

    bench_serve = sub.add_parser(
        "bench-serve", help="load-generate against a running clustering service"
    )
    bench_serve.add_argument("url", help="service base URL, e.g. http://127.0.0.1:8722")
    bench_serve.add_argument("--graph", required=True, help="registered graph name to hit")
    bench_serve.add_argument(
        "--upload", default=None, metavar="PATH",
        help="upload this .uel file under --graph before measuring",
    )
    bench_serve.add_argument("--algorithm", choices=("mcp", "acp"), default="mcp")
    bench_serve.add_argument("--k", type=int, default=4)
    bench_serve.add_argument("--samples", type=int, default=500)
    bench_serve.add_argument("--seed", type=int, default=0)
    bench_serve.add_argument("--duration", type=float, default=3.0,
                             help="sustained-load phase length in seconds")
    bench_serve.add_argument("--concurrency", type=int, default=4,
                             help="concurrent keep-alive connections")
    bench_serve.add_argument("--u", default="0", help="estimate endpoint node u")
    bench_serve.add_argument("--v", default="1", help="estimate endpoint node v")
    bench_serve.add_argument(
        "--mixed-jobs", type=int, default=0, metavar="N",
        help="also run a mixed cold/warm/mutate phase of N jobs and "
        "record its throughput",
    )
    bench_serve.add_argument(
        "--burst", type=int, default=0, metavar="N",
        help="also burst N distinct submissions to probe admission "
        "control (expects 429s when N exceeds the queue bound)",
    )
    bench_serve.add_argument(
        "--require-429", action="store_true",
        help="fail unless the --burst phase observed at least one 429 "
        "with Retry-After",
    )
    bench_serve.add_argument(
        "-o", "--output", default=None, metavar="PATH",
        help="write a schema-1 BENCH_service.json artifact here",
    )
    bench_serve.set_defaults(func=_cmd_bench_serve)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code (0 ok, 2 usage/error)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
