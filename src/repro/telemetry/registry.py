"""Dependency-free metrics registry with Prometheus text exposition.

The service needs fleet-wide visibility into where worlds, bytes, and
milliseconds go (sampling dominates the paper's cost model), but the
repo is deliberately dependency-free — so this module implements the
small slice of a metrics client that the repro stack actually uses:

* **Counter** — monotone float total, optionally labeled.
* **Gauge** — instantaneous float value, optionally labeled.
* **Histogram** — fixed upper-bound buckets plus ``_sum``/``_count``;
  bucket edges are pinned at family creation and never change.
* **Label cardinality cap** — each family accepts at most
  ``max_label_sets`` distinct label-value tuples; later tuples are
  deterministically folded into a single overflow series whose every
  label value is ``"other"``.  First-come label sets win, so a scrape
  can never explode because a client sent unbounded label values.
* **Cross-process aggregation** — :meth:`MetricsRegistry.take_delta`
  snapshots the registry and returns only the movement since the last
  call (counters and histograms; gauges are process-local), and
  :meth:`MetricsRegistry.merge_delta` folds such a delta — shipped
  over the service's existing worker event queue — into the parent
  registry so ``GET /v1/metrics`` reflects the whole fleet.
* **Collectors** — callbacks invoked at snapshot/render time, used to
  mirror an authoritative stats source (e.g. ``OracleCache.stats()``)
  into metric series through one code path so the two views cannot
  drift.

Everything is guarded by one registry lock; the hot path (a labeled
counter ``inc``) is a dict lookup plus a float add, cheap enough to
leave on unconditionally.

>>> reg = MetricsRegistry()
>>> c = reg.counter("repro_demo_total", "Demo counter.", ("kind",))
>>> c.labels(kind="a").inc()
>>> c.labels(kind="a").inc(2.0)
>>> reg.value("repro_demo_total", {"kind": "a"})
3.0
>>> "repro_demo_total{kind=\\"a\\"} 3" in reg.render()
True
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "DEFAULT_MAX_LABEL_SETS",
    "OVERFLOW_LABEL",
]

#: Default histogram upper bounds (seconds) — tuned for request / job
#: latencies from sub-millisecond cache hits to multi-second clustering.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default per-family cap on distinct label-value tuples.
DEFAULT_MAX_LABEL_SETS = 64

#: Label value that absorbs series beyond the cardinality cap.
OVERFLOW_LABEL = "other"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    as_int = int(value)
    if float(as_int) == value:
        return str(as_int)
    return repr(value)


def _label_suffix(labelnames: Sequence[str], labelvalues: Sequence[str],
                  extra: tuple[str, str] | None = None) -> str:
    pairs = [(n, v) for n, v in zip(labelnames, labelvalues)]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{n}="{_escape_label(str(v))}"' for n, v in pairs)
    return "{" + body + "}"


class _CounterChild:
    """One labeled series of a counter family."""

    __slots__ = ("_family", "value")

    def __init__(self, family: "Counter") -> None:
        self._family = family
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._family._registry._lock:
            self.value += amount

    def set_total(self, value: float) -> None:
        """Overwrite the running total (collector mirroring only)."""
        with self._family._registry._lock:
            self.value = float(value)


class _GaugeChild:
    __slots__ = ("_family", "value")

    def __init__(self, family: "Gauge") -> None:
        self._family = family
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._family._registry._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._family._registry._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class _HistogramChild:
    __slots__ = ("_family", "counts", "sum", "count")

    def __init__(self, family: "Histogram") -> None:
        self._family = family
        self.counts = [0] * (len(family.buckets) + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        idx = bisect_left(self._family.buckets, value)
        with self._family._registry._lock:
            self.counts[idx] += 1
            self.sum += value
            self.count += 1


class _Family:
    """Shared machinery: child cache keyed by label values, with cap."""

    kind = "untyped"
    _child_cls: type = object

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 labelnames: Sequence[str], max_label_sets: int,
                 local_only: bool = False) -> None:
        self._registry = registry
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.max_label_sets = max_label_sets
        self.local_only = local_only
        self._children: dict[tuple[str, ...], object] = {}
        if not self.labelnames:
            self._children[()] = self._child_cls(self)

    def labels(self, **labelvalues: object):
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is not None:
            return child
        with self._registry._lock:
            child = self._children.get(key)
            if child is not None:
                return child
            overflow_key = (OVERFLOW_LABEL,) * len(self.labelnames)
            if (len(self._children) >= self.max_label_sets
                    and key != overflow_key):
                key = overflow_key
                child = self._children.get(key)
                if child is not None:
                    return child
            child = self._child_cls(self)
            self._children[key] = child
            return child

    def _unlabeled(self):
        if self.labelnames:
            raise ValueError(f"{self.name} is labeled; use .labels()")
        return self._children[()]


class Counter(_Family):
    kind = "counter"
    _child_cls = _CounterChild

    def inc(self, amount: float = 1.0) -> None:
        self._unlabeled().inc(amount)

    def set_total(self, value: float) -> None:
        self._unlabeled().set_total(value)


class Gauge(_Family):
    kind = "gauge"
    _child_cls = _GaugeChild

    def set(self, value: float) -> None:
        self._unlabeled().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._unlabeled().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._unlabeled().dec(amount)


class Histogram(_Family):
    kind = "histogram"
    _child_cls = _HistogramChild

    def __init__(self, registry, name, help, labelnames, max_label_sets,
                 local_only: bool = False, *,
                 buckets: Sequence[float]) -> None:
        edges = tuple(float(b) for b in buckets)
        if list(edges) != sorted(set(edges)):
            raise ValueError("histogram buckets must be sorted and unique")
        self.buckets = edges
        super().__init__(registry, name, help, labelnames, max_label_sets,
                         local_only)

    def observe(self, value: float) -> None:
        self._unlabeled().observe(value)


class MetricsRegistry:
    """A process-local family store that can render, diff, and merge.

    >>> reg = MetricsRegistry()
    >>> h = reg.histogram("repro_demo_seconds", "Demo.", buckets=(0.1, 1.0))
    >>> h.observe(0.05); h.observe(5.0)
    >>> snap = reg.snapshot()
    >>> snap["histograms"]["repro_demo_seconds"][()]["count"]
    2
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: dict[str, _Family] = {}
        self._collectors: list[Callable[[], None]] = []
        # Cumulative totals already shipped via take_delta().
        self._shipped: dict[tuple[str, tuple[str, ...]], object] = {}
        # Fleet deltas folded in via merge_delta(), keyed by source id.
        self._merged_counters: dict[tuple[str, tuple[str, ...]], float] = {}
        self._merged_hists: dict[tuple[str, tuple[str, ...]], dict] = {}

    # -- family constructors ------------------------------------------------

    def _register(self, cls, name: str, help: str, labelnames: Sequence[str],
                  max_label_sets: int, local_only: bool = False,
                  **kwargs) -> _Family:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                    raise ValueError(f"metric {name!r} re-registered with a different shape")
                return existing
            family = cls(self, name, help, labelnames, max_label_sets,
                         local_only, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str, labelnames: Sequence[str] = (),
                *, max_label_sets: int = DEFAULT_MAX_LABEL_SETS,
                local_only: bool = False) -> Counter:
        """``local_only`` families are excluded from :meth:`take_delta` —
        use it for series mirrored from an authoritative per-process
        source (e.g. cache stats), which must not be fleet-summed."""
        return self._register(Counter, name, help, labelnames,
                              max_label_sets, local_only)

    def gauge(self, name: str, help: str, labelnames: Sequence[str] = (),
              *, max_label_sets: int = DEFAULT_MAX_LABEL_SETS) -> Gauge:
        return self._register(Gauge, name, help, labelnames, max_label_sets)

    def histogram(self, name: str, help: str, labelnames: Sequence[str] = (),
                  *, buckets: Sequence[float] = DEFAULT_BUCKETS,
                  max_label_sets: int = DEFAULT_MAX_LABEL_SETS) -> Histogram:
        return self._register(Histogram, name, help, labelnames,
                              max_label_sets, buckets=buckets)

    # -- collectors ---------------------------------------------------------

    def register_collector(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` before every snapshot/render/delta.

        Collectors mirror an authoritative source (e.g. cache stats)
        into series via ``set_total``/``set`` so scrape output and the
        source endpoint share one code path.
        """
        with self._lock:
            self._collectors.append(fn)

    def _collect(self) -> None:
        for fn in list(self._collectors):
            fn()

    # -- reading ------------------------------------------------------------

    def value(self, name: str, labels: Mapping[str, str] | None = None) -> float:
        """Current value of one counter/gauge series (fleet-merged)."""
        self._collect()
        family = self._families[name]
        key = tuple(str((labels or {})[n]) for n in family.labelnames)
        with self._lock:
            child = family._children.get(key)
            local = child.value if child is not None else 0.0
            if isinstance(family, Counter):
                local += self._merged_counters.get((name, key), 0.0)
            return local

    def histogram_value(self, name: str, labels: Mapping[str, str] | None = None) -> dict:
        """``{"count": n, "sum": s}`` for one histogram series (fleet-merged)."""
        self._collect()
        family = self._families[name]
        key = tuple(str((labels or {})[n]) for n in family.labelnames)
        with self._lock:
            count, total = 0, 0.0
            child = family._children.get(key)
            if child is not None:
                count, total = child.count, child.sum
            merged = self._merged_hists.get((name, key))
            if merged is not None:
                count += merged["count"]
                total += merged["sum"]
            return {"count": count, "sum": total}

    def snapshot(self) -> dict:
        """Plain-dict view: ``{"counters": .., "gauges": .., "histograms": ..}``.

        Counter and histogram series include fleet deltas merged from
        workers; gauges are process-local.
        """
        self._collect()
        with self._lock:
            counters: dict[str, dict] = {}
            gauges: dict[str, dict] = {}
            hists: dict[str, dict] = {}
            for name, family in self._families.items():
                if isinstance(family, Counter):
                    out = counters.setdefault(name, {})
                    for key, child in family._children.items():
                        out[key] = child.value + self._merged_counters.get((name, key), 0.0)
                    for (mname, key), value in self._merged_counters.items():
                        if mname == name and key not in out:
                            out[key] = value
                elif isinstance(family, Gauge):
                    gauges[name] = {k: c.value for k, c in family._children.items()}
                elif isinstance(family, Histogram):
                    out = hists.setdefault(name, {})
                    for key, child in family._children.items():
                        out[key] = {"buckets": list(child.counts),
                                    "sum": child.sum, "count": child.count}
                    for (mname, key), merged in self._merged_hists.items():
                        if mname != name:
                            continue
                        cell = out.get(key)
                        if cell is None:
                            out[key] = {"buckets": list(merged["buckets"]),
                                        "sum": merged["sum"], "count": merged["count"]}
                        else:
                            cell["buckets"] = [a + b for a, b in
                                               zip(cell["buckets"], merged["buckets"])]
                            cell["sum"] += merged["sum"]
                            cell["count"] += merged["count"]
            return {"counters": counters, "gauges": gauges, "histograms": hists}

    # -- Prometheus text ----------------------------------------------------

    def render(self) -> str:
        """Prometheus text exposition (version 0.0.4) of every family."""
        snap = self.snapshot()
        lines: list[str] = []
        with self._lock:
            families = dict(self._families)
        for name in sorted(families):
            family = families[name]
            lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            if isinstance(family, Histogram):
                for key in sorted(snap["histograms"].get(name, {})):
                    cell = snap["histograms"][name][key]
                    cumulative = 0
                    for edge, bucket_count in zip(
                            (*family.buckets, float("inf")), cell["buckets"]):
                        cumulative += bucket_count
                        suffix = _label_suffix(family.labelnames, key,
                                               ("le", _format_value(edge)))
                        lines.append(f"{name}_bucket{suffix} {cumulative}")
                    suffix = _label_suffix(family.labelnames, key)
                    lines.append(f"{name}_sum{suffix} {_format_value(cell['sum'])}")
                    lines.append(f"{name}_count{suffix} {cell['count']}")
            else:
                table = (snap["counters"] if isinstance(family, Counter)
                         else snap["gauges"]).get(name, {})
                for key in sorted(table):
                    suffix = _label_suffix(family.labelnames, key)
                    lines.append(f"{name}{suffix} {_format_value(table[key])}")
        return "\n".join(lines) + "\n"

    # -- cross-process shipping --------------------------------------------

    def take_delta(self) -> dict:
        """Movement in counters/histograms since the previous call.

        The returned dict is self-describing (family shape rides along)
        so a receiving registry can merge it without having imported
        the modules that defined the families.  Gauges are excluded —
        they are instantaneous and process-local.
        """
        self._collect()
        delta: dict = {"counters": {}, "histograms": {}}
        with self._lock:
            for name, family in self._families.items():
                if family.local_only:
                    continue
                if isinstance(family, Counter):
                    for key, child in family._children.items():
                        shipped = self._shipped.get((name, key), 0.0)
                        moved = child.value - shipped
                        if moved:
                            delta["counters"].setdefault(name, {
                                "help": family.help,
                                "labelnames": family.labelnames,
                                "series": {},
                            })["series"][key] = moved
                            self._shipped[(name, key)] = child.value
                elif isinstance(family, Histogram):
                    for key, child in family._children.items():
                        shipped = self._shipped.get((name, key))
                        if shipped is None:
                            shipped = {"buckets": [0] * len(child.counts),
                                       "sum": 0.0, "count": 0}
                        moved_count = child.count - shipped["count"]
                        if not moved_count:
                            continue
                        delta["histograms"].setdefault(name, {
                            "help": family.help,
                            "labelnames": family.labelnames,
                            "buckets": family.buckets,
                            "series": {},
                        })["series"][key] = {
                            "buckets": [a - b for a, b in
                                        zip(child.counts, shipped["buckets"])],
                            "sum": child.sum - shipped["sum"],
                            "count": moved_count,
                        }
                        self._shipped[(name, key)] = {
                            "buckets": list(child.counts),
                            "sum": child.sum, "count": child.count,
                        }
        return delta

    def merge_delta(self, delta: Mapping) -> None:
        """Fold a :meth:`take_delta` payload from another process in."""
        with self._lock:
            for name, info in delta.get("counters", {}).items():
                if name not in self._families:
                    self._register(Counter, name, info["help"],
                                   info["labelnames"], DEFAULT_MAX_LABEL_SETS)
                for key, moved in info["series"].items():
                    key = tuple(key)
                    self._merged_counters[(name, key)] = (
                        self._merged_counters.get((name, key), 0.0) + moved)
            for name, info in delta.get("histograms", {}).items():
                if name not in self._families:
                    self._register(Histogram, name, info["help"],
                                   info["labelnames"], DEFAULT_MAX_LABEL_SETS,
                                   buckets=info["buckets"])
                for key, moved in info["series"].items():
                    key = tuple(key)
                    cell = self._merged_hists.get((name, key))
                    if cell is None:
                        self._merged_hists[(name, key)] = {
                            "buckets": list(moved["buckets"]),
                            "sum": moved["sum"], "count": moved["count"],
                        }
                    else:
                        cell["buckets"] = [a + b for a, b in
                                           zip(cell["buckets"], moved["buckets"])]
                        cell["sum"] += moved["sum"]
                        cell["count"] += moved["count"]


def parse_prometheus_text(text: str) -> dict[str, float]:
    """Flatten Prometheus text into ``{"name{labels}": value}``.

    Used by loadgen to embed a scrape in ``BENCH_service.json`` and by
    CI smoke checks; comment lines are dropped.

    >>> parse_prometheus_text('# TYPE x counter\\nx{a="b"} 3\\n')
    {'x{a="b"}': 3.0}
    """
    out: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        try:
            out[series] = float(value)
        except ValueError:
            continue
    return out
