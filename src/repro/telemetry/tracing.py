"""Lightweight span tracer writing JSON lines to an optional log.

A *span* is one timed unit of work — an HTTP request, a job, one
threshold guess of a clustering loop, one sampled chunk.  Spans nest
through a :mod:`contextvars` variable, so a span opened inside a job
automatically records the job span as its parent even across the
service's thread pool (each job runs its body under its own context).

The trace id is seeded from the service's existing ``X-Request-Id``
(one trace per request, propagated into the job it submits); outside
the service a fresh id is minted per root span.  Every finished span
appends exactly one JSON line to the configured log file::

    {"trace_id": "req-000001", "span_id": 3, "parent_id": 1,
     "name": "guess", "ts": 1733.021, "dur_ms": 12.4,
     "attrs": {"q": 0.5}}

``ts`` is seconds since the Unix epoch; ``dur_ms`` is wall time.  The
file is opened in append mode and each line is a single ``write``
call, so multiple worker processes can share one log.  When no log is
configured the tracer is a no-op: ``span()`` yields a shared inert
object without taking timestamps, which keeps the hot loops cheap and
— pinned by ``tests/test_telemetry.py`` — bit-identical: tracing never
touches the sampling RNG streams.

>>> t = Tracer()                      # disabled: no sink configured
>>> with t.span("demo") as s:
...     s.set("k", 1)                 # inert, accepted, dropped
>>> t.enabled
False
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
import threading
import time
from contextlib import contextmanager

__all__ = ["Tracer", "Span"]

_current_span: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_current_span", default=None)
_current_trace: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_current_trace", default=None)


class Span:
    """A live span; ``set()`` attaches a JSON-safe attribute."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "attrs",
                 "_started", "_token", "_trace_token")

    def __init__(self, name: str, trace_id: str, span_id: int,
                 parent_id: int | None, attrs: dict) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self._started = time.perf_counter()
        self._token = None
        self._trace_token = None

    def set(self, key: str, value) -> None:
        self.attrs[key] = value


class _NullSpan:
    """Inert stand-in yielded while tracing is disabled."""

    __slots__ = ()

    def set(self, key: str, value) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Writes spans as JSON lines; inert until :meth:`configure` names a file."""

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        self._lock = threading.Lock()
        self._handle = None
        self._path: str | None = None
        self._ids = itertools.count(1)
        if path is not None:
            self.configure(path)

    @property
    def enabled(self) -> bool:
        return self._handle is not None

    @property
    def path(self) -> str | None:
        return self._path

    def configure(self, path: str | os.PathLike | None) -> None:
        """Point the tracer at ``path`` (append), or ``None`` to disable."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
                self._path = None
            if path is not None:
                self._path = os.fspath(path)
                self._handle = open(self._path, "a", encoding="utf-8")

    def close(self) -> None:
        self.configure(None)

    @contextmanager
    def trace(self, trace_id: str):
        """Bind ``trace_id`` (e.g. an ``X-Request-Id``) to this context."""
        token = _current_trace.set(trace_id)
        try:
            yield
        finally:
            _current_trace.reset(token)

    def current_trace_id(self) -> str | None:
        return _current_trace.get()

    @contextmanager
    def span(self, name: str, **attrs):
        """Open a child span of the current one; no-op when disabled."""
        if self._handle is None:
            yield _NULL_SPAN
            return
        parent = _current_span.get()
        trace_id = _current_trace.get()
        if trace_id is None:
            trace_id = f"trace-{os.getpid()}-{next(self._ids):06x}"
        span = Span(name, trace_id, next(self._ids),
                    parent.span_id if parent is not None else None,
                    dict(attrs))
        token = _current_span.set(span)
        trace_token = None
        if _current_trace.get() is None:
            trace_token = _current_trace.set(trace_id)
        started_wall = time.time()
        try:
            yield span
        finally:
            duration_ms = (time.perf_counter() - span._started) * 1000.0
            _current_span.reset(token)
            if trace_token is not None:
                _current_trace.reset(trace_token)
            self._emit(span, started_wall, duration_ms)

    def _emit(self, span: Span, started_wall: float, duration_ms: float) -> None:
        line = json.dumps({
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "name": span.name,
            "ts": round(started_wall, 6),
            "dur_ms": round(duration_ms, 3),
            "attrs": span.attrs,
        }, separators=(",", ":"), default=str)
        with self._lock:
            handle = self._handle
            if handle is None:
                return
            handle.write(line + "\n")
            handle.flush()
