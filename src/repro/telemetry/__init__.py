"""End-to-end telemetry: metrics registry, span tracing, phase timings.

Three small, dependency-free pieces shared by every layer of the stack
(HTTP service, job queue, admission control, oracle cache, world
store, parallel sampler, clustering loops):

* :class:`~repro.telemetry.registry.MetricsRegistry` — counters,
  gauges, and fixed-bucket histograms with a label-cardinality cap,
  Prometheus text rendering, and cross-process delta shipping (the
  machinery behind ``GET /v1/metrics``).
* :class:`~repro.telemetry.tracing.Tracer` — spans as JSON lines to an
  optional ``--trace-log``, nested via ``contextvars``, trace ids
  seeded from ``X-Request-Id``.
* A process-global instance of each, reached through
  :func:`get_registry` / :func:`get_tracer`, so instrumented modules
  never need plumbing to find them.

Invariant (pinned by ``tests/test_telemetry.py``): telemetry never
changes sampled worlds or labels — bit-identity holds with tracing on.

>>> get_registry() is get_registry()
True
>>> get_tracer().enabled        # no trace log configured by default
False
"""

from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_BUCKETS,
    OVERFLOW_LABEL,
    parse_prometheus_text,
)
from repro.telemetry.tracing import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "OVERFLOW_LABEL",
    "Span",
    "Tracer",
    "get_registry",
    "get_tracer",
    "parse_prometheus_text",
]

_REGISTRY = MetricsRegistry()
_TRACER = Tracer()


def get_registry() -> MetricsRegistry:
    """The process-global registry behind ``GET /v1/metrics``."""
    return _REGISTRY


def get_tracer() -> Tracer:
    """The process-global tracer behind ``--trace-log``."""
    return _TRACER
