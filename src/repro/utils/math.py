"""Small numeric helpers used across the clustering algorithms."""

from __future__ import annotations

import math

import numpy as np


def harmonic_number(n: int) -> float:
    """Return the n-th harmonic number ``H(n) = sum_{i=1..n} 1/i``.

    The ACP approximation bound (Theorem 4) is stated in terms of
    ``H(n)``.  For large ``n`` the asymptotic expansion is used, which is
    exact to double precision well before the crossover point.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if n == 0:
        return 0.0
    if n < 256:
        return float(np.sum(1.0 / np.arange(1, n + 1)))
    # Euler-Maclaurin expansion; error is O(n^-6), far below double ulp here.
    euler_gamma = 0.5772156649015328606
    inv = 1.0 / n
    return (
        math.log(n)
        + euler_gamma
        + 0.5 * inv
        - inv**2 / 12.0
        + inv**4 / 120.0
    )


def log_ratio(a: float, b: float) -> float:
    """Return ``log(a / b)`` guarding against zero denominators.

    Used by guessing schedules to bound iteration counts such as
    ``log_{1+gamma}(1 / p_opt)``.
    """
    if a <= 0 or b <= 0:
        raise ValueError(f"log_ratio requires positive arguments, got a={a}, b={b}")
    return math.log(a) - math.log(b)


def num_geometric_guesses(gamma: float, floor: float) -> int:
    """Number of steps for ``q = 1, 1/(1+gamma), ...`` to reach ``floor``."""
    if not 0 < floor <= 1:
        raise ValueError(f"floor must be in (0, 1], got {floor}")
    if gamma <= 0:
        raise ValueError(f"gamma must be positive, got {gamma}")
    if floor == 1.0:
        return 1
    return int(math.floor(log_ratio(1.0, floor) / math.log1p(gamma))) + 1


def connection_distance(probability) -> np.ndarray | float:
    """Map connection probabilities to metric distances ``ln(1/p)``.

    ``p = 0`` maps to ``inf`` as in the paper's Section 2.  Accepts floats
    or numpy arrays.
    """
    p = np.asarray(probability, dtype=float)
    if np.any(p < 0) or np.any(p > 1):
        raise ValueError("connection probabilities must lie in [0, 1]")
    with np.errstate(divide="ignore"):
        d = -np.log(p)
    if np.ndim(probability) == 0:
        return float(d)
    return d
