"""Plain-text table rendering for experiment reports.

The experiment harness prints the same rows/series the paper reports.
This module renders them as aligned monospace tables (GitHub-flavoured
markdown compatible) so reports diff cleanly and read well in terminals.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence


def _format_cell(value, float_format: str) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


class TextTable:
    """Accumulate rows and render them as an aligned markdown table.

    >>> t = TextTable(["graph", "k", "pmin"])
    >>> t.add_row(graph="collins", k=24, pmin=0.356)
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    | graph   | k  | pmin  |
    |---------|----|-------|
    | collins | 24 | 0.356 |
    """

    def __init__(self, columns: Sequence[str], *, float_format: str = ".3f", title: str | None = None):
        if not columns:
            raise ValueError("a table needs at least one column")
        if len(set(columns)) != len(columns):
            raise ValueError(f"duplicate column names in {columns!r}")
        self.columns = list(columns)
        self.float_format = float_format
        self.title = title
        self._rows: list[dict] = []

    def add_row(self, _row: Mapping | None = None, **cells) -> None:
        """Append one row, given as a mapping and/or keyword cells."""
        row = dict(_row) if _row is not None else {}
        row.update(cells)
        unknown = set(row) - set(self.columns)
        if unknown:
            raise ValueError(f"row has unknown columns {sorted(unknown)}; table has {self.columns}")
        self._rows.append(row)

    def extend(self, rows: Iterable[Mapping]) -> None:
        for row in rows:
            self.add_row(row)

    @property
    def rows(self) -> list[dict]:
        """The accumulated rows (copies are not made; treat as read-only)."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def render(self) -> str:
        """Render the table as aligned markdown text."""
        header = list(self.columns)
        body = [
            [_format_cell(row.get(col), self.float_format) for col in header]
            for row in self._rows
        ]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = []
        if self.title:
            lines.append(f"### {self.title}")
            lines.append("")
        lines.append("| " + " | ".join(h.ljust(w) for h, w in zip(header, widths, strict=True)) + " |")
        lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
        for r in body:
            lines.append("| " + " | ".join(c.ljust(w) for c, w in zip(r, widths, strict=True)) + " |")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
