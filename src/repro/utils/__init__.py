"""Shared utilities: RNG plumbing, math helpers and table rendering."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.math import harmonic_number, log_ratio
from repro.utils.tables import TextTable

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "harmonic_number",
    "log_ratio",
    "TextTable",
]
