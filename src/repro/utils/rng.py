"""Random-number-generator plumbing.

Every stochastic component of the library accepts either ``None`` (fresh
entropy), an integer seed, or a ready :class:`numpy.random.Generator`.
Centralizing the coercion here keeps call sites one-liners and makes the
whole pipeline reproducible from a single integer.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | np.random.SeedSequence | None"


def ensure_rng(seed=None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` seed, a
        :class:`numpy.random.SeedSequence`, or an existing ``Generator``
        (returned unchanged so state is shared with the caller).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"expected None, int, SeedSequence or numpy Generator, got {type(seed).__name__}"
    )


def ensure_seed_sequence(seed=None) -> np.random.SeedSequence:
    """Coerce ``seed`` into a root :class:`numpy.random.SeedSequence`.

    Accepts ``None`` (fresh OS entropy), an ``int``, a ready
    ``SeedSequence`` (returned unchanged), or a
    :class:`numpy.random.Generator` — one 63-bit integer is drawn from
    the generator and used as entropy, so the derivation is
    deterministic given the generator's state.  This is the root of the
    sharded per-world streams of :mod:`repro.sampling.parallel`.

    Examples
    --------
    >>> ensure_seed_sequence(7).entropy
    7
    >>> ss = np.random.SeedSequence(5)
    >>> ensure_seed_sequence(ss) is ss
    True
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        return np.random.SeedSequence(int(seed.integers(2**63)))
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.SeedSequence(seed if seed is None else int(seed))
    raise TypeError(
        f"expected None, int, SeedSequence or numpy Generator, got {type(seed).__name__}"
    )


def spawn_rngs(seed, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    Used when an algorithm hands sub-tasks (e.g. repeated runs of an
    experiment) their own stream so that re-ordering sub-tasks does not
    perturb results.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = ensure_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
