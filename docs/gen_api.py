#!/usr/bin/env python
"""Dependency-free API reference generator and docstring validator.

Walks a package (default: ``repro``), imports every module, and renders
one Markdown page per module into an output directory (default:
``docs/api``) — module docstring, then the signature and docstring of
every public class (with its public methods and properties) and every
public function, plus an ``index.md``.

It is also the CI docstring gate: the run **fails** (exit code 1) when

* any module of the package fails to import, or
* any docstring contains a malformed doctest example (the same
  ``doctest.DocTestParser`` errors that would break the CI doctest
  step, caught here with a precise location).

Missing docstrings on public callables are reported as warnings (the
count is printed, the build still succeeds) so coverage is visible
without making every helper a hard failure.

Usage::

    PYTHONPATH=src python docs/gen_api.py            # build into docs/api
    PYTHONPATH=src python docs/gen_api.py --check    # validate only

``make docs`` prefers ``pdoc`` for browsable HTML when it is installed
and always runs this generator for the validation gate and the
committed-artifact-free Markdown reference.
"""

from __future__ import annotations

import argparse
import doctest
import importlib
import inspect
import pkgutil
import sys
from pathlib import Path


def iter_module_names(package_name: str) -> list[str]:
    """All importable module names of ``package_name``, in sorted order."""
    package = importlib.import_module(package_name)
    names = [package_name]
    for info in pkgutil.walk_packages(package.__path__, prefix=package_name + "."):
        names.append(info.name)
    return sorted(names)


def public_members(module) -> list[tuple[str, object]]:
    """Public classes and functions *defined in* ``module`` (no re-exports)."""
    members = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue
        members.append((name, obj))
    members.sort(key=lambda pair: pair[0])
    return members


def check_doctest_syntax(owner: str, docstring: str | None, problems: list[str]) -> None:
    """Append a problem entry when ``docstring`` has malformed examples."""
    if not docstring:
        return
    try:
        doctest.DocTestParser().parse(docstring, owner)
    except ValueError as error:
        problems.append(f"{owner}: docstring syntax error: {error}")


def signature_of(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def render_member(name: str, obj, qualname: str, problems: list[str], warnings: list[str]) -> str:
    """Markdown section for one public class or function."""
    lines = []
    kind = "class" if inspect.isclass(obj) else "function"
    lines.append(f"### `{name}{signature_of(obj)}`\n")
    doc = inspect.getdoc(obj)
    check_doctest_syntax(qualname, doc, problems)
    if doc:
        lines.append(doc + "\n")
    else:
        warnings.append(f"{qualname}: public {kind} has no docstring")
    if inspect.isclass(obj):
        for attr_name, attr in sorted(vars(obj).items()):
            if attr_name.startswith("_"):
                continue
            if isinstance(attr, property):
                doc = inspect.getdoc(attr)
                check_doctest_syntax(f"{qualname}.{attr_name}", doc, problems)
                lines.append(f"- **`{attr_name}`** (property) — {doc or ''}".rstrip() + "\n")
            elif inspect.isfunction(attr):
                doc = inspect.getdoc(attr)
                check_doctest_syntax(f"{qualname}.{attr_name}", doc, problems)
                summary = (doc or "").split("\n\n")[0].replace("\n", " ")
                lines.append(f"- **`{attr_name}{signature_of(attr)}`** — {summary}".rstrip() + "\n")
                if doc and doctest.DocTestParser().get_examples(doc):
                    body = "\n".join(f"  {line}" for line in doc.splitlines())
                    lines.append(body + "\n")
    return "\n".join(lines)


def render_module(module, problems: list[str], warnings: list[str]) -> str:
    lines = [f"# `{module.__name__}`\n"]
    doc = inspect.getdoc(module)
    check_doctest_syntax(module.__name__, doc, problems)
    if doc:
        lines.append(doc + "\n")
    else:
        warnings.append(f"{module.__name__}: module has no docstring")
    members = public_members(module)
    if members:
        lines.append("## API\n")
        for name, obj in members:
            lines.append(render_member(name, obj, f"{module.__name__}.{name}", problems, warnings))
    return "\n".join(lines) + "\n"


def build(package_name: str, out_dir: Path | None) -> int:
    problems: list[str] = []
    warnings: list[str] = []
    pages: dict[str, str] = {}
    try:
        module_names = iter_module_names(package_name)
    except Exception as error:  # the package itself failed to import
        print(f"FATAL: cannot import {package_name}: {error}", file=sys.stderr)
        return 1
    for name in module_names:
        try:
            module = importlib.import_module(name)
        except Exception as error:
            problems.append(f"{name}: import failed: {error}")
            continue
        pages[name] = render_module(module, problems, warnings)

    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        index = [f"# `{package_name}` API reference\n"]
        for name in sorted(pages):
            filename = name.replace(".", "/") + ".md"
            path = out_dir / filename
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(pages[name], encoding="utf-8")
            first_line = next(
                (line for line in pages[name].splitlines()[1:] if line.strip()), ""
            )
            index.append(f"- [`{name}`]({filename}) — {first_line.strip()}")
        (out_dir / "index.md").write_text("\n".join(index) + "\n", encoding="utf-8")

    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)
    for problem in problems:
        print(f"ERROR: {problem}", file=sys.stderr)
    built = f", wrote {len(pages) + 1} pages to {out_dir}" if out_dir is not None else ""
    print(
        f"{len(pages)} modules, {len(warnings)} docstring warnings, "
        f"{len(problems)} errors{built}"
    )
    return 1 if problems else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--package", default="repro", help="package to document")
    parser.add_argument(
        "-o", "--out", default="docs/api", help="output directory for the Markdown pages"
    )
    parser.add_argument(
        "--check", action="store_true", help="validate docstrings only; write nothing"
    )
    args = parser.parse_args(argv)
    return build(args.package, None if args.check else Path(args.out))


if __name__ == "__main__":
    raise SystemExit(main())
