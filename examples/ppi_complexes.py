"""Protein-complex prediction on a Krogan-like PPI network.

Reproduces the Table 2 protocol at example scale: cluster the uncertain
PPI graph with depth-limited MCP/ACP and score co-cluster protein pairs
against the planted complexes (standing in for the MIPS ground truth),
alongside the mcl and kpt baselines.

Run:  python examples/ppi_complexes.py
"""

import time

from repro.baselines import kpt_clustering, mcl_clustering
from repro.core import acp_clustering, mcp_clustering
from repro.datasets import krogan_like
from repro.metrics import pair_confusion
from repro.sampling import PracticalSchedule


def main() -> None:
    dataset = krogan_like(seed=42, scale=0.2)
    graph = dataset.graph
    k = max(2, round(0.21 * graph.n_nodes))  # paper: k=547 on 2559 nodes
    print(f"{dataset.name}-like PPI: {graph}")
    print(f"planted complexes: {len(dataset.complexes)} "
          f"({dataset.n_complex_proteins} proteins); clustering with k={k}\n")

    schedule = PracticalSchedule(max_samples=300)
    print(f"{'algorithm':<10} {'depth':>5} {'TPR':>7} {'FPR':>7} {'time':>7}")
    for depth in (2, 3, 4, 6):
        for name, algorithm in (("mcp", mcp_clustering), ("acp", acp_clustering)):
            start = time.perf_counter()
            result = algorithm(graph, k, depth=depth, seed=depth, sample_schedule=schedule)
            confusion = pair_confusion(result.clustering, dataset.complexes)
            elapsed = time.perf_counter() - start
            print(f"{name:<10} {depth:>5} {confusion.tpr:>7.3f} {confusion.fpr:>7.3f} {elapsed:>6.1f}s")

    start = time.perf_counter()
    mcl = mcl_clustering(graph, inflation=2.0)
    confusion = pair_confusion(mcl.clustering, dataset.complexes)
    print(f"{'mcl':<10} {'-':>5} {confusion.tpr:>7.3f} {confusion.fpr:>7.3f} "
          f"{time.perf_counter() - start:>6.1f}s   ({mcl.n_clusters} clusters)")

    start = time.perf_counter()
    kpt = kpt_clustering(graph, seed=0)
    confusion = pair_confusion(kpt, dataset.complexes)
    print(f"{'kpt':<10} {'-':>5} {confusion.tpr:>7.3f} {confusion.fpr:>7.3f} "
          f"{time.perf_counter() - start:>6.1f}s   ({kpt.k} clusters)")

    print("\nReading: larger depth trades false positives for recall;"
          "\nmcp stays conservative, acp reaches higher TPR sooner.")


if __name__ == "__main__":
    main()
