"""The Set Cover -> MCP reduction of Theorem 2, executed end to end.

Builds the paper's NP-hardness gadget for a small set cover instance
and verifies — with exact connection probabilities and brute-force
optimal clusterings — that the MCP decision threshold separates
coverable from uncoverable ``k`` exactly as the theorem states.

Run:  python examples/hardness_reduction.py
"""

from repro.core import optimal_min_prob
from repro.reductions import (
    SetCoverInstance,
    greedy_set_cover,
    has_set_cover_of_size,
    set_cover_to_mcp,
)
from repro.sampling import ExactOracle


def main() -> None:
    # Universe {0..4}; three sets; minimum cover needs 2 of them.
    instance = SetCoverInstance(
        universe_size=5,
        sets=(
            frozenset({0, 1, 2}),
            frozenset({2, 3, 4}),
            frozenset({1, 3}),
        ),
    )
    print(f"set cover instance: universe={instance.universe_size}, "
          f"sets={[sorted(s) for s in instance.sets]}")
    print(f"greedy cover uses sets {greedy_set_cover(instance)}\n")

    graph, threshold = set_cover_to_mcp(instance, eps=1e-4)
    print(f"reduction graph: {graph} — every edge has probability {threshold}")
    print("element nodes ('u', i) connect to the sets containing them;")
    print("set nodes ('s', j) form a clique.\n")

    oracle = ExactOracle(graph)
    for k in (1, 2, 3):
        p_opt, centers = optimal_min_prob(oracle, k)
        decided = p_opt >= threshold
        truth = has_set_cover_of_size(instance, k)
        labels = [graph.label_of(c) for c in centers]
        print(f"k={k}: p_opt_min={p_opt:.3e} >= eps? {str(decided):<5} "
              f"| set cover of size {k} exists? {truth}  (centers: {labels})")
        assert decided == truth, "Theorem 2 equivalence violated!"
    print("\nThe MCP decision problem answers the set cover question exactly —")
    print("clustering uncertain graphs is NP-hard even with an exact oracle.")


if __name__ == "__main__":
    main()
