"""Quickstart: cluster a small uncertain graph with MCP and ACP.

Builds a two-community uncertain graph, estimates connection
probabilities both exactly and by Monte Carlo sampling, and runs the
paper's two clustering algorithms.

Run:  python examples/quickstart.py
"""

from repro import (
    ExactOracle,
    MonteCarloOracle,
    UncertainGraph,
    acp_clustering,
    mcp_clustering,
)

# Two reliable triangles bridged by one flaky edge.
EDGES = [
    ("a", "b", 0.9), ("b", "c", 0.9), ("a", "c", 0.8),
    ("x", "y", 0.85), ("y", "z", 0.85), ("x", "z", 0.75),
    ("c", "x", 0.05),  # the bridge
]


def main() -> None:
    graph = UncertainGraph.from_edges(EDGES)
    print(f"graph: {graph}")

    # Exact connection probabilities (feasible: only 7 uncertain edges).
    exact = ExactOracle(graph)
    a, c, x = (graph.index_of(v) for v in "acx")
    print(f"Pr(a ~ c) = {exact.connection(a, c):.4f}  (same community)")
    print(f"Pr(a ~ x) = {exact.connection(a, x):.4f}  (across the bridge)")

    # Monte Carlo estimation — what the algorithms use on real graphs.
    sampled = MonteCarloOracle(graph, seed=7)
    sampled.ensure_samples(4000)
    print(f"Pr~(a ~ x) = {sampled.connection(a, x):.4f}  ({sampled.num_samples} worlds)")

    # MCP: maximize the minimum connection probability to the centers.
    result = mcp_clustering(graph, k=2, seed=0)
    print("\nMCP clustering (k=2):")
    for cluster_id, members in enumerate(result.clustering.clusters()):
        names = [graph.label_of(int(m)) for m in members]
        center = graph.label_of(int(result.clustering.centers[cluster_id]))
        print(f"  cluster {cluster_id}: center={center} members={sorted(names)}")
    print(f"  estimated min-prob = {result.min_prob_estimate:.3f} (threshold q={result.q_final:.3f})")

    # ACP: maximize the average connection probability.
    result = acp_clustering(graph, k=2, seed=0)
    print("\nACP clustering (k=2):")
    print(f"  estimated avg-prob = {result.avg_prob_estimate:.3f} (phi_best={result.phi_best:.3f})")


if __name__ == "__main__":
    main()
