"""Clustering a DBLP-like collaboration network: mcp vs mcl.

Reproduces the Figure 1/4 story at example scale: on collaboration
graphs, topology-driven clustering (mcl) leaves some nodes almost
disconnected (in probability) from their cluster; mcp guarantees a
floor.  mcl is also slowest exactly where small cluster counts are
wanted, while mcp's cost grows gently with k.

Run:  python examples/collaboration_clustering.py
"""

import time

from repro.baselines import mcl_clustering
from repro.core import mcp_clustering
from repro.datasets import dblp_like
from repro.metrics import avg_connection_probability, min_connection_probability
from repro.sampling import MonteCarloOracle, PracticalSchedule


def main() -> None:
    graph = dblp_like(2500, seed=11)
    print(f"DBLP-like collaboration graph: {graph}")
    print("edge probabilities follow 1 - exp(-x/2) for x co-authored papers\n")

    evaluation = MonteCarloOracle(graph, seed=99, chunk_size=64)
    evaluation.ensure_samples(300)

    print(f"{'algorithm':<22} {'k':>5} {'pmin':>7} {'pavg':>7} {'time':>8}")
    schedule = PracticalSchedule(max_samples=400)
    for k in (graph.n_nodes // 32, graph.n_nodes // 16, graph.n_nodes // 8):
        start = time.perf_counter()
        result = mcp_clustering(graph, k, seed=k, sample_schedule=schedule, chunk_size=128)
        elapsed = time.perf_counter() - start
        pmin = min_connection_probability(result.clustering, evaluation)
        pavg = avg_connection_probability(result.clustering, evaluation)
        print(f"{'mcp':<22} {k:>5} {pmin:>7.3f} {pavg:>7.3f} {elapsed:>7.1f}s")

    for inflation in (1.5, 2.0):
        start = time.perf_counter()
        try:
            mcl = mcl_clustering(graph, inflation=inflation, max_nnz=graph.n_nodes**2 // 2)
        except MemoryError:
            print(f"{'mcl (infl=' + str(inflation) + ')':<22} {'-':>5} {'-':>7} {'-':>7} "
                  f"{time.perf_counter() - start:>7.1f}s  failed (memory)")
            continue
        elapsed = time.perf_counter() - start
        pmin = min_connection_probability(mcl.clustering, evaluation)
        pavg = avg_connection_probability(mcl.clustering, evaluation)
        print(f"{'mcl (infl=' + str(inflation) + ')':<22} {mcl.n_clusters:>5} "
              f"{pmin:>7.3f} {pavg:>7.3f} {elapsed:>7.1f}s")

    print("\nReading: mcl's pmin collapses toward 0 (some co-author is nearly"
          "\nunreachable in a random world), mcp keeps a positive floor at"
          "\ncomparable pavg and predictable cost.")


if __name__ == "__main__":
    main()
