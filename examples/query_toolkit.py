"""Reliability queries and representative worlds on an uncertain graph.

Beyond clustering, the substrate supports the query primitives the
paper builds on: k-nearest-neighbours by connection probability
(Potamias et al.), most-reliable-source (the k=1 special case of MCP),
threshold reachability, and representative-instance extraction
(Parchas et al.) for running deterministic algorithms once instead of
over many sampled worlds.

Run:  python examples/query_toolkit.py
"""

import numpy as np

from repro.datasets import gavin_like
from repro.graph.components import connected_component_labels
from repro.queries import (
    k_nearest_by_reliability,
    most_reliable_source,
    reliability_histogram,
    reliable_set,
)
from repro.sampling import (
    MonteCarloOracle,
    average_degree_representative,
    degree_discrepancy,
    most_probable_world,
)


def main() -> None:
    dataset = gavin_like(seed=3, scale=0.15)
    graph = dataset.graph
    print(f"graph: {graph}\n")

    oracle = MonteCarloOracle(graph, seed=9, chunk_size=128)
    oracle.ensure_samples(800)

    # --- k-NN by reliability -----------------------------------------
    source = int(dataset.complexes[0][0])
    print(f"5 most reliable neighbours of protein {source}:")
    for node, p in k_nearest_by_reliability(oracle, source, 5):
        marker = "*" if node in dataset.complexes[0] else " "
        print(f"  node {node:4d}  Pr ~= {p:.3f} {marker}(same complex)" if marker == "*"
              else f"  node {node:4d}  Pr ~= {p:.3f}")

    # --- threshold reachability ---------------------------------------
    disk = reliable_set(oracle, source, 0.5)
    print(f"\n{len(disk)} proteins reachable from {source} with Pr >= 0.5")

    # --- most reliable source over a complex --------------------------
    members = dataset.complexes[0]
    hub, score = most_reliable_source(oracle, candidates=members, targets=members)
    print(f"most reliable source within complex 0: node {hub} (min Pr = {score:.3f})")

    # --- threshold histogram ------------------------------------------
    counts, edges = reliability_histogram(oracle, source, bins=5)
    print("\nconnection-probability histogram from the source:")
    for count, lo, hi in zip(counts, edges, edges[1:], strict=False):
        print(f"  [{lo:.1f}, {hi:.1f}): {'#' * max(1, int(40 * count / counts.max())) if count else ''} {count}")

    # --- representative world -----------------------------------------
    mode_mask = most_probable_world(graph)
    adr_mask = average_degree_representative(graph)
    print("\nrepresentative instances (degree discrepancy vs expected degrees):")
    print(f"  most probable world : {degree_discrepancy(graph, mode_mask):8.1f}  "
          f"({int(mode_mask.sum())} edges)")
    print(f"  ADR representative  : {degree_discrepancy(graph, adr_mask):8.1f}  "
          f"({int(adr_mask.sum())} edges)")
    labels = connected_component_labels(
        graph.n_nodes, graph.edge_src, graph.edge_dst, mask=adr_mask
    )
    print(f"  ADR world components: {len(np.unique(labels))}")


if __name__ == "__main__":
    main()
