"""Two-terminal reliability estimation with progressive sampling.

The substrate below the clustering algorithms is a network-reliability
estimator: ``Pr(u ~ v)`` is the probability that ``u`` and ``v`` land in
the same connected component of a random possible world (#P-complete to
compute exactly).  This example shows the (eps, delta) sample-size bound
(Eq. 4 of the paper) at work and the depth-limited variant.

Run:  python examples/reliability_estimation.py
"""

from repro.datasets import planted_partition
from repro.sampling import (
    ExactOracle,
    MonteCarloOracle,
    epsilon_delta_sample_size,
)


def main() -> None:
    # A small graph keeps exact enumeration feasible (2^m worlds).
    graph, _ = planted_partition(
        12, 2, intra_degree=2.0, inter_degree=0.4, seed=5
    )
    print(f"graph: {graph} (2^{graph.n_edges} possible worlds)")
    exact = ExactOracle(graph)

    u, v = 0, graph.n_nodes - 1
    truth = exact.connection(u, v)
    print(f"exact Pr({u} ~ {v}) = {truth:.4f}\n")

    eps, delta = 0.1, 0.05
    needed = epsilon_delta_sample_size(max(truth, 1e-3), eps, delta)
    print(f"Eq. (4): r >= {needed} samples for a ({eps}, {delta})-approximation")

    oracle = MonteCarloOracle(graph, seed=3)
    print(f"\n{'samples':>8} {'estimate':>9} {'rel.err':>8}")
    for r in (50, 200, 1000, needed):
        oracle.ensure_samples(r)  # progressive: earlier worlds are reused
        estimate = oracle.connection(u, v)
        rel = abs(estimate - truth) / truth if truth else float("nan")
        print(f"{oracle.num_samples:>8} {estimate:>9.4f} {rel:>8.3f}")

    print("\ndepth-limited connection probabilities (paths of length <= d):")
    for depth in (1, 2, 3, None):
        exact_d = exact.connection(u, v, depth=depth)
        sampled_d = oracle.connection(u, v, depth=depth)
        label = "inf" if depth is None else depth
        print(f"  d={label:>3}: exact={exact_d:.4f} sampled={sampled_d:.4f}")

    # The d-connection probability is monotone in d and converges to the
    # unconstrained one — the invariant the depth-limited algorithms use.
    values = [exact.connection(u, v, depth=d) for d in (1, 2, 3)]
    assert all(a <= b + 1e-12 for a, b in zip(values, values[1:], strict=False))
    assert values[-1] <= truth + 1e-12
    print("\nmonotonicity in d verified against the exact oracle.")


if __name__ == "__main__":
    main()
