"""Benchmark for Table 1: dataset generation at tiny scale.

Regenerates the paper's dataset-statistics table; the benchmark cost is
dominated by the synthetic generators (the stand-ins for the paper's
data files, see DESIGN.md substitutions).
"""

from repro.experiments import table1


def test_table1_regeneration(benchmark):
    table = benchmark.pedantic(
        table1.run, args=("tiny",), kwargs={"seed": 0}, rounds=2, iterations=1
    )
    assert len(table) == 4
