"""Benchmark for Figure 3: the full quality-suite protocol on one graph.

Measures the end-to-end cost of the paper's Figure 1-3 protocol (mcl
granularity probe + gmm/mcp/acp at matched k + metric evaluation) at
tiny scale.  The per-algorithm breakdown lives in the Figure 1 benches.
"""

from repro.experiments import run_quality_suite


def test_quality_suite_single_graph(benchmark):
    suite = benchmark.pedantic(
        run_quality_suite,
        args=("tiny",),
        kwargs={"seed": 0, "datasets": ("gavin",)},
        rounds=1,
        iterations=1,
    )
    assert {record.algorithm for record in suite.records} == {"gmm", "mcl", "mcp", "acp"}
