"""Benchmarks for Figure 1: the four algorithms' clustering runs.

One benchmark per algorithm on the same (graph, k) cell — the
per-algorithm cost structure is the content of Figure 3, and the
resulting clusterings' pmin/pavg are asserted to keep the Figure 1
ordering (mcp wins pmin) from regressing.
"""

import pytest

from repro.baselines import gmm_clustering, mcl_clustering
from repro.core import acp_clustering, mcp_clustering
from repro.metrics import min_connection_probability
from repro.sampling import PracticalSchedule

K = 12
_pmin_results = {}


def test_gmm(benchmark, gavin_tiny, gavin_oracle):
    clustering = benchmark.pedantic(
        gmm_clustering, args=(gavin_tiny, K), kwargs={"seed": 0}, rounds=3, iterations=1
    )
    _pmin_results["gmm"] = min_connection_probability(clustering, gavin_oracle)


def test_mcl(benchmark, gavin_tiny, gavin_oracle):
    result = benchmark.pedantic(
        mcl_clustering, args=(gavin_tiny,), kwargs={"inflation": 1.6}, rounds=3, iterations=1
    )
    _pmin_results["mcl"] = min_connection_probability(result.clustering, gavin_oracle)


def test_mcp(benchmark, gavin_tiny, gavin_oracle):
    schedule = PracticalSchedule(max_samples=200)

    def run():
        return mcp_clustering(
            gavin_tiny, K, seed=0, sample_schedule=schedule, chunk_size=128
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.clustering.covers_all
    _pmin_results["mcp"] = min_connection_probability(result.clustering, gavin_oracle)


def test_acp(benchmark, gavin_tiny, gavin_oracle):
    schedule = PracticalSchedule(max_samples=200)

    def run():
        return acp_clustering(
            gavin_tiny, K, seed=0, sample_schedule=schedule, chunk_size=128
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.clustering.covers_all
    _pmin_results["acp"] = min_connection_probability(result.clustering, gavin_oracle)


def test_figure1_shape_mcp_wins_pmin(gavin_tiny):
    """Paper's headline ordering; runs after the benches above."""
    if {"mcp", "mcl", "gmm"} <= set(_pmin_results):
        assert _pmin_results["mcp"] >= _pmin_results["mcl"] - 0.05
        assert _pmin_results["mcp"] >= _pmin_results["gmm"] - 0.05
    else:
        pytest.skip("algorithm benches did not run (filtered)")
