"""Benchmarks for Table 2: depth-limited clustering for complex prediction.

Times the depth-limited mcp/acp runs (the bulk BFS oracle path) and the
kpt baseline on the tiny Krogan-like dataset, asserting the Table 2
quality ordering (mcp/acp beat kpt on TPR) as a regression check.
"""

from repro.baselines import kpt_clustering
from repro.core import acp_clustering, mcp_clustering
from repro.metrics import pair_confusion
from repro.sampling import PracticalSchedule

SCHEDULE = PracticalSchedule(max_samples=100)
_tprs = {}


def _k_for(graph):
    return max(2, round(0.21 * graph.n_nodes))


def test_mcp_depth2(benchmark, krogan_tiny):
    graph = krogan_tiny.graph

    def run():
        return mcp_clustering(
            graph, _k_for(graph), depth=2, seed=0, sample_schedule=SCHEDULE, chunk_size=64
        )

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    _tprs["mcp"] = pair_confusion(result.clustering, krogan_tiny.complexes).tpr


def test_acp_depth2(benchmark, krogan_tiny):
    graph = krogan_tiny.graph

    def run():
        return acp_clustering(
            graph, _k_for(graph), depth=2, seed=0, sample_schedule=SCHEDULE, chunk_size=64
        )

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    _tprs["acp"] = pair_confusion(result.clustering, krogan_tiny.complexes).tpr


def test_kpt(benchmark, krogan_tiny):
    clustering = benchmark(kpt_clustering, krogan_tiny.graph, seed=0)
    _tprs["kpt"] = pair_confusion(clustering, krogan_tiny.complexes).tpr


def test_table2_shape_kpt_lowest_tpr(krogan_tiny):
    if {"mcp", "acp", "kpt"} <= set(_tprs):
        assert _tprs["mcp"] > _tprs["kpt"]
        assert _tprs["acp"] > _tprs["kpt"]
