"""Benchmarks for Figure 4: time vs k on the DBLP-like graph.

mcp at two granularities (cost grows with k) and mcl at high inflation
(its cheap regime; the low-inflation regime aborts on the memory guard
— that failure mode is exercised in the figure-4 experiment itself, not
timed here).
"""

from repro.baselines import mcl_clustering
from repro.core import mcp_clustering
from repro.sampling import PracticalSchedule

SCHEDULE = PracticalSchedule(max_samples=150)


def test_mcp_small_k(benchmark, dblp_tiny):
    k = dblp_tiny.n_nodes // 32

    def run():
        return mcp_clustering(
            dblp_tiny, k, seed=0, sample_schedule=SCHEDULE, chunk_size=64
        )

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.clustering.k == k


def test_mcp_large_k(benchmark, dblp_tiny):
    k = dblp_tiny.n_nodes // 8

    def run():
        return mcp_clustering(
            dblp_tiny, k, seed=0, sample_schedule=SCHEDULE, chunk_size=64
        )

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.clustering.k == k


def test_mcl_high_inflation(benchmark, dblp_tiny):
    def run():
        return mcl_clustering(dblp_tiny, inflation=2.0, max_iterations=80)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.n_clusters > 1
