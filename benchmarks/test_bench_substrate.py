"""Micro-benchmarks of the possible-world substrate.

These justify the block-diagonal design decisions documented in
DESIGN.md: bulk component labelling, frontier-driven bulk BFS, and the
sparse-product pairwise matrix.
"""

import numpy as np

from repro.graph.components import UnionFind, connected_component_labels
from repro.sampling.worlds import (
    block_bfs_reached,
    sample_edge_masks,
    world_block_csr,
    world_component_labels,
)

R = 128  # worlds per batch


def test_sample_edge_masks(benchmark, gavin_tiny):
    rng = np.random.default_rng(0)
    benchmark(sample_edge_masks, gavin_tiny.edge_prob, R, rng)


def test_bulk_component_labels(benchmark, gavin_tiny):
    masks = sample_edge_masks(gavin_tiny.edge_prob, R, np.random.default_rng(1))
    benchmark(world_component_labels, gavin_tiny, masks)


def test_per_world_union_find_baseline(benchmark, gavin_tiny):
    """The naive alternative to the block-diagonal labelling."""
    masks = sample_edge_masks(gavin_tiny.edge_prob, R, np.random.default_rng(1))
    src, dst = gavin_tiny.edge_src, gavin_tiny.edge_dst

    def label_each_world():
        out = []
        for i in range(R):
            uf = UnionFind(gavin_tiny.n_nodes)
            uf.union_edges(src[masks[i]], dst[masks[i]])
            out.append(uf.labels())
        return out

    benchmark(label_each_world)


def test_block_bfs_depth4(benchmark, gavin_tiny):
    masks = sample_edge_masks(gavin_tiny.edge_prob, R, np.random.default_rng(2))
    block = world_block_csr(gavin_tiny, masks)
    benchmark(block_bfs_reached, block, gavin_tiny.n_nodes, R, 0, 4)


def test_connection_row_query(benchmark, gavin_oracle):
    benchmark(gavin_oracle.connection_to_all, 0)


def test_connection_row_query_depth3(benchmark, gavin_oracle):
    benchmark(gavin_oracle.connection_to_all, 0, 3)


def test_pairwise_matrix(benchmark, gavin_oracle):
    benchmark(gavin_oracle.pairwise_matrix)


def test_skeleton_components(benchmark, gavin_tiny):
    benchmark(
        connected_component_labels,
        gavin_tiny.n_nodes,
        gavin_tiny.edge_src,
        gavin_tiny.edge_dst,
    )
