"""Service-layer latency and throughput (``BENCH_service.json``).

Runs the clustering service in-process (:class:`BackgroundServer` on a
daemon thread, real sockets) and measures the numbers the service
exists for, recording each into the durable artifact:

* ``job/mcp/cold`` — one clustering job against an empty oracle cache
  (submission + polling + sampling + clustering + result fetch);
* ``job/mcp/warm`` — the identical job repeated, served from the
  cached pool with **zero** new sampling (asserted, not just timed);
* ``estimate/sustained`` — sustained reliability-estimate throughput
  over keep-alive connections against the warm pool;
* ``job/mixed/workersN`` — mixed cold/warm/mutate job throughput with
  N spawned worker *processes* over one shared on-disk world store
  (the throughput-vs-workers scaling cells; a 1-core CI box cannot
  show real scaling, so the gate only guards against regression).

The same cells can be produced against a *remote* server with
``repro bench-serve`` — the CI smoke job does exactly that; this suite
exists so the numbers land in ``benchmarks/out`` alongside the other
suites and are diffable with ``benchmarks/compare.py``.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from benchmarks.record import record_benchmark, record_extra
from repro.service import BackgroundServer, ClusterService
from repro.service.loadgen import ServiceClient, _quantile, run_job, run_mixed_load
from repro.telemetry import parse_prometheus_text

# k=2 on the krogan-like graph forces the threshold schedule well below
# the first guess, so the cold job genuinely samples (the warm/cold gap
# is the point of the suite); k near the cluster count would cover at
# the first 50-world guess and hide the sampling cost.
JOB_PARAMS = {"graph": "bench", "algorithm": "mcp", "k": 2, "samples": 1500, "seed": 0}
SUSTAIN_SECONDS = 1.5
CONCURRENCY = 4


@pytest.fixture(scope="module")
def server(krogan_tiny):
    service = ClusterService(datasets=(), job_workers=2)
    service.graphs.register_graph("bench", krogan_tiny.graph, source="krogan_tiny")
    with BackgroundServer(service) as running:
        yield running


def _request_sync(server, method, path, body=None):
    async def go():
        client = await ServiceClient("127.0.0.1", server.port).connect()
        try:
            return await client.request(method, path, body)
        finally:
            await client.close()

    return asyncio.run(go())


def test_job_cold_then_warm(server):
    async def go():
        client = await ServiceClient("127.0.0.1", server.port).connect()
        try:
            # Tight polling so the warm cell measures the job, not the
            # 20ms default poll quantum (warm jobs finish in ~5ms).
            begin = time.perf_counter()
            cold = await run_job(client, JOB_PARAMS, poll_interval=0.002)
            cold_seconds = time.perf_counter() - begin
            begin = time.perf_counter()
            warm = await run_job(client, JOB_PARAMS, poll_interval=0.002)
            warm_seconds = time.perf_counter() - begin
            return cold, cold_seconds, warm, warm_seconds
        finally:
            await client.close()

    cold, cold_seconds, warm, warm_seconds = asyncio.run(go())
    assert cold["worlds_sampled"] > 0
    assert warm["warm"] is True and warm["worlds_sampled"] == 0
    assert warm["assignment"] == cold["assignment"]
    meta = {"graph": "krogan_tiny", "k": JOB_PARAMS["k"], "samples": JOB_PARAMS["samples"]}
    record_benchmark(
        "service", "job/mcp/cold", seconds=cold_seconds, items=1,
        meta={**meta, "worlds_sampled": cold["worlds_sampled"]},
    )
    record_benchmark(
        "service", "job/mcp/warm", seconds=warm_seconds, items=1,
        meta={**meta, "worlds_sampled": 0},
    )


def test_sustained_estimates(server):
    path = f"/graphs/bench/estimate?u=0&v=1&samples={JOB_PARAMS['samples']}&seed=0"
    status, _ = _request_sync(server, "GET", path)  # prime the pool
    assert status == 200

    async def go():
        latencies = []
        stop_at = time.monotonic() + SUSTAIN_SECONDS

        async def worker():
            client = await ServiceClient("127.0.0.1", server.port).connect()
            try:
                while time.monotonic() < stop_at:
                    begin = time.perf_counter()
                    status, _ = await client.request("GET", path)
                    assert status == 200
                    latencies.append(time.perf_counter() - begin)
            finally:
                await client.close()

        await asyncio.gather(*(worker() for _ in range(CONCURRENCY)))
        return latencies

    latencies = asyncio.run(go())
    assert latencies
    latencies.sort()
    record_benchmark(
        "service", "estimate/sustained",
        seconds=SUSTAIN_SECONDS, items=len(latencies),
        meta={
            "concurrency": CONCURRENCY,
            "latency_p50_s": _quantile(latencies, 0.50),
            "latency_p95_s": _quantile(latencies, 0.95),
            "latency_p99_s": _quantile(latencies, 0.99),
        },
    )
    # Embed the fleet metrics snapshot alongside the timing cells (a
    # top-level extra key; compare.py ignores it).
    status, text = _request_sync(server, "GET", "/v1/metrics")
    assert status == 200
    record_extra("service", "metrics", parse_prometheus_text(text))


MIXED_JOBS = 8
MIXED_CONCURRENCY = 2


@pytest.mark.parametrize("workers", [1, 2])
def test_mixed_load_scaling_process_workers(krogan_tiny, tmp_path, workers):
    service = ClusterService(
        datasets=(), worker_processes=workers, world_cache=tmp_path / "worlds",
    )
    service.graphs.register_graph("bench", krogan_tiny.graph, source="krogan_tiny")
    with BackgroundServer(service) as running:
        result = asyncio.run(run_mixed_load(
            f"http://127.0.0.1:{running.port}", graph="bench",
            k=JOB_PARAMS["k"], samples=800,
            jobs=MIXED_JOBS, concurrency=MIXED_CONCURRENCY,
        ))
    assert sum(result["counts"].values()) == MIXED_JOBS
    assert result["counts"]["warm"] > 0 and result["counts"]["cold"] > 0
    record_benchmark(
        "service", f"job/mixed/workers{workers}",
        seconds=result["seconds"], items=result["jobs"],
        meta={"workers": workers, "concurrency": result["concurrency"],
              **result["counts"]},
    )


def test_warm_across_worker_pools_bit_identical(krogan_tiny, tmp_path):
    """Cross-worker warm pin: a second worker pool over the same store
    serves the repeat job with zero sampling and identical labels."""
    params = {"graph": "bench", "algorithm": "mcp", "k": 2, "samples": 800, "seed": 3}
    results = []
    for workers in (1, 2):
        service = ClusterService(
            datasets=(), worker_processes=workers,
            world_cache=tmp_path / "worlds",
        )
        service.graphs.register_graph("bench", krogan_tiny.graph, source="krogan_tiny")
        with BackgroundServer(service) as running:

            async def go(port=running.port):
                client = await ServiceClient("127.0.0.1", port).connect()
                try:
                    return await run_job(client, params)
                finally:
                    await client.close()

            results.append(asyncio.run(go()))
    cold, warm = results
    assert cold["worlds_sampled"] > 0
    # The second pool's workers never sampled this pool themselves —
    # the warm hit comes from the shared on-disk store.
    assert warm["warm"] is True and warm["worlds_sampled"] == 0
    assert warm["assignment"] == cold["assignment"]
    assert warm["centers"] == cold["centers"]
