"""Durable benchmark artifacts: the ``BENCH_*.json`` files.

The pytest-benchmark console tables are ephemeral; this helper gives
every bench suite a machine-readable artifact so the performance
trajectory is comparable across PRs.  Artifacts are written to
``benchmarks/out/`` (override with ``REPRO_BENCH_DIR``), uploaded by
the CI ``bench`` job, and diffed against the committed baselines in
``benchmarks/baselines/`` by ``benchmarks/compare.py`` — a >2x
slowdown on any benchmark fails CI.

Schema (version 1)::

    {
      "schema": 1,
      "suite": "sampling",
      "host": {"python": "3.11.7", "numpy": "2.4.6",
               "platform": "Linux-...", "cpu_count": 4},
      "benchmarks": {
        "ensure_samples/dblp1200/unionfind/workers=4": {
          "seconds": 0.113,          # best observed round
          "items": 512,              # work units per round (worlds here)
          "throughput": 4530.9,      # items / seconds, null if items is
          "meta": {"backend": "unionfind", "workers": 4, ...}
        },
        ...
      }
    }

``record_benchmark`` merges one entry into the suite file per call
(read-modify-write), so interleaved pytest processes lose at worst a
single entry rather than corrupting the file: writes are atomic via
``os.replace``.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

import numpy

SCHEMA_VERSION = 1

_BENCHMARKS_DIR = Path(__file__).resolve().parent

#: Committed reference artifacts the CI perf gate compares against.
BASELINE_DIR = _BENCHMARKS_DIR / "baselines"


def bench_output_dir() -> Path:
    """Directory the ``BENCH_*.json`` artifacts are written to."""
    return Path(os.environ.get("REPRO_BENCH_DIR", _BENCHMARKS_DIR / "out"))


def bench_path(suite: str) -> Path:
    """Artifact path for ``suite`` (e.g. ``sampling`` -> BENCH_sampling.json)."""
    return bench_output_dir() / f"BENCH_{suite}.json"


def _host_info() -> dict:
    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
    }


def load_artifact(path) -> dict:
    """Read a ``BENCH_*.json`` file, validating the schema version."""
    with open(path, encoding="utf-8") as handle:
        artifact = json.load(handle)
    if artifact.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported BENCH schema {artifact.get('schema')!r}; "
            f"this tool understands version {SCHEMA_VERSION}"
        )
    return artifact


def record_benchmark(
    suite: str,
    name: str,
    *,
    seconds: float,
    items: int | None = None,
    meta: dict | None = None,
) -> Path:
    """Merge one measurement into the suite's ``BENCH_<suite>.json``.

    Parameters
    ----------
    suite:
        Artifact family, e.g. ``"sampling"``.
    name:
        Benchmark key, unique within the suite; conventionally
        ``<operation>/<substrate>/<variant>`` so ``compare.py`` lines
        up the same work across runs.
    seconds:
        Best observed wall time of one round.
    items:
        Work units per round (worlds, edges, ...); enables the derived
        ``throughput`` field.
    meta:
        Free-form labels (backend, workers, substrate, r, ...).

    Returns the path written.
    """
    if seconds <= 0:
        raise ValueError(f"seconds must be positive, got {seconds}")
    path = bench_path(suite)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.exists():
        artifact = load_artifact(path)
    else:
        artifact = {"schema": SCHEMA_VERSION, "suite": suite, "benchmarks": {}}
    artifact["host"] = _host_info()
    entry = {
        "seconds": seconds,
        "items": items,
        "throughput": (items / seconds) if items else None,
    }
    if meta:
        entry["meta"] = meta
    artifact["benchmarks"][name] = entry
    tmp_path = path.with_suffix(".json.tmp")
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp_path, path)
    return path


def record_extra(suite: str, key: str, value) -> Path:
    """Merge one top-level extra key into the suite's artifact.

    ``compare.py`` diffs only ``artifact["benchmarks"]``, so extras are
    schema-compatible informational payload — e.g. the ``/v1/metrics``
    snapshot the service suite embeds so a benchmark run records what
    the service actually did, not just how fast.
    """
    path = bench_path(suite)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.exists():
        artifact = load_artifact(path)
    else:
        artifact = {"schema": SCHEMA_VERSION, "suite": suite, "benchmarks": {}}
    artifact[key] = value
    tmp_path = path.with_suffix(".json.tmp")
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp_path, path)
    return path


def record_pytest_benchmark(
    suite: str, name: str, benchmark, *, items: int | None = None, meta: dict | None = None
) -> Path:
    """Record a finished pytest-benchmark fixture's best round."""
    return record_benchmark(
        suite, name, seconds=float(benchmark.stats.stats.min), items=items, meta=meta
    )


if __name__ == "__main__":
    print(json.dumps(_host_info(), indent=2))
    print(f"artifacts: {bench_output_dir()}")
    print(f"baselines: {BASELINE_DIR}")
