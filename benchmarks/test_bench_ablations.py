"""Ablation benchmarks for the design choices documented in DESIGN.md.

Measures the cost side of each knob; the quality side is covered by the
unit tests (and the paper's own parameter study, Section 5):

* guessing schedule: doubling (paper Section 5) vs geometric (Algorithm 2);
* min-partial's ``alpha``: 1 (practical) vs n (theoretical greedy);
* oracle chunk size (labelling amortization);
* Monte Carlo eps (fewer samples vs threshold slack).
"""

from repro.core import acp_clustering, mcp_clustering, min_partial
from repro.sampling import MonteCarloOracle, PracticalSchedule

SCHEDULE = PracticalSchedule(max_samples=200)


def test_mcp_doubling_schedule(benchmark, gavin_tiny):
    def run():
        return mcp_clustering(
            gavin_tiny, 12, seed=0, sample_schedule=SCHEDULE,
            guess_schedule="doubling", chunk_size=128,
        )

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_mcp_geometric_schedule(benchmark, gavin_tiny):
    def run():
        return mcp_clustering(
            gavin_tiny, 12, seed=0, sample_schedule=SCHEDULE,
            guess_schedule="geometric", chunk_size=128,
        )

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_min_partial_alpha_1(benchmark, gavin_oracle):
    benchmark(min_partial, gavin_oracle, 12, 0.3, alpha=1, rng=0)


def test_min_partial_alpha_n(benchmark, gavin_oracle):
    n = gavin_oracle.n_nodes
    benchmark(min_partial, gavin_oracle, 12, 0.3, alpha=n, q_bar=0.3, rng=0)


def test_acp_practical_mode(benchmark, gavin_tiny):
    def run():
        return acp_clustering(
            gavin_tiny, 12, seed=0, mode="practical",
            sample_schedule=SCHEDULE, chunk_size=128,
        )

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_acp_theoretical_mode(benchmark, gavin_tiny):
    def run():
        return acp_clustering(
            gavin_tiny, 12, seed=0, mode="theoretical",
            sample_schedule=SCHEDULE, chunk_size=128,
        )

    benchmark.pedantic(run, rounds=2, iterations=1)


def test_oracle_chunk_64(benchmark, gavin_tiny):
    def build():
        oracle = MonteCarloOracle(gavin_tiny, seed=0, chunk_size=64)
        oracle.ensure_samples(256)
        return oracle

    benchmark.pedantic(build, rounds=3, iterations=1)


def test_oracle_chunk_512(benchmark, gavin_tiny):
    def build():
        oracle = MonteCarloOracle(gavin_tiny, seed=0, chunk_size=512)
        oracle.ensure_samples(256)
        return oracle

    benchmark.pedantic(build, rounds=3, iterations=1)


def test_mcp_eps_small(benchmark, gavin_tiny):
    def run():
        return mcp_clustering(
            gavin_tiny, 12, seed=0, eps=0.1, sample_schedule=SCHEDULE, chunk_size=128
        )

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_mcp_eps_large(benchmark, gavin_tiny):
    def run():
        return mcp_clustering(
            gavin_tiny, 12, seed=0, eps=0.5, sample_schedule=SCHEDULE, chunk_size=128
        )

    benchmark.pedantic(run, rounds=3, iterations=1)
