"""Throughput of the world-labeling backends.

Records ``ensure_samples`` cost (mask sampling + labeling) and the raw
labeling-kernel cost for every registered backend (``scipy``,
``unionfind``, ``bitparallel``) on two synthetic substrates:

* ``sparse1500`` — n=1500, avg degree ~4, low-confidence edges
  (probabilities 0.05–0.35, PPI-like): sampled worlds are subcritical,
  the regime progressive sampling lives in.
* ``denser1000`` — n=1000, avg degree ~4, mixed probabilities
  (0.1–0.9): supercritical worlds with a giant component.

Beyond raw speed, the union-find backend never materializes the
``(r*n, r*n)`` block-diagonal COO/CSR matrices, so its peak per-chunk
memory is roughly half of the scipy backend's (int32 endpoint arrays
plus one flat parent vector versus the sparse-matrix build).  On the
single-core CI box the union-find backend measures ~1.5x scipy on the
sparse substrate and ~1.3x on the denser one for ``ensure_samples``;
on multi-core hardware its world sub-batches are the natural sharding
unit for further gains.

The ``bitparallel`` backend labels straight from the store's packed
uint64 columns (64 worlds per bitwise op, no boolean round-trip); the
``labeling_kernel_packed`` cells record that zero-unpack path.  On the
single-core CI box it measures ~94 ms per 512-world chunk vs ~38–44 ms
for union-find — the ``ceil(log2 n)`` bit-plane sweeps per propagation
round outweigh the 64-worlds-per-op win here, which is why ``auto``
never selects it.  The cells are recorded (and gated by
``compare.py``) so a future kernel or wider-word hardware has an honest
baseline to beat.
"""

import numpy as np
import pytest

from benchmarks.record import record_pytest_benchmark
from repro.datasets.synthetic import gnm_uncertain
from repro.sampling import MonteCarloOracle
from repro.sampling.backends import BACKENDS
from repro.sampling.store import pack_mask_columns
from repro.sampling.worlds import sample_edge_masks

R = 512  # worlds per measured ensure_samples call

BACKEND_NAMES = sorted(BACKENDS)


def _substrate(name):
    if name == "sparse1500":
        return gnm_uncertain(1500, 3000, seed=7, prob_low=0.05, prob_high=0.35)
    if name == "denser1000":
        return gnm_uncertain(1000, 2000, seed=7, prob_low=0.1, prob_high=0.9)
    raise ValueError(name)


@pytest.fixture(scope="module", params=["sparse1500", "denser1000"])
def substrate(request):
    return request.param, _substrate(request.param)


@pytest.mark.parametrize("backend_name", BACKEND_NAMES)
def test_ensure_samples_throughput(benchmark, substrate, backend_name):
    substrate_name, graph = substrate

    def run():
        oracle = MonteCarloOracle(graph, seed=1, chunk_size=R, backend=backend_name)
        oracle.ensure_samples(R)
        return oracle

    oracle = benchmark(run)
    assert oracle.num_samples == R
    record_pytest_benchmark(
        "backends",
        f"ensure_samples/{substrate_name}/{backend_name}",
        benchmark,
        items=R,
        meta={"backend": backend_name, "substrate": substrate_name, "r": R},
    )


@pytest.mark.parametrize("backend_name", BACKEND_NAMES)
def test_labeling_kernel(benchmark, substrate, backend_name):
    substrate_name, graph = substrate
    masks = sample_edge_masks(graph.edge_prob, R, rng=1)
    backend = BACKENDS[backend_name]()
    labels = benchmark(backend.component_labels, graph, masks)
    assert labels.shape == (R, graph.n_nodes)
    record_pytest_benchmark(
        "backends",
        f"labeling_kernel/{substrate_name}/{backend_name}",
        benchmark,
        items=R,
        meta={"backend": backend_name, "substrate": substrate_name, "r": R},
    )


def test_labeling_kernel_packed(benchmark, substrate):
    """The bitparallel zero-unpack path on store-shaped packed columns."""
    substrate_name, graph = substrate
    masks = sample_edge_masks(graph.edge_prob, R, rng=1)
    packed = pack_mask_columns(masks)
    backend = BACKENDS["bitparallel"]()
    labels = benchmark(backend.component_labels_packed, graph, packed, R)
    assert labels.shape == (R, graph.n_nodes)
    record_pytest_benchmark(
        "backends",
        f"labeling_kernel_packed/{substrate_name}/bitparallel",
        benchmark,
        items=R,
        meta={"backend": "bitparallel", "substrate": substrate_name, "r": R},
    )


def test_backends_bit_identical(substrate):
    """The equivalence the suite pins, re-checked on the bench substrate."""
    _, graph = substrate
    masks = sample_edge_masks(graph.edge_prob, 64, rng=3)
    outputs = {name: BACKENDS[name]().component_labels(graph, masks) for name in BACKEND_NAMES}
    reference = outputs[BACKEND_NAMES[0]]
    for name in BACKEND_NAMES[1:]:
        assert np.array_equal(reference, outputs[name]), name
    packed_labels = BACKENDS["bitparallel"]().component_labels_packed(
        graph, pack_mask_columns(masks), 64
    )
    assert np.array_equal(reference, packed_labels)
