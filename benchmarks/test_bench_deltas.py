"""Warm-after-mutation clustering vs cold resample (``BENCH_deltas.json``).

The acceptance numbers of the delta-aware world-invalidation refactor:
after a single-edge probability update, re-clustering through pool
derivation (:func:`repro.sampling.deltas.derive_pool` — resample one
column, repair the flipped worlds, reuse everything else) must beat
cold-resampling the mutated graph by >= 5x at this tiny scale — the
committed baseline documents 6.5x/13x; the in-test assert uses the
noise-tolerant :data:`MIN_WARM_SPEEDUP` floor.

Cells (per substrate):

* ``deltas/<substrate>/cold`` — mutate one edge, then cluster the
  mutated graph against an empty store (full resample + relabel);
* ``deltas/<substrate>/warm`` — same mutation, but the parent pool is
  in the store and the lease derives from it (ancestor-aware
  :class:`~repro.service.cache.OracleCache`, the service's PATCH path);
* ``deltas/<substrate>/derive`` — the derivation step alone.

Recorded into the durable ``BENCH_deltas.json`` artifact via
:mod:`benchmarks.record`; CI diffs it against the committed baseline
with ``compare.py --fail-over`` like the sampling suite.
"""

import numpy as np
import pytest

from repro.core.mcp import mcp_clustering
from repro.datasets import dblp_like
from repro.datasets.synthetic import gnm_uncertain
from repro.sampling import MonteCarloOracle, WorldStore, derive_pool
from repro.sampling.sizes import PracticalSchedule

R = 512          # pool size under measurement
K = 4            # clusters
SEED = 1
CHUNK = 512
BACKEND = "unionfind"

#: The in-test regression floor.  The *acceptance* criterion (warm >=
#: 5x cold) is documented by the committed ``baselines/BENCH_deltas.json``
#: (6.5x/13x on the recording box); the live assert uses a lower floor
#: so CI runner noise (CPU steal, cold caches) cannot flake the build
#: while a real regression — warm degrading toward cold — still fails.
MIN_WARM_SPEEDUP = 3.0


def _substrate(name):
    if name == "dblp600":
        return dblp_like(600, seed=0)
    if name == "sparse800":
        return gnm_uncertain(800, 1600, seed=7, prob_low=0.05, prob_high=0.35)
    raise ValueError(name)


@pytest.fixture(scope="module", params=["dblp600", "sparse800"])
def substrate(request):
    graph = _substrate(request.param)
    # One deterministic single-edge mutation: bump the middle edge's
    # probability by 0.05 (flips ~5% of that column's worlds).
    u, v, p = graph.edge_list()[graph.n_edges // 2]
    mutated, _delta = graph.update_edge(u, v, min(1.0, p + 0.05))
    return request.param, graph, mutated


def _cluster(graph, store):
    result = mcp_clustering(
        graph, K, seed=SEED, chunk_size=CHUNK, backend=BACKEND,
        sample_schedule=PracticalSchedule(max_samples=R), store=store,
    )
    return result.clustering.assignment


def _meta(name, graph):
    return {"substrate": name, "r": R, "k": K, "backend": BACKEND,
            "nodes": graph.n_nodes, "edges": graph.n_edges}


def test_warm_after_mutation_vs_cold(benchmark_records, substrate):
    """Measures all three cells and pins the >= 5x acceptance ratio.

    One test measures both phases so the speedup assertion compares
    numbers from the same process and the same substrate state.
    """
    name, graph, mutated = substrate

    import time

    def best_of(callable_, rounds=3):
        times = []
        for _ in range(rounds):
            begin = time.perf_counter()
            callable_()
            times.append(time.perf_counter() - begin)
        return min(times)

    # --- cold: cluster the mutated graph from nothing -----------------
    cold_assignments = []

    def cold_run():
        store = WorldStore()
        cold_assignments.append(_cluster(mutated, store))

    cold_seconds = best_of(cold_run)

    # --- derive + warm: parent pool in store, lease derives -----------
    parent_store = WorldStore()
    with MonteCarloOracle(
        graph, seed=SEED, chunk_size=CHUNK, backend=BACKEND, store=parent_store
    ) as oracle:
        oracle.ensure_samples(R)

    def derive_run():
        # A fresh child store view is impossible (derivation registers
        # under the child digest in the same store), so derive into a
        # scratch store seeded with the parent pool each round.
        scratch = WorldStore()
        packed, labels = parent_store.read(
            parent_store.register(graph, SEED, BACKEND, CHUNK), 0, R
        )
        scratch.append(scratch.register(graph, SEED, BACKEND, CHUNK), 0, packed, labels)
        result = derive_pool(
            scratch, graph, mutated, seed=SEED, backend=BACKEND, chunk_size=CHUNK
        )
        assert result is not None and result.complete
        return scratch

    derive_seconds = best_of(derive_run)

    warm_assignments = []

    # warm = derivation + warm clustering, measured end to end the way
    # a PATCH-then-cluster request experiences it.
    def warm_end_to_end():
        scratch = derive_run()
        result = mcp_clustering(
            mutated, K, seed=SEED, chunk_size=CHUNK, backend=BACKEND,
            sample_schedule=PracticalSchedule(max_samples=R), store=scratch,
        )
        warm_assignments.append(result.clustering.assignment)

    warm_seconds = best_of(warm_end_to_end)

    # Determinism: warm and cold clusterings are bit-identical.
    for warm in warm_assignments:
        assert np.array_equal(warm, cold_assignments[0])

    benchmark_records(
        ("cold", cold_seconds), ("warm", warm_seconds), ("derive", derive_seconds),
        substrate=name, graph=mutated,
    )
    speedup = cold_seconds / warm_seconds
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm-after-mutation clustering is only {speedup:.1f}x faster than "
        f"cold (cold {cold_seconds * 1000:.1f}ms, warm {warm_seconds * 1000:.1f}ms); "
        f"the regression floor is {MIN_WARM_SPEEDUP}x (acceptance: 5x, see baseline)"
    )


@pytest.fixture
def benchmark_records():
    def record(*cells, substrate, graph):
        from benchmarks.record import record_benchmark

        for phase, seconds in cells:
            record_benchmark(
                "deltas",
                f"deltas/{substrate}/{phase}",
                seconds=seconds,
                items=R,
                meta=_meta(substrate, graph) | {"phase": phase},
            )

    return record


def test_derivation_chain_matches_cold_pool(substrate):
    """The equivalence the bench rides on, at bench scale: the derived
    pool's labels equal the cold pool's bit for bit."""
    name, graph, mutated = substrate
    store = WorldStore()
    with MonteCarloOracle(
        graph, seed=SEED, chunk_size=CHUNK, backend=BACKEND, store=store
    ) as oracle:
        oracle.ensure_samples(R)
    result = derive_pool(store, graph, mutated, seed=SEED, backend=BACKEND, chunk_size=CHUNK)
    assert result is not None and result.complete and result.worlds_derived == R
    assert result.columns_resampled == 1
    with MonteCarloOracle(
        mutated, seed=SEED, chunk_size=CHUNK, backend=BACKEND, store=store
    ) as warm:
        warm.ensure_samples(R)
        assert warm.cache_stats["worlds_sampled"] == 0
        warm_labels = warm.component_labels
    with MonteCarloOracle(
        mutated, seed=SEED, chunk_size=CHUNK, backend=BACKEND
    ) as cold:
        cold.ensure_samples(R)
        assert np.array_equal(warm_labels, cold.component_labels)
