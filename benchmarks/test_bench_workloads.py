"""Workload-suite benchmarks (``BENCH_workloads.json``).

Wall-clock cells for the k-median / k-center / expected-centrality
query families over the shared world pool, recorded into the durable
``BENCH_workloads.json`` artifact via :mod:`benchmarks.record`; CI
diffs it against the committed baseline with ``compare.py
--fail-over 2.0`` like the sampling and delta suites.

Cells (per substrate):

* ``kmedian/<substrate>/cold`` — sample a fresh pool, build the
  expected-distance matrix, greedy seed + Lloyd refine;
* ``kmedian/<substrate>/warm`` — same query against the already-warm
  store: zero resampling, the matrix build dominates;
* ``kcenter/<substrate>/warm`` — farthest-point traversal over the
  warm pool;
* ``centrality/<substrate>/{degree,harmonic}`` — expected centrality
  over the warm pool (degree is a sparse matmul; harmonic walks one
  block BFS per source);
* ``centrality/tiny60/betweenness`` — per-world Brandes is the one
  pure-Python kernel, so it gets its own small substrate.

Warm and cold runs of the same query must be bit-identical — the bench
asserts it, so the perf artifact doubles as a determinism regression.
"""

import time

import numpy as np
import pytest

from benchmarks.record import record_benchmark
from repro.datasets import dblp_like
from repro.datasets.synthetic import gnm_uncertain
from repro.sampling import WorldStore
from repro.workloads import (
    expected_centrality,
    kcenter_clustering,
    kmedian_clustering,
)

R = 256          # pool size under measurement
K = 4            # clusters
SEED = 3
CHUNK = 128
BACKEND = "unionfind"
TINY_R = 128     # betweenness budget on its dedicated substrate


def _substrate(name):
    if name == "dblp300":
        return dblp_like(300, seed=0)
    if name == "sparse200":
        return gnm_uncertain(200, 400, seed=7, prob_low=0.05, prob_high=0.35)
    if name == "tiny60":
        return gnm_uncertain(60, 120, seed=7, prob_low=0.1, prob_high=0.6)
    raise ValueError(name)


def _best_of(callable_, rounds=3):
    times = []
    for _ in range(rounds):
        begin = time.perf_counter()
        callable_()
        times.append(time.perf_counter() - begin)
    return min(times)


def _meta(name, graph, **extra):
    return {"substrate": name, "r": R, "backend": BACKEND,
            "nodes": graph.n_nodes, "edges": graph.n_edges, **extra}


@pytest.fixture(scope="module", params=["dblp300", "sparse200"])
def substrate(request):
    return request.param, _substrate(request.param)


def test_kclustering_cold_vs_warm(substrate):
    """Cold (sample + solve) and warm (solve only) k-median, plus warm
    k-center, all bit-identical across the store boundary."""
    name, graph = substrate
    kwargs = dict(seed=SEED, samples=R, chunk_size=CHUNK, backend=BACKEND)

    cold_results = []

    def cold_run():
        cold_results.append(kmedian_clustering(graph, K, store=WorldStore(), **kwargs))

    cold_seconds = _best_of(cold_run)

    store = WorldStore()
    kmedian_clustering(graph, K, store=store, **kwargs)  # warm the pool
    warm_results = []

    def warm_run():
        warm_results.append(kmedian_clustering(graph, K, store=store, **kwargs))

    warm_seconds = _best_of(warm_run)

    kcenter_results = []

    def kcenter_run():
        kcenter_results.append(kcenter_clustering(graph, K, store=store, **kwargs))

    kcenter_seconds = _best_of(kcenter_run)

    # Determinism across the store boundary: every round, same bits.
    reference = cold_results[0]
    for result in cold_results + warm_results:
        assert np.array_equal(
            result.clustering.assignment, reference.clustering.assignment
        )
        assert result.objective == reference.objective

    record_benchmark("workloads", f"kmedian/{name}/cold", seconds=cold_seconds,
                     items=R, meta=_meta(name, graph, k=K, phase="cold"))
    record_benchmark("workloads", f"kmedian/{name}/warm", seconds=warm_seconds,
                     items=R, meta=_meta(name, graph, k=K, phase="warm"))
    record_benchmark("workloads", f"kcenter/{name}/warm", seconds=kcenter_seconds,
                     items=R, meta=_meta(name, graph, k=K, phase="warm"))
    # Warm can never be slower than cold by more than noise: it does
    # strictly less work (no sampling, no labeling).
    assert warm_seconds <= cold_seconds * 1.5


@pytest.mark.parametrize("measure", ["degree", "harmonic"])
def test_centrality_throughput(substrate, measure):
    name, graph = substrate
    store = WorldStore()
    kwargs = dict(seed=SEED, samples=R, chunk_size=CHUNK, backend=BACKEND,
                  store=store, tol=1e-12)
    expected_centrality(graph, measure=measure, **kwargs)  # warm the pool

    results = []

    def run():
        results.append(expected_centrality(graph, measure=measure, **kwargs))

    seconds = _best_of(run)
    for result in results:
        assert np.array_equal(result.values, results[0].values)
        assert result.samples_used >= R
    record_benchmark("workloads", f"centrality/{name}/{measure}", seconds=seconds,
                     items=R, meta=_meta(name, graph, measure=measure))


def test_betweenness_on_tiny_substrate():
    """Brandes is the only pure-Python per-world kernel: bench it on a
    dedicated 60-node substrate so the cell stays in seconds."""
    graph = _substrate("tiny60")
    store = WorldStore()
    kwargs = dict(seed=SEED, samples=TINY_R, chunk_size=CHUNK, backend=BACKEND,
                  store=store, tol=1e-12)
    expected_centrality(graph, measure="betweenness", **kwargs)

    results = []

    def run():
        results.append(expected_centrality(graph, measure="betweenness", **kwargs))

    seconds = _best_of(run, rounds=2)
    assert np.array_equal(results[0].values, results[1].values)
    record_benchmark(
        "workloads", "centrality/tiny60/betweenness", seconds=seconds,
        items=TINY_R,
        meta={"substrate": "tiny60", "r": TINY_R, "backend": BACKEND,
              "nodes": graph.n_nodes, "edges": graph.n_edges,
              "measure": "betweenness"},
    )
