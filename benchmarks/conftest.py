"""Shared fixtures for the benchmark suite.

Each exhibit of the paper has a corresponding benchmark that regenerates
it at ``tiny`` scale (seconds, not the minutes/hours of the full runs —
use ``python -m repro.experiments.run_all --scale small`` for report-
quality numbers).  Dataset construction is cached per session so the
benches measure algorithms, not generators.
"""

from __future__ import annotations

import pytest

from repro.datasets import dblp_like, gavin_like, krogan_like
from repro.sampling import MonteCarloOracle


@pytest.fixture(scope="session")
def gavin_tiny():
    return gavin_like(seed=0, scale=0.12).graph


@pytest.fixture(scope="session")
def krogan_tiny():
    return krogan_like(seed=0, scale=0.12)


@pytest.fixture(scope="session")
def dblp_tiny():
    return dblp_like(1200, seed=0)


@pytest.fixture(scope="session")
def gavin_oracle(gavin_tiny):
    oracle = MonteCarloOracle(gavin_tiny, seed=1, chunk_size=128)
    oracle.ensure_samples(256)
    return oracle
