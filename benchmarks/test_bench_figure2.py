"""Benchmark for Figure 2: the inner/outer AVPR metric computation.

The AVPR metrics are the expensive part of the Figure 2 evaluation
(pairwise reliability over all node pairs); this measures the per-world
group-counting implementation against a clustering of the tiny Gavin
graph.
"""

import numpy as np

from repro.baselines import gmm_clustering
from repro.metrics import avpr


def test_avpr_group_counting(benchmark, gavin_tiny, gavin_oracle):
    clustering = gmm_clustering(gavin_tiny, 12, seed=0)
    inner, outer = benchmark(avpr, clustering, gavin_oracle)
    assert np.isfinite(inner)
    assert np.isfinite(outer)


def test_avpr_many_clusters(benchmark, gavin_tiny, gavin_oracle):
    clustering = gmm_clustering(gavin_tiny, gavin_tiny.n_nodes // 3, seed=0)
    inner, outer = benchmark(avpr, clustering, gavin_oracle)
    assert np.isfinite(outer)
