"""Benchmarks for the reliability-query primitives and representative worlds."""

from repro.queries import (
    k_nearest_by_reliability,
    most_reliable_source,
    reliable_set,
)
from repro.sampling.representative import (
    average_degree_representative,
    most_probable_world,
)


def test_knn_query(benchmark, gavin_oracle):
    result = benchmark(k_nearest_by_reliability, gavin_oracle, 0, 10)
    assert len(result) <= 10


def test_knn_query_depth2(benchmark, gavin_oracle):
    benchmark(k_nearest_by_reliability, gavin_oracle, 0, 10, depth=2)


def test_reliable_set_query(benchmark, gavin_oracle):
    benchmark(reliable_set, gavin_oracle, 0, 0.5)


def test_most_reliable_source_20_candidates(benchmark, gavin_oracle):
    candidates = list(range(20))
    benchmark(most_reliable_source, gavin_oracle, candidates)


def test_most_probable_world(benchmark, gavin_tiny):
    mask = benchmark(most_probable_world, gavin_tiny)
    assert mask.shape == (gavin_tiny.n_edges,)


def test_average_degree_representative(benchmark, gavin_tiny):
    mask = benchmark(average_degree_representative, gavin_tiny)
    assert mask.shape == (gavin_tiny.n_edges,)
