"""Diff two ``BENCH_*.json`` artifacts and print a speedup table.

Used two ways:

* by humans, to eyeball a change's effect::

      python benchmarks/compare.py benchmarks/baselines/BENCH_sampling.json \
          benchmarks/out/BENCH_sampling.json

* by the CI perf gate, which fails the build when any benchmark got
  more than ``--fail-over`` times slower than the committed baseline::

      python benchmarks/compare.py baseline.json current.json --fail-over 2.0

Speedup is ``baseline_seconds / current_seconds`` — above 1.0 means the
current run is faster.  Benchmarks present in only one file are listed
but never fail the gate (new benchmarks have no baseline yet; retired
ones have no current run).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

if __package__ in (None, ""):
    # Allow `python benchmarks/compare.py` without installing anything.
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.record import load_artifact  # noqa: E402


def compare_artifacts(baseline: dict, current: dict) -> list[dict]:
    """Per-benchmark comparison rows, sorted worst speedup first."""
    rows = []
    names = sorted(set(baseline["benchmarks"]) | set(current["benchmarks"]))
    for name in names:
        base = baseline["benchmarks"].get(name)
        curr = current["benchmarks"].get(name)
        row = {
            "name": name,
            "baseline_seconds": base["seconds"] if base else None,
            "current_seconds": curr["seconds"] if curr else None,
            "speedup": None,
        }
        if base and curr:
            row["speedup"] = base["seconds"] / curr["seconds"]
        rows.append(row)
    rows.sort(key=lambda row: (row["speedup"] is None, row["speedup"]))
    return rows


def _fmt_seconds(value) -> str:
    return "-" if value is None else f"{value * 1000:.1f}ms"


def _fmt_speedup(value) -> str:
    return "-" if value is None else f"{value:.2f}x"


def render_table(rows: list[dict]) -> str:
    name_width = max([len(row["name"]) for row in rows] + [len("benchmark")])
    lines = [
        f"{'benchmark':<{name_width}}  {'baseline':>9}  {'current':>9}  {'speedup':>8}"
    ]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append(
            f"{row['name']:<{name_width}}  "
            f"{_fmt_seconds(row['baseline_seconds']):>9}  "
            f"{_fmt_seconds(row['current_seconds']):>9}  "
            f"{_fmt_speedup(row['speedup']):>8}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("baseline", help="reference BENCH_*.json (usually committed)")
    parser.add_argument("current", help="freshly produced BENCH_*.json")
    parser.add_argument(
        "--fail-over",
        type=float,
        default=None,
        metavar="RATIO",
        help="exit non-zero if any benchmark is more than RATIO times "
        "slower than the baseline (the CI gate uses 2.0)",
    )
    args = parser.parse_args(argv)
    try:
        baseline = load_artifact(args.baseline)
        current = load_artifact(args.current)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    rows = compare_artifacts(baseline, current)
    if not rows:
        print("no benchmarks in either artifact", file=sys.stderr)
        return 2
    print(render_table(rows))

    missing = [row["name"] for row in rows if row["speedup"] is None]
    if missing:
        print(f"\nnot comparable (present in only one file): {len(missing)}")
    if args.fail_over is not None:
        threshold = 1.0 / args.fail_over
        regressions = [
            row for row in rows if row["speedup"] is not None and row["speedup"] < threshold
        ]
        if regressions:
            print(
                f"\nPERF GATE FAILED: {len(regressions)} benchmark(s) more than "
                f"{args.fail_over:g}x slower than baseline:"
            )
            for row in regressions:
                print(f"  {row['name']}: {_fmt_speedup(row['speedup'])}")
            return 1
        print(f"\nperf gate ok (no benchmark more than {args.fail_over:g}x slower)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
