"""Throughput of the parallel world-sampling engine.

Measures ``ensure_samples`` (mask sampling + labeling, pool startup
included) for every backend × worker-count × substrate cell and records
each measurement into the durable ``BENCH_sampling.json`` artifact via
:mod:`benchmarks.record` — the file the CI perf gate diffs against the
committed baseline.

Substrates:

* ``dblp1200`` — a dblp-like collaboration graph at tiny scale, the
  acceptance substrate for the parallel engine;
* ``sparse1500`` — the subcritical synthetic substrate of
  ``test_bench_backends.py``, for continuity with the PR-1 numbers.

The speedup story is hardware-bound: on a single-core box the
worker-pool cells pay fork/IPC overhead for no gain (the serial
fallback exists for exactly that reason), while on >= 4 cores the
4-worker cells approach linear scaling because chunk sampling is
embarrassingly parallel across 128-world shards.  Whatever the
hardware says ends up in the artifact — that is the point.
"""

import numpy as np
import pytest

from benchmarks.record import record_pytest_benchmark
from repro.datasets import dblp_like
from repro.datasets.synthetic import gnm_uncertain
from repro.sampling import MonteCarloOracle

R = 512  # worlds per measured ensure_samples call (= 4 default shards)

BACKEND_NAMES = ("scipy", "unionfind")
WORKER_COUNTS = (1, 2, 4)


def _substrate(name):
    if name == "dblp1200":
        return dblp_like(1200, seed=0)
    if name == "sparse1500":
        return gnm_uncertain(1500, 3000, seed=7, prob_low=0.05, prob_high=0.35)
    raise ValueError(name)


@pytest.fixture(scope="module", params=["dblp1200", "sparse1500"])
def substrate(request):
    return request.param, _substrate(request.param)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("backend_name", BACKEND_NAMES)
def test_ensure_samples_throughput(benchmark, substrate, backend_name, workers):
    substrate_name, graph = substrate

    def run():
        with MonteCarloOracle(
            graph, seed=1, chunk_size=R, backend=backend_name, workers=workers
        ) as oracle:
            oracle.ensure_samples(R)
            return oracle.num_samples

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    record_pytest_benchmark(
        "sampling",
        f"ensure_samples/{substrate_name}/{backend_name}/workers={workers}",
        benchmark,
        items=R,
        meta={
            "backend": backend_name,
            "workers": workers,
            "substrate": substrate_name,
            "r": R,
            "nodes": graph.n_nodes,
            "edges": graph.n_edges,
        },
    )


def test_parallel_pool_bit_identical_to_serial(substrate):
    """The fixed-seed equivalence the bench rides on: every measured
    worker count produces the same pool of worlds, so the throughput
    cells are comparing identical work."""
    substrate_name, graph = substrate
    pools = []
    for workers in WORKER_COUNTS:
        with MonteCarloOracle(
            graph, seed=1, chunk_size=R, backend="unionfind", workers=workers
        ) as oracle:
            oracle.ensure_samples(R)
            pools.append(oracle.component_labels)
    assert np.array_equal(pools[0], pools[1])
    assert np.array_equal(pools[0], pools[2])
