"""Throughput of the parallel world-sampling engine and the world store.

Measures ``ensure_samples`` (mask sampling + labeling, pool startup
included) for every backend × worker-count × substrate cell, plus the
warm-vs-cold world-store cells (``world_store/<substrate>/{cold,warm}``:
a cold run samples into a fresh disk cache, a warm run serves the same
pool from it), and records each measurement into the durable
``BENCH_sampling.json`` artifact via :mod:`benchmarks.record` — the
file the CI perf gate diffs against the committed baseline.

Substrates:

* ``dblp1200`` — a dblp-like collaboration graph at tiny scale, the
  acceptance substrate for the parallel engine;
* ``sparse1500`` — the subcritical synthetic substrate of
  ``test_bench_backends.py``, for continuity with the PR-1 numbers.

The speedup story is hardware-bound: on a single-core box the
worker-pool cells pay fork/IPC overhead for no gain (the serial
fallback exists for exactly that reason), while on >= 4 cores the
4-worker cells approach linear scaling because chunk sampling is
embarrassingly parallel across 128-world shards.  Whatever the
hardware says ends up in the artifact — that is the point.
"""

import shutil

import numpy as np
import pytest

from benchmarks.record import record_pytest_benchmark
from repro.datasets import dblp_like
from repro.datasets.synthetic import gnm_uncertain
from repro.sampling import MonteCarloOracle

R = 512  # worlds per measured ensure_samples call (= 4 default shards)

BACKEND_NAMES = ("scipy", "unionfind", "bitparallel")
WORKER_COUNTS = (1, 2, 4)


def _substrate(name):
    if name == "dblp1200":
        return dblp_like(1200, seed=0)
    if name == "sparse1500":
        return gnm_uncertain(1500, 3000, seed=7, prob_low=0.05, prob_high=0.35)
    raise ValueError(name)


@pytest.fixture(scope="module", params=["dblp1200", "sparse1500"])
def substrate(request):
    return request.param, _substrate(request.param)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("backend_name", BACKEND_NAMES)
def test_ensure_samples_throughput(benchmark, substrate, backend_name, workers):
    substrate_name, graph = substrate

    def run():
        with MonteCarloOracle(
            graph, seed=1, chunk_size=R, backend=backend_name, workers=workers
        ) as oracle:
            oracle.ensure_samples(R)
            return oracle.num_samples

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    record_pytest_benchmark(
        "sampling",
        f"ensure_samples/{substrate_name}/{backend_name}/workers={workers}",
        benchmark,
        items=R,
        meta={
            "backend": backend_name,
            "workers": workers,
            "substrate": substrate_name,
            "r": R,
            "nodes": graph.n_nodes,
            "edges": graph.n_edges,
        },
    )


@pytest.mark.parametrize("phase", ["cold", "warm"])
def test_world_store_warm_vs_cold(benchmark, substrate, phase, tmp_path_factory):
    """Warm-vs-cold cache cells: the acceptance numbers of the world store.

    ``cold`` draws R worlds into a fresh disk cache (sampling + packing
    + spill); ``warm`` re-opens the same cache in a fresh oracle and
    serves the identical pool without sampling a single mask.
    """
    substrate_name, graph = substrate
    cache = tmp_path_factory.mktemp(f"worldcache-{substrate_name}-{phase}")

    def reset_cache():
        shutil.rmtree(cache, ignore_errors=True)

    def run():
        with MonteCarloOracle(
            graph, seed=1, chunk_size=R, backend="unionfind", cache_dir=cache
        ) as oracle:
            oracle.ensure_samples(R)
            return oracle.cache_stats

    if phase == "cold":
        stats = benchmark.pedantic(
            run, setup=reset_cache, rounds=3, iterations=1, warmup_rounds=0
        )
        assert stats == {"worlds_cached": 0, "worlds_sampled": R}
    else:
        run()  # populate once; every measured round is then fully warm
        stats = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
        assert stats == {"worlds_cached": R, "worlds_sampled": 0}
    record_pytest_benchmark(
        "sampling",
        f"world_store/{substrate_name}/{phase}",
        benchmark,
        items=R,
        meta={
            "phase": phase,
            "substrate": substrate_name,
            "backend": "unionfind",
            "r": R,
            "nodes": graph.n_nodes,
            "edges": graph.n_edges,
        },
    )


def test_world_store_warm_pool_bit_identical(substrate, tmp_path):
    """The equivalence the warm cells ride on: cached == freshly drawn."""
    substrate_name, graph = substrate
    with MonteCarloOracle(
        graph, seed=1, chunk_size=R, backend="unionfind", cache_dir=tmp_path
    ) as cold:
        cold.ensure_samples(R)
        cold_labels = cold.component_labels
    with MonteCarloOracle(
        graph, seed=1, chunk_size=R, backend="unionfind", cache_dir=tmp_path
    ) as warm:
        warm.ensure_samples(R)
        assert warm.cache_stats["worlds_sampled"] == 0
        assert np.array_equal(warm.component_labels, cold_labels)


def test_parallel_pool_bit_identical_to_serial(substrate):
    """The fixed-seed equivalence the bench rides on: every measured
    worker count produces the same pool of worlds, so the throughput
    cells are comparing identical work."""
    substrate_name, graph = substrate
    pools = []
    for workers in WORKER_COUNTS:
        with MonteCarloOracle(
            graph, seed=1, chunk_size=R, backend="unionfind", workers=workers
        ) as oracle:
            oracle.ensure_samples(R)
            pools.append(oracle.component_labels)
    assert np.array_equal(pools[0], pools[1])
    assert np.array_equal(pools[0], pools[2])
