"""Tests for the generic synthetic generators."""

import numpy as np
import pytest

from repro import GraphValidationError
from repro.datasets.synthetic import (
    gnm_uncertain,
    path_graph,
    planted_partition,
    sample_distinct_pairs,
    star_graph,
)


class TestSampleDistinctPairs:
    def test_exact_count_and_distinct(self):
        rng = np.random.default_rng(0)
        src, dst = sample_distinct_pairs(20, 30, rng)
        assert len(src) == 30
        keys = src.astype(np.int64) * 20 + dst
        assert len(np.unique(keys)) == 30
        assert np.all(src < dst)

    def test_exclusion_respected(self):
        rng = np.random.default_rng(1)
        exclude = np.array([0 * 10 + 1], dtype=np.int64)  # pair (0, 1)
        src, dst = sample_distinct_pairs(10, 20, rng, exclude_keys=exclude)
        keys = src.astype(np.int64) * 10 + dst
        assert 1 not in keys.tolist()

    def test_impossible_request(self):
        rng = np.random.default_rng(2)
        with pytest.raises(GraphValidationError):
            sample_distinct_pairs(4, 100, rng)


class TestGnm:
    def test_sizes(self):
        g = gnm_uncertain(30, 50, seed=0)
        assert g.n_nodes == 30
        assert g.n_edges == 50

    def test_probability_range(self):
        g = gnm_uncertain(30, 50, prob_low=0.4, prob_high=0.6, seed=1)
        assert np.all(g.edge_prob >= 0.4)
        assert np.all(g.edge_prob <= 0.6)

    def test_deterministic(self):
        a = gnm_uncertain(25, 40, seed=3)
        b = gnm_uncertain(25, 40, seed=3)
        assert np.array_equal(a.edge_src, b.edge_src)
        assert np.array_equal(a.edge_prob, b.edge_prob)

    def test_too_small(self):
        with pytest.raises(GraphValidationError):
            gnm_uncertain(1, 0)


class TestPlantedPartition:
    def test_membership_shape(self):
        graph, membership = planted_partition(60, 4, seed=0)
        assert graph.n_nodes == 60
        assert len(membership) == 60
        assert set(np.unique(membership)) == {0, 1, 2, 3}

    def test_communities_internally_connected(self):
        graph, membership = planted_partition(40, 4, seed=1)
        labels = graph.connected_components()
        for community in range(4):
            nodes = np.flatnonzero(membership == community)
            assert len(set(labels[nodes].tolist())) == 1

    def test_probability_bands(self):
        graph, membership = planted_partition(
            60, 3, intra_prob=(0.8, 0.9), inter_prob=(0.1, 0.2), seed=2
        )
        for u, v, p in zip(graph.edge_src, graph.edge_dst, graph.edge_prob, strict=True):
            if membership[u] == membership[v]:
                assert 0.8 <= p <= 0.9
            else:
                assert 0.1 <= p <= 0.2

    def test_invalid_sizes(self):
        with pytest.raises(GraphValidationError):
            planted_partition(5, 3)

    def test_deterministic(self):
        a, ma = planted_partition(30, 3, seed=9)
        b, mb = planted_partition(30, 3, seed=9)
        assert np.array_equal(ma, mb)
        assert np.array_equal(a.edge_prob, b.edge_prob)


class TestFixedShapes:
    def test_path(self):
        g = path_graph(5, prob=0.7)
        assert g.n_nodes == 5
        assert g.n_edges == 4
        assert np.all(g.edge_prob == 0.7)
        assert g.degrees().tolist() == [1, 2, 2, 2, 1]

    def test_star(self):
        g = star_graph(4, prob=0.6)
        assert g.n_nodes == 5
        assert g.degrees()[0] == 4

    def test_invalid(self):
        with pytest.raises(GraphValidationError):
            path_graph(1)
        with pytest.raises(GraphValidationError):
            star_graph(0)
