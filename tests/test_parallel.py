"""Equivalence suite for the parallel world-sampling engine.

Mirrors ``tests/test_backends.py``: where that suite pins that the
labeling *backend* never changes results, this one pins that the
*execution layer* never does — for a fixed seed, the pool of worlds
(and everything downstream: estimates, depth queries, MCP/ACP
clusterings) is bit-identical whether chunks are sampled serially,
across 4 worker processes, or in any chunking pattern.
"""

import warnings

import numpy as np
import pytest

from repro.core.acp import acp_clustering
from repro.core.mcp import mcp_clustering
from repro.exceptions import OracleError
from repro.sampling import MonteCarloOracle
from repro.sampling.backends import ScipyWorldBackend
from repro.sampling.parallel import (
    DEFAULT_SHARD_WORLDS,
    EDGE_STREAM_TAG,
    ParallelSampler,
    edge_seed_sequence,
    edge_stream_state,
    ensure_seed_sequence,
    resolve_workers,
    sample_edge_column,
    sample_mask_rows,
    shard_plan,
    validate_workers_spec,
)
from tests.conftest import random_graph

WORKER_COUNTS = (1, 4)
BACKEND_NAMES = ("scipy", "unionfind")


@pytest.fixture(scope="module")
def tiny_substrate():
    """An 80-node PPI-like substrate, the size the tiny presets use."""
    return random_graph(80, 0.06, np.random.default_rng(11), prob_low=0.2, prob_high=0.95)


def pooled_oracle(graph, *, workers, backend="scipy", chunk_size=512, seed=99, samples=512):
    oracle = MonteCarloOracle(
        graph, seed=seed, chunk_size=chunk_size, backend=backend, workers=workers
    )
    oracle.ensure_samples(samples)
    return oracle


class TestEdgeStreams:
    """The per-edge random-stream derivation the whole design rests on."""

    def test_split_draw_equals_whole_draw(self):
        """World offsets must continue an edge's stream exactly (pins
        the one-uniform-per-world advance arithmetic)."""
        root = ensure_seed_sequence(42)
        whole = sample_edge_column(root, 3, 9, 0.5, 0, 50)
        parts = [
            sample_edge_column(root, 3, 9, 0.5, 0, 20),
            sample_edge_column(root, 3, 9, 0.5, 20, 13),
            sample_edge_column(root, 3, 9, 0.5, 33, 17),
        ]
        assert np.array_equal(whole, np.concatenate(parts))

    def test_edges_are_independent_streams(self):
        root = ensure_seed_sequence(0)
        a = sample_edge_column(root, 0, 1, 0.5, 0, 64)
        b = sample_edge_column(root, 0, 2, 0.5, 0, 64)
        assert not np.array_equal(a, b)

    def test_stream_keyed_by_canonical_endpoints(self):
        """(u, v) and (v, u) are the same edge, hence the same stream."""
        root = np.random.SeedSequence(7)
        assert edge_seed_sequence(root, 5, 2).spawn_key == (EDGE_STREAM_TAG, 2, 5)
        assert np.array_equal(
            sample_edge_column(root, 5, 2, 0.4, 0, 32),
            sample_edge_column(root, 2, 5, 0.4, 0, 32),
        )

    def test_stream_independent_of_column_position(self):
        """Mask bit (i, e) depends on the edge's *endpoints*, not its
        position in the edge arrays — the delta-derivation contract."""
        root = ensure_seed_sequence(5)
        src_a, dst_a = np.array([0, 1, 2]), np.array([1, 2, 3])
        src_b, dst_b = np.array([2, 0, 1]), np.array([3, 1, 2])  # permuted
        prob = np.array([0.3, 0.5, 0.7])
        a = sample_mask_rows(src_a, dst_a, prob, root, 0, 40)
        b = sample_mask_rows(src_b, dst_b, prob[[2, 0, 1]], root, 0, 40)
        assert np.array_equal(a, b[:, [1, 2, 0]])

    def test_cached_state_matches_fresh_derivation(self):
        root = ensure_seed_sequence(11)
        state = edge_stream_state(root, 4, 7)
        assert np.array_equal(
            sample_edge_column(root, 4, 7, 0.6, 10, 30, state=state),
            sample_edge_column(root, 4, 7, 0.6, 10, 30),
        )

    def test_mask_rows_match_columns(self):
        """The row API is the column API evaluated per edge."""
        root = ensure_seed_sequence(3)
        src, dst = np.array([0, 0, 2]), np.array([1, 3, 3])
        prob = np.array([0.2, 0.5, 0.9])
        rows = sample_mask_rows(src, dst, prob, root, 7, 25)
        for j in range(3):
            assert np.array_equal(
                rows[:, j],
                sample_edge_column(root, int(src[j]), int(dst[j]), prob[j], 7, 25),
            )

    def test_state_cache_is_filled_and_reused(self):
        root = ensure_seed_sequence(9)
        cache: dict = {}
        first = sample_mask_rows(
            np.array([0]), np.array([1]), np.array([0.5]), root, 0, 16, state_cache=cache
        )
        assert (0, 1) in cache
        again = sample_mask_rows(
            np.array([0]), np.array([1]), np.array([0.5]), root, 0, 16, state_cache=cache
        )
        assert np.array_equal(first, again)

    def test_edgeless_graph(self):
        masks = sample_mask_rows(
            np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp),
            np.empty(0), ensure_seed_sequence(1), 0, 5,
        )
        assert masks.shape == (5, 0)

    def test_seed_sequence_coercions(self):
        assert ensure_seed_sequence(5).entropy == 5
        ss = np.random.SeedSequence(9)
        assert ensure_seed_sequence(ss) is ss
        gen_a = np.random.default_rng(3)
        gen_b = np.random.default_rng(3)
        assert ensure_seed_sequence(gen_a).entropy == ensure_seed_sequence(gen_b).entropy
        with pytest.raises(TypeError):
            ensure_seed_sequence("seed")


class TestShardPlan:
    def test_aligned(self):
        assert shard_plan(0, 256, 128) == [(0, 0, 128), (1, 0, 128)]

    def test_straddles_boundaries(self):
        assert shard_plan(70, 60, 32) == [(2, 6, 26), (3, 0, 32), (4, 0, 2)]

    def test_empty(self):
        assert shard_plan(10, 0, 32) == []

    def test_rows_cover_exactly(self):
        tasks = shard_plan(123, 777, 64)
        assert sum(rows for _, _, rows in tasks) == 777
        with pytest.raises(ValueError):
            shard_plan(-1, 5, 32)
        with pytest.raises(ValueError):
            shard_plan(0, 5, 0)


class TestResolveWorkers:
    def test_auto_is_min_of_cores_and_tasks(self):
        assert resolve_workers("auto", chunk_size=512, shard_worlds=128, cpu_count=16) == 4
        assert resolve_workers("auto", chunk_size=512, shard_worlds=128, cpu_count=2) == 2
        assert resolve_workers(None, chunk_size=100, shard_worlds=128, cpu_count=8) == 1

    def test_explicit_int(self):
        assert resolve_workers(3, chunk_size=64) == 3

    def test_rejects_bad_specs(self):
        with pytest.raises(OracleError, match="workers"):
            resolve_workers(0, chunk_size=64)
        with pytest.raises(OracleError, match="workers"):
            resolve_workers(-2, chunk_size=64)
        with pytest.raises(OracleError, match="workers"):
            resolve_workers(2.5, chunk_size=64)
        with pytest.raises(OracleError, match="workers"):
            resolve_workers(True, chunk_size=64)

    def test_validate_is_the_shared_source_of_truth(self):
        assert validate_workers_spec(None) == "auto"
        assert validate_workers_spec("auto") == "auto"
        assert validate_workers_spec(np.int64(2)) == 2
        for bad in (0, -1, "four", 1.5, False):
            with pytest.raises(OracleError, match="workers"):
                validate_workers_spec(bad)


class TestWorkerCountEquivalence:
    """workers=1 vs workers=4: bit-identical pools under both backends."""

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_labels_identical(self, tiny_substrate, backend):
        serial = pooled_oracle(tiny_substrate, workers=1, backend=backend)
        parallel = pooled_oracle(tiny_substrate, workers=4, backend=backend)
        assert serial.workers == 1 and parallel.workers == 4
        assert np.array_equal(serial.component_labels, parallel.component_labels)
        parallel.close()

    def test_labels_identical_across_backends_and_workers(self, tiny_substrate):
        """The full 2x2 grid collapses to one pool for a fixed seed."""
        pools = [
            pooled_oracle(tiny_substrate, workers=w, backend=b, samples=256)
            for w in WORKER_COUNTS
            for b in BACKEND_NAMES
        ]
        reference = pools[0].component_labels
        for oracle in pools[1:]:
            assert np.array_equal(oracle.component_labels, reference)
            oracle.close()

    def test_estimates_identical(self, tiny_substrate):
        serial = pooled_oracle(tiny_substrate, workers=1)
        parallel = pooled_oracle(tiny_substrate, workers=4)
        for node in (0, 17, 79):
            assert np.array_equal(
                serial.connection_to_all(node), parallel.connection_to_all(node)
            )
        assert np.array_equal(
            serial.connection_to_all(3, depth=2), parallel.connection_to_all(3, depth=2)
        )
        assert np.array_equal(serial.pairwise_matrix(), parallel.pairwise_matrix())
        parallel.close()

    def test_chunking_pattern_is_invisible(self, tiny_substrate):
        """Pool content depends only on (seed, r) — not on the chunk
        boundaries of the ensure_samples calls that grew it."""
        direct = pooled_oracle(tiny_substrate, workers=1, samples=300)
        stepped = MonteCarloOracle(tiny_substrate, seed=99, chunk_size=512, backend="scipy")
        for r in (1, 70, 130, 300):
            stepped.ensure_samples(r)
        small_chunks = MonteCarloOracle(
            tiny_substrate, seed=99, chunk_size=64, backend="scipy"
        )
        small_chunks.ensure_samples(300)
        assert np.array_equal(direct.component_labels, stepped.component_labels)
        assert np.array_equal(direct.component_labels, small_chunks.component_labels)


class TestClusteringEquivalence:
    """MCP/ACP return identical clusterings under every worker count."""

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_mcp_identical(self, tiny_substrate, backend):
        results = [
            mcp_clustering(
                tiny_substrate, 6, seed=4, chunk_size=512, backend=backend, workers=w
            )
            for w in WORKER_COUNTS
        ]
        first, second = results
        assert np.array_equal(first.clustering.assignment, second.clustering.assignment)
        assert np.array_equal(first.clustering.centers, second.clustering.centers)
        assert first.q_final == second.q_final
        assert first.min_prob_estimate == second.min_prob_estimate
        assert [g.q for g in first.history] == [g.q for g in second.history]

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_acp_identical(self, tiny_substrate, backend):
        results = [
            acp_clustering(
                tiny_substrate, 6, seed=4, chunk_size=512, backend=backend, workers=w
            )
            for w in WORKER_COUNTS
        ]
        first, second = results
        assert np.array_equal(first.clustering.assignment, second.clustering.assignment)
        assert first.phi_best == second.phi_best
        assert first.avg_prob_estimate == second.avg_prob_estimate


class CountingBackend:
    """WorldBackend spy recording per-call world counts (not poolable)."""

    name = "counting"

    def __init__(self):
        self._inner = ScipyWorldBackend()
        self.calls: list[int] = []

    def component_labels(self, graph, masks):
        self.calls.append(masks.shape[0])
        return self._inner.component_labels(graph, masks)


class TestSerialFallback:
    def test_custom_backend_instances_stay_serial(self, tiny_substrate):
        """Stateful/instrumented backends must remain observable, so a
        parallel-capable oracle routes them down the serial path."""
        spy = CountingBackend()
        oracle = MonteCarloOracle(
            tiny_substrate, seed=0, chunk_size=512, backend=spy, workers=4
        )
        oracle.ensure_samples(512)
        # One in-process labeling call per chunk proves no dispatch.
        assert spy.calls == [512]
        assert oracle.workers == 4

    def test_broken_pool_falls_back_and_warns(self, tiny_substrate, monkeypatch):
        import repro.sampling.parallel as parallel_module

        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no process spawning here")

        monkeypatch.setattr(parallel_module, "ProcessPoolExecutor", ExplodingPool)
        oracle = MonteCarloOracle(
            tiny_substrate, seed=99, chunk_size=512, backend="scipy", workers=4
        )
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            oracle.ensure_samples(512)
        reference = pooled_oracle(tiny_substrate, workers=1)
        assert np.array_equal(oracle.component_labels, reference.component_labels)
        # The fallback is sticky: later growth stays serial, silently.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            oracle.ensure_samples(600)

    def test_small_chunks_never_dispatch(self, tiny_substrate, monkeypatch):
        """Chunks under two full shards of work run inline — pool
        startup would dominate (and "auto" small runs stay serial)."""
        import repro.sampling.parallel as parallel_module

        def forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("pool must not be created for small chunks")

        monkeypatch.setattr(parallel_module, "ProcessPoolExecutor", forbidden)
        below_threshold = 2 * DEFAULT_SHARD_WORLDS - 1
        oracle = MonteCarloOracle(tiny_substrate, seed=1, chunk_size=512, workers=4)
        oracle.ensure_samples(below_threshold)
        assert oracle.num_samples == below_threshold


class TestSamplerLifecycle:
    def test_context_manager_closes_pool(self, tiny_substrate):
        with ParallelSampler(tiny_substrate, backend="scipy", workers=4) as sampler:
            masks, labels = sampler.sample_chunk(np.random.SeedSequence(5), 0, 300)
            assert masks.shape[0] == labels.shape[0] == 300
            assert sampler._pool is not None
        assert sampler._pool is None

    def test_oracle_close_is_idempotent(self, tiny_substrate):
        oracle = pooled_oracle(tiny_substrate, workers=4, samples=256)
        oracle.close()
        oracle.close()
        # The pool restarts transparently if sampling continues.
        oracle.ensure_samples(512)
        assert oracle.num_samples == 512
        oracle.close()

    def test_repr_mentions_workers(self, tiny_substrate):
        oracle = MonteCarloOracle(tiny_substrate, seed=0, workers=2)
        assert "workers=2" in repr(oracle)
        assert "workers=2" in repr(ParallelSampler(tiny_substrate, workers=2))


class TestMaxSamplesGuard:
    """Regression: an over-budget request must fail before any sampling."""

    def test_rejected_request_leaves_pool_untouched(self, two_triangles):
        spy = CountingBackend()
        oracle = MonteCarloOracle(
            two_triangles, seed=0, chunk_size=32, max_samples=100, backend=spy
        )
        oracle.ensure_samples(64)
        calls_before = list(spy.calls)
        with pytest.raises(OracleError, match="max_samples"):
            oracle.ensure_samples(150)
        # No chunk was drawn or labeled for the rejected request.
        assert spy.calls == calls_before
        assert oracle.num_samples == 64
        assert oracle.component_labels.shape[0] == 64

    def test_budget_boundary_is_inclusive(self, two_triangles):
        oracle = MonteCarloOracle(two_triangles, seed=0, chunk_size=32, max_samples=100)
        oracle.ensure_samples(100)
        assert oracle.num_samples == 100
