"""Tests for union-find and connected-component labelling."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.components import (
    UnionFind,
    connected_component_labels,
    largest_component_indices,
)


class TestUnionFind:
    def test_initial_state(self):
        uf = UnionFind(5)
        assert uf.n_sets == 5
        assert len(uf) == 5
        assert all(uf.find(i) == i for i in range(5))

    def test_union_merges(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.connected(0, 1)
        assert not uf.connected(0, 2)
        assert uf.n_sets == 3

    def test_union_idempotent(self):
        uf = UnionFind(3)
        assert uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.n_sets == 2

    def test_transitivity(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.connected(0, 2)

    def test_labels_dense(self):
        uf = UnionFind(5)
        uf.union(0, 4)
        uf.union(1, 3)
        labels = uf.labels()
        assert labels[0] == labels[4]
        assert labels[1] == labels[3]
        assert len(np.unique(labels)) == 3
        assert labels.max() == 2  # dense relabelling

    def test_set_sizes(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert sorted(uf.set_sizes().tolist()) == [1, 1, 3]

    def test_union_edges_bulk(self):
        uf = UnionFind(6)
        uf.union_edges(np.array([0, 2, 4]), np.array([1, 3, 5]))
        assert uf.n_sets == 3

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    @given(
        st.lists(
            st.tuples(st.integers(0, 19), st.integers(0, 19)),
            max_size=60,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_networkx(self, edges):
        uf = UnionFind(20)
        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(range(20))
        for u, v in edges:
            if u != v:
                uf.union(u, v)
                nx_graph.add_edge(u, v)
        expected = {frozenset(c) for c in nx.connected_components(nx_graph)}
        labels = uf.labels()
        got = {
            frozenset(np.flatnonzero(labels == value).tolist())
            for value in np.unique(labels)
        }
        assert got == expected


class TestComponentLabels:
    def test_no_edges(self):
        labels = connected_component_labels(4, np.array([]), np.array([]))
        assert sorted(labels.tolist()) == [0, 1, 2, 3]

    def test_simple_components(self):
        labels = connected_component_labels(5, np.array([0, 2]), np.array([1, 3]))
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[4] not in (labels[0], labels[2])

    def test_mask_selects_possible_world(self):
        src = np.array([0, 1, 2])
        dst = np.array([1, 2, 3])
        mask = np.array([True, False, True])
        labels = connected_component_labels(4, src, dst, mask=mask)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            connected_component_labels(3, np.array([0, 1]), np.array([1]))

    def test_large_input_uses_scipy_path(self):
        rng = np.random.default_rng(0)
        n, m = 300, 5000
        src = rng.integers(0, n, size=m)
        dst = (src + 1 + rng.integers(0, n - 1, size=m)) % n
        labels_scipy = connected_component_labels(n, src, dst)
        uf = UnionFind(n)
        uf.union_edges(src, dst)
        labels_uf = uf.labels()
        # Same partition (labels may be permuted).
        mapping = {}
        for a, b in zip(labels_scipy.tolist(), labels_uf.tolist(), strict=True):
            assert mapping.setdefault(a, b) == b


class TestLargestComponent:
    def test_picks_biggest(self):
        labels = np.array([0, 0, 1, 1, 1, 2])
        assert largest_component_indices(labels).tolist() == [2, 3, 4]

    def test_tie_breaks_to_smallest_label(self):
        labels = np.array([1, 1, 0, 0])
        assert largest_component_indices(labels).tolist() == [2, 3]

    def test_empty(self):
        assert largest_component_indices(np.array([], dtype=np.int32)).size == 0
