"""Cross-module integration tests: full pipelines a downstream user runs."""

import numpy as np
import pytest

from repro import (
    MonteCarloOracle,
    acp_clustering,
    mcp_clustering,
    read_uncertain_graph,
    write_uncertain_graph,
)
from repro.baselines import kpt_clustering, mcl_clustering
from repro.datasets import gavin_like, krogan_like
from repro.metrics import (
    avg_connection_probability,
    avpr,
    min_connection_probability,
    pair_confusion,
)
from repro.queries import k_nearest_by_reliability, most_reliable_source
from repro.sampling import PracticalSchedule


class TestFileToMetricsPipeline:
    def test_roundtrip_then_cluster_then_score(self, tmp_path):
        dataset = gavin_like(seed=4, scale=0.1)
        path = tmp_path / "gavin.uel"
        write_uncertain_graph(dataset.graph, path)
        graph = read_uncertain_graph(path, numeric_labels=True)
        assert graph.n_nodes == dataset.graph.n_nodes

        result = mcp_clustering(
            graph, k=8, seed=1, sample_schedule=PracticalSchedule(max_samples=300)
        )
        oracle = MonteCarloOracle(graph, seed=2)
        oracle.ensure_samples(300)
        pmin = min_connection_probability(result.clustering, oracle)
        pavg = avg_connection_probability(result.clustering, oracle)
        inner, outer = avpr(result.clustering, oracle)
        assert 0.0 <= pmin <= pavg <= 1.0
        assert inner > outer  # clustering beats random splits on this graph


class TestPredictionPipeline:
    def test_depth_limited_complex_prediction(self):
        dataset = krogan_like(seed=11, scale=0.1)
        k = max(2, round(0.21 * dataset.graph.n_nodes))
        result = mcp_clustering(
            dataset.graph, k, depth=2, seed=0,
            sample_schedule=PracticalSchedule(max_samples=150),
        )
        confusion = pair_confusion(result.clustering, dataset.complexes)
        baseline = pair_confusion(
            kpt_clustering(dataset.graph, seed=0), dataset.complexes
        )
        assert confusion.tpr > baseline.tpr
        assert confusion.fpr < 0.2


class TestSharedOracle:
    def test_one_oracle_many_algorithms(self, two_triangles):
        # The progressive pool is reusable across runs; later runs must
        # not invalidate earlier estimates.
        oracle = MonteCarloOracle(two_triangles, seed=5)
        mcp = mcp_clustering(None, 2, oracle=oracle, seed=0)
        samples_after_mcp = oracle.num_samples
        acp = acp_clustering(None, 2, oracle=oracle, seed=0)
        assert oracle.num_samples >= samples_after_mcp
        assert mcp.clustering.covers_all
        assert acp.clustering.covers_all
        # Queries work against the same pool.
        top = k_nearest_by_reliability(oracle, 0, 2)
        assert {node for node, _ in top} == {1, 2}

    def test_queries_consistent_with_clustering(self, two_triangles):
        oracle = MonteCarloOracle(two_triangles, seed=6)
        oracle.ensure_samples(2000)
        result = mcp_clustering(None, 2, oracle=oracle, seed=1)
        # The most reliable source of each cluster should sit in it.
        for members in result.clustering.clusters():
            hub, _ = most_reliable_source(oracle, candidates=members, targets=members)
            assert hub in members.tolist()


class TestDeterminismAcrossPipeline:
    def test_same_seed_same_everything(self):
        def run():
            dataset = gavin_like(seed=9, scale=0.1)
            result = mcp_clustering(
                dataset.graph, 6, seed=3,
                sample_schedule=PracticalSchedule(max_samples=200),
            )
            oracle = MonteCarloOracle(dataset.graph, seed=4)
            oracle.ensure_samples(200)
            return (
                result.clustering.assignment.copy(),
                min_connection_probability(result.clustering, oracle),
            )

        (a_assign, a_pmin) = run()
        (b_assign, b_pmin) = run()
        assert np.array_equal(a_assign, b_assign)
        assert a_pmin == b_pmin


class TestAgainstNetworkxReference:
    def test_connection_probability_via_networkx_sampling(self, two_triangles):
        # Independent reference: sample worlds with networkx machinery
        # and compare the estimate to our oracle.
        import networkx as nx

        rng = np.random.default_rng(0)
        nx_graph = two_triangles.to_networkx()
        edges = list(nx_graph.edges(data="prob"))
        hits = 0
        trials = 2000
        for _ in range(trials):
            world = nx.Graph()
            world.add_nodes_from(nx_graph.nodes())
            for u, v, p in edges:
                if rng.random() < p:
                    world.add_edge(u, v)
            if nx.has_path(world, 0, 2):
                hits += 1
        reference = hits / trials
        oracle = MonteCarloOracle(two_triangles, seed=1)
        oracle.ensure_samples(4000)
        assert oracle.connection(0, 2) == pytest.approx(reference, abs=0.05)


class TestMCLGranularityProtocol:
    def test_inflation_drives_k_for_other_algorithms(self):
        # The paper's experiment protocol end to end on one small graph.
        dataset = gavin_like(seed=2, scale=0.1)
        mcl = mcl_clustering(dataset.graph, inflation=2.0)
        k = mcl.n_clusters
        assert 1 <= k < dataset.graph.n_nodes
        result = mcp_clustering(
            dataset.graph, k, seed=0, sample_schedule=PracticalSchedule(max_samples=150)
        )
        assert result.clustering.k == k
