"""Tests for pmin / pavg / AVPR quality metrics."""

import numpy as np
import pytest

from repro import Clustering, MonteCarloOracle
from repro.core.clustering import UNCOVERED
from repro.metrics.quality import (
    avg_connection_probability,
    avpr,
    connection_to_centers,
    inner_avpr,
    min_connection_probability,
    outer_avpr,
)
from repro.sampling import ExactOracle


@pytest.fixture
def split_clustering(two_triangles):
    """The natural 2-clustering of the two-triangles graph."""
    return Clustering(
        6, np.array([0, 3]), np.array([0, 0, 0, 1, 1, 1], dtype=np.int32)
    )


@pytest.fixture
def bad_clustering(two_triangles):
    """A clustering that crosses the flaky bridge."""
    return Clustering(
        6, np.array([0, 5]), np.array([0, 0, 0, 0, 1, 1], dtype=np.int32)
    )


class TestCenterConnection:
    def test_values_match_oracle(self, two_triangles_oracle, split_clustering):
        values = connection_to_centers(split_clustering, two_triangles_oracle)
        for node in range(6):
            center = split_clustering.center_of(node)
            assert values[node] == pytest.approx(
                two_triangles_oracle.connection(center, node)
            )

    def test_uncovered_gets_zero(self, two_triangles_oracle):
        clustering = Clustering(
            6, np.array([0]), np.array([0, 0, 0, UNCOVERED, UNCOVERED, UNCOVERED], dtype=np.int32)
        )
        values = connection_to_centers(clustering, two_triangles_oracle)
        assert values[3] == values[4] == values[5] == 0.0

    def test_depth_variant(self, two_triangles_oracle, split_clustering):
        shallow = connection_to_centers(split_clustering, two_triangles_oracle, depth=1)
        deep = connection_to_centers(split_clustering, two_triangles_oracle, depth=3)
        assert np.all(shallow <= deep + 1e-12)


class TestMinAvg:
    def test_good_clustering_beats_bad(self, two_triangles_oracle, split_clustering, bad_clustering):
        good = min_connection_probability(split_clustering, two_triangles_oracle)
        bad = min_connection_probability(bad_clustering, two_triangles_oracle)
        assert good > bad

    def test_split_min_value(self, two_triangles_oracle, split_clustering):
        # Within one triangle every connection probability is high.
        value = min_connection_probability(split_clustering, two_triangles_oracle)
        assert value > 0.8

    def test_bridge_crossing_is_poor(self, two_triangles_oracle, bad_clustering):
        assert min_connection_probability(bad_clustering, two_triangles_oracle) < 0.1

    def test_avg_between_min_and_one(self, two_triangles_oracle, split_clustering):
        pmin = min_connection_probability(split_clustering, two_triangles_oracle)
        pavg = avg_connection_probability(split_clustering, two_triangles_oracle)
        assert pmin <= pavg <= 1.0

    def test_all_uncovered_min_is_zero(self, two_triangles_oracle):
        clustering = Clustering(
            6, np.array([0]), np.array([0, UNCOVERED, UNCOVERED, UNCOVERED, UNCOVERED, UNCOVERED], dtype=np.int32)
        )
        assert avg_connection_probability(clustering, two_triangles_oracle) == pytest.approx(1 / 6)


class TestAVPR:
    def test_exact_oracle_matrix_path(self, two_triangles_oracle, split_clustering):
        inner, outer = avpr(split_clustering, two_triangles_oracle)
        matrix = two_triangles_oracle.pairwise_matrix()
        inner_pairs = [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)]
        expected_inner = np.mean([matrix[u, v] for u, v in inner_pairs])
        outer_pairs = [(u, v) for u in range(3) for v in range(3, 6)]
        expected_outer = np.mean([matrix[u, v] for u, v in outer_pairs])
        assert inner == pytest.approx(expected_inner)
        assert outer == pytest.approx(expected_outer)

    def test_sampled_matches_exact(self, two_triangles, split_clustering):
        exact = ExactOracle(two_triangles)
        sampled = MonteCarloOracle(two_triangles, seed=0, chunk_size=97)
        sampled.ensure_samples(5000)
        exact_inner, exact_outer = avpr(split_clustering, exact)
        mc_inner, mc_outer = avpr(split_clustering, sampled)
        assert mc_inner == pytest.approx(exact_inner, abs=0.03)
        assert mc_outer == pytest.approx(exact_outer, abs=0.03)

    def test_good_clustering_separates_inner_outer(self, two_triangles, split_clustering):
        oracle = MonteCarloOracle(two_triangles, seed=1)
        oracle.ensure_samples(2000)
        inner, outer = avpr(split_clustering, oracle)
        assert inner > 0.8
        assert outer < 0.2

    def test_singletons_have_nan_inner(self, two_triangles):
        oracle = MonteCarloOracle(two_triangles, seed=1)
        oracle.ensure_samples(100)
        clustering = Clustering(
            6, np.arange(6), np.arange(6, dtype=np.int32)
        )
        inner, outer = avpr(clustering, oracle)
        assert np.isnan(inner)
        assert np.isfinite(outer)

    def test_one_cluster_has_nan_outer(self, two_triangles):
        oracle = MonteCarloOracle(two_triangles, seed=1)
        oracle.ensure_samples(100)
        clustering = Clustering(6, np.array([0]), np.zeros(6, dtype=np.int32))
        inner, outer = avpr(clustering, oracle)
        assert np.isfinite(inner)
        assert np.isnan(outer)

    def test_uncovered_nodes_count_as_singletons(self, two_triangles):
        oracle = MonteCarloOracle(two_triangles, seed=2)
        oracle.ensure_samples(500)
        partial = Clustering(
            6,
            np.array([0, 3]),
            np.array([0, 0, UNCOVERED, 1, 1, UNCOVERED], dtype=np.int32),
        )
        inner, outer = avpr(partial, oracle)
        assert np.isfinite(inner)
        assert np.isfinite(outer)

    def test_helper_wrappers(self, two_triangles, split_clustering):
        oracle = MonteCarloOracle(two_triangles, seed=3)
        oracle.ensure_samples(500)
        inner, outer = avpr(split_clustering, oracle)
        assert inner_avpr(split_clustering, oracle) == pytest.approx(inner)
        assert outer_avpr(split_clustering, oracle) == pytest.approx(outer)
