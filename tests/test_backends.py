"""Cross-backend equivalence suite for the world-labeling backends.

Pins the canonical labeling contract of
:mod:`repro.sampling.backends.base`: for any ``(graph, masks)`` input,
every backend returns the *same* ``(r, n)`` int32 array, so all
downstream estimates and clusterings are bit-identical across backends
for a fixed seed.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.acp import acp_clustering
from repro.core.mcp import mcp_clustering
from repro.exceptions import OracleError
from repro.graph.components import connected_component_labels
from repro.graph.uncertain_graph import UncertainGraph
from repro.sampling import MonteCarloOracle
from repro.sampling.backends import (
    AUTO_NODE_THRESHOLD,
    BACKEND_NAMES,
    BACKENDS,
    BitParallelWorldBackend,
    ScipyWorldBackend,
    UnionFindWorldBackend,
    WorldBackend,
    resolve_backend,
)
from repro.sampling.store import pack_mask_columns, unpack_mask_columns
from repro.sampling.worlds import block_bfs_reached, sample_edge_masks, world_block_csr, world_component_labels
from tests.conftest import random_graph

ALL_BACKENDS = [ScipyWorldBackend(), UnionFindWorldBackend(), BitParallelWorldBackend()]


def assert_canonical(graph, masks, labels):
    """``labels`` must be the min-node-index labeling of every world."""
    assert labels.shape == (masks.shape[0], graph.n_nodes)
    assert labels.dtype == np.int32
    for i in range(masks.shape[0]):
        expected = connected_component_labels(
            graph.n_nodes, graph.edge_src, graph.edge_dst, mask=masks[i]
        )
        # Same partition...
        mapping = {}
        for a, b in zip(labels[i].tolist(), expected.tolist(), strict=True):
            assert mapping.setdefault(a, b) == b
        # ...and the canonical representative: min node index per component.
        for label in np.unique(labels[i]):
            members = np.flatnonzero(labels[i] == label)
            assert label == members.min()


class TestLabelEquivalence:
    """Both backends agree bit-for-bit and match per-world ground truth."""

    GRID = [
        (n, density, prob_low, prob_high)
        for n in (2, 3, 9, 24, 60)
        for density in (0.05, 0.2, 0.6)
        for prob_low, prob_high in ((0.1, 0.9), (0.05, 0.35), (0.5, 1.0))
    ]

    @pytest.mark.parametrize("n,density,prob_low,prob_high", GRID)
    def test_grid(self, n, density, prob_low, prob_high):
        rng = np.random.default_rng(n * 1000 + int(density * 100))
        graph = random_graph(n, density, rng, prob_low=prob_low, prob_high=prob_high)
        masks = sample_edge_masks(graph.edge_prob, 23, rng=rng)
        results = [backend.component_labels(graph, masks) for backend in ALL_BACKENDS]
        for other in results[1:]:
            assert np.array_equal(results[0], other)
        assert_canonical(graph, masks, results[0])

    @given(
        n=st.integers(min_value=1, max_value=16),
        density=st.floats(min_value=0.0, max_value=1.0),
        r=st.integers(min_value=0, max_value=12),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_random_graphs(self, n, density, r, seed):
        rng = np.random.default_rng(seed)
        graph = random_graph(max(n, 2), density, rng)
        masks = sample_edge_masks(graph.edge_prob, r, rng=rng)
        scipy_labels = ScipyWorldBackend().component_labels(graph, masks)
        uf_labels = UnionFindWorldBackend().component_labels(graph, masks)
        bp_labels = BitParallelWorldBackend().component_labels(graph, masks)
        assert np.array_equal(scipy_labels, uf_labels)
        assert np.array_equal(scipy_labels, bp_labels)
        assert_canonical(graph, masks, uf_labels)

    def test_sub_batching_is_invisible(self):
        rng = np.random.default_rng(5)
        graph = random_graph(40, 0.15, rng)
        masks = sample_edge_masks(graph.edge_prob, 50, rng=rng)
        whole = UnionFindWorldBackend(world_batch=1024).component_labels(graph, masks)
        tiny = UnionFindWorldBackend(world_batch=3).component_labels(graph, masks)
        assert np.array_equal(whole, tiny)

    def test_world_component_labels_accepts_backend_spec(self, two_triangles):
        masks = sample_edge_masks(two_triangles.edge_prob, 11, rng=8)
        default = world_component_labels(two_triangles, masks)
        for spec in ("auto", "scipy", "unionfind", "bitparallel", UnionFindWorldBackend()):
            assert np.array_equal(world_component_labels(two_triangles, masks, spec), default)


class TestEdgeCases:
    """Regression tests for the sampling kernels on degenerate inputs."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_empty_graph(self, backend):
        graph = UncertainGraph(0, [], [], [])
        labels = backend.component_labels(graph, np.zeros((4, 0), dtype=bool))
        assert labels.shape == (4, 0)

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_single_node(self, backend):
        graph = UncertainGraph(1, [], [], [])
        labels = backend.component_labels(graph, np.zeros((3, 0), dtype=bool))
        assert labels.shape == (3, 1)
        assert (labels == 0).all()

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_edgeless_worlds(self, backend, two_triangles):
        """The zero-probability limit: no edge survives in any world."""
        masks = np.zeros((5, two_triangles.n_edges), dtype=bool)
        labels = backend.component_labels(two_triangles, masks)
        assert np.array_equal(labels, np.tile(np.arange(6, dtype=np.int32), (5, 1)))

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_certain_worlds(self, backend, two_triangles):
        """Probability-1 edges: every world is the full skeleton."""
        masks = np.ones((4, two_triangles.n_edges), dtype=bool)
        labels = backend.component_labels(two_triangles, masks)
        assert (labels == 0).all()  # the skeleton is connected

    def test_zero_probability_edges_never_sampled(self):
        masks = sample_edge_masks(np.array([0.0, 1.0]), 200, rng=0)
        assert not masks[:, 0].any()
        assert masks[:, 1].all()

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_r_zero_chunk(self, backend, two_triangles):
        labels = backend.component_labels(
            two_triangles, np.zeros((0, two_triangles.n_edges), dtype=bool)
        )
        assert labels.shape == (0, 6)
        assert labels.dtype == np.int32

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_bad_mask_shape_rejected(self, backend, two_triangles):
        with pytest.raises(ValueError):
            backend.component_labels(two_triangles, np.zeros((2, 3), dtype=bool))

    def test_depth_zero_bfs_reaches_only_source(self, path4):
        masks = np.ones((3, 3), dtype=bool)
        block = world_block_csr(path4, masks)
        reached = block_bfs_reached(block, 4, 3, 2, 0)
        expected = np.zeros((3, 4), dtype=bool)
        expected[:, 2] = True
        assert np.array_equal(reached, expected)

    def test_pairwise_matrix_empty_subset(self, two_triangles):
        oracle = MonteCarloOracle(two_triangles, seed=0, backend="unionfind")
        oracle.ensure_samples(32)
        assert oracle.pairwise_matrix(nodes=[]).shape == (0, 0)

    def test_invalid_world_batch(self):
        with pytest.raises(ValueError):
            UnionFindWorldBackend(world_batch=0)


@pytest.fixture
def bigger_graph():
    return random_graph(80, 0.06, np.random.default_rng(11), prob_low=0.2, prob_high=0.95)


class TestOracleEquivalence:
    """Same seed + different backend => bit-identical oracle answers."""

    def oracles(self, graph, samples=256):
        pair = []
        for name in ("scipy", "unionfind", "bitparallel"):
            oracle = MonteCarloOracle(graph, seed=99, chunk_size=64, backend=name)
            oracle.ensure_samples(samples)
            pair.append(oracle)
        return pair

    def test_component_labels_identical(self, bigger_graph):
        a, b, c = self.oracles(bigger_graph)
        assert np.array_equal(a.component_labels, b.component_labels)
        assert np.array_equal(a.component_labels, c.component_labels)

    def test_connection_to_all_identical(self, bigger_graph):
        a, b, c = self.oracles(bigger_graph)
        for node in (0, 17, 79):
            assert np.array_equal(a.connection_to_all(node), b.connection_to_all(node))
            assert np.array_equal(a.connection_to_all(node), c.connection_to_all(node))

    def test_depth_queries_identical(self, bigger_graph):
        a, b, c = self.oracles(bigger_graph)
        assert np.array_equal(
            a.connection_to_all(3, depth=2), b.connection_to_all(3, depth=2)
        )
        assert np.array_equal(
            a.connection_to_all(3, depth=2), c.connection_to_all(3, depth=2)
        )

    def test_pairwise_matrix_identical(self, bigger_graph):
        a, b, c = self.oracles(bigger_graph)
        assert np.array_equal(a.pairwise_matrix(), b.pairwise_matrix())
        assert np.array_equal(a.pairwise_matrix(), c.pairwise_matrix())
        subset = np.arange(0, 80, 7)
        assert np.array_equal(a.pairwise_matrix(subset), b.pairwise_matrix(subset))
        assert np.array_equal(a.pairwise_matrix(subset), c.pairwise_matrix(subset))


class TestClusteringEquivalence:
    """MCP/ACP return identical clusterings under either backend."""

    def test_mcp_identical(self, bigger_graph):
        results = [
            mcp_clustering(bigger_graph, 6, seed=4, chunk_size=64, backend=name)
            for name in ("scipy", "unionfind", "bitparallel")
        ]
        first, second = results[0], results[1]
        third = results[2]
        assert np.array_equal(first.clustering.assignment, third.clustering.assignment)
        assert first.q_final == third.q_final
        assert np.array_equal(first.clustering.assignment, second.clustering.assignment)
        assert np.array_equal(first.clustering.centers, second.clustering.centers)
        assert first.q_final == second.q_final
        assert first.min_prob_estimate == second.min_prob_estimate
        assert [g.q for g in first.history] == [g.q for g in second.history]

    def test_acp_identical(self, bigger_graph):
        results = [
            acp_clustering(bigger_graph, 6, seed=4, chunk_size=64, backend=name)
            for name in ("scipy", "unionfind", "bitparallel")
        ]
        first, second = results[0], results[1]
        third = results[2]
        assert np.array_equal(first.clustering.assignment, third.clustering.assignment)
        assert first.phi_best == third.phi_best
        assert np.array_equal(first.clustering.assignment, second.clustering.assignment)
        assert first.phi_best == second.phi_best
        assert first.avg_prob_estimate == second.avg_prob_estimate


class TestResolution:
    def test_names(self):
        assert BACKEND_NAMES == ("auto", "bitparallel", "scipy", "unionfind")
        for name, factory in BACKENDS.items():
            assert factory().name == name

    def test_resolve_by_name(self):
        assert resolve_backend("scipy").name == "scipy"
        assert resolve_backend("unionfind").name == "unionfind"
        assert resolve_backend("bitparallel").name == "bitparallel"

    def test_resolve_instance_passthrough(self):
        backend = UnionFindWorldBackend(world_batch=7)
        assert resolve_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(OracleError, match="unknown world backend"):
            resolve_backend("duckdb")

    def test_non_backend_rejected(self):
        with pytest.raises(OracleError, match="WorldBackend"):
            resolve_backend(42)

    def test_auto_selects_by_graph_size(self):
        small = UncertainGraph.from_edges([(0, 1, 0.5)])
        assert resolve_backend("auto", small).name == "scipy"
        assert resolve_backend(None, small).name == "scipy"
        n = AUTO_NODE_THRESHOLD
        big = UncertainGraph(n, [0], [1], [0.5])
        # bitparallel is registered but never auto-picked: the packed
        # kernel measures ~2x the union-find chunk scatter-min on the
        # committed substrates (see benchmarks/test_bench_backends.py),
        # so auto stays with the measured winner until a crossover
        # exists.
        assert resolve_backend("auto", big).name == "unionfind"

    def test_auto_without_graph_defaults_to_scipy(self):
        assert resolve_backend("auto").name == "scipy"

    def test_custom_backend_satisfies_protocol(self):
        class Custom:
            name = "custom"

            def component_labels(self, graph, masks):
                return ScipyWorldBackend().component_labels(graph, masks)

        assert isinstance(Custom(), WorldBackend)
        oracle = MonteCarloOracle(
            UncertainGraph.from_edges([(0, 1, 0.5)]), seed=0, backend=Custom()
        )
        assert oracle.backend_name == "custom"
        oracle.ensure_samples(10)
        assert oracle.component_labels.shape == (10, 2)


class TestPackedKernel:
    """The bit-parallel backend's packed fast path and its edge cases.

    Pins ARCHITECTURE.md invariant 6: labels computed straight from the
    packed ``uint64`` columns are bit-identical to the boolean path —
    and therefore to every other backend.
    """

    BACKEND = BitParallelWorldBackend()

    def both_paths(self, graph, masks):
        packed = pack_mask_columns(masks)
        from_packed = self.BACKEND.component_labels_packed(
            graph, packed, masks.shape[0]
        )
        from_bool = self.BACKEND.component_labels(graph, masks)
        reference = ScipyWorldBackend().component_labels(graph, masks)
        assert np.array_equal(from_packed, from_bool)
        assert np.array_equal(from_packed, reference)
        return from_packed

    @pytest.mark.parametrize("r", [1, 63, 64, 65, 130])
    def test_r_not_multiple_of_64(self, two_triangles, r):
        masks = sample_edge_masks(two_triangles.edge_prob, r, rng=r)
        self.both_paths(two_triangles, masks)

    def test_single_world_chunk(self, path4):
        masks = sample_edge_masks(path4.edge_prob, 1, rng=5)
        labels = self.both_paths(path4, masks)
        assert labels.shape == (1, 4)

    def test_zero_edge_graph(self):
        graph = UncertainGraph(5, [], [], [])
        masks = np.zeros((70, 0), dtype=bool)
        labels = self.both_paths(graph, masks)
        assert np.array_equal(labels, np.tile(np.arange(5, dtype=np.int32), (70, 1)))

    def test_isolated_nodes_keep_identity_labels(self):
        # Nodes 3 and 4 have no incident edges in any world.
        graph = UncertainGraph(6, [0, 1], [1, 5], [0.7, 0.7])
        masks = sample_edge_masks(graph.edge_prob, 100, rng=2)
        labels = self.both_paths(graph, masks)
        assert (labels[:, 3] == 3).all()
        assert (labels[:, 4] == 4).all()

    def test_misaligned_store_read_repacks(self, two_triangles, tmp_path):
        """Packed columns from a word-misaligned store read still label
        correctly: the store repacks the slice, so bit 0 of the result
        is world ``start`` and the pad bits are zero."""
        from repro.sampling.store import WorldStore

        store = WorldStore(tmp_path)
        with MonteCarloOracle(
            two_triangles, seed=9, chunk_size=200, backend="bitparallel", store=store
        ) as oracle:
            oracle.ensure_samples(200)
            pool_labels = oracle.component_labels
            digest = oracle.pool_digest
        start, stop = 37, 150  # crosses word boundaries on both ends
        packed, stored_labels = store.read(digest, start, stop)
        relabeled = self.BACKEND.component_labels_packed(
            two_triangles, packed, stop - start
        )
        assert np.array_equal(relabeled, stored_labels)
        assert np.array_equal(relabeled, pool_labels[start:stop])

    def test_caller_pad_garbage_is_harmless(self, two_triangles):
        """Stray pad bits (worlds >= r in the last word) cost work but
        never correctness: they are dropped by the output slicing."""
        masks = sample_edge_masks(two_triangles.edge_prob, 70, rng=4)
        packed = pack_mask_columns(masks)
        dirty = packed.copy()
        dirty[:, -1] |= np.uint64(0xFFFF) << np.uint64(48)  # worlds 112..127
        clean = self.BACKEND.component_labels_packed(two_triangles, packed, 70)
        smudged = self.BACKEND.component_labels_packed(two_triangles, dirty, 70)
        assert np.array_equal(clean, smudged)

    def test_bad_packed_shape_rejected(self, two_triangles):
        with pytest.raises(ValueError, match="packed columns"):
            self.BACKEND.component_labels_packed(
                two_triangles, np.zeros((7, 1), dtype=np.uint64), 65
            )
        with pytest.raises(ValueError, match="packed columns"):
            self.BACKEND.component_labels_packed(
                two_triangles, np.zeros((3, 2), dtype=np.uint64), 65
            )

    def test_negative_world_count_rejected(self, two_triangles):
        with pytest.raises(ValueError, match="non-negative"):
            self.BACKEND.component_labels_packed(
                two_triangles, np.zeros((7, 0), dtype=np.uint64), -1
            )

    def test_zero_worlds(self, two_triangles):
        labels = self.BACKEND.component_labels_packed(
            two_triangles, np.zeros((7, 0), dtype=np.uint64), 0
        )
        assert labels.shape == (0, 6)
        assert labels.dtype == np.int32

    def test_repair_labels_matches_full_relabel(self, two_triangles):
        rng = np.random.default_rng(12)
        graph = random_graph(30, 0.15, rng)
        masks = sample_edge_masks(graph.edge_prob, 40, rng=rng)
        full = self.BACKEND.component_labels(graph, masks)
        affected = np.ones((40, 30), dtype=bool)  # everything affected
        old = np.tile(np.arange(30, dtype=np.int32), (40, 1))
        repaired = self.BACKEND.repair_labels(graph, masks, old, affected)
        assert np.array_equal(repaired, full)

    def test_sampler_routes_packed_chunks(self, two_triangles):
        """ParallelSampler.sample_chunk_packed labels via the packed
        kernel and returns columns identical to packing the boolean
        chunk — the ensure_samples integration the oracle rides on."""
        from repro.sampling.parallel import ParallelSampler

        root = np.random.SeedSequence(21)
        packed_sampler = ParallelSampler(two_triangles, backend="bitparallel")
        packed, labels = packed_sampler.sample_chunk_packed(root, 0, 70)
        bool_sampler = ParallelSampler(two_triangles, backend="scipy")
        masks, reference = bool_sampler.sample_chunk(root, 0, 70)
        assert np.array_equal(packed, pack_mask_columns(masks))
        assert np.array_equal(labels, reference)
        assert np.array_equal(unpack_mask_columns(packed, 70), masks)
