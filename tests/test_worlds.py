"""Tests for possible-world sampling and block-diagonal bulk operations."""

import numpy as np
import pytest

from repro.graph.components import connected_component_labels
from repro.sampling.worlds import (
    block_bfs_reached,
    sample_edge_masks,
    world_block_csr,
    world_component_labels,
)
from tests.conftest import random_graph


class TestSampleMasks:
    def test_shape_and_dtype(self, two_triangles):
        masks = sample_edge_masks(two_triangles.edge_prob, 10, rng=0)
        assert masks.shape == (10, 7)
        assert masks.dtype == bool

    def test_zero_samples(self, two_triangles):
        masks = sample_edge_masks(two_triangles.edge_prob, 0, rng=0)
        assert masks.shape == (0, 7)

    def test_negative_samples_rejected(self, two_triangles):
        with pytest.raises(ValueError):
            sample_edge_masks(two_triangles.edge_prob, -1, rng=0)

    def test_certain_edges_always_present(self):
        prob = np.array([1.0, 1.0])
        masks = sample_edge_masks(prob, 50, rng=1)
        assert masks.all()

    def test_seeded_determinism(self, two_triangles):
        a = sample_edge_masks(two_triangles.edge_prob, 20, rng=42)
        b = sample_edge_masks(two_triangles.edge_prob, 20, rng=42)
        assert np.array_equal(a, b)

    def test_frequency_matches_probability(self):
        prob = np.array([0.2, 0.5, 0.9])
        masks = sample_edge_masks(prob, 20000, rng=7)
        freq = masks.mean(axis=0)
        assert np.allclose(freq, prob, atol=0.02)


class TestWorldLabels:
    def test_each_row_is_world_components(self, two_triangles):
        masks = sample_edge_masks(two_triangles.edge_prob, 25, rng=3)
        labels = world_component_labels(two_triangles, masks)
        assert labels.shape == (25, 6)
        for i in range(25):
            expected = connected_component_labels(
                6, two_triangles.edge_src, two_triangles.edge_dst, mask=masks[i]
            )
            # Same partition up to label permutation.
            mapping = {}
            for a, b in zip(labels[i].tolist(), expected.tolist(), strict=True):
                assert mapping.setdefault(a, b) == b

    def test_empty_batch(self, two_triangles):
        labels = world_component_labels(two_triangles, np.zeros((0, 7), dtype=bool))
        assert labels.shape == (0, 6)

    def test_bad_mask_shape(self, two_triangles):
        with pytest.raises(ValueError):
            world_component_labels(two_triangles, np.zeros((2, 3), dtype=bool))


class TestBlockCSR:
    def test_block_structure(self, path4):
        masks = np.array([[True, True, True], [True, False, False]])
        block = world_block_csr(path4, masks)
        assert block.shape == (8, 8)
        dense = block.toarray()
        # World 0 has all three path edges.
        assert dense[0, 1] and dense[1, 2] and dense[2, 3]
        # World 1 has only edge (0, 1), in its own block.
        assert dense[4, 5]
        assert not dense[5, 6] and not dense[6, 7]
        # No edges cross blocks.
        assert not dense[:4, 4:].any()

    def test_symmetric(self, two_triangles):
        masks = sample_edge_masks(two_triangles.edge_prob, 5, rng=0)
        block = world_block_csr(two_triangles, masks)
        assert (block != block.T).nnz == 0


class TestBlockBFS:
    def test_depth_progression(self, path4):
        masks = np.ones((1, 3), dtype=bool)
        block = world_block_csr(path4, masks)
        for depth, expected in [
            (0, [True, False, False, False]),
            (1, [True, True, False, False]),
            (2, [True, True, True, False]),
            (3, [True, True, True, True]),
            (5, [True, True, True, True]),
        ]:
            reached = block_bfs_reached(block, 4, 1, 0, depth)
            assert reached[0].tolist() == expected

    def test_per_world_independence(self, path4):
        masks = np.array([[True, True, True], [False, True, True]])
        block = world_block_csr(path4, masks)
        reached = block_bfs_reached(block, 4, 2, 0, 3)
        assert reached[0].tolist() == [True, True, True, True]
        assert reached[1].tolist() == [True, False, False, False]

    def test_matches_per_world_bfs(self):
        rng = np.random.default_rng(9)
        graph = random_graph(12, 0.25, rng)
        masks = sample_edge_masks(graph.edge_prob, 20, rng=rng)
        block = world_block_csr(graph, masks)
        from repro.graph.traversal import bfs_distances

        for source in (0, 5):
            for depth in (1, 2, 4):
                reached = block_bfs_reached(block, graph.n_nodes, 20, source, depth)
                for i in range(20):
                    dist = bfs_distances(graph, source, max_depth=depth, edge_mask=masks[i])
                    assert np.array_equal(reached[i], dist >= 0)

    def test_negative_depth_rejected(self, path4):
        block = world_block_csr(path4, np.ones((1, 3), dtype=bool))
        with pytest.raises(ValueError):
            block_bfs_reached(block, 4, 1, 0, -1)
