"""Equivalence and interplay suite for delta-aware world invalidation.

The load-bearing pins of the mutable-graph refactor:

* **Determinism** (the acceptance criterion): for any mutation
  sequence, labels obtained by delta replay (``derive_pool`` along the
  chain) are bit-identical to cold-sampling the final graph at the same
  ``(seed, backend, chunk_size)`` — across both backends, aligned and
  misaligned pool sizes, in memory and on disk.
* **Repair soundness**: the union-find backend's component-local
  ``repair_labels`` equals the scipy backend's full relabel (the
  cross-check) bit-for-bit.
* **Eviction interplay**: deriving a child pool while the parent pool
  is being evicted either completes from the pinned parent or falls
  back to cold sampling — never a crash, never wrong labels.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.exceptions import GraphValidationError
from repro.graph.delta import EdgeOp, GraphDelta
from repro.graph.uncertain_graph import UncertainGraph
from repro.sampling.backends import (
    BitParallelWorldBackend,
    ScipyWorldBackend,
    UnionFindWorldBackend,
)
from repro.sampling.deltas import derive_pool, diff_edges
from repro.sampling.oracle import MonteCarloOracle
from repro.sampling.parallel import sample_mask_rows
from repro.sampling.store import (
    WorldStore,
    pool_fingerprint,
    unpack_mask_columns,
)
from repro.service.cache import OracleCache
from repro.utils.rng import ensure_seed_sequence
from tests.conftest import random_graph

BACKENDS = ("scipy", "unionfind", "bitparallel")


@pytest.fixture
def graph():
    return random_graph(50, 0.1, np.random.default_rng(3), prob_low=0.1, prob_high=0.9)


def random_mutation(graph: UncertainGraph, rng: np.random.Generator):
    """One random applicable mutation of ``graph``."""
    kind = rng.choice(["add", "remove", "update"])
    edges = graph.edge_list()
    if kind in ("remove", "update") and not edges:
        kind = "add"
    if kind == "add":
        for _ in range(200):
            u, v = rng.choice(graph.n_nodes, size=2, replace=False)
            if not graph.has_edge(int(u), int(v)):
                return graph.add_edge(int(u), int(v), float(rng.uniform(0.05, 0.95)))
        kind = "update"  # graph is (nearly) complete
    u, v, p = edges[int(rng.integers(len(edges)))]
    if kind == "remove":
        return graph.remove_edge(u, v)
    return graph.update_edge(u, v, float(rng.uniform(0.05, 0.95)))


# ----------------------------------------------------------------------
# Graph mutation API
# ----------------------------------------------------------------------


class TestMutationAPI:
    def test_copy_on_write_and_revision(self, graph):
        src, dst, prob = graph.edge_src.copy(), graph.edge_dst.copy(), graph.edge_prob.copy()
        u, v, p = graph.edge_list()[0]
        mutated, delta = graph.update_edge(u, v, 0.123)
        assert graph.revision == 0 and mutated.revision == 1
        assert np.array_equal(graph.edge_prob, prob)  # reader undisturbed
        assert np.array_equal(graph.edge_src, src) and np.array_equal(graph.edge_dst, dst)
        assert mutated.edge_probability_between(graph.index_of(u), graph.index_of(v)) == 0.123
        assert delta.base_revision == 0 and delta.new_revision == 1

    def test_mutated_equals_cold_built_final_graph(self, graph):
        rng = np.random.default_rng(1)
        while True:
            u, v = rng.choice(graph.n_nodes, size=2, replace=False)
            if not graph.has_edge(int(u), int(v)):
                break
        mutated, _ = graph.mutate(
            add=[(int(u), int(v), 0.5)], remove=[graph.edge_list()[0][:2]],
            update=[graph.edge_list()[1][:2] + (0.77,)],
        )
        cold = UncertainGraph.from_edges(mutated.edge_list(), nodes=graph.node_labels)
        assert np.array_equal(cold.edge_src, mutated.edge_src)
        assert np.array_equal(cold.edge_dst, mutated.edge_dst)
        assert np.array_equal(cold.edge_prob, mutated.edge_prob)
        assert pool_fingerprint(cold, 7, "scipy", 512) == pool_fingerprint(
            mutated, 7, "scipy", 512
        )

    def test_apply_delta_replays(self, graph):
        rng = np.random.default_rng(0)
        current = graph
        deltas = []
        for _ in range(5):
            current, delta = random_mutation(current, rng)
            deltas.append(delta)
        replayed = graph
        for delta in deltas:
            replayed = replayed.apply_delta(delta)
        assert replayed.revision == current.revision == 5
        assert np.array_equal(replayed.edge_src, current.edge_src)
        assert np.array_equal(replayed.edge_prob, current.edge_prob)

    def test_apply_delta_revision_mismatch(self, graph):
        mutated, delta = graph.update_edge(*graph.edge_list()[0][:2], 0.5)
        with pytest.raises(GraphValidationError, match="revision"):
            mutated.apply_delta(delta)  # delta is based on revision 0

    def test_validation_errors(self, graph):
        u, v, _ = graph.edge_list()[0]
        with pytest.raises(GraphValidationError, match="already exists"):
            graph.add_edge(u, v, 0.5)
        with pytest.raises(GraphValidationError, match="no edge"):
            graph.mutate(remove=[(0, 1)] if not graph.has_edge(0, 1) else [(0, 2)])
        with pytest.raises(GraphValidationError, match="probability"):
            graph.update_edge(u, v, 1.5)
        with pytest.raises(GraphValidationError, match="probability"):
            graph.update_edge(u, v, float("nan"))
        with pytest.raises(GraphValidationError, match="self loop"):
            graph.mutate(add=[(3, 3, 0.5)])
        with pytest.raises(GraphValidationError, match="more than one"):
            graph.mutate(update=[(u, v, 0.4), (v, u, 0.6)])
        with pytest.raises(GraphValidationError, match="unknown node"):
            graph.remove_edge("nope", u)

    def test_delta_json_roundtrip(self, graph):
        mutated, delta = graph.mutate(
            update=[graph.edge_list()[0][:2] + (0.42,)][:1], add=[(0, 49, 0.9)]
        )
        assert GraphDelta.from_json(delta.to_json()) == delta
        assert delta.summary() == {"added": 1, "removed": 0, "updated": 1}
        assert len(delta) == 2

    def test_edge_op_canonicalizes_endpoints(self):
        op = EdgeOp("add", 9, 2, probability=0.5)
        assert (op.u, op.v) == (2, 9)
        with pytest.raises(GraphValidationError):
            EdgeOp("add", 3, 3, probability=0.5)
        with pytest.raises(GraphValidationError):
            EdgeOp("toggle", 1, 2)

    def test_labeled_graph_mutation(self):
        g = UncertainGraph.from_edges([("a", "b", 0.5), ("b", "c", 0.6)])
        g2, delta = g.add_edge("a", "c", 0.7)
        assert g2.n_edges == 3 and g2.node_labels == g.node_labels
        # Delta ops carry dense indices.
        assert delta.ops[0].u == 0 and delta.ops[0].v == 2


# ----------------------------------------------------------------------
# diff_edges
# ----------------------------------------------------------------------


class TestDiffEdges:
    def test_classification(self, graph):
        (u0, v0, _), (u1, v1, _) = graph.edge_list()[:2]
        mutated, _ = graph.mutate(
            update=[(u0, v0, 0.999)], remove=[(u1, v1)], add=[(0, 49, 0.5)]
        )
        diff = diff_edges(graph, mutated)
        assert len(diff.updated_child) == 1 and len(diff.added_child) == 1
        assert len(diff.removed_parent) == 1
        assert len(diff.kept_child) == graph.n_edges - 2
        assert diff.n_touched == 3
        # Kept pairs line up: same endpoints, same probability.
        assert np.array_equal(
            graph.edge_prob[diff.kept_parent], mutated.edge_prob[diff.kept_child]
        )

    def test_chain_collapses(self, graph):
        rng = np.random.default_rng(5)
        current = graph
        for _ in range(6):
            current, _ = random_mutation(current, rng)
        diff = diff_edges(graph, current)
        assert diff.n_touched <= 6  # chain collapsed, no intermediate churn

    def test_node_count_mismatch(self, graph):
        smaller = graph.subgraph(np.arange(10))
        with pytest.raises(ValueError, match="node counts"):
            diff_edges(graph, smaller)


# ----------------------------------------------------------------------
# repair_labels: union-find repair vs scipy full relabel
# ----------------------------------------------------------------------


class TestRepairLabels:
    @pytest.mark.parametrize(
        "incremental", [UnionFindWorldBackend, BitParallelWorldBackend],
        ids=lambda b: b.name,
    )
    @pytest.mark.parametrize("trial", range(5))
    def test_repair_matches_full_relabel(self, trial, incremental):
        rng = np.random.default_rng(100 + trial)
        graph = random_graph(40, 0.12, rng, prob_low=0.2, prob_high=0.9)
        root = ensure_seed_sequence(trial)
        old_masks = sample_mask_rows(
            graph.edge_src, graph.edge_dst, graph.edge_prob, root, 0, 48
        )
        scipy_backend = ScipyWorldBackend()
        uf = incremental()
        old_labels = scipy_backend.component_labels(graph, old_masks)
        # Flip a handful of random edge instances to simulate a delta.
        new_masks = old_masks.copy()
        flip_edges = rng.choice(graph.n_edges, size=3, replace=False)
        flip_worlds = rng.random((48, 3)) < 0.3
        for column, edge in enumerate(flip_edges):
            new_masks[flip_worlds[:, column], edge] ^= True
        affected = np.zeros((48, graph.n_nodes), dtype=bool)
        for column, edge in enumerate(flip_edges):
            for world in np.flatnonzero(flip_worlds[:, column]):
                targets = {
                    old_labels[world, graph.edge_src[edge]],
                    old_labels[world, graph.edge_dst[edge]],
                }
                affected[world] |= np.isin(old_labels[world], list(targets))
        expected = scipy_backend.repair_labels(graph, new_masks, old_labels, affected)
        assert np.array_equal(expected, scipy_backend.component_labels(graph, new_masks))
        repaired = uf.repair_labels(graph, new_masks, old_labels, affected)
        assert np.array_equal(repaired, expected)
        assert np.array_equal(repaired, uf.component_labels(graph, new_masks))

    def test_shape_validation(self):
        graph = UncertainGraph.from_edges([(0, 1, 0.5)])
        uf = UnionFindWorldBackend()
        with pytest.raises(ValueError):
            uf.repair_labels(
                graph,
                np.zeros((2, 1), dtype=bool),
                np.zeros((3, 2), dtype=np.int32),
                np.zeros((2, 2), dtype=bool),
            )


# ----------------------------------------------------------------------
# derive_pool: the determinism pin
# ----------------------------------------------------------------------


def cold_pool(graph, *, seed, backend, chunk_size, samples):
    """Reference pool: cold-sample ``graph`` into a fresh store."""
    store = WorldStore()
    with MonteCarloOracle(
        graph, seed=seed, chunk_size=chunk_size, backend=backend, store=store
    ) as oracle:
        oracle.ensure_samples(samples)
        return store, oracle.pool_digest, oracle.component_labels


class TestDerivePool:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("chunk_size", [64, 100])
    def test_delta_replay_bit_identical_to_cold(self, graph, backend, chunk_size):
        """THE acceptance pin: derived chain == cold final, bit for bit."""
        samples = 200  # misaligned with chunk_size=64 and =100 blocks
        store = WorldStore()
        with MonteCarloOracle(
            graph, seed=11, chunk_size=chunk_size, backend=backend, store=store
        ) as oracle:
            oracle.ensure_samples(samples)
        rng = np.random.default_rng(42)
        current = graph
        for _ in range(4):
            parent = current
            current, _ = random_mutation(current, rng)
            result = derive_pool(
                store, parent, current, seed=11, backend=backend, chunk_size=chunk_size
            )
            assert result is not None and result.complete
            assert result.worlds_derived == samples
        ref_store, ref_digest, ref_labels = cold_pool(
            current, seed=11, backend=backend, chunk_size=chunk_size, samples=samples
        )
        derived_digest = pool_fingerprint(current, 11, backend, chunk_size)
        got_packed, got_labels = store.read(derived_digest, 0, samples)
        ref_packed, _ = ref_store.read(ref_digest, 0, samples)
        assert np.array_equal(got_labels, ref_labels)
        assert np.array_equal(
            unpack_mask_columns(got_packed, samples),
            unpack_mask_columns(ref_packed, samples),
        )
        # ... and a warm oracle over the derived pool samples nothing.
        with MonteCarloOracle(
            current, seed=11, chunk_size=chunk_size, backend=backend, store=store
        ) as warm:
            warm.ensure_samples(samples)
            assert warm.cache_stats["worlds_sampled"] == 0

    def test_derive_is_incremental_for_single_edge_update(self, graph):
        store = WorldStore()
        with MonteCarloOracle(graph, seed=1, chunk_size=512, store=store) as oracle:
            oracle.ensure_samples(256)
        u, v, p = graph.edge_list()[0]
        mutated, _ = graph.update_edge(u, v, min(1.0, p + 0.05))
        result = derive_pool(store, graph, mutated, seed=1, chunk_size=512)
        assert result.complete and result.worlds_derived == 256
        assert result.columns_resampled == 1  # only the touched column
        # A +0.05 probability bump flips ~5% of worlds, never all of them.
        assert 0 < result.worlds_repaired < 256

    def test_columns_resampled_counts_distinct_columns_not_blocks(self, graph):
        """``columns_resampled`` must not scale with the block count.

        Every derived block resamples the *same* touched columns, so the
        counter reports distinct columns.  The old accumulate-per-block
        bug would report ``touched * n_blocks`` (here 2 * 3 = 6).
        """
        store = WorldStore()
        with MonteCarloOracle(graph, seed=5, chunk_size=64, store=store) as oracle:
            oracle.ensure_samples(192)  # three 64-world blocks
        u, v, p = graph.edge_list()[0]
        mutated, _ = graph.update_edge(u, v, min(1.0, p + 0.05))
        for a in range(graph.n_nodes):
            if not mutated.has_edge(a, (a + 7) % graph.n_nodes):
                mutated, _ = mutated.add_edge(a, (a + 7) % graph.n_nodes, 0.3)
                break
        result = derive_pool(store, graph, mutated, seed=5, chunk_size=64)
        assert result.complete and result.worlds_derived == 192
        assert result.columns_resampled == 2  # one update + one add, 3 blocks

    def test_no_parent_pool_returns_none(self, graph):
        store = WorldStore()
        mutated, _ = graph.update_edge(*graph.edge_list()[0][:2], 0.5)
        assert derive_pool(store, graph, mutated, seed=1) is None

    def test_identical_graphs_return_none(self, graph):
        store = WorldStore()
        with MonteCarloOracle(graph, seed=1, store=store) as oracle:
            oracle.ensure_samples(64)
        assert derive_pool(store, graph, graph, seed=1) is None

    def test_partial_child_pool_derives_only_the_tail(self, graph):
        store = WorldStore()
        with MonteCarloOracle(graph, seed=2, chunk_size=64, store=store) as oracle:
            oracle.ensure_samples(192)
        mutated, _ = graph.update_edge(*graph.edge_list()[0][:2], 0.4)
        # Cold-sample the child's first 64 worlds, then derive the rest.
        with MonteCarloOracle(mutated, seed=2, chunk_size=64, store=store) as head:
            head.ensure_samples(64)
        result = derive_pool(store, graph, mutated, seed=2, chunk_size=64)
        assert result.complete and result.worlds_derived == 128
        _, ref_labels = cold_pool(
            mutated, seed=2, backend="auto", chunk_size=64, samples=192
        )[1:]
        _, got_labels = store.read(result.digest, 0, 192)
        assert np.array_equal(got_labels, ref_labels)

    def test_disk_store_derivation_across_instances(self, graph, tmp_path):
        cache = tmp_path / "wc"
        with MonteCarloOracle(graph, seed=3, chunk_size=64, cache_dir=cache) as oracle:
            oracle.ensure_samples(100)
        mutated, _ = graph.update_edge(*graph.edge_list()[0][:2], 0.9)
        result = derive_pool(WorldStore(cache), graph, mutated, seed=3, chunk_size=64)
        assert result.complete and result.worlds_derived == 100
        # A fresh process (new store instance) serves the derived pool warm.
        with MonteCarloOracle(mutated, seed=3, chunk_size=64, cache_dir=cache) as warm:
            warm.ensure_samples(100)
            assert warm.cache_stats["worlds_sampled"] == 0
        _, ref_labels = cold_pool(
            mutated, seed=3, backend="auto", chunk_size=64, samples=100
        )[1:]
        assert np.array_equal(warm.component_labels, ref_labels)

    def test_parent_vanishing_mid_derive_degrades_to_partial(self, graph, monkeypatch):
        store = WorldStore()
        with MonteCarloOracle(graph, seed=4, chunk_size=64, store=store) as oracle:
            oracle.ensure_samples(192)
        mutated, _ = graph.update_edge(*graph.edge_list()[0][:2], 0.6)
        parent_digest = pool_fingerprint(graph, 4, "scipy", 64)
        original_read = WorldStore.read
        reads = {"count": 0}

        def flaky_read(self, digest, start, stop):
            if digest == parent_digest:
                reads["count"] += 1
                if reads["count"] == 2:  # parent evicted after block one
                    raise FileNotFoundError("pool evicted")
            return original_read(self, digest, start, stop)

        monkeypatch.setattr(WorldStore, "read", flaky_read)
        result = derive_pool(store, graph, mutated, seed=4, chunk_size=64)
        assert result is not None and not result.complete
        assert result.worlds_derived == 64  # first block landed
        monkeypatch.undo()
        # The partial pool is correct; a warm oracle extends it cold.
        _, ref_labels = cold_pool(
            mutated, seed=4, backend="auto", chunk_size=64, samples=192
        )[1:]
        with MonteCarloOracle(mutated, seed=4, chunk_size=64, store=store) as resume:
            resume.ensure_samples(192)
            assert resume.cache_stats["worlds_cached"] == 64
            assert np.array_equal(resume.component_labels, ref_labels)


# ----------------------------------------------------------------------
# OracleCache: derive instead of evict, and the eviction interplay
# ----------------------------------------------------------------------


class TestCacheDerivation:
    def test_lease_with_ancestors_derives(self, graph, monkeypatch):
        from repro.sampling.parallel import ParallelSampler

        cache = OracleCache(max_bytes=64 << 20)
        with cache.lease(graph, seed=7) as oracle:
            oracle.ensure_samples(128)
        mutated, _ = graph.update_edge(*graph.edge_list()[0][:2], 0.8)

        calls = {"n": 0}
        original = ParallelSampler.sample_chunk

        def spy(sampler, root, start, count):
            calls["n"] += 1
            return original(sampler, root, start, count)

        monkeypatch.setattr(ParallelSampler, "sample_chunk", spy)
        with cache.lease(mutated, seed=7, ancestors=(graph,)) as oracle:
            oracle.ensure_samples(128)
            assert oracle.cache_stats["worlds_sampled"] == 0  # served derived
        assert calls["n"] == 0
        stats = cache.stats()
        assert stats["pools_derived"] == 1
        assert stats["worlds_derived"] == 128
        _, ref_labels = cold_pool(
            mutated, seed=7, backend="auto", chunk_size=512, samples=128
        )[1:]
        with cache.lease(mutated, seed=7) as oracle:
            oracle.ensure_samples(128)
            assert np.array_equal(oracle.component_labels, ref_labels)

    def test_lease_without_ancestors_stays_cold(self, graph):
        cache = OracleCache(max_bytes=64 << 20)
        with cache.lease(graph, seed=7) as oracle:
            oracle.ensure_samples(64)
        mutated, _ = graph.update_edge(*graph.edge_list()[0][:2], 0.8)
        with cache.lease(mutated, seed=7) as oracle:
            oracle.ensure_samples(64)
            assert oracle.cache_stats["worlds_sampled"] == 64
        assert cache.stats()["pools_derived"] == 0

    def test_mismatched_ancestor_is_skipped(self, graph):
        cache = OracleCache(max_bytes=64 << 20)
        other = random_graph(10, 0.3, np.random.default_rng(9))
        with cache.lease(other, seed=7) as oracle:
            oracle.ensure_samples(32)
        with cache.lease(graph, seed=7, ancestors=(other,)) as oracle:
            oracle.ensure_samples(32)  # different node count: cold, no crash
            assert oracle.cache_stats["worlds_sampled"] == 32

    def test_derivation_pins_parent_against_eviction(self, graph, monkeypatch):
        """While a derive is reading the parent pool, budget enforcement
        must not evict it (the pin), and once the lease completes the
        budget applies again."""
        cache = OracleCache(max_bytes=64 << 20)
        with cache.lease(graph, seed=8) as oracle:
            oracle.ensure_samples(128)
        parent_digest = pool_fingerprint(graph, 8, "scipy", 512)
        mutated, _ = graph.update_edge(*graph.edge_list()[0][:2], 0.9)

        import repro.service.cache as cache_module
        original_derive = cache_module.derive_pool
        observed = {}

        def derive_with_eviction_attempt(store, parent, child, **kwargs):
            # Simulate the LRU sweep racing the derivation: the parent
            # is pinned, so enforcement must leave it alone.
            with cache._lock:
                pinned = bool(cache._pinned.get(parent_digest))
            cache._enforce_budget()
            observed["pinned"] = pinned
            observed["parent_alive"] = store.count(parent_digest) == 128
            return original_derive(store, parent, child, **kwargs)

        monkeypatch.setattr(cache_module, "derive_pool", derive_with_eviction_attempt)
        with cache.lease(mutated, seed=8, ancestors=(graph,)) as oracle:
            oracle.ensure_samples(128)
            assert oracle.cache_stats["worlds_sampled"] == 0
        assert observed == {"pinned": True, "parent_alive": True}

    def test_parent_evicted_before_derive_falls_back_cold(self, graph, monkeypatch):
        """The satellite pin: parent eviction racing a derivation must
        produce a cold (correct) run, never a crash or corruption."""
        cache = OracleCache(max_bytes=64 << 20)
        with cache.lease(graph, seed=9) as oracle:
            oracle.ensure_samples(96)
        parent_digest = pool_fingerprint(graph, 9, "scipy", 512)
        mutated, _ = graph.update_edge(*graph.edge_list()[0][:2], 0.9)

        import repro.service.cache as cache_module
        original_derive = cache_module.derive_pool

        def evict_then_derive(store, parent, child, **kwargs):
            store.clear(parent_digest)  # "another worker evicted it"
            return original_derive(store, parent, child, **kwargs)

        monkeypatch.setattr(cache_module, "derive_pool", evict_then_derive)
        with cache.lease(mutated, seed=9, ancestors=(graph,)) as oracle:
            oracle.ensure_samples(96)
            assert oracle.cache_stats["worlds_sampled"] == 96  # cold, not crashed
        _, ref_labels = cold_pool(
            mutated, seed=9, backend="auto", chunk_size=512, samples=96
        )[1:]
        with cache.lease(mutated, seed=9) as oracle:
            oracle.ensure_samples(96)
            assert np.array_equal(oracle.component_labels, ref_labels)

    def test_concurrent_derives_and_evictions_never_corrupt(self, graph):
        """Thread-pressure version of the interplay pin."""
        cache = OracleCache(max_bytes=64 << 20)
        with cache.lease(graph, seed=10) as oracle:
            oracle.ensure_samples(128)
        parent_digest = pool_fingerprint(graph, 10, "scipy", 512)
        mutated, _ = graph.update_edge(*graph.edge_list()[0][:2], 0.9)
        _, ref_labels = cold_pool(
            mutated, seed=10, backend="auto", chunk_size=512, samples=128
        )[1:]
        errors = []
        stop = threading.Event()

        def evictor():
            while not stop.is_set():
                cache.store.clear(parent_digest)

        def deriver(results, index):
            try:
                with cache.lease(mutated, seed=10, ancestors=(graph,)) as oracle:
                    oracle.ensure_samples(128)
                    results[index] = oracle.component_labels.copy()
            except Exception as error:  # noqa: BLE001 - collected for assert
                errors.append(error)

        results = [None] * 4
        evict_thread = threading.Thread(target=evictor)
        derive_threads = [
            threading.Thread(target=deriver, args=(results, i)) for i in range(4)
        ]
        evict_thread.start()
        for thread in derive_threads:
            thread.start()
        for thread in derive_threads:
            thread.join(timeout=60)
        stop.set()
        evict_thread.join(timeout=60)
        assert not errors, errors
        for labels in results:
            assert labels is not None
            assert np.array_equal(labels, ref_labels)
