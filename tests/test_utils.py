"""Tests for utility modules: rng, math helpers, table rendering."""

import math

import numpy as np
import pytest

from repro.utils.math import (
    connection_distance,
    harmonic_number,
    log_ratio,
    num_geometric_guesses,
)
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.tables import TextTable


class TestRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        assert ensure_rng(7).random() == ensure_rng(7).random()

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_seed_sequence(self):
        rng = ensure_rng(np.random.SeedSequence(5))
        assert isinstance(rng, np.random.Generator)

    def test_bad_type(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_spawn_independent_streams(self):
        streams = spawn_rngs(0, 3)
        values = [rng.random() for rng in streams]
        assert len(set(values)) == 3

    def test_spawn_deterministic(self):
        a = [rng.random() for rng in spawn_rngs(1, 2)]
        b = [rng.random() for rng in spawn_rngs(1, 2)]
        assert a == b

    def test_spawn_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestMath:
    def test_harmonic_small(self):
        assert harmonic_number(1) == 1.0
        assert harmonic_number(4) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)

    def test_harmonic_zero(self):
        assert harmonic_number(0) == 0.0

    def test_harmonic_large_matches_asymptotic(self):
        direct = float(np.sum(1.0 / np.arange(1, 100_001)))
        assert harmonic_number(100_000) == pytest.approx(direct, rel=1e-12)

    def test_harmonic_continuity_at_crossover(self):
        # The exact/asymptotic switch at 256 must be seamless.
        exact = float(np.sum(1.0 / np.arange(1, 257)))
        assert harmonic_number(256) == pytest.approx(exact, rel=1e-10)

    def test_harmonic_negative(self):
        with pytest.raises(ValueError):
            harmonic_number(-1)

    def test_log_ratio(self):
        assert log_ratio(1.0, 0.1) == pytest.approx(math.log(10))
        with pytest.raises(ValueError):
            log_ratio(0.0, 1.0)

    def test_num_geometric_guesses(self):
        assert num_geometric_guesses(0.1, 1.0) == 1
        count = num_geometric_guesses(0.1, 1e-4)
        assert count == int(math.floor(math.log(1e4) / math.log(1.1))) + 1

    def test_connection_distance_scalar(self):
        assert connection_distance(1.0) == 0.0
        assert connection_distance(math.exp(-2)) == pytest.approx(2.0)
        assert math.isinf(connection_distance(0.0))

    def test_connection_distance_array(self):
        d = connection_distance(np.array([1.0, 0.5]))
        assert d[0] == 0.0
        assert d[1] == pytest.approx(math.log(2))

    def test_connection_distance_triangle_inequality_form(self):
        # d(u,z) <= d(u,v) + d(v,z)  <=>  p_uz >= p_uv * p_vz
        p_uv, p_vz = 0.3, 0.6
        assert connection_distance(p_uv * p_vz) == pytest.approx(
            connection_distance(p_uv) + connection_distance(p_vz)
        )

    def test_connection_distance_rejects_bad_values(self):
        with pytest.raises(ValueError):
            connection_distance(1.5)


class TestTextTable:
    def test_render_alignment(self):
        table = TextTable(["name", "value"])
        table.add_row(name="alpha", value=1)
        table.add_row(name="b", value=2.5)
        rendered = table.render()
        lines = rendered.splitlines()
        assert len({len(line) for line in lines}) == 1  # aligned
        assert "alpha" in rendered
        assert "2.500" in rendered

    def test_float_format(self):
        table = TextTable(["x"], float_format=".1f")
        table.add_row(x=3.14159)
        assert "3.1" in table.render()

    def test_none_renders_dash(self):
        table = TextTable(["x"])
        table.add_row(x=None)
        assert "-" in table.render()

    def test_bool_rendering(self):
        table = TextTable(["ok"])
        table.add_row(ok=True)
        assert "yes" in table.render()

    def test_title(self):
        table = TextTable(["x"], title="My Table")
        table.add_row(x=1)
        assert table.render().startswith("### My Table")

    def test_unknown_column_rejected(self):
        table = TextTable(["x"])
        with pytest.raises(ValueError):
            table.add_row(y=1)

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            TextTable(["x", "x"])

    def test_extend_and_len(self):
        table = TextTable(["x"])
        table.extend([{"x": 1}, {"x": 2}])
        assert len(table) == 2

    def test_mapping_plus_kwargs(self):
        table = TextTable(["a", "b"])
        table.add_row({"a": 1}, b=2)
        assert table.rows[0] == {"a": 1, "b": 2}

    def test_empty_table_renders_header(self):
        table = TextTable(["col"])
        assert "col" in table.render()
