"""Tests for the UncertainGraph data structure."""

import networkx as nx
import numpy as np
import pytest

from repro import GraphValidationError, UncertainGraph


class TestConstruction:
    def test_from_edges_counts(self, two_triangles):
        assert two_triangles.n_nodes == 6
        assert two_triangles.n_edges == 7

    def test_edge_arrays_canonical_orientation(self):
        g = UncertainGraph.from_edges([(3, 1, 0.5), (2, 0, 0.7)])
        assert np.all(g.edge_src < g.edge_dst)

    def test_from_edges_with_labels(self):
        g = UncertainGraph.from_edges([("x", "y", 0.5)])
        assert g.node_labels == ("x", "y")
        assert g.index_of("y") == 1
        assert g.label_of(0) == "x"

    def test_from_edges_respects_given_node_order(self):
        g = UncertainGraph.from_edges([("b", "c", 0.5)], nodes=["a", "b", "c"])
        assert g.n_nodes == 3
        assert g.node_labels == ("a", "b", "c")

    def test_integer_labels_passthrough(self):
        g = UncertainGraph.from_edges([(0, 1, 0.5)])
        assert g.index_of(1) == 1
        assert g.label_of(1) == 1

    def test_direct_constructor(self):
        g = UncertainGraph(3, [0, 1], [1, 2], [0.5, 0.6])
        assert g.n_nodes == 3
        assert g.n_edges == 2

    def test_empty_graph(self):
        g = UncertainGraph(4, [], [], [])
        assert g.n_nodes == 4
        assert g.n_edges == 0
        assert g.degrees().tolist() == [0, 0, 0, 0]


class TestValidation:
    def test_rejects_probability_zero(self):
        with pytest.raises(GraphValidationError):
            UncertainGraph.from_edges([(0, 1, 0.0)])

    def test_rejects_probability_above_one(self):
        with pytest.raises(GraphValidationError):
            UncertainGraph.from_edges([(0, 1, 1.5)])

    def test_accepts_probability_exactly_one(self):
        g = UncertainGraph.from_edges([(0, 1, 1.0)])
        assert g.edge_prob[0] == 1.0

    def test_rejects_self_loop(self):
        with pytest.raises(GraphValidationError):
            UncertainGraph.from_edges([(0, 0, 0.5)])

    def test_rejects_duplicate_edge_by_default(self):
        with pytest.raises(GraphValidationError, match="duplicate"):
            UncertainGraph.from_edges([(0, 1, 0.5), (1, 0, 0.6)])

    def test_rejects_out_of_range_endpoint(self):
        with pytest.raises(GraphValidationError):
            UncertainGraph(2, [0], [5], [0.5])

    def test_rejects_mismatched_array_lengths(self):
        with pytest.raises(GraphValidationError):
            UncertainGraph(3, [0, 1], [1], [0.5])

    def test_rejects_duplicate_labels(self):
        with pytest.raises(GraphValidationError):
            UncertainGraph(2, [0], [1], [0.5], node_labels=["a", "a"])

    def test_rejects_wrong_label_count(self):
        with pytest.raises(GraphValidationError):
            UncertainGraph(2, [0], [1], [0.5], node_labels=["a"])

    def test_unknown_label_lookup(self, two_triangles):
        with pytest.raises(KeyError):
            two_triangles.index_of(99)


class TestMergePolicies:
    def test_merge_max(self):
        g = UncertainGraph.from_edges([(0, 1, 0.5), (1, 0, 0.8)], merge="max")
        assert g.n_edges == 1
        assert g.edge_prob[0] == pytest.approx(0.8)

    def test_merge_noisy_or(self):
        g = UncertainGraph.from_edges([(0, 1, 0.5), (1, 0, 0.5)], merge="noisy-or")
        assert g.edge_prob[0] == pytest.approx(0.75)

    def test_merge_noisy_or_with_certain_edge(self):
        g = UncertainGraph.from_edges([(0, 1, 1.0), (1, 0, 0.5)], merge="noisy-or")
        assert g.edge_prob[0] == 1.0

    def test_merge_first(self):
        g = UncertainGraph.from_edges([(0, 1, 0.3), (1, 0, 0.9)], merge="first")
        assert g.edge_prob[0] == pytest.approx(0.3)

    def test_unknown_merge_policy(self):
        with pytest.raises(GraphValidationError):
            UncertainGraph.from_edges([(0, 1, 0.5)], merge="sum")


class TestAdjacency:
    def test_neighbors(self, two_triangles):
        assert sorted(two_triangles.neighbors(0).tolist()) == [1, 2]
        assert sorted(two_triangles.neighbors(2).tolist()) == [0, 1, 3]

    def test_degrees_sum_to_twice_edges(self, two_triangles):
        assert int(two_triangles.degrees().sum()) == 2 * two_triangles.n_edges

    def test_incident_edges_probabilities(self, path4):
        edges = path4.incident_edges(1)
        probs = sorted(path4.edge_prob[edges].tolist())
        assert probs == pytest.approx([0.5, 0.9])

    def test_has_edge(self, path4):
        assert path4.has_edge(0, 1)
        assert path4.has_edge(1, 0)
        assert not path4.has_edge(0, 3)
        assert not path4.has_edge(2, 2)

    def test_edge_probability_between(self, path4):
        assert path4.edge_probability_between(1, 2) == pytest.approx(0.5)
        assert path4.edge_probability_between(0, 3) is None


class TestDerivedGraphs:
    def test_subgraph_keeps_internal_edges(self, two_triangles):
        sub = two_triangles.subgraph([0, 1, 2])
        assert sub.n_nodes == 3
        assert sub.n_edges == 3

    def test_subgraph_preserves_labels(self):
        g = UncertainGraph.from_edges([("a", "b", 0.5), ("b", "c", 0.6)])
        sub = g.subgraph([g.index_of("b"), g.index_of("c")])
        assert set(sub.node_labels) == {"b", "c"}
        assert sub.edge_probability_between(sub.index_of("b"), sub.index_of("c")) == pytest.approx(0.6)

    def test_subgraph_rejects_duplicates(self, two_triangles):
        with pytest.raises(GraphValidationError):
            two_triangles.subgraph([0, 0, 1])

    def test_connected_components_skeleton(self):
        g = UncertainGraph.from_edges([(0, 1, 0.1), (2, 3, 0.1)], nodes=range(5))
        labels = g.connected_components()
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert len({labels[0], labels[2], labels[4]}) == 3

    def test_largest_component(self):
        g = UncertainGraph.from_edges(
            [(0, 1, 0.5), (1, 2, 0.5), (3, 4, 0.5)], nodes=range(6)
        )
        lcc = g.largest_component()
        assert lcc.n_nodes == 3
        assert lcc.n_edges == 2


class TestGlobalProperties:
    def test_log_distance_weights(self, path4):
        w = path4.log_distance_weights()
        assert w == pytest.approx(-np.log(path4.edge_prob))

    def test_most_unlikely_world(self):
        g = UncertainGraph.from_edges([(0, 1, 0.9), (1, 2, 0.4)])
        expected = np.log(0.1) + np.log(0.4)
        assert g.most_unlikely_world_log_probability() == pytest.approx(expected)

    def test_most_unlikely_world_certain_edges(self):
        g = UncertainGraph.from_edges([(0, 1, 1.0)])
        assert g.most_unlikely_world_log_probability() == 0.0

    def test_expected_edge_count(self, path4):
        assert path4.expected_edge_count() == pytest.approx(0.9 + 0.5 + 0.8)

    def test_repr_mentions_sizes(self, path4):
        assert "n_nodes=4" in repr(path4)


class TestNetworkxInterop:
    def test_roundtrip(self, two_triangles):
        nx_graph = two_triangles.to_networkx()
        back = UncertainGraph.from_networkx(nx_graph)
        assert back.n_nodes == two_triangles.n_nodes
        assert back.n_edges == two_triangles.n_edges
        for u, v, p in two_triangles.edge_list():
            assert back.edge_probability_between(back.index_of(u), back.index_of(v)) == pytest.approx(p)

    def test_from_networkx_missing_attr(self):
        nx_graph = nx.Graph()
        nx_graph.add_edge(0, 1)
        with pytest.raises(GraphValidationError, match="missing attribute"):
            UncertainGraph.from_networkx(nx_graph)

    def test_from_networkx_default_prob(self):
        nx_graph = nx.Graph()
        nx_graph.add_edge(0, 1)
        g = UncertainGraph.from_networkx(nx_graph, default_prob=0.4)
        assert g.edge_prob[0] == pytest.approx(0.4)

    def test_from_networkx_rejects_directed(self):
        with pytest.raises(GraphValidationError, match="undirected"):
            UncertainGraph.from_networkx(nx.DiGraph([(0, 1)]))
