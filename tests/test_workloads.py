"""Workload suite: k-median / k-center / expected centrality.

Pins the three contracts ISSUE.md cares about:

* **Statistical correctness** — Monte Carlo estimates converge to the
  exact-enumeration values on a grid of tiny graphs (n <= 8, m <= 10),
  swept across seeds ``REPRO_TEST_SEED .. REPRO_TEST_SEED + 3``.  The
  centrality checks are self-calibrating: the estimator's own 95%
  half-width bounds the allowed error (at 4 sigma), so the tolerance
  tightens automatically as budgets grow.
* **Determinism** — every workload is a pure function of the seed:
  bit-identical across scipy/unionfind/bitparallel backends,
  memory/disk stores, and 1/2 sampling workers.
* **Pool sharing** — a pool warmed by *any* consumer (MCP or another
  workload) serves every workload with **zero** new ``sample_chunk``
  calls; the sampler spy pins it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mcp import mcp_clustering
from repro.exceptions import ClusteringError, OracleError
from repro.graph.uncertain_graph import UncertainGraph
from repro.sampling import ExactOracle, MonteCarloOracle
from repro.sampling.parallel import ParallelSampler
from repro.sampling.store import WorldStore
from repro.workloads import (
    MEASURE_NAMES,
    exact_best_clustering,
    exact_clustering_objective,
    exact_expected_centrality,
    exact_expected_distances,
    expected_centrality,
    kcenter_clustering,
    kmedian_clustering,
    world_betweenness,
    world_degrees,
    world_harmonic,
)
from tests.conftest import random_graph, sweep_seeds

SEEDS = sweep_seeds(4)

#: Tiny-graph grid for exact-enumeration comparisons (n <= 8, m <= 10).
TINY_GRAPHS = {
    "path4": UncertainGraph.from_edges([(0, 1, 0.9), (1, 2, 0.5), (2, 3, 0.8)]),
    "triangles": UncertainGraph.from_edges(
        [(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.8),
         (3, 4, 0.85), (4, 5, 0.85), (3, 5, 0.75), (2, 3, 0.05)]
    ),
    "star5": UncertainGraph.from_edges(
        [(0, 1, 0.6), (0, 2, 0.7), (0, 3, 0.8), (0, 4, 0.9)]
    ),
    "cycle6": UncertainGraph.from_edges(
        [(i, (i + 1) % 6, 0.7) for i in range(6)]
    ),
    "diamond8": UncertainGraph.from_edges(
        [(0, 1, 0.9), (0, 2, 0.9), (1, 3, 0.9), (2, 3, 0.9),
         (3, 4, 0.4), (4, 5, 0.8), (5, 6, 0.8), (6, 7, 0.8)]
    ),
}

TINY_IDS = sorted(TINY_GRAPHS)


def tiny(name: str) -> UncertainGraph:
    graph = TINY_GRAPHS[name]
    assert graph.n_nodes <= 8 and graph.n_edges <= 10
    return graph


# ---------------------------------------------------------------------------
# Per-world measure kernels
# ---------------------------------------------------------------------------


class TestMeasureKernels:
    def test_degree_matches_mask_rows(self):
        graph = tiny("path4")
        masks = np.array(
            [[True, True, True], [True, False, True], [False, False, False]]
        )
        values = world_degrees(graph, masks)
        assert values.tolist() == [
            [1.0, 2.0, 2.0, 1.0],
            [1.0, 1.0, 1.0, 1.0],
            [0.0, 0.0, 0.0, 0.0],
        ]

    def test_harmonic_full_path(self):
        graph = tiny("path4")
        masks = np.ones((1, 3), dtype=bool)
        values = world_harmonic(graph, masks)
        # Node 0 reaches 1, 2, 3 at distances 1, 2, 3: (1 + 1/2 + 1/3) / 3.
        assert values[0, 0] == pytest.approx((1 + 0.5 + 1 / 3) / 3)
        assert values[0, 1] == pytest.approx((1 + 1 + 0.5) / 3)

    def test_betweenness_full_path(self):
        graph = tiny("path4")
        values = world_betweenness(graph, np.ones((1, 3), dtype=bool))
        # Interior nodes each sit on 2 shortest paths: (0,2)/(0,3) for
        # node 1, (0,3)/(1,3) for node 2.
        assert values.tolist() == [[0.0, 2.0, 2.0, 0.0]]

    def test_betweenness_splits_equal_paths(self):
        # 4-cycle 0-1-3-2-0: every opposite pair ((0,3) and (1,2)) has
        # two equal shortest paths, so sigma splits 1/2 per midpoint.
        graph = UncertainGraph.from_edges(
            [(0, 1, 0.5), (0, 2, 0.5), (1, 3, 0.5), (2, 3, 0.5)]
        )
        values = world_betweenness(graph, np.ones((1, 4), dtype=bool))
        assert values.tolist() == [[0.5, 0.5, 0.5, 0.5]]

    def test_kernels_reject_bad_mask_shape(self):
        graph = tiny("path4")
        for kernel in (world_degrees, world_harmonic, world_betweenness):
            with pytest.raises(ValueError):
                kernel(graph, np.ones((2, 5), dtype=bool))


# ---------------------------------------------------------------------------
# Exact enumeration references
# ---------------------------------------------------------------------------


class TestExactReferences:
    @pytest.mark.parametrize("name", TINY_IDS)
    def test_expected_distances_are_metric_like(self, name):
        graph = tiny(name)
        n = graph.n_nodes
        matrix = exact_expected_distances(graph)
        assert matrix.shape == (n, n)
        assert np.array_equal(matrix, matrix.T)
        assert np.array_equal(np.diag(matrix), np.zeros(n))
        off_diag = matrix[~np.eye(n, dtype=bool)]
        assert (off_diag > 0).all() and (off_diag <= n).all()

    @pytest.mark.parametrize("name", TINY_IDS)
    def test_matches_exact_oracle(self, name):
        graph = tiny(name)
        assert np.array_equal(
            exact_expected_distances(graph), ExactOracle(graph).expected_distances()
        )

    def test_expected_degree_is_sum_of_incident_probabilities(self):
        # Analytic pin: E[deg(v)] = sum of p_e over incident edges.
        for name in TINY_IDS:
            graph = tiny(name)
            expected = np.zeros(graph.n_nodes)
            for u, v, p in zip(graph.edge_src, graph.edge_dst, graph.edge_prob):
                expected[u] += p
                expected[v] += p
            values = exact_expected_centrality(graph, "degree")
            np.testing.assert_allclose(values, expected, atol=1e-12)

    def test_best_clustering_beats_every_other_center_set(self):
        graph = tiny("triangles")
        for kind in ("kmedian", "kcenter"):
            centers, best = exact_best_clustering(graph, 2, kind=kind)
            assert len(set(centers)) == 2
            for other in [(0, 3), (1, 4), (2, 5), (0, 5)]:
                assert best <= exact_clustering_objective(
                    graph, list(other), kind=kind
                ) + 1e-12

    def test_objective_validation(self):
        graph = tiny("path4")
        with pytest.raises(ClusteringError):
            exact_clustering_objective(graph, [0, 1], kind="kmeans")
        with pytest.raises(ClusteringError):
            exact_clustering_objective(graph, [0, 0], kind="kmedian")
        with pytest.raises(ClusteringError):
            exact_clustering_objective(graph, [0, 4], kind="kmedian")
        with pytest.raises(OracleError):
            exact_expected_distances(graph, max_uncertain_edges=2)


# ---------------------------------------------------------------------------
# Monte Carlo vs exact enumeration (statistical tolerance)
# ---------------------------------------------------------------------------


class TestStatisticalTolerance:
    """MC estimates vs ground truth on the tiny grid, seeds swept."""

    SAMPLES = 2000

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("name", TINY_IDS)
    def test_expected_distances_converge(self, name, seed):
        graph = tiny(name)
        exact = exact_expected_distances(graph)
        with MonteCarloOracle(graph, seed=seed, chunk_size=512) as oracle:
            oracle.ensure_samples(self.SAMPLES)
            estimate = oracle.expected_distances()
        # Per-pair distances live in [0, n]; at 2000 worlds the sample
        # mean of a [0, n]-bounded variable has std <= n/2/sqrt(r) ~ 0.09,
        # so 0.5 is > 5 sigma for every graph in the grid.
        assert np.abs(estimate - exact).max() < 0.5

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("measure", MEASURE_NAMES)
    @pytest.mark.parametrize("name", TINY_IDS)
    def test_centrality_within_own_confidence_bound(self, name, measure, seed):
        graph = tiny(name)
        exact = exact_expected_centrality(graph, measure)
        # tol=1e-9 forces the full budget so half_width reflects the
        # whole pool; the bound then self-calibrates per measure.
        result = expected_centrality(
            graph, measure=measure, seed=seed, samples=self.SAMPLES, tol=1e-9
        )
        assert result.samples_used >= self.SAMPLES
        error = np.abs(result.values - exact).max()
        # half_width is 95% (~2 sigma); 4 sigma leaves ~6e-5 per node.
        bound = max(2 * result.half_width, 1e-9)
        assert error <= bound, f"{name}/{measure}/seed={seed}: {error} > {bound}"

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("name", TINY_IDS)
    def test_kmedian_centers_near_exact_greedy(self, name, seed):
        graph = tiny(name)
        k = 2
        mc = kmedian_clustering(graph, k, seed=seed, samples=self.SAMPLES)
        reference = kmedian_clustering(graph, k, oracle=ExactOracle(graph))
        mc_true = exact_clustering_objective(
            graph, mc.clustering.centers.tolist(), kind="kmedian"
        )
        ref_true = exact_clustering_objective(
            graph, reference.clustering.centers.tolist(), kind="kmedian"
        )
        # The MC-seeded centers may differ, but their *exact* objective
        # must be within MC noise of the exact-matrix greedy's.
        assert mc_true <= ref_true + 0.5
        # And the MC objective estimate tracks the exact objective of
        # the same centers.
        assert abs(mc.objective - mc_true) < 0.5

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("name", TINY_IDS)
    def test_kcenter_respects_2_approximation(self, name, seed):
        graph = tiny(name)
        k = 2
        mc = kcenter_clustering(graph, k, seed=seed, samples=self.SAMPLES)
        _, opt = exact_best_clustering(graph, k, kind="kcenter")
        mc_true = exact_clustering_objective(
            graph, mc.clustering.centers.tolist(), kind="kcenter"
        )
        # Gonzalez on the exact metric guarantees <= 2 * opt; MC noise
        # perturbs the traversal, so allow slack on top of the bound.
        assert mc_true <= 2.0 * opt + 0.5
        assert abs(mc.objective - mc_true) < 0.5

    def test_exact_oracle_matches_brute_force_kmedian(self):
        graph = tiny("triangles")
        result = kmedian_clustering(graph, 2, oracle=ExactOracle(graph))
        _, best = exact_best_clustering(graph, 2, kind="kmedian")
        assert result.samples_used == 0
        assert result.objective == pytest.approx(best)


# ---------------------------------------------------------------------------
# Determinism across backends, stores, and worker counts
# ---------------------------------------------------------------------------


def _store_for(kind, tmp_path):
    if kind == "none":
        return None
    if kind == "memory":
        return WorldStore()
    return WorldStore(tmp_path / "worlds")


CONFIGS = [
    ("scipy", "none", 1),
    ("unionfind", "none", 1),
    ("bitparallel", "none", 1),
    ("scipy", "memory", 1),
    ("scipy", "disk", 1),
    ("bitparallel", "disk", 1),
    ("scipy", "none", 2),
    ("bitparallel", "memory", 2),
]


class TestCrossConfigEquivalence:
    """Every (backend, store, workers) combination is bit-identical."""

    SAMPLES = 300

    @pytest.fixture(scope="class")
    def graph(self):
        rng = np.random.default_rng(SEEDS[0] + 100)
        return random_graph(12, 0.3, rng, prob_low=0.2, prob_high=0.95)

    def run_all(self, graph, *, backend, store, workers, seed):
        kwargs = dict(
            seed=seed, samples=self.SAMPLES, chunk_size=64,
            backend=backend, workers=workers, store=store,
        )
        km = kmedian_clustering(graph, 3, **kwargs)
        kc = kcenter_clustering(graph, 3, **kwargs)
        ce = expected_centrality(graph, measure="harmonic", tol=1e-9, **kwargs)
        return km, kc, ce

    @pytest.mark.parametrize(
        "backend,store_kind,workers", CONFIGS,
        ids=["-".join(map(str, c)) for c in CONFIGS],
    )
    def test_bit_identical_to_reference(self, graph, backend, store_kind, workers,
                                        tmp_path):
        seed = SEEDS[0]
        ref_km, ref_kc, ref_ce = self.run_all(
            graph, backend="scipy", store=None, workers=1, seed=seed
        )
        store = _store_for(store_kind, tmp_path)
        km, kc, ce = self.run_all(
            graph, backend=backend, store=store, workers=workers, seed=seed
        )
        for got, ref in ((km, ref_km), (kc, ref_kc)):
            assert np.array_equal(got.clustering.centers, ref.clustering.centers)
            assert np.array_equal(got.clustering.assignment, ref.clustering.assignment)
            assert got.objective == ref.objective  # bit-identical, no approx
            assert np.array_equal(got.node_costs, ref.node_costs)
            assert got.samples_used == ref.samples_used
        assert np.array_equal(ce.values, ref_ce.values)
        assert ce.half_width == ref_ce.half_width
        assert ce.samples_used == ref_ce.samples_used

    def test_different_seeds_differ(self, graph):
        a = expected_centrality(
            graph, measure="degree", seed=SEEDS[0], samples=200, tol=1e-9
        )
        b = expected_centrality(
            graph, measure="degree", seed=SEEDS[0] + 1000, samples=200, tol=1e-9
        )
        assert not np.array_equal(a.values, b.values)


# ---------------------------------------------------------------------------
# Shared-pool invariant: warm pool => zero resampling
# ---------------------------------------------------------------------------


class TestSharedPool:
    """All workloads consume one pool; warming any consumer warms all."""

    def _spy(self, monkeypatch):
        calls = []
        original = ParallelSampler.sample_chunk

        def spying(self, root, start, count):
            calls.append((start, count))
            return original(self, root, start, count)

        monkeypatch.setattr(ParallelSampler, "sample_chunk", spying)
        return calls

    def test_warm_pool_zero_sample_chunk_calls(self, monkeypatch, tmp_path):
        graph = tiny("triangles")
        store = WorldStore(tmp_path / "worlds")
        kwargs = dict(seed=SEEDS[0], chunk_size=64, backend="scipy", store=store)
        # Warm the pool through MCP — a *different* workload family.
        mcp_clustering(graph, 2, **kwargs)
        (pool,) = store.info()
        budget = pool.n_worlds  # whatever MCP sampled is now shared
        assert budget > 0
        calls = self._spy(monkeypatch)
        km = kmedian_clustering(graph, 2, samples=budget, **kwargs)
        kc = kcenter_clustering(graph, 2, samples=budget, **kwargs)
        ce = expected_centrality(graph, measure="degree", samples=budget, tol=1e-9,
                                 **kwargs)
        assert calls == [], "warm-pool workload run resampled worlds"
        assert km.samples_used >= budget and kc.samples_used >= budget
        assert ce.samples_used >= budget

    def test_cold_pool_samples_then_stays_warm_in_memory(self, monkeypatch):
        graph = tiny("triangles")
        store = WorldStore()
        kwargs = dict(seed=SEEDS[0], chunk_size=64, backend="scipy", store=store)
        calls = self._spy(monkeypatch)
        kmedian_clustering(graph, 2, samples=128, **kwargs)
        assert len(calls) > 0  # cold run must sample
        calls.clear()
        kcenter_clustering(graph, 2, samples=128, **kwargs)
        expected_centrality(graph, measure="harmonic", samples=128, tol=1e-9, **kwargs)
        assert calls == []


# ---------------------------------------------------------------------------
# API contracts: validation, determinism of records, cancellation
# ---------------------------------------------------------------------------


class TestWorkloadAPI:
    def test_k_validation(self):
        graph = tiny("path4")
        for bad_k in (0, 4, 7):
            with pytest.raises(ClusteringError):
                kmedian_clustering(graph, bad_k, seed=0, samples=10)
            with pytest.raises(ClusteringError):
                kcenter_clustering(graph, bad_k, seed=0, samples=10)

    def test_samples_and_iters_validation(self):
        graph = tiny("path4")
        with pytest.raises(ClusteringError):
            kmedian_clustering(graph, 2, seed=0, samples=0)
        with pytest.raises(ClusteringError):
            kmedian_clustering(graph, 2, seed=0, samples=10, max_iters=-1)

    def test_centrality_validation(self):
        graph = tiny("path4")
        with pytest.raises(ClusteringError):
            expected_centrality(graph, measure="pagerank", seed=0)
        with pytest.raises(ClusteringError):
            expected_centrality(graph, measure="degree", seed=0, tol=0.0)
        with pytest.raises(ClusteringError):
            expected_centrality(graph, measure="degree", seed=0, tol=float("nan"))
        with pytest.raises(ClusteringError):
            expected_centrality(graph, measure="degree", seed=0, samples=0)

    def test_assignment_is_complete_and_consistent(self):
        graph = tiny("triangles")
        for run in (kmedian_clustering, kcenter_clustering):
            result = run(graph, 2, seed=SEEDS[0], samples=200)
            clustering = result.clustering
            assert clustering.assignment.shape == (graph.n_nodes,)
            assert set(clustering.assignment.tolist()) <= {0, 1}
            # Each center belongs to its own cluster.
            for i, center in enumerate(clustering.centers.tolist()):
                assert clustering.assignment[center] == i
            assert result.node_costs.min() == 0.0  # centers cost nothing

    def test_progress_and_history_agree(self):
        graph = tiny("triangles")
        events = []
        result = kmedian_clustering(
            graph, 2, seed=SEEDS[0], samples=200, progress=events.append
        )
        assert len(events) == result.n_rounds
        assert [e["round"] for e in events] == list(range(result.n_rounds))
        assert all(e["phase"] in ("seed", "refine") for e in events)
        ce_events = []
        ce = expected_centrality(
            graph, measure="degree", seed=SEEDS[0], samples=200,
            progress=ce_events.append,
        )
        assert len(ce_events) == ce.n_rounds
        assert ce_events[-1]["converged"] == ce.converged
        assert ce_events[-1]["samples"] == ce.samples_used

    def test_cancel_check_aborts(self):
        graph = tiny("triangles")

        class Abort(RuntimeError):
            pass

        def cancel():
            raise Abort

        with pytest.raises(Abort):
            kmedian_clustering(graph, 2, seed=0, samples=100, cancel_check=cancel)
        with pytest.raises(Abort):
            expected_centrality(graph, seed=0, samples=100, cancel_check=cancel)

    def test_exact_oracle_short_circuits_centrality(self):
        graph = tiny("path4")
        result = expected_centrality(graph, measure="betweenness",
                                     oracle=ExactOracle(graph))
        assert result.samples_used == 0
        assert result.half_width == 0.0
        assert result.converged is True
        assert result.n_rounds == 0
        np.testing.assert_allclose(
            result.values, exact_expected_centrality(graph, "betweenness")
        )

    def test_repeat_run_is_bitwise_identical(self):
        graph = tiny("diamond8")
        a = kcenter_clustering(graph, 3, seed=SEEDS[0], samples=300)
        b = kcenter_clustering(graph, 3, seed=SEEDS[0], samples=300)
        assert np.array_equal(a.clustering.centers, b.clustering.centers)
        assert a.objective == b.objective
        assert a.history == b.history
