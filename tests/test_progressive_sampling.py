"""Progressive-sampling invariants (paper Section 4).

The Monte Carlo pool must only ever *grow*, and growth must never
re-label worlds already in the pool — lowering the threshold ``q``
reuses all previous work.  A counting spy backend observes exactly what
the oracle asks the labeling backend to do.
"""

import numpy as np
import pytest

from repro.core.mcp import mcp_clustering
from repro.sampling import MonteCarloOracle
from repro.sampling.backends import BitParallelWorldBackend, ScipyWorldBackend


class CountingBackend:
    """WorldBackend spy: records every labeling call's world count."""

    name = "counting"

    def __init__(self):
        self._inner = ScipyWorldBackend()
        self.calls: list[int] = []

    @property
    def worlds_labeled(self) -> int:
        return sum(self.calls)

    def component_labels(self, graph, masks):
        self.calls.append(masks.shape[0])
        return self._inner.component_labels(graph, masks)


class CountingPackedBackend(CountingBackend):
    """Spy over the packed fast path: the sampler must route every
    growth chunk through ``component_labels_packed`` (one call per
    chunk, same sizes as the boolean path) when the backend offers it."""

    name = "counting-packed"

    def __init__(self):
        super().__init__()
        self._inner = BitParallelWorldBackend()

    def component_labels_packed(self, graph, packed_cols, n_worlds):
        self.calls.append(n_worlds)
        return self._inner.component_labels_packed(graph, packed_cols, n_worlds)


@pytest.fixture(params=[CountingBackend, CountingPackedBackend])
def spy(request):
    return request.param()


class TestEnsureSamplesNeverRelabels:
    def test_growth_labels_only_the_difference(self, two_triangles, spy):
        oracle = MonteCarloOracle(two_triangles, seed=0, chunk_size=32, backend=spy)
        oracle.ensure_samples(100)
        assert spy.worlds_labeled == 100
        oracle.ensure_samples(260)
        # Only the 160 new worlds were labeled, in fresh chunks.
        assert spy.worlds_labeled == 260
        assert oracle.num_samples == 260

    def test_shrinking_request_is_a_no_op(self, two_triangles, spy):
        oracle = MonteCarloOracle(two_triangles, seed=0, chunk_size=32, backend=spy)
        oracle.ensure_samples(96)
        calls_before = list(spy.calls)
        oracle.ensure_samples(50)
        oracle.ensure_samples(96)
        oracle.ensure_samples(0)
        assert spy.calls == calls_before
        assert oracle.num_samples == 96

    def test_chunks_are_append_only(self, two_triangles, spy):
        oracle = MonteCarloOracle(two_triangles, seed=0, chunk_size=32, backend=spy)
        oracle.ensure_samples(64)
        first_labels = oracle.component_labels
        oracle.ensure_samples(128)
        grown = oracle.component_labels
        # The earlier worlds are a byte-identical prefix of the pool.
        assert np.array_equal(grown[: len(first_labels)], first_labels)

    def test_call_sizes_respect_chunking(self, two_triangles, spy):
        oracle = MonteCarloOracle(two_triangles, seed=0, chunk_size=32, backend=spy)
        oracle.ensure_samples(70)
        assert spy.calls == [32, 32, 6]


class TestHistorySampleCounts:
    def test_mcp_history_is_monotone(self, two_triangles):
        result = mcp_clustering(two_triangles, 2, seed=1, chunk_size=32)
        samples = [guess.samples for guess in result.history]
        assert samples, "history must record every min-partial invocation"
        assert all(a <= b for a, b in zip(samples, samples[1:], strict=False))
        assert result.samples_used == samples[-1]

    def test_mcp_history_monotone_even_when_partial(self, two_triangles):
        # Force a bottom-out: one cluster cannot span the flaky bridge at
        # thresholds >= 0.5, so the schedule ends without covering.
        result = mcp_clustering(
            two_triangles, 1, seed=1, chunk_size=32, p_lower=0.5,
            guess_schedule=[1.0, 0.9, 0.5],
        )
        assert not result.covers_all
        samples = [guess.samples for guess in result.history]
        assert all(a <= b for a, b in zip(samples, samples[1:], strict=False))
