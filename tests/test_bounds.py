"""Tests for the guarantee-bound calculators, including cross-checks
that the actual algorithms respect both the value floors and the
iteration caps the theorems state."""

import numpy as np
import pytest

from repro import ClusteringError, acp_clustering, mcp_clustering
from repro.core.bounds import (
    GuaranteeReport,
    acp_guarantee,
    acp_iteration_bound,
    guarantee_report,
    mcp_guarantee,
    mcp_iteration_bound,
)
from repro.core.bruteforce import optimal_avg_prob, optimal_min_prob
from repro.metrics import avg_connection_probability, min_connection_probability
from repro.sampling import ExactOracle
from repro.utils.math import harmonic_number
from tests.conftest import random_graph


class TestFormulas:
    def test_mcp_guarantee_value(self):
        assert mcp_guarantee(0.5, 0.1) == pytest.approx(0.25 / 1.1)

    def test_mcp_guarantee_with_eps(self):
        assert mcp_guarantee(0.5, 0.1, eps=0.3) == pytest.approx(0.7 * 0.25 / 1.1)

    def test_acp_guarantee_value(self):
        n = 100
        expected = (0.5 / (1.1 * harmonic_number(n))) ** 3
        assert acp_guarantee(0.5, 0.1, n) == pytest.approx(expected)

    def test_guarantees_monotone_in_optimum(self):
        assert mcp_guarantee(0.8, 0.1) > mcp_guarantee(0.4, 0.1)
        assert acp_guarantee(0.8, 0.1, 50) > acp_guarantee(0.4, 0.1, 50)

    def test_iteration_bounds_grow_as_optimum_shrinks(self):
        assert mcp_iteration_bound(0.01, 0.1) > mcp_iteration_bound(0.5, 0.1)
        assert acp_iteration_bound(0.01, 0.1, 50) > acp_iteration_bound(0.5, 0.1, 50)

    def test_mcp_iteration_bound_certain_graph(self):
        assert mcp_iteration_bound(1.0, 0.1) == 1

    def test_invalid_inputs(self):
        with pytest.raises(ClusteringError):
            mcp_guarantee(1.5, 0.1)
        with pytest.raises(ClusteringError):
            mcp_guarantee(0.5, 0.0)
        with pytest.raises(ClusteringError):
            acp_guarantee(0.5, 0.1, 0)
        with pytest.raises(ClusteringError):
            mcp_iteration_bound(0.0, 0.1)


class TestReport:
    def test_mcp_report(self):
        report = guarantee_report("mcp", 0.5, gamma=0.1)
        assert isinstance(report, GuaranteeReport)
        assert report.promised_value == pytest.approx(mcp_guarantee(0.5, 0.1))
        assert "min-partial" in report.render()

    def test_acp_requires_n(self):
        with pytest.raises(ClusteringError, match="node count"):
            guarantee_report("acp", 0.5)

    def test_unknown_objective(self):
        with pytest.raises(ClusteringError):
            guarantee_report("sum", 0.5)


class TestAlgorithmsRespectBounds:
    """End-to-end: value floors AND iteration caps hold on random graphs."""

    @pytest.mark.parametrize("seed", range(5))
    def test_mcp_value_and_iterations(self, seed):
        rng = np.random.default_rng(400 + seed)
        graph = random_graph(8, 0.4, rng, prob_low=0.3)
        oracle = ExactOracle(graph)
        gamma = 0.1
        p_opt, _ = optimal_min_prob(oracle, 2)
        if p_opt == 0.0:
            pytest.skip("graph has more than 2 components")
        result = mcp_clustering(
            None, 2, oracle=oracle, gamma=gamma, seed=seed,
            guess_schedule="geometric", refine=False, p_lower=1e-6,
        )
        achieved = min_connection_probability(result.clustering, oracle)
        assert achieved >= mcp_guarantee(p_opt, gamma) - 1e-12
        # Theorem 3's iteration cap applies to the geometric schedule.
        assert result.n_guesses <= mcp_iteration_bound(p_opt, gamma)

    @pytest.mark.parametrize("seed", range(5))
    def test_acp_value_and_iterations(self, seed):
        rng = np.random.default_rng(500 + seed)
        graph = random_graph(7, 0.45, rng, prob_low=0.3)
        oracle = ExactOracle(graph)
        gamma = 0.1
        p_opt, _ = optimal_avg_prob(oracle, 2)
        result = acp_clustering(
            None, 2, oracle=oracle, gamma=gamma, seed=seed,
            mode="theoretical", guess_schedule="geometric",
        )
        achieved = avg_connection_probability(result.clustering, oracle)
        assert achieved >= acp_guarantee(p_opt, gamma, graph.n_nodes) - 1e-12
        assert result.n_guesses <= acp_iteration_bound(p_opt, gamma, graph.n_nodes)
