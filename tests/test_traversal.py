"""Tests for BFS / Dijkstra traversal helpers."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.traversal import (
    UNREACHED,
    bfs_distances,
    build_csr_matrix,
    dijkstra_distances,
)
from tests.conftest import random_graph


class TestBFS:
    def test_path_distances(self, path4):
        dist = bfs_distances(path4, 0)
        assert dist.tolist() == [0, 1, 2, 3]

    def test_max_depth_cap(self, path4):
        dist = bfs_distances(path4, 0, max_depth=2)
        assert dist.tolist() == [0, 1, 2, UNREACHED]

    def test_depth_zero(self, path4):
        dist = bfs_distances(path4, 1, max_depth=0)
        assert dist.tolist() == [UNREACHED, 0, UNREACHED, UNREACHED]

    def test_edge_mask_removes_edges(self, path4):
        mask = np.array([True, False, True])
        dist = bfs_distances(path4, 0, edge_mask=mask)
        assert dist.tolist() == [0, 1, UNREACHED, UNREACHED]

    def test_out_of_range_source(self, path4):
        with pytest.raises(IndexError):
            bfs_distances(path4, 10)

    def test_matches_networkx(self):
        rng = np.random.default_rng(3)
        graph = random_graph(15, 0.2, rng)
        nx_graph = graph.to_networkx()
        for source in (0, 7, 14):
            expected = nx.single_source_shortest_path_length(nx_graph, source)
            dist = bfs_distances(graph, source)
            for node in range(graph.n_nodes):
                if node in expected:
                    assert dist[node] == expected[node]
                else:
                    assert dist[node] == UNREACHED


class TestCSRMatrix:
    def test_symmetric(self, two_triangles):
        matrix = build_csr_matrix(two_triangles)
        assert (matrix != matrix.T).nnz == 0

    def test_default_unit_weights(self, path4):
        matrix = build_csr_matrix(path4)
        assert matrix.sum() == pytest.approx(2 * path4.n_edges)

    def test_custom_weights(self, path4):
        matrix = build_csr_matrix(path4, weights=np.array([1.0, 2.0, 3.0]))
        assert matrix[0, 1] == pytest.approx(1.0)
        assert matrix[1, 2] == pytest.approx(2.0)

    def test_weight_shape_check(self, path4):
        with pytest.raises(ValueError):
            build_csr_matrix(path4, weights=np.ones(7))

    def test_edge_mask(self, path4):
        matrix = build_csr_matrix(path4, edge_mask=np.array([True, False, False]))
        assert matrix.nnz == 2  # one edge, both directions


class TestDijkstra:
    def test_matches_networkx_log_weights(self):
        rng = np.random.default_rng(11)
        graph = random_graph(12, 0.3, rng, prob_low=0.2)
        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(range(graph.n_nodes))
        for u, v, p in graph.edge_list():
            nx_graph.add_edge(u, v, weight=-np.log(p))
        dist = dijkstra_distances(graph, [0])
        expected = nx.single_source_dijkstra_path_length(nx_graph, 0)
        for node in range(graph.n_nodes):
            if node in expected:
                assert dist[0, node] == pytest.approx(expected[node])
            else:
                assert np.isinf(dist[0, node])

    def test_multi_source_shape(self, two_triangles):
        dist = dijkstra_distances(two_triangles, [0, 3])
        assert dist.shape == (2, 6)
        assert dist[0, 0] == 0.0
        assert dist[1, 3] == 0.0

    def test_limit_truncates(self, path4):
        dist = dijkstra_distances(path4, [0], weights=np.ones(3), limit=1.5)
        assert np.isinf(dist[0, 2])
        assert np.isinf(dist[0, 3])
