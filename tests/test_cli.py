"""Tests for the command-line interface."""

import pytest

from repro import write_uncertain_graph
from repro.cli import main


@pytest.fixture
def graph_file(tmp_path, two_triangles):
    path = tmp_path / "graph.uel"
    write_uncertain_graph(two_triangles, path)
    return str(path)


class TestStats:
    def test_prints_counts(self, graph_file, capsys):
        assert main(["stats", graph_file]) == 0
        out = capsys.readouterr().out
        assert "nodes            6" in out
        assert "edges            7" in out
        assert "largest CC" in out

    def test_missing_file(self, capsys):
        assert main(["stats", "/nonexistent.uel"]) == 2
        assert "error" in capsys.readouterr().err


class TestEstimate:
    def test_estimates_probability(self, graph_file, capsys):
        assert main(["estimate", graph_file, "0", "1", "--samples", "2000"]) == 0
        out = capsys.readouterr().out
        assert "Pr(0 ~ 1)" in out
        value = float(out.split("~=")[1].split()[0])
        assert 0.8 <= value <= 1.0

    def test_depth_flag(self, graph_file, capsys):
        assert main(
            ["estimate", graph_file, "0", "3", "--samples", "500", "--depth", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "paths <= 1" in out
        value = float(out.split("~=")[1].split()[0])
        assert value == 0.0  # not adjacent


class TestCluster:
    @pytest.mark.parametrize("algorithm", ["mcp", "acp", "gmm"])
    def test_k_algorithms_write_tsv(self, graph_file, tmp_path, algorithm):
        out_path = tmp_path / "clusters.tsv"
        code = main(
            [
                "cluster", graph_file,
                "--algorithm", algorithm,
                "--k", "2",
                "--samples", "300",
                "-o", str(out_path),
            ]
        )
        assert code == 0
        lines = out_path.read_text().strip().splitlines()
        assert lines[0] == "node\tcluster\tcenter"
        assert len(lines) == 7  # header + 6 nodes
        clusters = {line.split("\t")[1] for line in lines[1:]}
        assert len(clusters) == 2

    @pytest.mark.parametrize("algorithm", ["mcl", "kpt"])
    def test_granularity_free_algorithms(self, graph_file, tmp_path, algorithm):
        out_path = tmp_path / "clusters.tsv"
        code = main(["cluster", graph_file, "--algorithm", algorithm, "-o", str(out_path)])
        assert code == 0
        assert out_path.exists()

    def test_stdout_default(self, graph_file, capsys):
        assert main(["cluster", graph_file, "--k", "2", "--samples", "200"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("node\tcluster\tcenter")

    def test_backend_flag_is_output_invariant(self, graph_file, capsys):
        outputs = []
        for backend in ("scipy", "unionfind"):
            assert main(
                ["cluster", graph_file, "--k", "2", "--samples", "200",
                 "--backend", backend]
            ) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_unknown_backend_rejected(self, graph_file, capsys):
        with pytest.raises(SystemExit):
            main(["cluster", graph_file, "--backend", "duckdb"])

    def test_workers_flag_is_output_invariant(self, graph_file, capsys):
        outputs = []
        for workers in ("1", "2", "auto"):
            assert main(
                ["cluster", graph_file, "--k", "2", "--samples", "200",
                 "--workers", workers]
            ) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1] == outputs[2]

    def test_invalid_workers_rejected(self, graph_file):
        for bad in ("0", "-3", "many"):
            with pytest.raises(SystemExit):
                main(["cluster", graph_file, "--workers", bad])

    def test_estimate_workers_flag(self, graph_file, capsys):
        assert main(
            ["estimate", graph_file, "0", "1", "--samples", "500",
             "--workers", "2"]
        ) == 0
        assert "Pr(0 ~ 1)" in capsys.readouterr().out

    def test_estimate_backend_flag(self, graph_file, capsys):
        assert main(
            ["estimate", graph_file, "0", "1", "--samples", "500",
             "--backend", "unionfind"]
        ) == 0
        assert "Pr(0 ~ 1)" in capsys.readouterr().out

    def test_invalid_k_reports_error(self, graph_file, capsys):
        assert main(["cluster", graph_file, "--k", "99"]) == 2
        assert "error" in capsys.readouterr().err


class TestGenerate:
    def test_generates_uel(self, tmp_path, capsys):
        out_path = tmp_path / "krogan.uel"
        code = main(
            ["generate", "krogan", "--scale", "0.08", "--seed", "1", "-o", str(out_path)]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "planted complexes" in err
        from repro import read_uncertain_graph

        graph = read_uncertain_graph(out_path, numeric_labels=True)
        assert graph.n_nodes > 20

    def test_roundtrip_through_cluster(self, tmp_path):
        out_path = tmp_path / "g.uel"
        assert main(["generate", "gavin", "--scale", "0.08", "-o", str(out_path)]) == 0
        clusters = tmp_path / "c.tsv"
        assert main(
            ["cluster", str(out_path), "--k", "5", "--samples", "200", "-o", str(clusters)]
        ) == 0
        assert clusters.read_text().count("\n") > 20


class TestWorldCache:
    def test_estimate_populates_and_reuses_cache(self, graph_file, tmp_path, capsys):
        cache = str(tmp_path / "wc")
        args = ["estimate", graph_file, "0", "1", "--samples", "600",
                "--world-cache", cache]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert main(args) == 0  # second run is served from the cache
        warm = capsys.readouterr().out
        assert warm == cold

        assert main(["cache", "info", cache]) == 0
        out = capsys.readouterr().out
        assert "1 pool(s)" in out
        assert "600" in out

    def test_cluster_accepts_world_cache(self, graph_file, tmp_path, capsys):
        cache = str(tmp_path / "wc")
        out_path = tmp_path / "c.tsv"
        args = ["cluster", graph_file, "--algorithm", "mcp", "--k", "2",
                "--samples", "200", "--world-cache", cache, "-o", str(out_path)]
        assert main(args) == 0
        cold = out_path.read_text()
        assert main(args) == 0
        assert out_path.read_text() == cold
        assert main(["cache", "info", cache]) == 0
        assert "pool(s)" in capsys.readouterr().out

    def test_cache_clear(self, graph_file, tmp_path, capsys):
        cache = str(tmp_path / "wc")
        assert main(["estimate", graph_file, "0", "1", "--samples", "100",
                     "--world-cache", cache]) == 0
        capsys.readouterr()
        assert main(["cache", "clear", cache]) == 0
        assert "removed 1 pool(s)" in capsys.readouterr().err
        assert main(["cache", "info", cache]) == 0
        assert "no cached pools" in capsys.readouterr().out

    def test_cache_clear_digest_prefix(self, graph_file, tmp_path, capsys):
        cache = str(tmp_path / "wc")
        assert main(["estimate", graph_file, "0", "1", "--samples", "100",
                     "--world-cache", cache]) == 0
        capsys.readouterr()
        from repro.sampling.store import WorldStore

        (pool,) = WorldStore(cache).info()
        assert main(["cache", "clear", cache, "--digest", pool.digest[:8]]) == 0
        assert "removed 1 pool(s)" in capsys.readouterr().err

    def test_cache_clear_unknown_digest(self, tmp_path, capsys):
        assert main(["cache", "clear", str(tmp_path), "--digest", "ffff"]) == 2
        assert "no cached pool" in capsys.readouterr().err

    def test_cache_info_empty_dir(self, tmp_path, capsys):
        assert main(["cache", "info", str(tmp_path / "missing")]) == 0
        assert "no cached pools" in capsys.readouterr().out


class TestMeta:
    def test_version_flag_reports_package_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_requires_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            main([])


class TestServeParser:
    """`serve` / `bench-serve` argument plumbing (the server itself is
    exercised end-to-end in tests/test_service.py)."""

    def test_serve_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8722
        assert args.workers == 2
        assert args.world_cache is None
        assert args.cache_bytes == 256 << 20

    def test_serve_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "9000", "--workers", "4",
             "--world-cache", "/tmp/wc", "--graph", "g.uel:toy",
             "--sampling-workers", "auto", "--cache-bytes", "1024"]
        )
        assert args.port == 9000
        assert args.workers == 4
        assert args.graph == ["g.uel:toy"]
        assert args.cache_bytes == 1024

    def test_serve_missing_graph_file_reports_error(self, capsys):
        assert main(["serve", "--graph", "/nonexistent.uel"]) == 2
        assert "error" in capsys.readouterr().err

    def test_bench_serve_requires_graph(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench-serve", "http://x:1"])

    def test_bench_serve_unreachable_url_reports_error(self, capsys, monkeypatch):
        import repro.service.loadgen as loadgen

        monkeypatch.setitem(loadgen.wait_ready.__kwdefaults__, "timeout", 0.2)
        assert main(
            ["bench-serve", "http://127.0.0.1:1", "--graph", "toy"]
        ) == 2
        assert "never became healthy" in capsys.readouterr().err


class TestMutate:
    def test_mutate_writes_updated_graph(self, graph_file, tmp_path, capsys):
        out = tmp_path / "mutated.uel"
        code = main([
            "mutate", graph_file, "--update", "0", "1", "0.123",
            "--add", "0", "4", "0.5", "-o", str(out),
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "+1" in err and "~1" in err and "revision 0 -> 1" in err
        from repro.graph.io import read_uncertain_graph

        mutated = read_uncertain_graph(out)
        assert mutated.n_edges == 8  # two_triangles has 7
        assert mutated.edge_probability_between(
            mutated.index_of("0"), mutated.index_of("1")
        ) == 0.123

    def test_mutate_in_place_by_default(self, graph_file, capsys):
        assert main(["mutate", graph_file, "--remove", "2", "3"]) == 0
        from repro.graph.io import read_uncertain_graph

        graph = read_uncertain_graph(graph_file)
        assert graph.n_edges == 6
        assert graph.n_nodes == 6  # node-order directive keeps all nodes

    def test_mutate_without_ops_errors(self, graph_file, capsys):
        assert main(["mutate", graph_file]) == 2
        assert "no mutation ops" in capsys.readouterr().err

    def test_mutate_invalid_op_errors(self, graph_file, capsys):
        assert main(["mutate", graph_file, "--remove", "0", "5"]) == 2
        assert "error" in capsys.readouterr().err

    def test_mutate_derives_world_cache(self, graph_file, tmp_path, capsys):
        cache = tmp_path / "wc"
        assert main([
            "estimate", graph_file, "0", "1", "--samples", "300",
            "--world-cache", str(cache), "--workers", "1",
        ]) == 0
        out = tmp_path / "mutated.uel"
        assert main([
            "mutate", graph_file, "--update", "0", "1", "0.95",
            "-o", str(out), "--world-cache", str(cache),
        ]) == 0
        err = capsys.readouterr().err
        assert "derived 300 worlds" in err
        # The derived pool serves the mutated graph warm, bit-identically
        # to a cold run at the same seed.
        from repro.graph.io import read_uncertain_graph
        from repro.sampling.oracle import MonteCarloOracle

        mutated = read_uncertain_graph(out)
        with MonteCarloOracle(mutated, seed=0, cache_dir=cache) as warm:
            warm.ensure_samples(300)
            assert warm.cache_stats["worlds_sampled"] == 0
            warm_labels = warm.component_labels
        with MonteCarloOracle(mutated, seed=0) as cold:
            cold.ensure_samples(300)
            assert (warm_labels == cold.component_labels).all()

    def test_mutate_without_parent_pool_reports_cold(self, graph_file, tmp_path, capsys):
        cache = tmp_path / "empty-wc"
        assert main([
            "mutate", graph_file, "--update", "0", "1", "0.95",
            "--world-cache", str(cache),
        ]) == 0
        assert "samples cold" in capsys.readouterr().err
