"""Brute-force verification of the paper's supporting lemmas.

These lemmas carry the ACP analysis; they are statements about *all*
partial clusterings, so we verify them exhaustively on tiny instances
where ``t_q`` (the minimum number of uncovered nodes over all partial
k-clusterings with min-prob >= q) can be computed by enumeration.
"""

from itertools import combinations

import numpy as np
import pytest

from repro import min_partial
from repro.core.bruteforce import optimal_avg_prob
from repro.sampling import ExactOracle
from repro.utils.math import harmonic_number
from tests.conftest import random_graph


def brute_force_t_q(matrix: np.ndarray, k: int, q: float) -> int:
    """``t_q``: fewest uncovered nodes over all partial k-clusterings.

    For fixed centers, the best partial clustering covers exactly the
    nodes within probability ``q`` of some center, so minimizing
    uncovered nodes = maximizing threshold coverage over center sets.
    """
    n = matrix.shape[0]
    best_covered = 0
    for centers in combinations(range(n), k):
        covered = int(np.count_nonzero(matrix[list(centers)].max(axis=0) >= q))
        best_covered = max(best_covered, covered)
    return n - best_covered


@pytest.fixture(scope="module", params=range(4))
def small_instance(request):
    rng = np.random.default_rng(600 + request.param)
    graph = random_graph(8, 0.35, rng, prob_low=0.2)
    oracle = ExactOracle(graph)
    return graph, oracle, oracle.pairwise_matrix()


class TestTqProperties:
    def test_t_q_non_decreasing_in_q(self, small_instance):
        _, _, matrix = small_instance
        values = [brute_force_t_q(matrix, 2, q) for q in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert values == sorted(values)

    def test_t_q_non_increasing_in_k(self, small_instance):
        _, _, matrix = small_instance
        values = [brute_force_t_q(matrix, k, 0.5) for k in (1, 2, 3)]
        assert values == sorted(values, reverse=True)


class TestLemma3:
    """There exists q with q (n - t_q) / n >= p_opt_avg(k) / H(n)."""

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_witness_threshold_exists(self, small_instance, k):
        graph, oracle, matrix = small_instance
        n = graph.n_nodes
        p_opt, _ = optimal_avg_prob(oracle, k)
        target = p_opt / harmonic_number(n)
        # The proof's witnesses are the sorted optimal connection
        # probabilities p_i; checking a fine grid of candidate q values
        # (plus the matrix entries themselves) is strictly stronger.
        candidates = sorted(set(matrix.ravel().tolist()) | {0.01, 0.99}) or [0.5]
        best = max(
            q * (n - brute_force_t_q(matrix, k, q)) / n
            for q in candidates
            if q > 0
        )
        assert best >= target - 1e-9


class TestLemma4:
    """min-partial(G, k, q^3, n, q) leaves at most t_q nodes uncovered."""

    @pytest.mark.parametrize("q", [0.3, 0.5, 0.7, 0.9])
    @pytest.mark.parametrize("k", [1, 2])
    def test_uncovered_at_most_t_q(self, small_instance, k, q):
        graph, oracle, matrix = small_instance
        t_q = brute_force_t_q(matrix, k, q)
        result = min_partial(
            oracle, k=k, q=q**3, alpha=graph.n_nodes, q_bar=q, rng=0
        )
        uncovered = graph.n_nodes - result.clustering.n_covered
        assert uncovered <= t_q

    def test_charikar_charging_bound_is_tight_enough(self, small_instance):
        # Sanity: with q so low everything is coverable, t_q = 0 and the
        # partial clustering must be full.
        graph, oracle, matrix = small_instance
        q = max(1e-3, float(matrix.min()) * 0.9)
        if brute_force_t_q(matrix, 2, q) == 0:
            result = min_partial(oracle, k=2, q=q**3, alpha=graph.n_nodes, q_bar=q, rng=0)
            assert result.covers_all


class TestLemma5Analogue:
    """Depth-limited t_{q,d} behaves like t_q (monotone in d)."""

    def test_depth_coverage_monotone(self, small_instance):
        graph, oracle, _ = small_instance
        for d_small, d_large in ((1, 2), (2, 4)):
            m_small = oracle.pairwise_matrix(depth=d_small)
            m_large = oracle.pairwise_matrix(depth=d_large)
            for q in (0.3, 0.6):
                assert brute_force_t_q(m_large, 2, q) <= brute_force_t_q(m_small, 2, q)
