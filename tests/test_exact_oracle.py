"""Tests for the exact world-enumeration oracle."""

import numpy as np
import pytest

from repro import OracleError, UncertainGraph
from repro.sampling import ExactOracle, enumerate_worlds


class TestEnumerateWorlds:
    def test_probabilities_sum_to_one(self, path4):
        total = sum(p for _, p in enumerate_worlds(path4))
        assert total == pytest.approx(1.0)

    def test_world_count(self, path4):
        worlds = list(enumerate_worlds(path4))
        assert len(worlds) == 2**3

    def test_certain_edges_not_enumerated(self):
        g = UncertainGraph.from_edges([(0, 1, 1.0), (1, 2, 0.5)])
        worlds = list(enumerate_worlds(g))
        assert len(worlds) == 2
        for mask, _ in worlds:
            assert mask[0]  # the certain edge is always present

    def test_too_many_edges_rejected(self):
        edges = [(i, i + 1, 0.5) for i in range(30)]
        g = UncertainGraph.from_edges(edges)
        with pytest.raises(OracleError, match="uncertain edges"):
            list(enumerate_worlds(g))


class TestExactConnection:
    def test_single_edge(self):
        g = UncertainGraph.from_edges([(0, 1, 0.37)])
        oracle = ExactOracle(g)
        assert oracle.connection(0, 1) == pytest.approx(0.37)

    def test_two_edge_path(self):
        g = UncertainGraph.from_edges([(0, 1, 0.5), (1, 2, 0.4)])
        oracle = ExactOracle(g)
        assert oracle.connection(0, 2) == pytest.approx(0.2)

    def test_triangle_inclusion_exclusion(self):
        # Pr(0 ~ 1) for triangle with probs p01, p02, p12:
        # p01 + (1 - p01) * p02 * p12
        p01, p02, p12 = 0.3, 0.6, 0.7
        g = UncertainGraph.from_edges([(0, 1, p01), (0, 2, p02), (1, 2, p12)])
        oracle = ExactOracle(g)
        expected = p01 + (1 - p01) * p02 * p12
        assert oracle.connection(0, 1) == pytest.approx(expected)

    def test_disconnected_pair(self):
        g = UncertainGraph.from_edges([(0, 1, 0.5)], nodes=range(3))
        oracle = ExactOracle(g)
        assert oracle.connection(0, 2) == 0.0

    def test_self_connection(self, two_triangles_oracle):
        assert two_triangles_oracle.connection(2, 2) == 1.0

    def test_symmetry(self, two_triangles_oracle):
        assert two_triangles_oracle.connection(0, 4) == pytest.approx(
            two_triangles_oracle.connection(4, 0)
        )

    def test_connection_to_all_matches_matrix(self, two_triangles_oracle):
        row = two_triangles_oracle.connection_to_all(2)
        matrix = two_triangles_oracle.pairwise_matrix()
        assert np.allclose(row, matrix[2])

    def test_pairwise_subset(self, two_triangles_oracle):
        nodes = [0, 3, 5]
        sub = two_triangles_oracle.pairwise_matrix(nodes)
        full = two_triangles_oracle.pairwise_matrix()
        assert np.allclose(sub, full[np.ix_(nodes, nodes)])


class TestExactDepthLimited:
    def test_depth_one_is_direct_edge(self, path4):
        oracle = ExactOracle(path4)
        assert oracle.connection(0, 1, depth=1) == pytest.approx(0.9)
        assert oracle.connection(0, 2, depth=1) == 0.0

    def test_depth_two_path(self, path4):
        oracle = ExactOracle(path4)
        assert oracle.connection(0, 2, depth=2) == pytest.approx(0.9 * 0.5)

    def test_depth_monotone(self, two_triangles_oracle):
        values = [
            two_triangles_oracle.connection(0, 5, depth=d) for d in (1, 2, 3, 4)
        ]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:], strict=False))
        assert values[-1] <= two_triangles_oracle.connection(0, 5) + 1e-12

    def test_depth_at_least_diameter_equals_unbounded(self, path4):
        oracle = ExactOracle(path4)
        assert oracle.connection(0, 3, depth=3) == pytest.approx(oracle.connection(0, 3))

    def test_triangle_depth_one_vs_two(self):
        p01, p02, p12 = 0.3, 0.6, 0.7
        g = UncertainGraph.from_edges([(0, 1, p01), (0, 2, p02), (1, 2, p12)])
        oracle = ExactOracle(g)
        assert oracle.connection(0, 1, depth=1) == pytest.approx(p01)
        expected = p01 + (1 - p01) * p02 * p12
        assert oracle.connection(0, 1, depth=2) == pytest.approx(expected)


class TestOracleProtocol:
    def test_ensure_samples_noop(self, two_triangles_oracle):
        two_triangles_oracle.ensure_samples(10**9)  # must not raise

    def test_num_samples_is_huge(self, two_triangles_oracle):
        assert two_triangles_oracle.num_samples > 10**15

    def test_repr(self, two_triangles_oracle):
        assert "ExactOracle" in repr(two_triangles_oracle)
