"""Tests for the durable benchmark artifacts and the perf-gate diff.

``benchmarks/record.py`` and ``benchmarks/compare.py`` are the plumbing
the CI perf gate stands on, so they get tier-1 coverage: schema
round-trip, merge semantics, and the gate's pass/fail arithmetic.
"""

import json

import pytest

from benchmarks.compare import compare_artifacts, main as compare_main, render_table
from benchmarks.record import (
    SCHEMA_VERSION,
    bench_path,
    load_artifact,
    record_benchmark,
)


@pytest.fixture(autouse=True)
def bench_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    return tmp_path


def test_record_creates_schema_v1_artifact(bench_dir):
    path = record_benchmark(
        "sampling", "op/sub/x", seconds=0.5, items=100, meta={"workers": 2}
    )
    assert path == bench_path("sampling") == bench_dir / "BENCH_sampling.json"
    artifact = load_artifact(path)
    assert artifact["schema"] == SCHEMA_VERSION
    assert artifact["suite"] == "sampling"
    entry = artifact["benchmarks"]["op/sub/x"]
    assert entry["seconds"] == 0.5
    assert entry["throughput"] == pytest.approx(200.0)
    assert entry["meta"] == {"workers": 2}
    assert artifact["host"]["cpu_count"] >= 1


def test_record_merges_and_overwrites(bench_dir):
    record_benchmark("sampling", "a", seconds=1.0)
    record_benchmark("sampling", "b", seconds=2.0, items=10)
    record_benchmark("sampling", "a", seconds=0.25)
    artifact = load_artifact(bench_path("sampling"))
    assert set(artifact["benchmarks"]) == {"a", "b"}
    assert artifact["benchmarks"]["a"]["seconds"] == 0.25
    assert artifact["benchmarks"]["a"]["throughput"] is None


def test_record_rejects_nonpositive_seconds():
    with pytest.raises(ValueError, match="seconds"):
        record_benchmark("sampling", "a", seconds=0.0)


def test_load_rejects_unknown_schema(bench_dir):
    bad = bench_dir / "BENCH_bad.json"
    bad.write_text(json.dumps({"schema": 99, "benchmarks": {}}))
    with pytest.raises(ValueError, match="schema"):
        load_artifact(bad)


def _artifact(entries):
    return {
        "schema": SCHEMA_VERSION,
        "suite": "sampling",
        "benchmarks": {name: {"seconds": seconds} for name, seconds in entries.items()},
    }


def test_compare_rows_sorted_worst_first():
    rows = compare_artifacts(
        _artifact({"fast": 1.0, "slow": 1.0, "new": 1.0}),
        _artifact({"fast": 0.5, "slow": 4.0, "old": 1.0}),
    )
    comparable = [row["name"] for row in rows if row["speedup"] is not None]
    assert comparable == ["slow", "fast"]  # 0.25x before 2.0x
    table = render_table(rows)
    assert "0.25x" in table and "2.00x" in table
    assert {row["name"] for row in rows if row["speedup"] is None} == {"new", "old"}


def test_gate_passes_and_fails_on_threshold(bench_dir, capsys):
    baseline = bench_dir / "baseline.json"
    current = bench_dir / "current.json"
    baseline.write_text(json.dumps(_artifact({"x": 1.0, "y": 1.0})))

    current.write_text(json.dumps(_artifact({"x": 1.9, "y": 0.5})))
    assert compare_main([str(baseline), str(current), "--fail-over", "2.0"]) == 0
    assert "perf gate ok" in capsys.readouterr().out

    current.write_text(json.dumps(_artifact({"x": 2.1, "y": 0.5})))
    assert compare_main([str(baseline), str(current), "--fail-over", "2.0"]) == 1
    out = capsys.readouterr().out
    assert "PERF GATE FAILED" in out and "x:" in out


def test_gate_ignores_unmatched_benchmarks(bench_dir, capsys):
    baseline = bench_dir / "baseline.json"
    current = bench_dir / "current.json"
    baseline.write_text(json.dumps(_artifact({"retired": 1.0, "kept": 1.0})))
    current.write_text(json.dumps(_artifact({"kept": 1.0, "fresh": 9.0})))
    assert compare_main([str(baseline), str(current), "--fail-over", "2.0"]) == 0
    assert "not comparable" in capsys.readouterr().out


def test_missing_file_is_a_clean_error(bench_dir, capsys):
    assert compare_main([str(bench_dir / "no.json"), str(bench_dir / "pe.json")]) == 2
    assert "error" in capsys.readouterr().err
