"""Tests for the dataset registry."""

import numpy as np
import pytest

from repro import ExperimentError
from repro.datasets.registry import DATASET_NAMES, load_dataset


class TestRegistry:
    def test_all_names_load(self):
        for name in DATASET_NAMES:
            graph, complexes = load_dataset(
                name, seed=0, scale=0.08, dblp_authors=400
            )
            assert graph.n_nodes > 10
            if name == "dblp":
                assert complexes is None
            else:
                assert complexes is not None
                assert len(complexes) >= 1

    def test_unknown_name(self):
        with pytest.raises(ExperimentError, match="unknown dataset"):
            load_dataset("imdb")

    def test_scale_shrinks_ppi(self):
        big, _ = load_dataset("gavin", seed=0, scale=0.3)
        small, _ = load_dataset("gavin", seed=0, scale=0.1)
        assert small.n_nodes < big.n_nodes

    def test_deterministic(self):
        a, _ = load_dataset("krogan", seed=5, scale=0.1)
        b, _ = load_dataset("krogan", seed=5, scale=0.1)
        assert np.array_equal(a.edge_prob, b.edge_prob)
