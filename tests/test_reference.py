"""Tests for the transcribed paper values and the shape-claim checker."""

import numpy as np

from repro.experiments.reference import (
    PAPER_INNER_AVPR,
    PAPER_KS,
    PAPER_OUTER_AVPR,
    PAPER_PAVG,
    PAPER_PMIN,
    PAPER_TABLE2,
    PAPER_TIME_MS,
    paper_figure1_table,
    shape_claims,
)


class TestTranscriptionConsistency:
    def test_grids_are_complete(self):
        expected_cells = sum(len(ks) for ks in PAPER_KS.values()) * 4
        for grid in (PAPER_PMIN, PAPER_PAVG, PAPER_INNER_AVPR, PAPER_OUTER_AVPR, PAPER_TIME_MS):
            assert len(grid) == expected_cells

    def test_probabilities_in_unit_interval(self):
        for grid in (PAPER_PMIN, PAPER_PAVG, PAPER_INNER_AVPR, PAPER_OUTER_AVPR):
            assert all(0.0 <= v <= 1.0 for v in grid.values())

    def test_pmin_never_exceeds_pavg(self):
        # Internal consistency of the paper's own numbers.
        for key, pmin in PAPER_PMIN.items():
            assert pmin <= PAPER_PAVG[key] + 1e-9, key

    def test_table2_rates_valid(self):
        for (algorithm, _depth), (tpr, fpr) in PAPER_TABLE2.items():
            assert 0.0 <= tpr <= 1.0
            assert 0.0 <= fpr <= 1.0
            assert algorithm in ("mcp", "acp", "mcl", "kpt")

    def test_table2_fpr_monotone_in_depth(self):
        # The paper's own numbers: deeper paths -> more false positives.
        for algorithm in ("mcp", "acp"):
            fprs = [PAPER_TABLE2[(algorithm, d)][1] for d in (2, 3, 4, 6, 8)]
            assert fprs == sorted(fprs)

    def test_kpt_has_lowest_tpr(self):
        kpt_tpr = PAPER_TABLE2[("kpt", None)][0]
        others = [v[0] for k, v in PAPER_TABLE2.items() if k[0] != "kpt"]
        assert all(kpt_tpr < t for t in others)


class TestShapeClaims:
    def test_paper_numbers_satisfy_their_own_claims(self):
        for claim, holds in shape_claims():
            assert holds, f"paper's own numbers violate: {claim}"

    def test_checker_detects_violations(self):
        broken = dict(PAPER_PMIN)
        graph, k = "gavin", PAPER_KS["gavin"][0]
        broken[(graph, k, "mcp")] = 0.0  # sabotage
        results = dict(shape_claims(pmin=broken))
        assert not results["mcp has the best pmin of {gmm, mcl} on every (graph, k)"]

    def test_measured_suite_satisfies_claims(self):
        # Run a tiny measured grid through the same checker.
        from repro.experiments import run_quality_suite

        suite = run_quality_suite("tiny", seed=0, datasets=("gavin",))
        pmin = {}
        outer = {}
        for record in suite.records:
            if np.isnan(record.pmin):
                continue
            pmin[(record.graph, record.k, record.algorithm)] = record.pmin
            if np.isfinite(record.outer_avpr):
                outer[(record.graph, record.k, record.algorithm)] = record.outer_avpr
        # Tiny scale evaluates metrics on 120 sampled worlds, so the
        # estimates carry the +-0.02-0.03 Monte Carlo band the checker
        # documents; claims are checked up to that noise.
        for claim, holds in shape_claims(pmin=pmin, outer=outer, tolerance=0.05):
            assert holds, f"measured run violates: {claim}"


class TestRendering:
    def test_figure1_reference_table(self):
        table = paper_figure1_table()
        assert len(table) == 48
        rendered = table.render()
        assert "0.356" in rendered  # collins k=24 mcp pmin
