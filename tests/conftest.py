"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import UncertainGraph
from repro.sampling import ExactOracle

#: Base offset for seed-parametrized tests.  The seed-sweep CI workflow
#: runs the whole tier-1 suite at REPRO_TEST_SEED=0/1/2 so that
#: seed-dependent assertions are exercised at shifted seeds, not just
#: the ones they were written against.
REPRO_TEST_SEED = int(os.environ.get("REPRO_TEST_SEED", "0"))


def sweep_seeds(count: int = 4) -> list[int]:
    """Seeds ``REPRO_TEST_SEED .. REPRO_TEST_SEED + count - 1``."""
    return [REPRO_TEST_SEED + i for i in range(count)]


@pytest.fixture
def two_triangles() -> UncertainGraph:
    """Two reliable triangles joined by a flaky bridge (6 nodes, 7 edges)."""
    return UncertainGraph.from_edges(
        [
            (0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.8),
            (3, 4, 0.85), (4, 5, 0.85), (3, 5, 0.75),
            (2, 3, 0.05),
        ]
    )


@pytest.fixture
def two_triangles_oracle(two_triangles) -> ExactOracle:
    return ExactOracle(two_triangles)


@pytest.fixture
def path4() -> UncertainGraph:
    """Path 0-1-2-3 with probabilities 0.9, 0.5, 0.8."""
    return UncertainGraph.from_edges([(0, 1, 0.9), (1, 2, 0.5), (2, 3, 0.8)])


def random_graph(
    n: int,
    edge_fraction: float,
    rng: np.random.Generator,
    *,
    prob_low: float = 0.1,
    prob_high: float = 1.0,
) -> UncertainGraph:
    """Random uncertain graph helper used across tests.

    ``edge_fraction`` of all possible pairs become edges (at least a
    spanning path is NOT guaranteed — tests that need connectivity
    should check it).
    """
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    count = max(1, int(edge_fraction * len(pairs)))
    chosen = rng.choice(len(pairs), size=min(count, len(pairs)), replace=False)
    edges = [
        (pairs[int(c)][0], pairs[int(c)][1], float(rng.uniform(prob_low, prob_high)))
        for c in chosen
    ]
    return UncertainGraph.from_edges(edges, nodes=range(n))
