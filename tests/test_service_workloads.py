"""Service-level contracts for the workload job types.

Covers the /v1 surface added with the workload suite:

* ``kmedian`` / ``kcenter`` / ``centrality`` jobs run end to end under
  the thread pool **and** a 2-worker process pool, inheriting
  coalescing, SSE streaming, and admission control from the clustering
  job types;
* SSE event ordering is pinned for the new job types: strictly
  monotone ``seq``, ``queued`` first, the terminal event last, with at
  least one ``progress`` event in between;
* an unknown ``algorithm`` in POST /v1/jobs is a 400 envelope with the
  stable machine-readable code ``unknown_algorithm`` (clients pin the
  ``code``, not the prose); bad ``measure`` / ``tol`` are plain 400s.
"""

from __future__ import annotations

import threading

import pytest

from repro.sampling.parallel import ParallelSampler
from repro.service import BackgroundServer, ClusterService
from tests.test_service import TIMEOUT, Client, _read_sse, _toy_graph


@pytest.fixture(scope="module")
def service():
    svc = ClusterService(datasets=(), job_workers=2, cache_bytes=64 << 20)
    svc.graphs.register_graph("toy", _toy_graph(), source="test")
    return svc


@pytest.fixture(scope="module")
def server(service):
    with BackgroundServer(service) as srv:
        yield srv


@pytest.fixture()
def client(server):
    c = Client(server.port)
    yield c
    c.close()


class TestWorkloadJobs:
    def test_kmedian_job_payload(self, client):
        result = client.run_job(
            {"graph": "toy", "algorithm": "kmedian", "k": 2, "samples": 300,
             "seed": 11}
        )
        assert result["k"] == 2
        assert result["seed"] == 11
        assert len(result["centers"]) == 2
        assert len(result["assignment"]) == 6
        assert result["objective"] > 0
        assert result["samples_used"] >= 300
        assert result["n_rounds"] >= 2
        assert set(result["assignment"]) == {0, 1}

    def test_kcenter_job_payload(self, client):
        result = client.run_job(
            {"graph": "toy", "algorithm": "kcenter", "k": 2, "samples": 300,
             "seed": 11}
        )
        assert len(result["centers"]) == 2
        assert result["objective"] > 0
        # Max objective dominates the mean objective of the same pool.
        kmedian = client.run_job(
            {"graph": "toy", "algorithm": "kmedian", "k": 2, "samples": 300,
             "seed": 11}
        )
        assert result["objective"] >= kmedian["objective"] - 1e-9

    def test_centrality_job_payload(self, client):
        result = client.run_job(
            {"graph": "toy", "algorithm": "centrality", "measure": "harmonic",
             "samples": 400, "seed": 11, "tol": 1e-9}
        )
        assert result["measure"] == "harmonic"
        assert result["tol"] == pytest.approx(1e-9)
        assert len(result["values"]) == 6
        assert all(0.0 <= v <= 1.0 for v in result["values"])
        assert result["samples_used"] >= 400
        assert result["half_width"] > 0
        assert result["converged"] is False  # tol=1e-9 exhausts the budget
        # Centrality jobs carry no clustering payload.
        assert "assignment" not in result and "centers" not in result

    def test_workloads_share_the_clustering_pool(self, client, monkeypatch):
        """A k-median job warms the pool; MCP and centrality jobs then
        resample nothing — one pool serves every workload family."""
        params = {"graph": "toy", "samples": 300, "seed": 77}
        cold = client.run_job({**params, "algorithm": "kmedian", "k": 2})
        assert cold["worlds_sampled"] > 0
        calls = []
        original = ParallelSampler.sample_chunk

        def spying(self, root, start, count):
            calls.append(count)
            return original(self, root, start, count)

        monkeypatch.setattr(ParallelSampler, "sample_chunk", spying)
        # MCP's adaptive schedule never needs more than its samples cap,
        # so the 300-world pool covers it; same for centrality's budget.
        mcp = client.run_job({**params, "algorithm": "mcp", "k": 2})
        ce = client.run_job(
            {**params, "algorithm": "centrality", "measure": "degree"}
        )
        assert mcp["warm"] is True and mcp["worlds_sampled"] == 0
        assert ce["warm"] is True and ce["worlds_sampled"] == 0
        assert calls == []

    def test_identical_workload_jobs_coalesce(self, service, client):
        gate = threading.Event()
        original = service._run_job

        def gated(job):
            gate.wait(TIMEOUT)
            return original(job)

        service.jobs._runner = gated
        try:
            params = {"graph": "toy", "algorithm": "kcenter", "k": 2,
                      "samples": 250, "seed": 91}
            _, first = client.request("POST", "/jobs", params)
            assert first["coalesced"] is False
            # Explicit defaults must not defeat the canonical key.
            _, second = client.request(
                "POST", "/jobs", {**params, "backend": "auto"}
            )
            assert second["job"] == first["job"]
            assert second["coalesced"] is True
            _, other = client.request(
                "POST", "/jobs", {**params, "algorithm": "kmedian"}
            )
            assert other["job"] != first["job"]
        finally:
            gate.set()
            service.jobs._runner = original
        assert client.wait_job(first["job"])["status"] == "done"

    def test_centrality_jobs_coalesce_on_measure_and_tol(self, service, client):
        gate = threading.Event()
        original = service._run_job

        def gated(job):
            gate.wait(TIMEOUT)
            return original(job)

        service.jobs._runner = gated
        try:
            params = {"graph": "toy", "algorithm": "centrality",
                      "measure": "harmonic", "seed": 92}
            _, first = client.request("POST", "/jobs", params)
            _, same = client.request("POST", "/jobs", {**params, "tol": 0.05})
            assert same["job"] == first["job"]  # 0.05 is the default tol
            _, other_measure = client.request(
                "POST", "/jobs", {**params, "measure": "degree"}
            )
            assert other_measure["job"] != first["job"]
            _, other_tol = client.request("POST", "/jobs", {**params, "tol": 0.01})
            assert other_tol["job"] != first["job"]
        finally:
            gate.set()
            service.jobs._runner = original
        assert client.wait_job(first["job"])["status"] == "done"


class TestNegativePaths:
    def test_unknown_algorithm_is_400_with_stable_code(self, client):
        status, payload = client.request(
            "POST", "/jobs", {"graph": "toy", "algorithm": "pagerank"}
        )
        assert status == 400
        assert payload["error"]["code"] == "unknown_algorithm"
        assert "pagerank" in payload["error"]["message"]
        # The valid algorithms are enumerated for the caller.
        for name in ("mcp", "kmedian", "kcenter", "centrality"):
            assert name in payload["error"]["message"]

    @pytest.mark.parametrize("algorithm", ["", None, 7, "MCP", "k-median"])
    def test_unknown_algorithm_variants(self, client, algorithm):
        body = {"graph": "toy"}
        if algorithm is not None:
            body["algorithm"] = algorithm
        status, payload = client.request("POST", "/jobs", body)
        if algorithm is None:
            # Missing algorithm falls back to the default (mcp): accepted.
            assert status == 202
        else:
            assert status == 400
            assert payload["error"]["code"] == "unknown_algorithm"

    def test_unknown_measure_is_400(self, client):
        status, payload = client.request(
            "POST", "/jobs",
            {"graph": "toy", "algorithm": "centrality", "measure": "pagerank"},
        )
        assert status == 400
        assert payload["error"]["code"] == "bad_request"
        assert "pagerank" in payload["error"]["message"]

    @pytest.mark.parametrize("tol", [0, -1, "nan", "inf", "soon"])
    def test_bad_tol_is_400(self, client, tol):
        status, payload = client.request(
            "POST", "/jobs",
            {"graph": "toy", "algorithm": "centrality", "tol": tol},
        )
        assert status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_bad_k_is_400(self, client):
        for k in (0, -2, "many"):
            status, payload = client.request(
                "POST", "/jobs", {"graph": "toy", "algorithm": "kmedian", "k": k}
            )
            assert status == 400

    def test_clustering_params_rejected_for_centrality(self, client):
        # k is dropped for centrality, so two requests differing only in
        # a meaningless k coalesce to the same canonical key.
        a = client.run_job(
            {"graph": "toy", "algorithm": "centrality", "seed": 13, "k": 2}
        )
        b = client.run_job(
            {"graph": "toy", "algorithm": "centrality", "seed": 13, "k": 5}
        )
        assert a["values"] == b["values"]


class TestSSEOrdering:
    """Event-stream regression for the new job types (thread pool)."""

    @pytest.mark.parametrize("params", [
        {"algorithm": "kmedian", "k": 2, "samples": 300},
        {"algorithm": "kcenter", "k": 3, "samples": 300},
        {"algorithm": "centrality", "measure": "betweenness", "samples": 400,
         "tol": 1e-9},
    ], ids=lambda p: p["algorithm"])
    def test_stream_is_ordered_and_terminal(self, server, client, params):
        _, accepted = client.request(
            "POST", "/jobs", {"graph": "toy", "seed": 21, **params}
        )
        job = accepted["job"]
        client.wait_job(job)
        _, events = _read_sse(server.port, job)
        kinds = [e["event"] for e in events]
        seqs = [e["seq"] for e in events]
        assert kinds[0] == "queued"
        assert kinds[-1] == "done"
        assert "progress" in kinds
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)  # strictly monotone
        # No events after the terminal one.
        assert kinds.count("done") == 1 and kinds.index("done") == len(kinds) - 1


class TestProcessPoolWorkloads:
    """The same contracts hold under a 2-worker process pool."""

    @pytest.fixture(scope="class")
    def proc_server(self, tmp_path_factory):
        cache = tmp_path_factory.mktemp("worlds")
        svc = ClusterService(
            datasets=(), worker_processes=2, world_cache=cache,
            cache_bytes=64 << 20,
        )
        svc.graphs.register_graph("toy", _toy_graph(), source="test")
        with BackgroundServer(svc) as srv:
            yield srv

    @pytest.fixture()
    def proc_client(self, proc_server):
        c = Client(proc_server.port)
        yield c
        c.close()

    def test_all_three_job_types_complete(self, proc_client):
        km = proc_client.run_job(
            {"graph": "toy", "algorithm": "kmedian", "k": 2, "samples": 300,
             "seed": 31}
        )
        kc = proc_client.run_job(
            {"graph": "toy", "algorithm": "kcenter", "k": 2, "samples": 300,
             "seed": 31}
        )
        ce = proc_client.run_job(
            {"graph": "toy", "algorithm": "centrality", "measure": "degree",
             "samples": 300, "seed": 31}
        )
        assert len(km["centers"]) == 2 and len(kc["centers"]) == 2
        assert len(ce["values"]) == 6

    def test_process_pool_matches_thread_pool(self, client, proc_client):
        """Worker isolation never changes results: same seed, same bits."""
        params = {"graph": "toy", "algorithm": "kmedian", "k": 2,
                  "samples": 300, "seed": 41}
        thread = client.run_job(params)
        proc = proc_client.run_job(params)
        assert proc["centers"] == thread["centers"]
        assert proc["assignment"] == thread["assignment"]
        assert proc["objective"] == thread["objective"]

    def test_sse_ordering_under_process_pool(self, proc_server, proc_client):
        _, accepted = proc_client.request(
            "POST", "/jobs",
            {"graph": "toy", "algorithm": "centrality", "measure": "harmonic",
             "samples": 400, "seed": 51, "tol": 1e-9},
        )
        job = accepted["job"]
        proc_client.wait_job(job)
        _, events = _read_sse(proc_server.port, job)
        kinds = [e["event"] for e in events]
        seqs = [e["seq"] for e in events]
        assert kinds[0] == "queued"
        assert kinds[-1] == "done"
        assert "progress" in kinds
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_unknown_algorithm_under_process_pool(self, proc_client):
        status, payload = proc_client.request(
            "POST", "/jobs", {"graph": "toy", "algorithm": "bogus"}
        )
        assert status == 400
        assert payload["error"]["code"] == "unknown_algorithm"
