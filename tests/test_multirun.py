"""Tests for repeated-run aggregation."""

import numpy as np
import pytest

from repro.experiments.multirun import (
    aggregated_table,
    run_repeated_suite,
)


@pytest.fixture(scope="module")
def cells():
    return run_repeated_suite("tiny", n_runs=2, seed=0, datasets=("gavin",))


class TestAggregation:
    def test_every_algorithm_appears(self, cells):
        assert {c.algorithm for c in cells} == {"gmm", "mcl", "mcp", "acp"}

    def test_run_counts(self, cells):
        assert all(c.n_runs == 2 for c in cells)

    def test_means_in_range(self, cells):
        for cell in cells:
            for metric in ("pmin", "pavg"):
                value = cell.means[metric]
                if np.isfinite(value):
                    assert 0.0 <= value <= 1.0
            assert cell.stds["pmin"] >= 0.0

    def test_mcp_still_wins_pmin_on_average(self, cells):
        by_rank: dict = {}
        for cell in cells:
            by_rank.setdefault(cell.k_rank, {})[cell.algorithm] = cell
        for _rank, algorithms in by_rank.items():
            if len(algorithms) < 4:
                continue
            assert (
                algorithms["mcp"].means["pmin"]
                >= algorithms["mcl"].means["pmin"] - 0.05
            )

    def test_invalid_runs(self):
        with pytest.raises(ValueError):
            run_repeated_suite("tiny", n_runs=0)


class TestRendering:
    def test_table_contains_cells(self, cells):
        table = aggregated_table(cells, metric="pmin")
        assert len(table) == len(cells)
        assert "Repeated-run aggregate" in table.render()

    def test_unknown_metric(self, cells):
        with pytest.raises(ValueError):
            aggregated_table(cells, metric="f1")
